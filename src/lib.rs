#![deny(missing_docs)]
//! # EKTELO (Rust reproduction)
//!
//! Façade crate re-exporting the full EKTELO stack:
//!
//! * [`matrix`] — implicit/sparse/dense matrix engine (paper §7);
//! * [`solvers`] — iterative and direct numerical solvers (paper §7.6);
//! * [`data`] — relational substrate, synthetic datasets, workloads;
//! * [`core`] — the protected kernel and operator library (paper §4–5, §8);
//! * [`plans`] — the algorithm plans of Fig. 2 and the case studies (§6, §9).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use ektelo_core as core;
pub use ektelo_data as data;
pub use ektelo_matrix as matrix;
pub use ektelo_plans as plans;
pub use ektelo_solvers as solvers;
