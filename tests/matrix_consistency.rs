//! Property tests: the implicit matrix algebra agrees with dense linear
//! algebra on randomly composed expressions (paper §7's losslessness
//! claim, verified mechanically).

use ektelo::matrix::{CsrMatrix, DenseMatrix, Matrix};
use proptest::prelude::*;

/// A recursive strategy generating random matrix expressions with
/// controlled shapes (columns fixed per level so compositions typecheck).
fn arb_matrix(cols: usize, depth: u32) -> BoxedStrategy<Matrix> {
    let leaf = prop_oneof![
        Just(Matrix::identity(cols)),
        Just(Matrix::total(cols)),
        Just(Matrix::prefix(cols)),
        Just(Matrix::suffix(cols)),
        Just(Matrix::wavelet(cols)),
        (1usize..=cols.min(4)).prop_map(move |m| Matrix::ones(m, cols)),
        prop::collection::vec((0usize..cols, 1usize..=cols), 1..5).prop_map(move |pairs| {
            let ranges: Vec<(usize, usize)> = pairs
                .into_iter()
                .map(|(lo, len)| (lo.min(cols - 1), (lo + len).clamp(lo + 1, cols).min(cols)))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            if ranges.is_empty() {
                Matrix::total(cols)
            } else {
                Matrix::range_queries(cols, ranges)
            }
        }),
        prop::collection::vec(-2.0f64..2.0, cols).prop_map(Matrix::diagonal),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_matrix(cols, depth - 1);
    prop_oneof![
        leaf,
        prop::collection::vec(arb_matrix(cols, depth - 1), 1..3).prop_map(Matrix::vstack),
        (inner.clone(), -2.0f64..2.0).prop_map(|(m, c)| Matrix::scaled(c, m)),
        // Transpose only when it preserves the column count (square),
        // otherwise the expression's shape invariant breaks.
        inner.prop_map(|m| if m.rows() == m.cols() {
            m.transpose()
        } else {
            m
        }),
    ]
    .boxed()
}

fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// matvec and rmatvec of any composed expression match its dense form.
    #[test]
    fn products_match_dense(
        m in arb_matrix(6, 2),
        x in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        let d = m.to_dense();
        // matvec
        if m.cols() == 6 {
            let got = m.matvec(&x);
            let mut expect = vec![0.0; m.rows()];
            d.matvec_into(&x, &mut expect);
            prop_assert!(close(&got, &expect, 1e-9), "matvec mismatch: {got:?} vs {expect:?}");
        }
        // rmatvec with a fresh vector of the right length
        let y: Vec<f64> = (0..m.rows()).map(|i| (i as f64) - 1.0).collect();
        let got_t = m.rmatvec(&y);
        let mut expect_t = vec![0.0; m.cols()];
        d.rmatvec_into(&y, &mut expect_t);
        prop_assert!(close(&got_t, &expect_t, 1e-9), "rmatvec mismatch");
    }

    /// Sensitivity computations match brute force on the dense form.
    #[test]
    fn sensitivity_matches_dense(m in arb_matrix(6, 2)) {
        let d = m.to_dense();
        let brute_l1 = d.map(f64::abs).abs_pow_col_sums(1).into_iter().fold(0.0, f64::max);
        prop_assert!((m.l1_sensitivity() - brute_l1).abs() < 1e-9);
        let brute_l2 = d.abs_pow_col_sums(2).into_iter().fold(0.0, f64::max).sqrt();
        prop_assert!((m.l2_sensitivity() - brute_l2).abs() < 1e-9);
    }

    /// abs/sqr are exact element-wise transforms.
    #[test]
    fn abs_sqr_match_dense(m in arb_matrix(5, 2)) {
        let d = m.to_dense();
        let abs_expect = d.map(f64::abs);
        prop_assert!(m.abs().to_dense().max_abs_diff(&abs_expect).unwrap() < 1e-12);
        let sqr_expect = d.map(|v| v * v);
        prop_assert!(m.sqr().to_dense().max_abs_diff(&sqr_expect).unwrap() < 1e-12);
    }

    /// Sparse round trip is lossless.
    #[test]
    fn sparse_roundtrip(m in arb_matrix(5, 2)) {
        let via_sparse = Matrix::sparse(m.to_sparse()).to_dense();
        prop_assert!(m.to_dense().max_abs_diff(&via_sparse).unwrap() < 1e-12);
    }

    /// Kronecker products agree with the dense Kronecker definition.
    #[test]
    fn kron_matches_dense(
        a in arb_matrix(3, 1),
        b in arb_matrix(2, 1),
        x in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        let k = Matrix::kron(a.clone(), b.clone());
        let dense_kron = CsrMatrix::from_dense(&a.to_dense())
            .kron(&CsrMatrix::from_dense(&b.to_dense()))
            .to_dense();
        let got = k.matvec(&x);
        let mut expect = vec![0.0; k.rows()];
        dense_kron.matvec_into(&x, &mut expect);
        prop_assert!(close(&got, &expect, 1e-9));
        prop_assert!(k.to_dense().max_abs_diff(&dense_kron).unwrap() < 1e-12);
    }

    /// Transpose is an involution and matches dense transpose.
    #[test]
    fn transpose_involution(m in arb_matrix(5, 2)) {
        let tt = m.transpose().transpose();
        prop_assert!(m.to_dense().max_abs_diff(&tt.to_dense()).unwrap() < 1e-12);
        let t_expect = m.to_dense().transpose();
        prop_assert!(m.transpose().to_dense().max_abs_diff(&t_expect).unwrap() < 1e-12);
    }

    /// Gram matrices match AᵀA.
    #[test]
    fn gram_matches_dense(m in arb_matrix(4, 1)) {
        let g = m.gram_dense();
        let d = m.to_dense();
        let expect = d.transpose().matmul(&d);
        prop_assert!(g.max_abs_diff(&expect).unwrap() < 1e-9);
    }
}

/// The Example 7.3 memory claim: the census workload stores nothing
/// implicit, ~10⁸ scalars dense.
#[test]
fn census_workload_memory_claim() {
    let w = Matrix::kron_list(vec![
        Matrix::prefix(100),
        Matrix::prefix(100),
        Matrix::vstack(vec![
            Matrix::total(7),
            Matrix::identity(7),
            Matrix::dense(DenseMatrix::from_rows(vec![
                vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0],
                vec![0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            ])),
        ]),
    ]);
    assert_eq!(w.cols(), 70_000);
    // Only the little 2×7 dense block is stored.
    assert_eq!(w.stored_scalars(), 14);
    // Dense materialization would need rows × cols scalars.
    let dense_scalars = w.rows() * w.cols();
    assert!(dense_scalars > 5_000_000_000usize);
}
