//! Cross-crate privacy invariants (paper Theorem 4.1 and Algorithm 2),
//! exercised through the public façade with randomized operator sequences.

use ektelo::core::kernel::{EktError, ProtectedKernel};
use ektelo::core::ops::partition::{ahp_partition, dawa_partition, AhpOptions, DawaOptions};
use ektelo::matrix::{partition_from_labels, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No sequence of measurements can push root budget past ε_tot.
    #[test]
    fn budget_never_exceeds_total(
        eps_tot in 0.1f64..4.0,
        requests in prop::collection::vec(0.01f64..1.0, 1..20),
        seed in 0u64..1000,
    ) {
        let k = ProtectedKernel::init_from_vector(vec![1.0; 16], eps_tot, seed);
        for eps in requests {
            let _ = k.vector_laplace(k.root(), &Matrix::identity(16), eps);
            prop_assert!(k.budget_spent() <= eps_tot + 1e-9);
        }
    }

    /// A rejected request leaves the trackers untouched and later smaller
    /// requests still succeed.
    #[test]
    fn rejection_is_side_effect_free(seed in 0u64..1000) {
        let k = ProtectedKernel::init_from_vector(vec![2.0; 8], 1.0, seed);
        k.vector_laplace(k.root(), &Matrix::identity(8), 0.7).unwrap();
        let before = k.budget_spent();
        let err = k.vector_laplace(k.root(), &Matrix::identity(8), 0.5).unwrap_err();
        let is_budget_error = matches!(err, EktError::BudgetExceeded { .. });
        prop_assert!(is_budget_error);
        prop_assert_eq!(k.budget_spent(), before);
        k.vector_laplace(k.root(), &Matrix::identity(8), 0.3).unwrap();
        prop_assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    /// Parallel composition: measuring every partition child at ε charges
    /// the root exactly ε, for any partition of the domain.
    #[test]
    fn parallel_composition_over_random_partitions(
        labels in prop::collection::vec(0usize..5, 10..40),
        eps in 0.05f64..0.9,
        seed in 0u64..1000,
    ) {
        let groups = labels.iter().max().unwrap() + 1;
        let n = labels.len();
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let k = ProtectedKernel::init_from_vector(x, 1.0, seed);
        let p = partition_from_labels(groups, &labels);
        let parts = k.split_by_partition(k.root(), &p).unwrap();
        let mut measured_any = false;
        for part in parts {
            let len = k.vector_len(part).unwrap();
            if len == 0 {
                continue; // random labels may leave a group empty
            }
            k.vector_laplace(part, &Matrix::identity(len), eps).unwrap();
            measured_any = true;
        }
        prop_assert!(measured_any);
        prop_assert!((k.budget_spent() - eps).abs() < 1e-9);
    }

    /// Sequential composition through a chain of 1-stable transforms
    /// charges exactly the sum of the requests.
    #[test]
    fn sequential_composition_through_reductions(
        eps_list in prop::collection::vec(0.05f64..0.2, 1..4),
        seed in 0u64..1000,
    ) {
        let total: f64 = eps_list.iter().sum();
        let k = ProtectedKernel::init_from_vector(vec![3.0; 12], total + 0.01, seed);
        let p = partition_from_labels(3, &[0,0,0,0,1,1,1,1,2,2,2,2]);
        let red = k.reduce_by_partition(k.root(), &p).unwrap();
        for eps in &eps_list {
            k.vector_laplace(red, &Matrix::identity(3), *eps).unwrap();
        }
        prop_assert!((k.budget_spent() - total).abs() < 1e-9);
    }

    /// Data-adaptive partition operators charge exactly their ε and return
    /// valid partitions, for arbitrary data.
    #[test]
    fn private_partition_ops_charge_exactly(
        data in prop::collection::vec(0.0f64..200.0, 16..64),
        seed in 0u64..1000,
    ) {
        let n = data.len();
        let k = ProtectedKernel::init_from_vector(data, 1.0, seed);
        let p1 = ahp_partition(&k, k.root(), 0.25, &AhpOptions::default()).unwrap();
        prop_assert!(p1.is_partition());
        prop_assert_eq!(p1.cols(), n);
        let p2 = dawa_partition(&k, k.root(), 0.25, &DawaOptions::new(0.5)).unwrap();
        prop_assert!(p2.is_partition());
        prop_assert!((k.budget_spent() - 0.5).abs() < 1e-9);
    }

    /// Noise scales with transformation stability: measuring through a
    /// c-stable linear map costs c·ε at the root.
    #[test]
    fn stability_scales_budget(c in 1.0f64..4.0, seed in 0u64..1000) {
        let k = ProtectedKernel::init_from_vector(vec![1.0; 8], 10.0, seed);
        let m = Matrix::scaled(c, Matrix::identity(8));
        let t = k.transform_linear(k.root(), &m).unwrap();
        k.vector_laplace(t, &Matrix::identity(8), 1.0).unwrap();
        prop_assert!((k.budget_spent() - c).abs() < 1e-9);
    }
}

/// The same plan under the same seed yields identical outputs (determinism
/// is load-bearing for the experiment harness).
#[test]
fn determinism_end_to_end() {
    let run = || {
        let k = ProtectedKernel::init_from_vector(vec![5.0; 32], 1.0, 77);
        let p = dawa_partition(&k, k.root(), 0.25, &DawaOptions::new(0.75)).unwrap();
        let red = k.reduce_by_partition(k.root(), &p).unwrap();
        let len = k.vector_len(red).unwrap();
        k.vector_laplace(red, &Matrix::identity(len), 0.75).unwrap()
    };
    assert_eq!(run(), run());
}

/// Empirical ε check on the end-to-end mechanism: the probability ratio of
/// any noisy-count outcome between neighboring databases stays within
/// exp(ε) (coarse histogram test; catches gross calibration bugs).
#[test]
fn empirical_privacy_of_noisy_count() {
    let eps = 0.5;
    let trials = 60_000;
    let sample = |count: f64, seed_base: u64| -> Vec<f64> {
        (0..trials)
            .map(|i| {
                let k = ProtectedKernel::init_from_vector(vec![count], 1.0, seed_base + i);
                k.noisy_count(k.root(), eps).unwrap()
            })
            .collect()
    };
    let a = sample(100.0, 0);
    let b = sample(101.0, 1_000_000);
    // Bucket outcomes; compare log-ratios where both buckets are populated.
    let bucket = |v: f64| ((v - 95.0).clamp(0.0, 12.0)) as usize;
    let mut ha = [0.0f64; 13];
    let mut hb = [0.0f64; 13];
    for v in a {
        ha[bucket(v)] += 1.0;
    }
    for v in b {
        hb[bucket(v)] += 1.0;
    }
    for i in 0..13 {
        if ha[i] > 500.0 && hb[i] > 500.0 {
            let ratio = (ha[i] / hb[i]).ln().abs();
            assert!(
                ratio <= eps + 0.15,
                "bucket {i}: log ratio {ratio} exceeds eps {eps} (+slack)"
            );
        }
    }
}
