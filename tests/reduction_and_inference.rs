//! Property tests for the paper's analytical claims: lossless
//! workload-based reduction (Prop. 8.3), error monotonicity of reduction
//! (Thm. 8.4, spot-checked), and never-hurts inference (Thm. 5.3).

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::ops::inference::{least_squares, LsSolver};
use ektelo::core::ops::partition::{workload_based_partition, workload_reduction};
use ektelo::matrix::Matrix;
use proptest::prelude::*;

fn arb_range_workload(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec((0usize..n, 1usize..=n / 2), 1..12).prop_map(move |pairs| {
        let ranges: Vec<(usize, usize)> = pairs
            .into_iter()
            .map(|(lo, len)| {
                let lo = lo.min(n - 1);
                (lo, (lo + len).min(n).max(lo + 1))
            })
            .collect();
        Matrix::range_queries(n, ranges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Prop. 8.3: W x = W' x' for x' = P x, W' = W P⁺ — exactly, for any
    /// range workload and any data.
    #[test]
    fn reduction_is_lossless(
        w in arb_range_workload(24),
        x in prop::collection::vec(0.0f64..50.0, 24),
    ) {
        let (p, w_red) = workload_reduction(&w, 5);
        let x_red = p.matvec(&x);
        let full = w.matvec(&x);
        let red = w_red.matvec(&x_red);
        for (a, b) in full.iter().zip(&red) {
            prop_assert!((a - b).abs() < 1e-8, "lossless violated: {a} vs {b}");
        }
    }

    /// Algorithm 4 groups exactly the identical columns (verified against
    /// brute-force column comparison on the dense form).
    #[test]
    fn algorithm_4_matches_bruteforce(w in arb_range_workload(16)) {
        let p = workload_based_partition(&w, 9, 2);
        let d = w.to_dense();
        // Brute force: group columns by exact equality.
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let mut labels = Vec::new();
        for j in 0..16 {
            let col: Vec<f64> = (0..d.rows()).map(|i| d.get(i, j)).collect();
            let idx = seen.iter().position(|c| c == &col).unwrap_or_else(|| {
                seen.push(col.clone());
                seen.len() - 1
            });
            labels.push(idx);
        }
        prop_assert_eq!(p.rows(), seen.len(), "group count mismatch");
        // Same grouping structure: columns with equal labels must share a
        // group in P.
        let pd = p.to_dense();
        let group_of = |j: usize| (0..p.rows()).find(|&g| pd.get(g, j) == 1.0).unwrap();
        for a in 0..16 {
            for b in 0..16 {
                prop_assert_eq!(
                    labels[a] == labels[b],
                    group_of(a) == group_of(b),
                    "columns {} and {} grouped inconsistently", a, b
                );
            }
        }
    }

    /// Thm. 5.3 (analytic): adding measurements never increases the
    /// *expected* least-squares error `q (MᵀΛM)⁻¹ qᵀ` of any query, for
    /// random strategies and random extensions. Exact — no sampling noise.
    #[test]
    fn extra_measurements_never_hurt(
        q_coeffs in prop::collection::vec(-3.0f64..3.0, 6),
        extra_rows in prop::collection::vec(
            prop::collection::vec(-2.0f64..2.0, 6), 1..4),
        weight in 0.05f64..5.0,
    ) {
        use ektelo::matrix::DenseMatrix;
        use ektelo::solvers::{cholesky_factor, cholesky_solve};

        // Base strategy: identity with unit precision.
        let base = Matrix::identity(6);
        let extension = Matrix::scaled(
            weight,
            Matrix::dense(DenseMatrix::from_rows(extra_rows)),
        );
        let expected_error = |m: &Matrix| -> f64 {
            let mut g = m.gram_dense();
            for i in 0..6 {
                let v = g.get(i, i);
                g.set(i, i, v + 1e-12);
            }
            let l = cholesky_factor(&g).expect("PD gram");
            let sol = cholesky_solve(&l, &q_coeffs);
            q_coeffs.iter().zip(&sol).map(|(a, b)| a * b).sum()
        };
        let err_small = expected_error(&base);
        let err_big = expected_error(&Matrix::vstack(vec![base.clone(), extension]));
        prop_assert!(
            err_big <= err_small * (1.0 + 1e-9),
            "extra measurements increased expected error: {err_big} vs {err_small}"
        );
    }

    /// Thm. 8.4 (empirical): answering through the reduced domain is never
    /// worse than the same strategy on the original domain, for the
    /// identity strategy on a reducible workload.
    #[test]
    fn reduction_never_hurts_error(
        seed in 0u64..100,
    ) {
        // Workload of 4 wide blocks over 32 cells → reduction to ≤5 groups.
        let w = Matrix::range_queries(32, vec![(0, 8), (8, 16), (16, 24), (24, 32)]);
        let x_true: Vec<f64> = (0..32).map(|i| ((i * 7) % 13) as f64).collect();
        let (p, w_red) = workload_reduction(&w, 3);
        let trials = 50;
        let mut err_orig = 0.0;
        let mut err_red = 0.0;
        for t in 0..trials {
            let s = seed * 1000 + t;
            // Original: identity over 32 cells.
            let k = ProtectedKernel::init_from_vector(x_true.clone(), 1.0, s);
            k.vector_laplace(k.root(), &Matrix::identity(32), 1.0).unwrap();
            let xh = least_squares(&k.measurements(), LsSolver::Direct);
            let t1 = w.matvec(&x_true);
            let e1 = w.matvec(&xh);
            err_orig += t1.iter().zip(&e1).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();

            // Reduced: identity over the groups.
            let k = ProtectedKernel::init_from_vector(x_true.clone(), 1.0, s + 500_000);
            let red = k.reduce_by_partition(k.root(), &p).unwrap();
            let g = k.vector_len(red).unwrap();
            k.vector_laplace(red, &Matrix::identity(g), 1.0).unwrap();
            let xh = least_squares(&k.measurements(), LsSolver::Direct);
            let e2 = w.matvec(&xh);
            err_red += t1.iter().zip(&e2).map(|(a, b)| (a - b) * (a - b)).sum::<f64>();
        }
        let _ = w_red;
        prop_assert!(
            err_red <= err_orig,
            "reduction increased error: {err_red} vs {err_orig}"
        );
    }
}
