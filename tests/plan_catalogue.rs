//! End-to-end smoke-and-shape tests over the complete plan catalogue of
//! Fig. 2: every plan runs on a realistic histogram, spends exactly its
//! budget, and produces a finite estimate of the right dimension.

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::SourceVar;
use ektelo::data::generators::{gauss_blobs_2d, shape_1d, Shape1D};
use ektelo::data::workloads::random_range;
use ektelo::matrix::Matrix;
use ektelo::plans::baseline::*;
use ektelo::plans::data_aware::*;
use ektelo::plans::grids::*;
use ektelo::plans::mwem::*;
use ektelo::plans::striped::*;
use ektelo::plans::util::{kernel_for_histogram, PlanResult};

fn check(out: PlanResult, k: &ProtectedKernel, n: usize, eps: f64, name: &str) {
    let out = out.unwrap_or_else(|e| panic!("{name} failed: {e}"));
    assert_eq!(out.x_hat.len(), n, "{name}: wrong estimate length");
    assert!(
        out.x_hat.iter().all(|v| v.is_finite()),
        "{name}: non-finite estimate"
    );
    assert!(
        (k.budget_spent() - eps).abs() < 1e-9,
        "{name}: spent {} of {eps}",
        k.budget_spent()
    );
}

#[test]
fn all_1d_plans_run_and_spend_exactly() {
    let n = 256;
    let x = shape_1d(Shape1D::Bimodal, n, 50_000.0, 3);
    let w = random_range(n, 64, 4);
    let eps = 1.0;
    let total: f64 = x.iter().sum();
    let mwem_opts = MwemOptions {
        rounds: 4,
        total,
        mw_iterations: 20,
    };

    type Named = (
        &'static str,
        Box<dyn Fn(&ProtectedKernel, SourceVar) -> PlanResult>,
    );
    let w2 = w.clone();
    let plans: Vec<Named> = vec![
        ("1 identity", Box::new(move |k, x| plan_identity(k, x, eps))),
        ("2 privelet", Box::new(move |k, x| plan_privelet(k, x, eps))),
        ("3 h2", Box::new(move |k, x| plan_h2(k, x, eps))),
        ("4 hb", Box::new(move |k, x| plan_hb(k, x, eps))),
        ("5 greedy-h", {
            let w = w.clone();
            Box::new(move |k, x| plan_greedy_h(k, x, &w, eps))
        }),
        ("6 uniform", Box::new(move |k, x| plan_uniform(k, x, eps))),
        ("7 mwem", {
            let w = w.clone();
            let o = mwem_opts.clone();
            Box::new(move |k, x| plan_mwem(k, x, &w, eps, &o))
        }),
        ("8 ahp", Box::new(move |k, x| plan_ahp(k, x, eps, 0.5))),
        ("9 dawa", {
            let w = w.clone();
            Box::new(move |k, x| plan_dawa(k, x, &w, eps, 0.25))
        }),
        ("13 hdmm", {
            let w = w.clone();
            Box::new(move |k, x| plan_hdmm(k, x, &w, eps))
        }),
        ("18 mwem-b", {
            let w = w.clone();
            let o = mwem_opts.clone();
            Box::new(move |k, x| plan_mwem_variant_b(k, x, &w, eps, &o))
        }),
        ("19 mwem-c", {
            let w = w.clone();
            let o = mwem_opts.clone();
            Box::new(move |k, x| plan_mwem_variant_c(k, x, &w, eps, &o))
        }),
        ("20 mwem-d", {
            let o = mwem_opts.clone();
            Box::new(move |k, x| plan_mwem_variant_d(k, x, &w2, eps, &o))
        }),
    ];
    for (name, plan) in plans {
        let (k, root) = kernel_for_histogram(&x, eps, 42);
        check(plan(&k, root), &k, n, eps, name);
    }
}

#[test]
fn all_2d_plans_run_and_spend_exactly() {
    let (r, c) = (32, 32);
    let x = gauss_blobs_2d(r, c, 3, 100_000.0, 5);
    let eps = 0.5;
    let (k, root) = kernel_for_histogram(&x, eps, 1);
    check(
        plan_quad_tree(&k, root, (r, c), eps),
        &k,
        r * c,
        eps,
        "10 quadtree",
    );
    let (k, root) = kernel_for_histogram(&x, eps, 2);
    check(
        plan_uniform_grid(&k, root, (r, c), 1e5, eps),
        &k,
        r * c,
        eps,
        "11 uniform-grid",
    );
    let (k, root) = kernel_for_histogram(&x, eps, 3);
    check(
        plan_adaptive_grid(&k, root, (r, c), 1e5, eps),
        &k,
        r * c,
        eps,
        "12 adaptive-grid",
    );
}

#[test]
fn all_striped_plans_run_and_spend_exactly() {
    let sizes = [64usize, 3, 2];
    let n: usize = sizes.iter().product();
    let x = shape_1d(Shape1D::IncomeLike, n, 30_000.0, 6);
    let eps = 0.8;
    let (k, root) = kernel_for_histogram(&x, eps, 1);
    check(
        plan_hb_striped(&k, root, &sizes, 0, eps),
        &k,
        n,
        eps,
        "15 hb-striped",
    );
    let (k, root) = kernel_for_histogram(&x, eps, 2);
    check(
        plan_dawa_striped(&k, root, &sizes, 0, &[(0, 32)], eps, 0.25),
        &k,
        n,
        eps,
        "14 dawa-striped",
    );
    let (k, root) = kernel_for_histogram(&x, eps, 3);
    check(
        plan_hb_striped_kron(&k, root, &sizes, 0, eps),
        &k,
        n,
        eps,
        "16 hb-striped-kron",
    );
}

/// Two plans sharing one kernel compose sequentially and the second fails
/// cleanly once the budget runs dry.
#[test]
fn plans_compose_on_a_shared_kernel() {
    let x = shape_1d(Shape1D::Gaussian, 64, 5_000.0, 7);
    let (k, root) = kernel_for_histogram(&x, 1.0, 9);
    plan_identity(&k, root, 0.6).unwrap();
    plan_h2(&k, root, 0.4).unwrap();
    assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    assert!(plan_uniform(&k, root, 0.05).is_err());
    // Inference can still combine BOTH plans' measurements (Theorem 5.3:
    // more information never hurts).
    let all = k.measurements();
    assert!(all.len() >= 2);
}

/// Workload error is finite and beats the trivial zero-estimate for every
/// data-independent plan at a generous budget.
#[test]
fn estimates_beat_the_zero_baseline() {
    let n = 128;
    let x = shape_1d(Shape1D::Zipf, n, 100_000.0, 8);
    let w = Matrix::prefix(n);
    let truth = w.matvec(&x);
    let zero_err: f64 = truth.iter().map(|t| t * t).sum::<f64>().sqrt();
    for seed in 0..3 {
        let (k, root) = kernel_for_histogram(&x, 1.0, seed);
        let out = plan_hb(&k, root, 1.0).unwrap();
        let est = w.matvec(&out.x_hat);
        let err: f64 = truth
            .iter()
            .zip(&est)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(
            err < zero_err / 10.0,
            "plan barely beats zero estimate: {err} vs {zero_err}"
        );
    }
}
