//! A miniature end-to-end census pipeline through the public façade:
//! relational transformations → vectorize → striped measurement → global
//! inference → workload answers, with the full privacy ledger checked.

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::ops::inference::{least_squares, LsSolver};
use ektelo::data::generators::census_cps_sized;
use ektelo::data::workloads::{all_k_way_marginals, marginal};
use ektelo::data::Predicate;
use ektelo::plans::striped::plan_hb_striped_kron;

#[test]
fn census_pipeline_marginals() {
    // Shrink income to keep the test fast: project it away entirely and
    // work over the demographic attributes (5·7·4·2 = 280 cells).
    let table = census_cps_sized(20_000, 3);
    let truth_table = table.select(&["age", "marital", "race", "gender"]);
    let x_true = ektelo::data::vectorize(&truth_table);

    let kernel = ProtectedKernel::init(table, 1.0, 17);
    let demo = kernel
        .transform_select(kernel.root(), &["age", "marital", "race", "gender"])
        .unwrap();
    let x = kernel.vectorize(demo).unwrap();
    let sizes = kernel.schema(demo).unwrap().sizes();
    assert_eq!(sizes.iter().product::<usize>(), 280);

    // Striped hierarchical measurement along age.
    let out = plan_hb_striped_kron(&kernel, x, &sizes, 0, 1.0).unwrap();
    assert!((kernel.budget_spent() - 1.0).abs() < 1e-9);

    // All 2-way marginals must be accurate to within a few records/query.
    let w = all_k_way_marginals(&sizes, 2);
    let t = w.matvec(&x_true);
    let e = w.matvec(&out.x_hat);
    let rmse = (t
        .iter()
        .zip(&e)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / t.len() as f64)
        .sqrt();
    assert!(rmse < 60.0, "2-way marginal rmse {rmse}");

    // The gender marginal (2 cells over 20k records) should be tight.
    let wg = marginal(&sizes, &[false, false, false, true]);
    let tg = wg.matvec(&x_true);
    let eg = wg.matvec(&out.x_hat);
    for (a, b) in tg.iter().zip(&eg) {
        assert!((a - b).abs() / a < 0.05, "gender marginal off: {a} vs {b}");
    }
}

#[test]
fn filtered_subpopulation_analysis() {
    // The Algorithm-1 idiom over census data: filter → select → vectorize
    // → measure. The filter is a Private operator (free); only the
    // measurement charges.
    let table = census_cps_sized(10_000, 5);
    let kernel = ProtectedKernel::init(table, 0.5, 23);
    let married = kernel
        .transform_where(kernel.root(), &Predicate::eq("marital", 1))
        .unwrap();
    let by_age = kernel.transform_select(married, &["age"]).unwrap();
    let x = kernel.vectorize(by_age).unwrap();
    assert_eq!(kernel.vector_len(x).unwrap(), 5);
    let y = kernel
        .vector_laplace(x, &ektelo::matrix::Matrix::identity(5), 0.5)
        .unwrap();
    assert!((kernel.budget_spent() - 0.5).abs() < 1e-9);
    // Sanity: most married heads-of-household are not in the youngest
    // bucket (the generator makes marriage rise with age).
    let est = least_squares(&kernel.measurements(), LsSolver::Iterative);
    // Identity measurements make LS a pass-through, up to iterative-solver
    // rounding in the last ulp.
    assert_eq!(est.len(), y.len());
    for (e, yi) in est.iter().zip(&y) {
        assert!(
            (e - yi).abs() < 1e-9,
            "LS on identity should return y: {est:?} vs {y:?}"
        );
    }
    let total: f64 = est.iter().sum();
    assert!(
        est[0] < total / 3.0,
        "young bucket implausibly large: {est:?}"
    );
}

#[test]
fn group_by_costs_double_budget() {
    // GroupBy is 2-stable: measuring its output at ε charges 2ε.
    let table = census_cps_sized(1_000, 6);
    let kernel = ProtectedKernel::init(table, 1.0, 29);
    let groups = kernel
        .transform_group_by(kernel.root(), &["marital", "gender"])
        .unwrap();
    kernel.noisy_count(groups, 0.25).unwrap();
    assert!((kernel.budget_spent() - 0.5).abs() < 1e-9);
}
