//! The Naive-Bayes case study (paper §9.3): training a private classifier
//! on credit-default data and comparing plan quality by AUC.
//!
//! Run: `cargo run --release --example naive_bayes`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::data::generators::credit_default_sized;
use ektelo::plans::naive_bayes::{
    auc, fold_indices, nb_unperturbed, plan_nb_identity, plan_nb_select_ls, plan_nb_workload_ls,
    score_table, train_test_split, NaiveBayesModel,
};

fn main() {
    let data = credit_default_sized(20_000, 11);
    let sizes = data.schema().sizes();
    let folds = fold_indices(data.num_rows(), 4, 3);
    let (train, test) = train_test_split(&data, &folds[0]);
    println!(
        "train: {} rows, test: {} rows, predictor domain: {}",
        train.num_rows(),
        test.num_rows(),
        sizes[1..].iter().product::<usize>()
    );

    // Non-private reference.
    let h = nb_unperturbed(&train);
    let model = NaiveBayesModel::fit(&h, &sizes[1..]);
    println!(
        "{:<22} AUC {:.3}",
        "Unperturbed",
        auc(&score_table(&model, &test))
    );

    for eps in [0.01, 0.1] {
        println!("--- eps = {eps} ---");
        for name in ["Identity", "WorkloadLS", "SelectLS (Alg. 8)"] {
            // Average over a few privacy draws.
            let mut total = 0.0;
            let reps = 3;
            for seed in 0..reps {
                let k = ProtectedKernel::init(train.clone(), eps, seed);
                let h = match name {
                    "Identity" => plan_nb_identity(&k, k.root(), eps),
                    "WorkloadLS" => plan_nb_workload_ls(&k, k.root(), eps),
                    _ => plan_nb_select_ls(&k, k.root(), eps),
                }
                .expect("plan");
                let m = NaiveBayesModel::fit(&h, &sizes[1..]);
                total += auc(&score_table(&m, &test));
            }
            println!("{name:<22} AUC {:.3}", total / reps as f64);
        }
    }
    println!("\n(Expected shape, as in the paper's Fig. 3: SelectLS and WorkloadLS approach the\n \
              unperturbed AUC as eps grows, while Identity trails; at tiny eps all collapse to ~0.5.)");
}
