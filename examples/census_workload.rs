//! The census case study (paper §9.2) in miniature: answering a workload
//! of income-prefix tabulations over a multi-dimensional domain with the
//! striped plans, and comparing against the Identity baseline.
//!
//! Also shows off the implicit-matrix machinery: the workload below has
//! hundreds of thousands of queries over a six-figure domain yet stores
//! no scalars at all (paper Example 7.3).
//!
//! Run: `cargo run --release --example census_workload`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::data::generators::census_cps_sized;
use ektelo::data::workloads::census_prefix_income;
use ektelo::data::{Schema, Table};
use ektelo::plans::baseline::plan_identity;
use ektelo::plans::striped::{plan_dawa_striped, plan_hb_striped_kron};

/// Coarsen income so the example runs in seconds (500 bins instead of
/// 5000; the full-scale run lives in `ektelo-bench --bin table5`).
fn rebin(t: &Table, bins: usize) -> Table {
    let sizes = t.schema().sizes();
    let factor = sizes[0].div_ceil(bins);
    let schema = Schema::from_sizes(&[
        ("income", bins),
        ("age", sizes[1]),
        ("marital", sizes[2]),
        ("race", sizes[3]),
        ("gender", sizes[4]),
    ]);
    let mut out = Table::empty(schema);
    for i in 0..t.num_rows() {
        let mut row = t.row(i);
        row[0] = (row[0] as usize / factor).min(bins - 1) as u32;
        out.push_row(&row);
    }
    out
}

fn main() {
    let table = rebin(&census_cps_sized(49_436, 7), 500);
    let sizes = table.schema().sizes();
    let domain: usize = sizes.iter().product();
    let x_true = ektelo::data::vectorize(&table);

    // The Census Bureau-style workload: every income-prefix count broken
    // down by any combination of fixed/any demographic attributes.
    let workload = census_prefix_income(&sizes);
    println!(
        "domain: {domain} cells; workload: {} queries stored in {} scalars",
        workload.rows(),
        workload.stored_scalars()
    );

    let eps = 0.5;
    let err = |x_hat: &[f64]| {
        let t = workload.matvec(&x_true);
        let e = workload.matvec(x_hat);
        (t.iter()
            .zip(&e)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / t.len() as f64)
            .sqrt()
    };

    // Identity baseline.
    let k = ProtectedKernel::init(table.clone(), eps, 1);
    let x = k.vectorize(k.root()).expect("vectorize");
    let id = plan_identity(&k, x, eps).expect("identity plan");
    println!("Identity      per-query RMSE: {:>8.2}", err(&id.x_hat));

    // HB-Striped (Kronecker form): hierarchical income measurements per
    // demographic stripe, expressed as one implicit matrix.
    let k = ProtectedKernel::init(table.clone(), eps, 2);
    let x = k.vectorize(k.root()).expect("vectorize");
    let hbk = plan_hb_striped_kron(&k, x, &sizes, 0, eps).expect("hb striped kron");
    println!("HB-Striped(k) per-query RMSE: {:>8.2}", err(&hbk.x_hat));

    // DAWA-Striped: each stripe gets its own data-adaptive bucketing —
    // parallel composition makes all 280 stripes cost one ε.
    let k = ProtectedKernel::init(table, eps, 3);
    let x = k.vectorize(k.root()).expect("vectorize");
    let ranges: Vec<(usize, usize)> = (1..=10).map(|i| (0, i * sizes[0] / 10)).collect();
    let dawa = plan_dawa_striped(&k, x, &sizes, 0, &ranges, eps, 0.25).expect("dawa striped");
    println!("DAWA-Striped  per-query RMSE: {:>8.2}", err(&dawa.x_hat));
    println!(
        "\nbudget spent by the last plan: {:.3} (cap {eps})",
        k.budget_spent()
    );
}
