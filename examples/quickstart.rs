//! Quickstart: your first differentially-private EKTELO plan.
//!
//! We build a small table, initialize the protected kernel with a privacy
//! budget, and run the classic *select → measure → infer* pipeline to
//! release a histogram — then show what happens when the budget runs out.
//!
//! Run: `cargo run --release --example quickstart`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::ops::inference::{least_squares, LsSolver};
use ektelo::core::ops::selection;
use ektelo::data::{Predicate, Schema, Table};

fn main() {
    // A toy relation: ages of 1000 people, bucketed into 16 groups.
    let schema = Schema::from_sizes(&[("age", 16)]);
    let mut table = Table::empty(schema);
    for i in 0..1000u32 {
        // A bimodal population: young adults and retirees.
        let age = if i % 3 == 0 {
            12 + (i % 4)
        } else {
            2 + (i % 5)
        };
        table.push_row(&[age.min(15)]);
    }

    // The protected kernel encloses the table. Everything below interacts
    // with it only through operators; total privacy loss is capped at 1.0.
    let kernel = ProtectedKernel::init(table, 1.0, /* rng seed */ 42);

    // Private operators: filter (nothing here), vectorize to a histogram.
    let everyone = kernel
        .transform_where(kernel.root(), &Predicate::True)
        .expect("filter");
    let x = kernel.vectorize(everyone).expect("vectorize");
    let n = kernel.vector_len(x).expect("len");
    println!("domain size: {n} cells, budget: {}", kernel.eps_total());

    // Query selection: the H2 hierarchical strategy (good for ranges).
    let strategy = selection::h2(n);
    println!(
        "strategy: {} queries, sensitivity {}",
        strategy.rows(),
        strategy.l1_sensitivity()
    );

    // Measurement: Vector Laplace auto-calibrates noise to the strategy's
    // sensitivity and charges the budget (Algorithm 2 of the paper).
    kernel.vector_laplace(x, &strategy, 0.8).expect("measure");
    println!(
        "budget spent: {:.2}, remaining: {:.2}",
        kernel.budget_spent(),
        kernel.budget_remaining()
    );

    // Inference (free): least squares over everything measured so far.
    let x_hat = least_squares(&kernel.measurements(), LsSolver::Iterative);

    // Answer an arbitrary range query from the estimate (post-processing).
    let young_adults: f64 = x_hat[2..7].iter().sum();
    println!("estimated people aged in buckets [2, 7): {young_adults:.1} (true: ~667)");

    // The kernel refuses to exceed the budget — and the refusal itself
    // leaks nothing.
    match kernel.vector_laplace(x, &strategy, 0.5) {
        Err(e) => println!("over-budget request correctly rejected: {e}"),
        Ok(_) => unreachable!("kernel must enforce the budget"),
    }
}
