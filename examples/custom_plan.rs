//! Writing a *new* algorithm by recombining operators — the paper's core
//! pitch (§2.2 "Flexibility", §9.1).
//!
//! We compose a custom two-phase plan that exists in no paper: a coarse
//! wavelet pass to find where the mass lives, then a data-adaptive DAWA
//! refinement measured only over the heavy region, with one global least
//! squares at the end. No privacy proof needed — the kernel accounts for
//! every step.
//!
//! Run: `cargo run --release --example custom_plan`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::ops::inference::{least_squares, LsSolver};
use ektelo::core::ops::partition::{dawa_partition, DawaOptions};
use ektelo::core::ops::selection::greedy_h;
use ektelo::data::generators::{shape_1d, Shape1D};
use ektelo::matrix::{partition_from_labels, Matrix};

fn main() {
    let n = 1024;
    let x = shape_1d(Shape1D::DenseRegion, n, 200_000.0, 5);
    let eps = 0.2;

    let kernel = ProtectedKernel::init_from_vector(x.clone(), eps, 99);
    let root = kernel.root();

    // Phase 1 (ε/4): coarse wavelet sketch of the whole domain.
    let y1 = kernel
        .vector_laplace(root, &Matrix::wavelet(n), eps / 4.0)
        .expect("phase 1");
    let sketch = least_squares(&kernel.measurements(), LsSolver::Iterative);
    let _ = y1;

    // Client-space logic (free): find the heavy half of the domain from
    // the noisy sketch. Arbitrary code is fine — it only sees DP outputs.
    let block = n / 8;
    let heavy: Vec<bool> = (0..n / block)
        .map(|b| sketch[b * block..(b + 1) * block].iter().sum::<f64>() > 1000.0)
        .collect();
    let heavy_cells: usize = heavy.iter().filter(|&&h| h).count() * block;
    println!("phase 1 flagged {heavy_cells} of {n} cells as heavy");

    // Phase 2 (3ε/4): split heavy vs light cells; DAWA-refine the heavy
    // part, a single total for the light part — parallel composition makes
    // the two sides share the phase budget.
    let labels: Vec<usize> = (0..n).map(|j| usize::from(heavy[j / block])).collect();
    let split = partition_from_labels(2, &labels);
    let parts = kernel.split_by_partition(root, &split).expect("split");
    let (light, heavy_part) = (parts[0], parts[1]);

    kernel
        .vector_laplace(
            light,
            &Matrix::total(kernel.vector_len(light).unwrap()),
            eps * 0.75,
        )
        .expect("light total");
    let p = dawa_partition(
        &kernel,
        heavy_part,
        eps * 0.25,
        &DawaOptions::new(eps * 0.5),
    )
    .expect("dawa");
    let buckets = kernel.reduce_by_partition(heavy_part, &p).expect("reduce");
    kernel
        .vector_laplace(
            buckets,
            &greedy_h(kernel.vector_len(buckets).unwrap(), &[]),
            eps * 0.5,
        )
        .expect("heavy measure");

    // Global inference over *all* measurements from both phases.
    let x_hat = least_squares(&kernel.measurements(), LsSolver::Iterative);

    let rmse = (x
        .iter()
        .zip(&x_hat)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / n as f64)
        .sqrt();
    println!("custom plan RMSE: {rmse:.2}");
    println!(
        "budget spent: {:.3} of {eps} (phase 2's split sides composed in parallel)",
        kernel.budget_spent()
    );
    assert!(kernel.budget_spent() <= eps + 1e-9);
}
