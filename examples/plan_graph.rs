//! Plans as data: the typed operator-graph API.
//!
//! Builds three plan specs through the typed builder, inspects them —
//! Fig. 2 signature strings and statically pre-accounted ε — *before*
//! touching any protected data, executes them against a kernel session,
//! and shows an over-budget spec being rejected with zero kernel
//! side effects.
//!
//! Run: `cargo run --release --example plan_graph`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::core::ops::graph::{
    MwemLoopOp, MwemRoundInference, PlanBuilder, PlanExecutor, PlanSpec,
};
use ektelo::core::ops::inference::LsSolver;
use ektelo::data::generators::{shape_1d, Shape1D};
use ektelo::matrix::Matrix;

fn identity_spec(eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = b.select_identity(x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn hb_striped_spec(sizes: &[usize], attr: usize, eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(sizes, attr);
    let stripes = b.transform_split(x, p);
    let s = b.select_hb_shared(stripes);
    b.measure_laplace_batch_shared(stripes, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn mwem_spec(workload: Matrix, rounds: usize, eps: f64, total: f64) -> PlanSpec {
    let per_round = eps / (2.0 * rounds as f64);
    let mut b = PlanBuilder::new();
    let x = b.input();
    let e = b.mwem_loop(MwemLoopOp {
        input: x,
        workload,
        rounds,
        eps_select: per_round,
        eps_measure: per_round,
        augment: false,
        inference: MwemRoundInference::MultWeights,
        total,
        mw_iterations: 25,
    });
    b.finish(e)
}

fn main() {
    let n = 256;
    let x = shape_1d(Shape1D::Bimodal, n, 50_000.0, 11);
    let total: f64 = x.iter().sum();

    // --- Inspect plans before any data is touched -------------------
    let specs = vec![
        identity_spec(0.4),
        mwem_spec(Matrix::prefix(n), 8, 0.4, total),
    ];
    println!("plan catalogue (no kernel involved yet):");
    for spec in &specs {
        let cost = spec.pre_account().expect("well-formed spec");
        println!(
            "  {:<22}  pre-accounted ε = {:.3}  ({} nodes)",
            spec.signature(),
            cost.total,
            spec.nodes().len()
        );
    }
    let striped = hb_striped_spec(&[64, 4], 0, 0.4);
    println!(
        "  {:<22}  pre-accounted ε = {:.3}  (4 stripes cost one ε: parallel composition)",
        striped.signature(),
        striped.pre_account().unwrap().total
    );

    // --- Execute against a session ---------------------------------
    let kernel = ProtectedKernel::init_from_vector(x.clone(), 1.0, 7);
    for spec in &specs {
        let report = PlanExecutor::new(&kernel)
            .run(spec, kernel.root())
            .expect("within budget");
        let rmse = (x
            .iter()
            .zip(&report.x_hat)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        // On a fresh session the two are equal bit for bit; with prior
        // spending on the ledger the subtraction can differ in the last
        // ulp (see `ExecReport::eps_charged`).
        assert!((report.eps_charged - report.eps_pre_accounted).abs() < 1e-12);
        println!(
            "ran {:<22}  charged ε = {:.3} (matches pre-accounting)  rmse {rmse:.2}",
            report.signature, report.eps_charged,
        );
    }

    // --- Over-budget specs never touch the data ---------------------
    let history_before = kernel.measurement_count();
    let greedy = identity_spec(0.5); // only 0.2 of ε remains
    match PlanExecutor::new(&kernel).run(&greedy, kernel.root()) {
        Err(e) => println!("over-budget spec rejected up front: {e}"),
        Ok(_) => unreachable!("0.5 > remaining budget"),
    }
    assert_eq!(
        kernel.measurement_count(),
        history_before,
        "rejection leaves zero new kernel history entries"
    );
    println!(
        "kernel history unchanged ({} measurements), ε spent {:.3} of 1.0",
        kernel.measurement_count(),
        kernel.budget_spent()
    );
}
