//! The paper's running example (Algorithm 1): a differentially-private
//! empirical CDF of salary for males in their 30s.
//!
//! Demonstrates the full operator vocabulary: table transformations
//! (Where, Select), vectorization, data-adaptive partition selection
//! (AHP), domain reduction, calibrated measurement, and NNLS inference —
//! all under one privacy budget enforced by the kernel.
//!
//! Run: `cargo run --release --example cdf_estimation`

use ektelo::core::kernel::ProtectedKernel;
use ektelo::data::{Predicate, Schema, Table};
use ektelo::plans::cdf::cdf_estimator;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    // Synthesize the paper's example schema [age, sex, salary] with salary
    // correlated with age; salary is discretized into 64 bands.
    let mut rng = StdRng::seed_from_u64(7);
    let schema = Schema::from_sizes(&[("age", 100), ("sex", 2), ("salary", 64)]);
    let mut table = Table::empty(schema);
    for _ in 0..30_000 {
        let age = rng.random_range(18..90u32);
        let sex = rng.random_range(0..2u32);
        let salary = ((age.min(60) / 3) + rng.random_range(0..24u32)).min(63);
        table.push_row(&[age, sex, salary]);
    }

    // True CDF for comparison (the analyst cannot see this!).
    let pred = Predicate::eq("sex", 0).and(Predicate::range("age", 30, 40));
    let group = table.filter(&pred);
    let mut true_cdf = vec![0.0f64; 64];
    for i in 0..group.num_rows() {
        let s = group.row(i)[2] as usize;
        for c in true_cdf.iter_mut().skip(s) {
            *c += 1.0;
        }
    }

    let kernel = ProtectedKernel::init(table, 1.0, 2024);
    let cdf = cdf_estimator(&kernel, kernel.root(), &pred, "salary", 1.0).expect("plan");

    println!("private CDF of salary (males in their 30s), eps = 1.0");
    println!("{:>8} {:>12} {:>12}", "band", "true", "private");
    for band in (7..64).step_by(8) {
        println!("{band:>8} {:>12.0} {:>12.1}", true_cdf[band], cdf[band]);
    }
    let max_err = true_cdf
        .iter()
        .zip(&cdf)
        .map(|(t, e)| (t - e).abs())
        .fold(0.0f64, f64::max);
    println!(
        "\nmax absolute CDF error: {max_err:.1} of {} group members",
        group.num_rows()
    );
    println!(
        "budget spent: {:.2} (cap {:.2})",
        kernel.budget_spent(),
        kernel.eps_total()
    );
}
