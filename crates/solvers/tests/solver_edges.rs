//! Edge cases and cross-solver consistency for the numerical substrate.

use ektelo_matrix::{CsrMatrix, Matrix};
use ektelo_solvers::{
    cgls, direct_least_squares, lsqr, mult_weights, nnls, spectral_norm_estimate, LsqrOptions,
    MwOptions, NnlsOptions,
};
use proptest::prelude::*;

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[test]
fn wide_underdetermined_system_gets_min_norm_solution() {
    // One equation, many unknowns: x₁ + x₂ + x₃ + x₄ = 8. LSQR from zero
    // converges to the minimum-norm solution (uniform split).
    let a = Matrix::total(4);
    let r = lsqr(&a, &[8.0], &LsqrOptions::default());
    for xi in &r.x {
        assert!((xi - 2.0).abs() < 1e-8, "{:?}", r.x);
    }
    let c = cgls(&a, &[8.0], &LsqrOptions::default());
    for xi in &c.x {
        assert!((xi - 2.0).abs() < 1e-8);
    }
}

#[test]
fn single_cell_domain() {
    let a = Matrix::identity(1);
    assert!((lsqr(&a, &[3.5], &LsqrOptions::default()).x[0] - 3.5).abs() < 1e-12);
    assert!((nnls(&a, &[-3.5], &NnlsOptions::default())[0]).abs() < 1e-9);
    assert!((spectral_norm_estimate(&a, 10) - 1.0).abs() < 0.05);
}

#[test]
fn nnls_all_negative_rhs_is_zero() {
    let a = Matrix::vstack(vec![Matrix::identity(5), Matrix::total(5)]);
    let y = vec![-1.0; 6];
    let x = nnls(&a, &y, &NnlsOptions::default());
    assert!(norm(&x) < 1e-8, "{x:?}");
}

#[test]
fn mw_zero_iterations_returns_normalized_start() {
    let m = Matrix::identity(3);
    let x = mult_weights(
        &m,
        &[1.0, 2.0, 3.0],
        &[1.0, 1.0, 2.0],
        &MwOptions {
            iterations: 0,
            total: 8.0,
        },
    );
    assert!((x.iter().sum::<f64>() - 8.0).abs() < 1e-12);
    assert!(
        (x[2] / x[0] - 2.0).abs() < 1e-12,
        "relative shape preserved"
    );
}

#[test]
fn iteration_cap_is_respected() {
    let a = Matrix::vstack(vec![Matrix::prefix(64), Matrix::identity(64)]);
    let b: Vec<f64> = (0..a.rows()).map(|i| (i % 7) as f64).collect();
    let r = lsqr(
        &a,
        &b,
        &LsqrOptions {
            max_iters: 3,
            atol: 0.0,
        },
    );
    assert!(r.iterations <= 3);
}

#[test]
fn direct_solver_handles_rectangular_tall_systems() {
    let a = Matrix::vstack(vec![Matrix::identity(3); 4]); // 12×3
    let mut b = Vec::new();
    for _ in 0..4 {
        b.extend_from_slice(&[1.0, 2.0, 3.0]);
    }
    let x = direct_least_squares(&a, &b);
    for (xi, e) in x.iter().zip(&[1.0, 2.0, 3.0]) {
        assert!((xi - e).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// LSQR, CGLS, and the direct solver agree on random full-rank
    /// systems.
    #[test]
    fn three_solvers_agree(
        diag in prop::collection::vec(0.5f64..4.0, 4..10),
        rhs_scale in -5.0f64..5.0,
    ) {
        let n = diag.len();
        let a = Matrix::vstack(vec![
            Matrix::diagonal(diag),
            Matrix::total(n),
        ]);
        let b: Vec<f64> = (0..a.rows()).map(|i| rhs_scale * ((i % 3) as f64 - 1.0)).collect();
        let x1 = lsqr(&a, &b, &LsqrOptions::default()).x;
        let x2 = cgls(&a, &b, &LsqrOptions::default()).x;
        let x3 = direct_least_squares(&a, &b);
        for i in 0..n {
            prop_assert!((x1[i] - x2[i]).abs() < 1e-5, "lsqr vs cgls at {i}");
            prop_assert!((x1[i] - x3[i]).abs() < 1e-5, "lsqr vs direct at {i}");
        }
    }

    /// The LS residual is orthogonal to the column space: ‖Aᵀr‖ ≈ 0.
    #[test]
    fn normal_equations_hold(b in prop::collection::vec(-10.0f64..10.0, 12)) {
        let a = Matrix::vstack(vec![Matrix::identity(8), Matrix::range_queries(8, vec![(0,4),(4,8),(0,8),(2,6)])]);
        let r = lsqr(&a, &b, &LsqrOptions::default());
        let res: Vec<f64> = a.matvec(&r.x).iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.rmatvec(&res);
        prop_assert!(norm(&grad) < 1e-5 * (1.0 + norm(&b)), "‖Aᵀr‖ = {}", norm(&grad));
    }

    /// NNLS output is always feasible and never worse than the zero
    /// vector.
    #[test]
    fn nnls_feasible_and_useful(b in prop::collection::vec(-10.0f64..10.0, 8)) {
        let a = Matrix::vstack(vec![Matrix::identity(4), Matrix::identity(4)]);
        let x = nnls(&a, &b, &NnlsOptions::default());
        prop_assert!(x.iter().all(|&v| v >= 0.0));
        let res_x: Vec<f64> = a.matvec(&x).iter().zip(&b).map(|(p, q)| p - q).collect();
        prop_assert!(norm(&res_x) <= norm(&b) + 1e-9);
    }

    /// Spectral-norm estimate is a lower bound (within tolerance) of the
    /// true largest singular value for diagonal matrices.
    #[test]
    fn power_iteration_bounds(diag in prop::collection::vec(0.1f64..9.0, 2..12)) {
        let true_norm = diag.iter().cloned().fold(0.0, f64::max);
        let a = Matrix::diagonal(diag);
        let est = spectral_norm_estimate(&a, 80);
        prop_assert!(est <= true_norm * 1.02 + 1e-9, "overshoot: {est} vs {true_norm}");
        prop_assert!(est >= true_norm * 0.8, "undershoot: {est} vs {true_norm}");
    }
}

#[test]
fn sparse_zero_rows_do_not_break_solvers() {
    // A strategy with an all-zero row (degenerate but representable).
    let m = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 1, 1.0)]);
    let a = Matrix::sparse(m);
    let r = lsqr(&a, &[5.0, 0.0, 7.0], &LsqrOptions::default());
    assert!((r.x[0] - 5.0).abs() < 1e-9);
    assert!((r.x[1] - 7.0).abs() < 1e-9);
}
