//! Empirical proof of the allocation-free solver contract (ISSUE 1
//! acceptance, extended by ISSUE 2): running a solver for more iterations
//! must not perform a single additional heap allocation — every
//! per-iteration buffer comes from the one-time setup (solution/direction
//! vectors plus one [`ektelo_matrix::Workspace`] arena) — **and** must not
//! re-run the planning pass over the combinator tree: plans live in the
//! process-wide cache (ISSUE 3), so after the warm-up solve every later
//! solve — fresh workspace and all — runs zero planning passes.
//!
//! Verified with a counting global allocator plus the engine's
//! planning-pass counter: both are sampled around a short solve and a long
//! solve on the same system; the differences must be exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ektelo_matrix::{plan_builds, Matrix};
use ektelo_solvers::{cgls, lsqr, mult_weights, nnls, LsqrOptions, MwOptions, NnlsOptions};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed atomic counter —
// every layout/pointer contract required of a `GlobalAlloc` is upheld by
// forwarding the arguments unchanged, and the counter has no effect on
// allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` (alloc/realloc above
        // forward to it) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` with `layout`; `new_size` is
        // the caller's requested size, unmodified.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A combinator-tree strategy exercising Product, Union, Scaled and the
/// implicit leaves — every scratch-hungry evaluation path.
fn strategy(n: usize) -> Matrix {
    Matrix::vstack(vec![
        Matrix::identity(n),
        Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        Matrix::scaled(0.5, Matrix::suffix(n)),
        Matrix::range_queries(n, (0..n / 2).map(|i| (2 * i, 2 * i + 2)).collect()),
    ])
}

/// Noisy, inconsistent right-hand side so iterative solvers never converge
/// exactly (which would truncate the iteration count).
fn rhs(rows: usize) -> Vec<f64> {
    (0..rows)
        .map(|i| ((i * 7919) % 101) as f64 - 50.0)
        .collect()
}

/// The allocation counter and planning counter are process-global, but the
/// test harness runs `#[test]` fns on concurrent threads — a sibling
/// test's setup allocations would land inside this test's counting window
/// and flake the exact-equality assertions. Every counting test holds this
/// gate for its whole body so windows never overlap.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` several times and returns the minimum `(allocations, planning
/// passes)` observed over the repetitions. The gate above serializes test
/// bodies, but the harness's own bookkeeping (spawning the next blocked
/// test thread, printing results) can still allocate on other threads
/// mid-window; that noise is strictly additive, so the minimum of a few
/// repetitions is the true count of `f` itself — while a genuine
/// per-iteration allocation inflates *every* repetition and still fails
/// the equality assertions.
fn count_both<F: FnMut()>(mut f: F) -> (u64, u64) {
    let mut best = (u64::MAX, u64::MAX);
    for _ in 0..3 {
        let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
        let plans_before = plan_builds();
        f();
        best.0 = best
            .0
            .min(ALLOCATIONS.load(Ordering::Relaxed) - allocs_before);
        best.1 = best.1.min(plan_builds() - plans_before);
    }
    best
}

#[test]
fn lsqr_inner_loop_is_allocation_free() {
    let _serial = serialized();
    let a = strategy(128);
    let b = rhs(a.rows());
    // Warm up once so lazily initialized runtime structures don't count.
    let _ = lsqr(
        &a,
        &b,
        &LsqrOptions {
            max_iters: 2,
            atol: 0.0,
        },
    );
    let (short, short_plans) = count_both(|| {
        lsqr(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 5,
                atol: 0.0,
            },
        );
    });
    let (long, long_plans) = count_both(|| {
        lsqr(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 50,
                atol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "lsqr allocates per iteration");
    assert!(long > 0, "setup should allocate the workspace once");
    // 45 extra iterations, zero extra planning passes — and since ISSUE 3
    // plans live in a process-wide cache, the warm-up solve already built
    // the system's plans, so later solves run *zero* planning passes (the
    // PR 2 engine rebuilt them once per solve in each fresh workspace).
    assert_eq!(
        short_plans, long_plans,
        "lsqr re-plans per iteration (expected zero planning passes per warm solve)"
    );
    assert_eq!(
        long_plans, 0,
        "warm solves must share the process-wide plans, not rebuild them"
    );
}

#[test]
fn cgls_inner_loop_is_allocation_free() {
    let _serial = serialized();
    let a = strategy(128);
    let b = rhs(a.rows());
    let _ = cgls(
        &a,
        &b,
        &LsqrOptions {
            max_iters: 2,
            atol: 0.0,
        },
    );
    let (short, short_plans) = count_both(|| {
        cgls(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 5,
                atol: 0.0,
            },
        );
    });
    let (long, long_plans) = count_both(|| {
        cgls(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 50,
                atol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "cgls allocates per iteration");
    assert_eq!(short_plans, long_plans, "cgls re-plans per iteration");
}

#[test]
fn nnls_inner_loop_is_allocation_free() {
    let _serial = serialized();
    let a = strategy(64);
    let b = rhs(a.rows());
    let _ = nnls(
        &a,
        &b,
        &NnlsOptions {
            max_iters: 2,
            tol: 0.0,
        },
    );
    let (short, short_plans) = count_both(|| {
        nnls(
            &a,
            &b,
            &NnlsOptions {
                max_iters: 5,
                tol: 0.0,
            },
        );
    });
    let (long, long_plans) = count_both(|| {
        nnls(
            &a,
            &b,
            &NnlsOptions {
                max_iters: 50,
                tol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "nnls allocates per iteration");
    assert_eq!(short_plans, long_plans, "nnls re-plans per iteration");
}

#[test]
fn mult_weights_inner_loop_is_allocation_free() {
    let _serial = serialized();
    let m = strategy(64);
    let y = rhs(m.rows());
    let x0 = vec![1.0; 64];
    let _ = mult_weights(
        &m,
        &y,
        &x0,
        &MwOptions {
            iterations: 2,
            total: 64.0,
        },
    );
    let (short, short_plans) = count_both(|| {
        mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 5,
                total: 64.0,
            },
        );
    });
    let (long, long_plans) = count_both(|| {
        mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 50,
                total: 64.0,
            },
        );
    });
    assert_eq!(short, long, "mult_weights allocates per iteration");
    assert_eq!(
        short_plans, long_plans,
        "mult_weights re-plans per iteration"
    );
}

#[test]
fn matvec_into_with_warm_workspace_is_allocation_free() {
    let _serial = serialized();
    let m = strategy(256);
    let x: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let mut out = vec![0.0; m.rows()];
    let mut back = vec![0.0; m.cols()];
    let mut ws = ektelo_matrix::Workspace::for_matrix(&m);
    m.matvec_into(&x, &mut out, &mut ws); // warm
    let (allocs, plans) = count_both(|| {
        for _ in 0..100 {
            m.matvec_into(&x, &mut out, &mut ws);
            m.rmatvec_into(&out, &mut back, &mut ws);
        }
    });
    assert_eq!(allocs, 0, "warm matvec_into/rmatvec_into must not allocate");
    assert_eq!(plans, 0, "warm matvec_into/rmatvec_into must not re-plan");
}
