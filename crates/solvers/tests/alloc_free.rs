//! Empirical proof of the allocation-free solver contract (ISSUE 1
//! acceptance): running a solver for more iterations must not perform a
//! single additional heap allocation — every per-iteration buffer comes
//! from the one-time setup (solution/direction vectors plus one
//! [`ektelo_matrix::Workspace`] arena).
//!
//! Verified with a counting global allocator: allocations are counted for
//! a short solve and a long solve on the same system; the difference must
//! be exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ektelo_matrix::Matrix;
use ektelo_solvers::{cgls, lsqr, mult_weights, nnls, LsqrOptions, MwOptions, NnlsOptions};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A combinator-tree strategy exercising Product, Union, Scaled and the
/// implicit leaves — every scratch-hungry evaluation path.
fn strategy(n: usize) -> Matrix {
    Matrix::vstack(vec![
        Matrix::identity(n),
        Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        Matrix::scaled(0.5, Matrix::suffix(n)),
        Matrix::range_queries(n, (0..n / 2).map(|i| (2 * i, 2 * i + 2)).collect()),
    ])
}

/// Noisy, inconsistent right-hand side so iterative solvers never converge
/// exactly (which would truncate the iteration count).
fn rhs(rows: usize) -> Vec<f64> {
    (0..rows)
        .map(|i| ((i * 7919) % 101) as f64 - 50.0)
        .collect()
}

fn count<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn lsqr_inner_loop_is_allocation_free() {
    let a = strategy(128);
    let b = rhs(a.rows());
    // Warm up once so lazily initialized runtime structures don't count.
    let _ = lsqr(
        &a,
        &b,
        &LsqrOptions {
            max_iters: 2,
            atol: 0.0,
        },
    );
    let short = count(|| {
        lsqr(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 5,
                atol: 0.0,
            },
        );
    });
    let long = count(|| {
        lsqr(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 50,
                atol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "lsqr allocates per iteration");
    assert!(long > 0, "setup should allocate the workspace once");
}

#[test]
fn cgls_inner_loop_is_allocation_free() {
    let a = strategy(128);
    let b = rhs(a.rows());
    let _ = cgls(
        &a,
        &b,
        &LsqrOptions {
            max_iters: 2,
            atol: 0.0,
        },
    );
    let short = count(|| {
        cgls(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 5,
                atol: 0.0,
            },
        );
    });
    let long = count(|| {
        cgls(
            &a,
            &b,
            &LsqrOptions {
                max_iters: 50,
                atol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "cgls allocates per iteration");
}

#[test]
fn nnls_inner_loop_is_allocation_free() {
    let a = strategy(64);
    let b = rhs(a.rows());
    let _ = nnls(
        &a,
        &b,
        &NnlsOptions {
            max_iters: 2,
            tol: 0.0,
        },
    );
    let short = count(|| {
        nnls(
            &a,
            &b,
            &NnlsOptions {
                max_iters: 5,
                tol: 0.0,
            },
        );
    });
    let long = count(|| {
        nnls(
            &a,
            &b,
            &NnlsOptions {
                max_iters: 50,
                tol: 0.0,
            },
        );
    });
    assert_eq!(short, long, "nnls allocates per iteration");
}

#[test]
fn mult_weights_inner_loop_is_allocation_free() {
    let m = strategy(64);
    let y = rhs(m.rows());
    let x0 = vec![1.0; 64];
    let _ = mult_weights(
        &m,
        &y,
        &x0,
        &MwOptions {
            iterations: 2,
            total: 64.0,
        },
    );
    let short = count(|| {
        mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 5,
                total: 64.0,
            },
        );
    });
    let long = count(|| {
        mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 50,
                total: 64.0,
            },
        );
    });
    assert_eq!(short, long, "mult_weights allocates per iteration");
}

#[test]
fn matvec_into_with_warm_workspace_is_allocation_free() {
    let m = strategy(256);
    let x: Vec<f64> = (0..256).map(|i| i as f64).collect();
    let mut out = vec![0.0; m.rows()];
    let mut back = vec![0.0; m.cols()];
    let mut ws = ektelo_matrix::Workspace::for_matrix(&m);
    m.matvec_into(&x, &mut out, &mut ws); // warm
    let allocs = count(|| {
        for _ in 0..100 {
            m.matvec_into(&x, &mut out, &mut ws);
            m.rmatvec_into(&out, &mut back, &mut ws);
        }
    });
    assert_eq!(allocs, 0, "warm matvec_into/rmatvec_into must not allocate");
}
