//! Non-negative least squares via FISTA projected gradient.
//!
//! Solves `min_{x ⪰ 0} ‖Ax − y‖₂²` (paper Definition 5.2). The paper's
//! implementation uses limited-memory BFGS with bound constraints; we use
//! Nesterov-accelerated projected gradient (FISTA), which touches `A` only
//! through `matvec`/`rmatvec` — the same primitive footprint — and
//! converges to the same constrained optimum at `O(1/k²)` rate. The step
//! size comes from a power-iteration estimate of `‖A‖₂²` (the gradient's
//! Lipschitz constant).

use ektelo_matrix::{Matrix, Workspace};

use crate::power::spectral_norm_estimate;
use crate::util::{axpy, norm2};

/// Options for [`nnls`].
#[derive(Clone, Debug)]
pub struct NnlsOptions {
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when the projected-gradient norm falls below
    /// `tol · ‖Aᵀy‖` (scale-free).
    pub tol: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        NnlsOptions {
            max_iters: 2000,
            tol: 1e-8,
        }
    }
}

/// Solves `min_{x ⪰ 0} ‖Ax − y‖₂`.
pub fn nnls(a: &Matrix, y: &[f64], opts: &NnlsOptions) -> Vec<f64> {
    let (m, n) = a.shape();
    assert_eq!(y.len(), m, "nnls: rhs length mismatch");

    let lipschitz = {
        let s = spectral_norm_estimate(a, 50);
        // Guard against degenerate estimates on zero matrices.
        (s * s).max(f64::MIN_POSITIVE)
    };
    let step = 1.0 / lipschitz;

    // One workspace + fixed buffers: the FISTA loop is allocation-free.
    let mut ws = Workspace::for_matrix(a);
    let mut r = vec![0.0; m];
    let mut grad = vec![0.0; n];

    let mut aty = vec![0.0; n];
    a.rmatvec_into(y, &mut aty, &mut ws);
    let grad_scale = norm2(&aty);
    if grad_scale == 0.0 {
        return vec![0.0; n];
    }

    let mut x = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut z = x.clone(); // extrapolated point
    let mut t = 1.0f64;

    for _ in 0..opts.max_iters {
        // ∇f(z) = Aᵀ(Az − y)
        a.matvec_into(&z, &mut r, &mut ws);
        axpy(&mut r, -1.0, y);
        a.rmatvec_into(&r, &mut grad, &mut ws);

        // Projected gradient step from z.
        for i in 0..n {
            x_new[i] = (z[i] - step * grad[i]).max(0.0);
        }

        // Convergence: projected gradient at the new point.
        let pg: f64 = (0..n)
            .map(|i| {
                if x_new[i] > 0.0 {
                    grad[i] * grad[i]
                } else {
                    grad[i].min(0.0).powi(2)
                }
            })
            .sum::<f64>()
            .sqrt();

        // Nesterov momentum.
        let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_new;
        for i in 0..n {
            z[i] = x_new[i] + beta * (x_new[i] - x[i]);
        }
        t = t_new;
        std::mem::swap(&mut x, &mut x_new);

        if pg <= opts.tol * grad_scale {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::Matrix;

    #[test]
    fn unconstrained_optimum_reached_when_nonnegative() {
        let a = Matrix::identity(3);
        let y = [1.0, 2.0, 3.0];
        let x = nnls(&a, &y, &NnlsOptions::default());
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi - yi).abs() < 1e-6, "{x:?}");
        }
    }

    #[test]
    fn negative_observations_clamped() {
        let a = Matrix::identity(3);
        let x = nnls(&a, &[-5.0, 2.0, -0.1], &NnlsOptions::default());
        assert!(x[0].abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-6);
        assert!(x[2].abs() < 1e-8);
    }

    #[test]
    fn all_coordinates_nonnegative_on_noisy_hierarchy() {
        let n = 16;
        let a = Matrix::vstack(vec![Matrix::identity(n), Matrix::total(n)]);
        let y: Vec<f64> = (0..a.rows())
            .map(|i| if i % 3 == 0 { -2.0 } else { (i % 5) as f64 })
            .collect();
        let x = nnls(&a, &y, &NnlsOptions::default());
        assert!(x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn matches_kkt_conditions() {
        // At the optimum: grad_i ≥ 0 where x_i = 0, grad_i ≈ 0 where x_i > 0.
        let a = Matrix::vstack(vec![Matrix::prefix(8), Matrix::identity(8)]);
        let y: Vec<f64> = (0..a.rows()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x = nnls(
            &a,
            &y,
            &NnlsOptions {
                max_iters: 20_000,
                tol: 1e-12,
            },
        );
        let mut r = a.matvec(&x);
        for (ri, &yi) in r.iter_mut().zip(&y) {
            *ri -= yi;
        }
        let grad = a.rmatvec(&r);
        for (i, (&xi, &gi)) in x.iter().zip(&grad).enumerate() {
            if xi > 1e-9 {
                assert!(gi.abs() < 1e-4, "active coordinate {i} has gradient {gi}");
            } else {
                assert!(gi > -1e-4, "inactive coordinate {i} has gradient {gi}");
            }
        }
    }

    #[test]
    fn zero_rhs_gives_zero() {
        let a = Matrix::prefix(4);
        let x = nnls(&a, &[0.0; 4], &NnlsOptions::default());
        assert_eq!(x, vec![0.0; 4]);
    }
}
