//! CGLS: conjugate gradient on the normal equations `AᵀA x = Aᵀ b`.
//!
//! A second, independently derived iterative least-squares solver. It is
//! mathematically equivalent to LSQR in exact arithmetic; we keep both so
//! that tests can cross-validate one against the other and so the benchmark
//! harness can report solver-choice sensitivity.

use ektelo_matrix::Matrix;

use crate::lsqr::{LsqrOptions, LsqrResult};

/// Solves `min_x ‖Ax − b‖₂` with CGLS. Options and result types are shared
/// with [`crate::lsqr`].
pub fn cgls(a: &Matrix, b: &[f64], opts: &LsqrOptions) -> LsqrResult {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "cgls: rhs length mismatch");

    let mut x = vec![0.0; n];
    let mut r = b.to_vec(); // r = b − A x (x = 0)
    let mut s = a.rmatvec(&r); // s = Aᵀ r
    let mut p = s.clone();
    let mut gamma: f64 = s.iter().map(|&v| v * v).sum();
    let gamma0 = gamma;
    if gamma == 0.0 {
        let rn = norm2(&r);
        return LsqrResult {
            x,
            iterations: 0,
            residual_norm: rn,
        };
    }

    let mut iterations = 0;
    for it in 1..=opts.max_iters {
        iterations = it;
        let q = a.matvec(&p);
        let qq: f64 = q.iter().map(|&v| v * v).sum();
        if qq == 0.0 {
            break;
        }
        let alpha = gamma / qq;
        for (xi, &pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        for (ri, &qi) in r.iter_mut().zip(&q) {
            *ri -= alpha * qi;
        }
        s = a.rmatvec(&r);
        let gamma_new: f64 = s.iter().map(|&v| v * v).sum();
        if gamma_new <= opts.atol * opts.atol * gamma0 {
            gamma = gamma_new;
            break;
        }
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        for (pi, &si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
    }
    let _ = gamma;

    LsqrResult {
        x,
        iterations,
        residual_norm: norm2(&r),
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|&x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::lsqr;
    use ektelo_matrix::Matrix;

    #[test]
    fn agrees_with_lsqr_on_hierarchical_strategy() {
        let n = 32;
        let a = Matrix::vstack(vec![Matrix::identity(n), Matrix::wavelet(n)]);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 2654435761) % 97) as f64 / 10.0).collect();
        let opts = LsqrOptions::default();
        let x1 = cgls(&a, &b, &opts).x;
        let x2 = lsqr(&a, &b, &opts).x;
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6, "cgls {u} vs lsqr {v}");
        }
    }

    #[test]
    fn simple_average() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]]);
        let r = cgls(&a, &[3.0, 6.0, 0.0], &LsqrOptions::default());
        assert!((r.x[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_short_circuits() {
        let a = Matrix::sparse(ektelo_matrix::CsrMatrix::zeros(3, 2));
        let r = cgls(&a, &[1.0, 2.0, 3.0], &LsqrOptions::default());
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.iterations, 0);
    }
}
