//! CGLS: conjugate gradient on the normal equations `AᵀA x = Aᵀ b`.
//!
//! A second, independently derived iterative least-squares solver. It is
//! mathematically equivalent to LSQR in exact arithmetic; we keep both so
//! that tests can cross-validate one against the other and so the benchmark
//! harness can report solver-choice sensitivity.

use ektelo_matrix::{Matrix, Workspace};

use crate::lsqr::{LsqrOptions, LsqrResult};
use crate::util::{axpy, norm2, par_dot, xpay};

/// Solves `min_x ‖Ax − b‖₂` with CGLS. Options and result types are shared
/// with [`crate::lsqr()`].
pub fn cgls(a: &Matrix, b: &[f64], opts: &LsqrOptions) -> LsqrResult {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "cgls: rhs length mismatch");

    let mut x = vec![0.0; n];

    // One workspace + fixed buffers: the inner loop is allocation-free.
    let mut ws = Workspace::for_matrix(a);
    let mut q = vec![0.0; m];

    let mut r = b.to_vec(); // r = b − A x (x = 0)
    let mut s = vec![0.0; n]; // s = Aᵀ r
    a.rmatvec_into(&r, &mut s, &mut ws);
    let mut p = s.clone();
    let mut gamma: f64 = par_dot(&s, &s);
    let gamma0 = gamma;
    if gamma == 0.0 {
        let rn = norm2(&r);
        return LsqrResult {
            x,
            iterations: 0,
            residual_norm: rn,
        };
    }

    let mut iterations = 0;
    for it in 1..=opts.max_iters {
        iterations = it;
        // Injected solver blow-up (numerical divergence has no error
        // channel here — the executor maps the unwind to a typed error).
        ektelo_matrix::failpoints::panic_if("solver::iteration");
        a.matvec_into(&p, &mut q, &mut ws);
        let qq = par_dot(&q, &q);
        if qq == 0.0 {
            break;
        }
        let alpha = gamma / qq;
        axpy(&mut x, alpha, &p);
        axpy(&mut r, -alpha, &q);
        a.rmatvec_into(&r, &mut s, &mut ws);
        let gamma_new = par_dot(&s, &s);
        if gamma_new <= opts.atol * opts.atol * gamma0 {
            gamma = gamma_new;
            break;
        }
        let beta = gamma_new / gamma;
        gamma = gamma_new;
        xpay(&mut p, beta, &s);
    }
    let _ = gamma;

    LsqrResult {
        x,
        iterations,
        residual_norm: norm2(&r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::lsqr;
    use ektelo_matrix::Matrix;

    #[test]
    fn agrees_with_lsqr_on_hierarchical_strategy() {
        let n = 32;
        let a = Matrix::vstack(vec![Matrix::identity(n), Matrix::wavelet(n)]);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| ((i * 2654435761) % 97) as f64 / 10.0)
            .collect();
        let opts = LsqrOptions::default();
        let x1 = cgls(&a, &b, &opts).x;
        let x2 = lsqr(&a, &b, &opts).x;
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6, "cgls {u} vs lsqr {v}");
        }
    }

    #[test]
    fn simple_average() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![1.0], vec![1.0]]);
        let r = cgls(&a, &[3.0, 6.0, 0.0], &LsqrOptions::default());
        assert!((r.x[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_short_circuits() {
        let a = Matrix::sparse(ektelo_matrix::CsrMatrix::zeros(3, 2));
        let r = cgls(&a, &[1.0, 2.0, 3.0], &LsqrOptions::default());
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.iterations, 0);
    }
}
