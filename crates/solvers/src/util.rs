//! Small dense-vector kernels shared by every solver.
//!
//! These are thin re-export wrappers over [`ektelo_matrix::kernels`] — the
//! single home of every hot vector loop. The `simd` feature of
//! `ektelo-matrix` selects the blocked implementations; see that module's
//! docs for the bit-identity vs documented-tolerance policy (`dot`/`norm2`
//! reassociate under `simd`, the element-wise ops never do).

use ektelo_matrix::kernels;

/// Euclidean norm `‖v‖₂`.
pub fn norm2(v: &[f64]) -> f64 {
    kernels::norm2(v)
}

/// Inner product `⟨a, b⟩`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    kernels::dot(a, b)
}

/// Inner product `⟨a, b⟩` with pool-threaded chunk reduction for long
/// vectors (fixed chunk geometry and merge order: bit-identical for every
/// pool size; see [`ektelo_matrix::kernels::par_dot`]).
pub fn par_dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::par_dot(a, b)
}

/// In-place scaling `v ← c·v`.
pub fn scale(v: &mut [f64], c: f64) {
    kernels::scale(v, c);
}

/// `y ← y + a·x`.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    kernels::axpy(y, a, x);
}

/// `y ← x + b·y`.
pub fn xpay(y: &mut [f64], b: f64, x: &[f64]) {
    kernels::xpay(y, b, x);
}

/// `e ← y − e` (residual reversal).
pub fn rsub(e: &mut [f64], y: &[f64]) {
    kernels::rsub(e, y);
}

/// Normalizes `v` to unit Euclidean length in place, returning the original
/// norm (leaves `v` untouched when zero).
pub fn normalize_l2(v: &mut [f64]) -> f64 {
    let norm = norm2(v);
    if norm > 0.0 {
        scale(v, 1.0 / norm);
    }
    norm
}

/// Normalizes `x` to sum to `total` in place; resets to uniform mass when
/// the current sum is non-positive (the multiplicative-weights convention).
pub fn normalize_mass(x: &mut [f64], total: f64) {
    let sum = kernels::sum(x);
    if sum > 0.0 {
        scale(x, total / sum);
    } else {
        let uniform = total / x.len() as f64;
        x.fill(uniform);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        assert_eq!(normalize_l2(&mut v), 5.0);
        assert!((norm2(&v) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize_l2(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_mass_resets_on_zero() {
        let mut x = vec![0.0; 4];
        normalize_mass(&mut x, 8.0);
        assert_eq!(x, vec![2.0; 4]);
        let mut y = vec![1.0, 3.0];
        normalize_mass(&mut y, 8.0);
        assert_eq!(y, vec![2.0, 6.0]);
    }
}
