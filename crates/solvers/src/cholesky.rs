//! Dense Cholesky factorization and direct least squares.
//!
//! The `O(n³)` "direct" baseline of paper Fig. 5: form the normal equations
//! `AᵀA x = Aᵀ b` and solve by factorization. The paper notes the runtime
//! of direct methods becomes unacceptable past n ≈ 5000 — our harness
//! reproduces exactly that crossover.

use ektelo_matrix::{DenseMatrix, Matrix};

/// Computes the lower-triangular Cholesky factor `L` with `L Lᵀ = A` for a
/// symmetric positive-definite `A`. Returns `None` if a non-positive pivot
/// is encountered (matrix not PD within tolerance).
pub fn cholesky_factor(a: &DenseMatrix) -> Option<DenseMatrix> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky requires a square matrix");
    let mut l = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
pub fn cholesky_solve(l: &DenseMatrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n, "cholesky_solve rhs length mismatch");
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for (k, &yk) in y.iter().enumerate().take(i) {
            sum -= l.get(i, k) * yk;
        }
        y[i] = sum / l.get(i, i);
    }
    // Backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for (k, &xk) in x.iter().enumerate().skip(i + 1) {
            sum -= l.get(k, i) * xk;
        }
        x[i] = sum / l.get(i, i);
    }
    x
}

/// Direct least squares via the normal equations: materializes `AᵀA`
/// (dense), factorizes, and solves. A tiny ridge `λI` is added when the
/// Gram matrix is singular (rank-deficient strategies), matching the
/// pseudo-inverse solution in the limit.
pub fn direct_least_squares(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let gram = a.gram_dense();
    let atb = a.rmatvec(b);
    if let Some(l) = cholesky_factor(&gram) {
        return cholesky_solve(&l, &atb);
    }
    // Ridge fallback for singular Gram matrices.
    let n = gram.rows();
    let trace: f64 = (0..n).map(|i| gram.get(i, i)).sum();
    let lambda = 1e-8 * (trace / n as f64).max(1.0);
    let mut ridged = gram;
    for i in 0..n {
        let v = ridged.get(i, i);
        ridged.set(i, i, v + lambda);
    }
    // xlint: allow(panic-policy, reason = "the ridge 1e-8 * max(trace/n, 1) makes any finite PSD Gram matrix positive definite; failure implies non-finite inputs, which upstream operators reject")
    let l = cholesky_factor(&ridged).expect("ridged Gram matrix must be PD");
    cholesky_solve(&l, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsqr::{lsqr, LsqrOptions};

    #[test]
    fn factor_of_known_spd_matrix() {
        // A = [[4, 2], [2, 3]] → L = [[2, 0], [1, sqrt(2)]]
        let a = DenseMatrix::from_rows(vec![vec![4.0, 2.0], vec![2.0, 3.0]]);
        let l = cholesky_factor(&a).unwrap();
        assert!((l.get(0, 0) - 2.0).abs() < 1e-12);
        assert!((l.get(1, 0) - 1.0).abs() < 1e-12);
        assert!((l.get(1, 1) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn non_pd_detected() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky_factor(&a).is_none());
    }

    #[test]
    fn solve_roundtrip() {
        let a = DenseMatrix::from_rows(vec![
            vec![6.0, 2.0, 1.0],
            vec![2.0, 5.0, 2.0],
            vec![1.0, 2.0, 4.0],
        ]);
        let l = cholesky_factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let mut b = vec![0.0; 3];
        a.matvec_into(&x_true, &mut b);
        let x = cholesky_solve(&l, &b);
        for (xi, ei) in x.iter().zip(&x_true) {
            assert!((xi - ei).abs() < 1e-10);
        }
    }

    #[test]
    fn direct_agrees_with_iterative() {
        let n = 16;
        let a = Matrix::vstack(vec![Matrix::identity(n), Matrix::prefix(n)]);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 31) % 17) as f64).collect();
        let xd = direct_least_squares(&a, &b);
        let xi = lsqr(&a, &b, &LsqrOptions::default()).x;
        for (u, v) in xd.iter().zip(&xi) {
            assert!((u - v).abs() < 1e-6, "direct {u} vs iterative {v}");
        }
    }

    #[test]
    fn singular_gram_falls_back_to_ridge() {
        // Total query alone is rank-1 over n=3: infinitely many LS solutions;
        // ridge picks (approximately) the minimum-norm one: uniform split.
        let a = Matrix::total(3);
        let x = direct_least_squares(&a, &[9.0]);
        for xi in &x {
            assert!((xi - 3.0).abs() < 1e-3, "{x:?}");
        }
    }
}
