//! Multiplicative-weights inference (MWEM's update rule).
//!
//! Maintains a distribution-like estimate `x̂` of the data vector and, for
//! each measured query `(q, y)`, applies
//! `x̂ ← x̂ ⊙ exp(q · (y − q·x̂) / (2·N))` followed by renormalization to the
//! assumed total `N` (Hardt, Ligett & McSherry 2012; paper Table 1 gives
//! the batched gradient form). Closely related to maximum-entropy
//! inference; effective when measurements are incomplete (paper §5.5).

use ektelo_matrix::{Matrix, Workspace};

use crate::util::{normalize_mass, rsub};

/// Options for [`mult_weights`].
#[derive(Clone, Debug)]
pub struct MwOptions {
    /// Number of passes over the full measurement set.
    pub iterations: usize,
    /// Total mass the estimate is normalized to (MWEM assumes the dataset
    /// size is known or separately estimated).
    pub total: f64,
}

impl Default for MwOptions {
    fn default() -> Self {
        MwOptions {
            iterations: 50,
            total: 1.0,
        }
    }
}

/// Runs multiplicative-weights updates for measurements `M x ≈ y`, starting
/// from `x0` (commonly uniform with mass `opts.total`). Returns the refined
/// estimate.
pub fn mult_weights(m: &Matrix, y: &[f64], x0: &[f64], opts: &MwOptions) -> Vec<f64> {
    let (rows, n) = m.shape();
    assert_eq!(y.len(), rows, "mw: measurement count mismatch");
    assert_eq!(x0.len(), n, "mw: estimate length mismatch");
    assert!(opts.total > 0.0, "mw: total must be positive");

    let mut x = x0.to_vec();
    normalize_mass(&mut x, opts.total);

    // One workspace + fixed buffers: each MW pass is allocation-free (MWEM
    // re-runs this loop every round, so the savings compound).
    let mut ws = Workspace::for_matrix(m);
    let mut err = vec![0.0; rows];
    let mut g = vec![0.0; n];

    for _ in 0..opts.iterations {
        // Batched update (paper Table 1): g = Mᵀ(y − M x̂) scaled by 1/(2N).
        m.matvec_into(&x, &mut err, &mut ws);
        rsub(&mut err, y);
        m.rmatvec_into(&err, &mut g, &mut ws);
        for (xi, &gi) in x.iter_mut().zip(&g) {
            // Clamp the exponent for numerical robustness on extreme
            // residuals (matches practical MWEM implementations).
            let e = (gi / (2.0 * opts.total)).clamp(-50.0, 50.0);
            *xi *= e.exp();
        }
        normalize_mass(&mut x, opts.total);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::Matrix;

    #[test]
    fn preserves_total_mass() {
        let m = Matrix::identity(4);
        let y = [5.0, 0.0, 3.0, 2.0];
        let x0 = vec![2.5; 4];
        let x = mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 20,
                total: 10.0,
            },
        );
        let sum: f64 = x.iter().sum();
        assert!((sum - 10.0).abs() < 1e-9);
    }

    #[test]
    fn converges_toward_identity_measurements() {
        let m = Matrix::identity(4);
        let y = [4.0, 0.0, 3.0, 3.0];
        let x0 = vec![2.5; 4];
        let x = mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 300,
                total: 10.0,
            },
        );
        for (xi, yi) in x.iter().zip(&y) {
            assert!((xi - yi).abs() < 0.15, "{x:?}");
        }
    }

    #[test]
    fn incomplete_measurements_stay_maximum_entropy() {
        // Only the total of the first two cells is measured; MW should keep
        // the split uniform within the measured group and leave the rest
        // untouched relative to each other.
        let m = Matrix::range_queries(4, vec![(0, 2)]);
        let y = [6.0];
        let x0 = vec![2.0; 4];
        let x = mult_weights(
            &m,
            &y,
            &x0,
            &MwOptions {
                iterations: 200,
                total: 8.0,
            },
        );
        assert!((x[0] - x[1]).abs() < 1e-9, "uniformity within group: {x:?}");
        assert!(
            (x[2] - x[3]).abs() < 1e-9,
            "uniformity outside group: {x:?}"
        );
        assert!((x[0] + x[1] - 6.0).abs() < 0.1, "measured mass: {x:?}");
    }

    #[test]
    fn zero_estimate_resets_to_uniform() {
        let m = Matrix::identity(2);
        let x = mult_weights(
            &m,
            &[1.0, 1.0],
            &[0.0, 0.0],
            &MwOptions {
                iterations: 5,
                total: 2.0,
            },
        );
        let sum: f64 = x.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }
}
