//! LSQR (Paige & Saunders 1982): iterative least squares via Golub–Kahan
//! bidiagonalization.
//!
//! Solves `min_x ‖A x − b‖₂` touching `A` only through `matvec` and
//! `rmatvec`, so it runs unchanged on implicit matrices. The paper's
//! reference implementation uses LSMR (Fong & Saunders 2011); both methods
//! build the same Krylov space and share the `O(k · Time(A))` complexity
//! that Fig. 5 measures (see DESIGN.md for the substitution note).

use ektelo_matrix::{Matrix, Workspace};

use crate::util::{axpy, norm2, scale, xpay};

/// Stopping parameters for [`lsqr`].
#[derive(Clone, Debug)]
pub struct LsqrOptions {
    /// Hard iteration cap. The paper observes convergence in far fewer than
    /// n iterations for well-conditioned strategies.
    pub max_iters: usize,
    /// Relative tolerance on the normal-equation residual `‖Aᵀr‖`.
    pub atol: f64,
}

impl Default for LsqrOptions {
    fn default() -> Self {
        LsqrOptions {
            max_iters: 2000,
            atol: 1e-8,
        }
    }
}

/// Convergence report returned by [`lsqr`].
#[derive(Clone, Debug)]
pub struct LsqrResult {
    /// The least-squares solution estimate.
    pub x: Vec<f64>,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm estimate `‖Ax − b‖₂`.
    pub residual_norm: f64,
}

/// Solves `min_x ‖Ax − b‖₂` with LSQR.
///
/// ```
/// use ektelo_matrix::Matrix;
/// use ektelo_solvers::{lsqr, LsqrOptions};
///
/// // Overdetermined, consistent: x = [1, 2] from three measurements.
/// let a = Matrix::vstack(vec![Matrix::identity(2), Matrix::total(2)]);
/// let r = lsqr(&a, &[1.0, 2.0, 3.0], &LsqrOptions::default());
/// assert!((r.x[0] - 1.0).abs() < 1e-8 && (r.x[1] - 2.0).abs() < 1e-8);
/// ```
pub fn lsqr(a: &Matrix, b: &[f64], opts: &LsqrOptions) -> LsqrResult {
    let (m, n) = a.shape();
    assert_eq!(b.len(), m, "lsqr: rhs length mismatch");

    let mut x = vec![0.0; n];

    // One workspace + fixed iteration buffers: the inner loop below
    // performs zero heap allocations (the paper's `O(k · Time(M))`
    // inference depends on the matvec being the only per-iteration cost).
    let mut ws = Workspace::for_matrix(a);
    let mut av = vec![0.0; m];
    let mut atu = vec![0.0; n];

    // β₁ u₁ = b
    let mut u = b.to_vec();
    let mut beta = norm2(&u);
    if beta == 0.0 {
        return LsqrResult {
            x,
            iterations: 0,
            residual_norm: 0.0,
        };
    }
    scale(&mut u, 1.0 / beta);

    // α₁ v₁ = Aᵀ u₁
    let mut v = vec![0.0; n];
    a.rmatvec_into(&u, &mut v, &mut ws);
    let mut alpha = norm2(&v);
    if alpha == 0.0 {
        return LsqrResult {
            x,
            iterations: 0,
            residual_norm: beta,
        };
    }
    scale(&mut v, 1.0 / alpha);

    let mut w = v.clone();
    let mut phibar = beta;
    let mut rhobar = alpha;
    let norm_a0 = alpha; // grows with the bidiagonalization
    let mut norm_a = norm_a0;

    let mut iterations = 0;
    for it in 1..=opts.max_iters {
        iterations = it;
        // Injected solver blow-up; see the matching site in cgls.rs.
        ektelo_matrix::failpoints::panic_if("solver::iteration");

        // Continue the bidiagonalization:
        //   β u = A v − α u ;  α v = Aᵀ u − β v
        a.matvec_into(&v, &mut av, &mut ws);
        xpay(&mut u, -alpha, &av);
        beta = norm2(&u);
        if beta > 0.0 {
            scale(&mut u, 1.0 / beta);
        }
        a.rmatvec_into(&u, &mut atu, &mut ws);
        xpay(&mut v, -beta, &atu);
        alpha = norm2(&v);
        if alpha > 0.0 {
            scale(&mut v, 1.0 / alpha);
        }
        norm_a = (norm_a * norm_a + beta * beta + alpha * alpha).sqrt();

        // Apply the next orthogonal rotation to the bidiagonal system.
        let rho = (rhobar * rhobar + beta * beta).sqrt();
        let c = rhobar / rho;
        let s = beta / rho;
        let theta = s * alpha;
        rhobar = -c * alpha;
        let phi = c * phibar;
        phibar *= s;

        // Update x and the search direction w.
        let t1 = phi / rho;
        let t2 = -theta / rho;
        // x must read w before xpay rewrites it in place.
        axpy(&mut x, t1, &w);
        xpay(&mut w, t2, &v);

        // ‖Aᵀ r‖ estimate = φ̄ · α · |c|; stop when it is small relative to
        // ‖A‖·‖r‖ (standard LSQR criterion).
        let norm_ar = phibar * alpha * c.abs();
        if norm_ar <= opts.atol * norm_a * phibar.max(f64::MIN_POSITIVE) {
            break;
        }
    }

    LsqrResult {
        x,
        iterations,
        residual_norm: phibar,
    }
}

/// Weighted least squares: scales each row i of `A` and entry of `b` by
/// `weights[i]` (inverse noise scales), then calls [`lsqr`]. This is how
/// inference accounts for measurements taken with unequal noise (paper
/// §5.5 objective (i)).
pub fn lsqr_weighted(a: &Matrix, b: &[f64], weights: &[f64], opts: &LsqrOptions) -> LsqrResult {
    assert_eq!(b.len(), weights.len(), "weights length mismatch");
    let wa = Matrix::product(Matrix::diagonal(weights.to_vec()), a.clone());
    let wb: Vec<f64> = b.iter().zip(weights).map(|(&bi, &wi)| bi * wi).collect();
    lsqr(&wa, &wb, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::Matrix;

    #[test]
    fn exact_solve_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let r = lsqr(&a, &b, &LsqrOptions::default());
        for (x, e) in r.x.iter().zip(&b) {
            assert!((x - e).abs() < 1e-8);
        }
    }

    #[test]
    fn solves_overdetermined_system() {
        // A = [I; Total], b consistent with x* = [1, 2, 3]
        let a = Matrix::vstack(vec![Matrix::identity(3), Matrix::total(3)]);
        let b = vec![1.0, 2.0, 3.0, 6.0];
        let r = lsqr(&a, &b, &LsqrOptions::default());
        for (x, e) in r.x.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((x - e).abs() < 1e-8, "{:?}", r.x);
        }
    }

    #[test]
    fn least_squares_of_inconsistent_system() {
        // Two measurements of the same scalar: x=1 and x=3 → LS solution 2.
        let a = Matrix::from_rows(vec![vec![1.0], vec![1.0]]);
        let r = lsqr(&a, &[1.0, 3.0], &LsqrOptions::default());
        assert!((r.x[0] - 2.0).abs() < 1e-10);
        assert!((r.residual_norm - 2.0_f64.sqrt()).abs() < 1e-8);
    }

    #[test]
    fn matches_normal_equation_solution_on_random_system() {
        // Hierarchical strategy over n=16; solution must satisfy AᵀA x = Aᵀ b.
        let n = 16;
        let a = Matrix::vstack(vec![
            Matrix::identity(n),
            Matrix::wavelet(n),
            Matrix::total(n),
        ]);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| ((i * 7919) % 13) as f64 - 6.0)
            .collect();
        let r = lsqr(&a, &b, &LsqrOptions::default());
        let residual: Vec<f64> = a.matvec(&r.x).iter().zip(&b).map(|(p, q)| p - q).collect();
        let grad = a.rmatvec(&residual);
        let gnorm = norm2(&grad);
        assert!(gnorm < 1e-6, "normal equations violated: ‖Aᵀr‖ = {gnorm}");
    }

    #[test]
    fn weighted_rows_pull_solution() {
        // Heavily weighting the x=3 observation moves the estimate toward 3.
        let a = Matrix::from_rows(vec![vec![1.0], vec![1.0]]);
        let r = lsqr_weighted(&a, &[1.0, 3.0], &[1.0, 10.0], &LsqrOptions::default());
        assert!(r.x[0] > 2.9, "weighted estimate {}", r.x[0]);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let a = Matrix::prefix(5);
        let r = lsqr(&a, &[0.0; 5], &LsqrOptions::default());
        assert_eq!(r.x, vec![0.0; 5]);
        assert_eq!(r.iterations, 0);
    }
}
