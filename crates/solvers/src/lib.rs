#![deny(missing_docs)]
//! # ektelo-solvers
//!
//! Numerical solvers backing EKTELO's inference operators (paper §7.6,
//! "Implementing inference").
//!
//! The paper's key observation is that *every* inference method it needs —
//! ordinary least squares, non-negative least squares, and multiplicative
//! weights — can be implemented with only two primitive matrix methods:
//! matrix–vector product and transpose matrix–vector product. Combined with
//! implicit matrices this gives `O(k · Time(M))` inference, which is what
//! Fig. 5 measures. This crate provides:
//!
//! * [`lsqr()`] — Paige–Saunders LSQR, the default iterative least-squares
//!   solver (the paper uses the closely related LSMR; both are Golub–Kahan
//!   Krylov methods on the normal equations — see DESIGN.md);
//! * [`cgls()`] — conjugate gradient on the normal equations, a second
//!   independent iterative LS implementation used for cross-checking;
//! * [`nnls()`] — FISTA-accelerated projected gradient for least squares with
//!   a non-negativity constraint (the paper uses L-BFGS-B; same primitive
//!   footprint and the same constrained optimum);
//! * [`mult_weights`] — the multiplicative-weights update rule of MWEM;
//! * [`cholesky`] — dense Cholesky factorization for *direct* least squares
//!   (the `O(n³)` baseline of Fig. 5);
//! * [`power`] — power iteration for spectral-norm (step-size) estimates.

pub mod cgls;
pub mod cholesky;
pub mod lsqr;
pub mod mw;
pub mod nnls;
pub mod power;
pub mod util;

pub use cgls::cgls;
pub use cholesky::{cholesky_factor, cholesky_solve, direct_least_squares};
pub use lsqr::{lsqr, LsqrOptions, LsqrResult};
pub use mw::{mult_weights, MwOptions};
pub use nnls::{nnls, NnlsOptions};
pub use power::spectral_norm_estimate;
