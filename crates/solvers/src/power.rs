//! Power iteration on `AᵀA` for spectral-norm estimation.
//!
//! Used to pick the gradient step size in [`crate::nnls()`]. Deterministic:
//! starts from an all-ones vector with a fixed perturbation so results are
//! reproducible without threading an RNG through the solvers.

use ektelo_matrix::{Matrix, Workspace};

use crate::util::normalize_l2;

/// Estimates `‖A‖₂` (largest singular value) with `iters` rounds of power
/// iteration on `AᵀA`. The estimate converges from below; callers using it
/// for step sizes should add a small safety margin (we return a 1%-inflated
/// value for exactly that reason).
pub fn spectral_norm_estimate(a: &Matrix, iters: usize) -> f64 {
    let n = a.cols();
    if n == 0 || a.rows() == 0 {
        return 0.0;
    }
    // Fixed pseudo-random start vector to avoid orthogonal-start stalls.
    let mut v: Vec<f64> = (0..n)
        .map(|i| 1.0 + 0.01 * (((i as u64).wrapping_mul(2654435761) % 97) as f64 / 97.0))
        .collect();
    normalize_l2(&mut v);

    // One workspace + fixed buffers: the iteration is allocation-free.
    let mut ws = Workspace::for_matrix(a);
    let mut av = vec![0.0; a.rows()];
    let mut atav = vec![0.0; n];

    let mut sigma = 0.0;
    for _ in 0..iters.max(1) {
        a.matvec_into(&v, &mut av, &mut ws);
        a.rmatvec_into(&av, &mut atav, &mut ws);
        let norm = normalize_l2(&mut atav);
        if norm == 0.0 {
            return 0.0;
        }
        sigma = norm.sqrt();
        std::mem::swap(&mut v, &mut atav);
    }
    sigma * 1.01
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::Matrix;

    #[test]
    fn identity_has_unit_norm() {
        let s = spectral_norm_estimate(&Matrix::identity(16), 30);
        assert!((s - 1.0).abs() < 0.02, "estimate {s}");
    }

    #[test]
    fn diagonal_norm_is_max_entry() {
        let s = spectral_norm_estimate(&Matrix::diagonal(vec![0.5, 3.0, 1.0]), 60);
        assert!((s - 3.0).abs() < 0.05, "estimate {s}");
    }

    #[test]
    fn total_query_norm_is_sqrt_n() {
        // ‖1ₙᵀ‖₂ = √n
        let s = spectral_norm_estimate(&Matrix::total(25), 30);
        assert!((s - 5.0).abs() < 0.1, "estimate {s}");
    }

    #[test]
    fn zero_matrix() {
        let s = spectral_norm_estimate(&Matrix::sparse(ektelo_matrix::CsrMatrix::zeros(3, 3)), 10);
        assert_eq!(s, 0.0);
    }
}
