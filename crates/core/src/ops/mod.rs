//! The EKTELO operator library (paper §5 and Fig. 1).
//!
//! Operators are grouped into the paper's five classes:
//!
//! * **Transformations** — kernel methods (`transform_*`, `vectorize`,
//!   `reduce_by_partition`, `split_by_partition`) on
//!   [`crate::ProtectedKernel`];
//! * **Query** — `vector_laplace` / `noisy_count` kernel methods;
//! * **Query selection** — [`selection`]: strategies that pick *what* to
//!   measure (Identity, Total, Privelet, H2, HB, Greedy-H, QuadTree,
//!   UniformGrid, AdaptiveGrid, HDMM, Stripe, Worst-approx,
//!   PrivBayes select);
//! * **Partition selection** — [`partition`]: operators that compute a
//!   partition matrix for the reduce/split transformations (AHP, DAWA,
//!   Grid, Marginal, Stripe, Workload-based);
//! * **Inference** — [`inference`]: Public operators deriving consistent
//!   estimates from the recorded measurements (LS, NNLS, MW,
//!   Thresholding).
//!
//! Operators that *consult the private data* (AHP, DAWA, Worst-approx,
//! PrivBayes select) are Private→Public: they take the kernel and an ε and
//! charge the budget before touching anything private. Everything else is
//! Public and works on public inputs only.

pub mod graph;
pub mod inference;
pub mod partition;
pub mod selection;
