//! DawaPartition: DAWA's stage-1 partition (Li et al. 2014; paper §5.4,
//! Plan #9). Private→Public.
//!
//! DAWA finds a partition of the 1-D domain into *contiguous buckets* that
//! minimizes (approximately) total reconstruction error: within-bucket
//! deviation (uniformity error) plus per-bucket noise. As in the original,
//! candidate buckets are restricted to lengths that are powers of two, and
//! the best segmentation is found by dynamic programming in
//! `O(n log n)`.
//!
//! Faithfulness note: DAWA perturbs interval *costs*; we spend the stage-1
//! budget on a noisy histogram and compute exact costs on it, which has
//! the same ε₁-DP guarantee (post-processing) and the same adaptive
//! behaviour. We use the squared-deviation bucket cost
//! `Σ(x̃ᵢ − mean)² + 2/ε₂²` — the expected *squared* error of a uniform
//! bucket under stage-2 Laplace noise — rather than DAWA's L1 variant; the
//! minimizing segmentations agree on uniform-vs-varied regions.

use ektelo_matrix::{partition_from_labels, Matrix};

use crate::kernel::noise::laplace;
use crate::kernel::{ProtectedKernel, Result, SourceVar};

/// Options for [`dawa_partition`].
#[derive(Clone, Debug)]
pub struct DawaOptions {
    /// The stage-2 budget the plan intends to spend on measuring bucket
    /// counts; sets the per-bucket noise penalty `2/ε₂²`.
    pub eps_stage2: f64,
    /// Subtract the stage-1 noise variance from bucket deviation costs
    /// (on by default; off reproduces the naive always-split behaviour —
    /// the `ablations` bench measures the difference).
    pub debias: bool,
}

impl DawaOptions {
    /// Standard options for a given stage-2 budget.
    pub fn new(eps_stage2: f64) -> Self {
        DawaOptions {
            eps_stage2,
            debias: true,
        }
    }
}

/// Computes DAWA's contiguous-bucket partition of the 1-D vector source
/// `sv`, spending `eps` (the plan's stage-1 share).
pub fn dawa_partition(
    kernel: &ProtectedKernel,
    sv: SourceVar,
    eps: f64,
    opts: &DawaOptions,
) -> Result<Matrix> {
    kernel.charge(sv, eps)?;
    let eps2 = opts.eps_stage2.max(f64::MIN_POSITIVE);
    kernel.with_vector(sv, move |x, rng| {
        let noisy: Vec<f64> = x.iter().map(|&v| v + laplace(rng, 1.0 / eps)).collect();
        // Debias the deviation cost by the stage-1 noise variance so that
        // truly-uniform regions (whose *noisy* deviation is pure noise)
        // cost ~0 and merge; DAWA's cost estimates are debiased the same
        // way.
        let noise_var = if opts.debias { 2.0 / (eps * eps) } else { 0.0 };
        let labels = segment(&noisy, 2.0 / (eps2 * eps2), noise_var);
        let groups = labels.iter().max().map_or(1, |&m| m + 1);
        partition_from_labels(groups, &labels)
    })
}

/// Optimal segmentation into power-of-two-length buckets by DP.
/// `penalty` is the per-bucket cost and `noise_var` the per-cell variance
/// already present in `x` (subtracted from the deviation estimate, clamped
/// at zero). Exposed for direct testing.
pub(crate) fn segment(x: &[f64], penalty: f64, noise_var: f64) -> Vec<usize> {
    let n = x.len();
    assert!(n > 0, "cannot segment an empty vector");
    // Prefix sums of x and x² for O(1) bucket deviation costs.
    let mut s1 = vec![0.0; n + 1];
    let mut s2 = vec![0.0; n + 1];
    for (i, &v) in x.iter().enumerate() {
        s1[i + 1] = s1[i] + v;
        s2[i + 1] = s2[i] + v * v;
    }
    let cost = |lo: usize, hi: usize| -> f64 {
        let len = (hi - lo) as f64;
        let sum = s1[hi] - s1[lo];
        let sq = s2[hi] - s2[lo];
        // Σ(x−mean)² = Σx² − (Σx)²/len, debiased by the (len−1)·σ² the
        // input noise contributes in expectation.
        let dev = sq - sum * sum / len - (len - 1.0) * noise_var;
        dev.max(0.0) + penalty
    };
    let mut best = vec![f64::INFINITY; n + 1];
    let mut back = vec![0usize; n + 1];
    best[0] = 0.0;
    for end in 1..=n {
        let mut len = 1usize;
        while len <= end {
            let start = end - len;
            let c = best[start] + cost(start, end);
            if c < best[end] {
                best[end] = c;
                back[end] = start;
            }
            if len > end / 2 && len < end {
                // Next doubling would overshoot; also allow the full
                // prefix as a bucket (non-power length) for completeness
                // near the boundary.
                len = end;
            } else {
                len *= 2;
            }
        }
    }
    // Walk back to produce labels.
    let mut cuts = Vec::new();
    let mut pos = n;
    while pos > 0 {
        cuts.push((back[pos], pos));
        pos = back[pos];
    }
    cuts.reverse();
    let mut labels = vec![0usize; n];
    for (g, &(lo, hi)) in cuts.iter().enumerate() {
        for l in labels.iter_mut().take(hi).skip(lo) {
            *l = g;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_labels_are_contiguous_and_increasing() {
        let x = vec![1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0, 2.0];
        let labels = segment(&x, 0.5, 0.0);
        for w in labels.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1, "labels {labels:?}");
        }
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn uniform_region_merges_varied_region_splits() {
        let mut x = vec![5.0; 32];
        for (i, v) in x.iter_mut().enumerate().skip(16) {
            *v = (i * 97 % 41) as f64; // erratic second half
        }
        let labels = segment(&x, 1.0, 0.0);
        let buckets_first: std::collections::HashSet<usize> =
            labels[..16].iter().copied().collect();
        let buckets_second: std::collections::HashSet<usize> =
            labels[16..].iter().copied().collect();
        assert!(
            buckets_first.len() < buckets_second.len(),
            "uniform half {buckets_first:?} vs varied half {buckets_second:?}"
        );
    }

    #[test]
    fn huge_penalty_collapses_to_one_bucket() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let labels = segment(&x, 1e9, 0.0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn zero_penalty_splits_everything() {
        let x: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let labels = segment(&x, 0.0, 0.0);
        // With no per-bucket cost, singleton buckets are optimal.
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn kernel_integration_produces_partition_and_charges() {
        let x: Vec<f64> = (0..64).map(|i| if i < 32 { 10.0 } else { 50.0 }).collect();
        let k = ProtectedKernel::init_from_vector(x, 2.0, 3);
        let p = dawa_partition(&k, k.root(), 1.0, &DawaOptions::new(1.0)).unwrap();
        assert!(p.is_partition());
        assert_eq!(p.cols(), 64);
        assert!((k.budget_spent() - 1.0).abs() < 1e-12);
        // The partition should be far coarser than singletons.
        assert!(p.rows() < 40, "got {} buckets", p.rows());
    }
}
