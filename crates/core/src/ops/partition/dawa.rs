//! DawaPartition: DAWA's stage-1 partition (Li et al. 2014; paper §5.4,
//! Plan #9). Private→Public.
//!
//! DAWA finds a partition of the 1-D domain into *contiguous buckets* that
//! minimizes (approximately) total reconstruction error: within-bucket
//! deviation (uniformity error) plus per-bucket noise. As in the original,
//! candidate buckets are restricted to lengths that are powers of two, and
//! the best segmentation is found by dynamic programming in
//! `O(n log n)`.
//!
//! Faithfulness note: DAWA perturbs interval *costs*; we spend the stage-1
//! budget on a noisy histogram and compute exact costs on it, which has
//! the same ε₁-DP guarantee (post-processing) and the same adaptive
//! behaviour. We use the squared-deviation bucket cost
//! `Σ(x̃ᵢ − mean)² + 2/ε₂²` — the expected *squared* error of a uniform
//! bucket under stage-2 Laplace noise — rather than DAWA's L1 variant; the
//! minimizing segmentations agree on uniform-vs-varied regions.

use ektelo_matrix::{partition_from_labels, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernel::noise::laplace;
use crate::kernel::{BudgetReservation, ProtectedKernel, Result, SourceVar};

/// Options for [`dawa_partition`].
#[derive(Clone, Debug)]
pub struct DawaOptions {
    /// The stage-2 budget the plan intends to spend on measuring bucket
    /// counts; sets the per-bucket noise penalty `2/ε₂²`.
    pub eps_stage2: f64,
    /// Subtract the stage-1 noise variance from bucket deviation costs
    /// (on by default; off reproduces the naive always-split behaviour —
    /// the `ablations` bench measures the difference).
    pub debias: bool,
}

impl DawaOptions {
    /// Standard options for a given stage-2 budget.
    pub fn new(eps_stage2: f64) -> Self {
        DawaOptions {
            eps_stage2,
            debias: true,
        }
    }
}

/// Computes DAWA's contiguous-bucket partition of the 1-D vector source
/// `sv`, spending `eps` (the plan's stage-1 share).
pub fn dawa_partition(
    kernel: &ProtectedKernel,
    sv: SourceVar,
    eps: f64,
    opts: &DawaOptions,
) -> Result<Matrix> {
    kernel.charge(sv, eps)?;
    let eps2 = opts.eps_stage2.max(f64::MIN_POSITIVE);
    kernel.with_vector(sv, move |x, rng| {
        let noisy: Vec<f64> = x.iter().map(|&v| v + laplace(rng, 1.0 / eps)).collect();
        // Debias the deviation cost by the stage-1 noise variance so that
        // truly-uniform regions (whose *noisy* deviation is pure noise)
        // cost ~0 and merge; DAWA's cost estimates are debiased the same
        // way.
        let noise_var = if opts.debias { 2.0 / (eps * eps) } else { 0.0 };
        let labels = segment(&noisy, 2.0 / (eps2 * eps2), noise_var);
        let groups = labels.iter().max().map_or(1, |&m| m + 1);
        partition_from_labels(groups, &labels)
    })
}

/// Batched stage-1 partition selection over many disjoint sources (the
/// stripes of DAWA-Striped), with **counter-based per-stripe RNG
/// substreams**.
///
/// A sequential loop of [`dawa_partition`] calls draws its per-cell
/// Laplace noise from the kernel's single privacy stream, which forces
/// stage 1 to run serially. This batch form charges every stripe in
/// stripe order and then draws **one** base value from the kernel stream
/// (all under one lock acquisition); stripe `i` derives its own
/// substream seed as `splitmix64(base, i)` — a pure function of (base,
/// counter) — and runs the noisy-histogram + segmentation computation on
/// an independent RNG. Each stripe's output is therefore independent of
/// scheduling, so under the `parallel` feature stripes compute on worker
/// threads **bit-identically** to a sequential loop over the same
/// substreams (pinned by a regression test). Budget-wise this is exactly
/// the sequential loop: same charges, same order, same parallel
/// composition across sibling stripes.
///
/// Privacy: each stripe's noisy histogram uses fresh independent Laplace
/// draws at scale `1/ε`, exactly as [`dawa_partition`]; only *which*
/// deterministic stream supplies the underlying uniforms changes, and
/// the substream seeds derive from the kernel's seeded stream, so whole-
/// experiment reproducibility is preserved.
pub fn dawa_partition_batch(
    kernel: &ProtectedKernel,
    svs: &[SourceVar],
    eps: f64,
    opts: &DawaOptions,
    res: Option<&BudgetReservation<'_>>,
) -> Result<Vec<Matrix>> {
    let reqs: Vec<(SourceVar, f64)> = svs.iter().map(|&s| (s, eps)).collect();
    let (base, snaps) = kernel.charge_and_snapshot_batch(&reqs, res)?;
    let mut out: Vec<Matrix> = vec![Matrix::identity(1); svs.len()];
    fill_partitions(&snaps, base, eps, opts, &mut out);
    Ok(out)
}

/// SplitMix64 of `base + counter` — the counter-based substream seed
/// derivation (same finalizer the rand shim uses for seed expansion, so
/// substreams are as well-mixed as top-level seeds).
fn substream_seed(base: u64, counter: u64) -> u64 {
    let mut z = base.wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stage-1 selection for one stripe from its snapshot and substream seed —
/// a pure function, which is what makes the threaded batch bit-identical
/// to the sequential loop.
fn partition_one_stripe(x: &[f64], seed: u64, eps: f64, opts: &DawaOptions) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let eps2 = opts.eps_stage2.max(f64::MIN_POSITIVE);
    let noisy: Vec<f64> = x
        .iter()
        .map(|&v| v + laplace(&mut rng, 1.0 / eps))
        .collect();
    let noise_var = if opts.debias { 2.0 / (eps * eps) } else { 0.0 };
    let labels = segment(&noisy, 2.0 / (eps2 * eps2), noise_var);
    let groups = labels.iter().max().map_or(1, |&m| m + 1);
    partition_from_labels(groups, &labels)
}

/// Serial reference: stripe `i` computed in order from substream `i`.
/// Also the comparison arm of the bit-identity regression test.
fn fill_partitions_serial(
    snaps: &[std::sync::Arc<Vec<f64>>],
    base: u64,
    eps: f64,
    opts: &DawaOptions,
    out: &mut [Matrix],
) {
    for (i, (x, slot)) in snaps.iter().zip(out.iter_mut()).enumerate() {
        *slot = partition_one_stripe(x, substream_seed(base, i as u64), eps, opts);
    }
}

#[cfg(not(feature = "parallel"))]
use fill_partitions_serial as fill_partitions;

/// Threaded variant: chunks of stripes compute on the persistent
/// pool executor; each stripe's output depends only on (snapshot, base,
/// stripe index), so the results are written into per-stripe slots
/// bit-identically to [`fill_partitions_serial`] — for any pool size.
#[cfg(feature = "parallel")]
fn fill_partitions(
    snaps: &[std::sync::Arc<Vec<f64>>],
    base: u64,
    eps: f64,
    opts: &DawaOptions,
    out: &mut [Matrix],
) {
    let nthreads = ektelo_matrix::pool::configured_parallelism();
    if snaps.len() < 2 || nthreads < 2 {
        fill_partitions_serial(snaps, base, eps, opts, out);
        return;
    }
    let chunk = snaps.len().div_ceil(nthreads);
    ektelo_matrix::pool::scope(|s| {
        for (c, (ochunk, schunk)) in out.chunks_mut(chunk).zip(snaps.chunks(chunk)).enumerate() {
            s.spawn(move || {
                for (i, (x, slot)) in schunk.iter().zip(ochunk.iter_mut()).enumerate() {
                    let counter = (c * chunk + i) as u64;
                    *slot = partition_one_stripe(x, substream_seed(base, counter), eps, opts);
                }
            });
        }
    });
}

/// Optimal segmentation into power-of-two-length buckets by DP.
/// `penalty` is the per-bucket cost and `noise_var` the per-cell variance
/// already present in `x` (subtracted from the deviation estimate, clamped
/// at zero). Exposed for direct testing.
pub(crate) fn segment(x: &[f64], penalty: f64, noise_var: f64) -> Vec<usize> {
    let n = x.len();
    assert!(n > 0, "cannot segment an empty vector");
    // Prefix sums of x and x² for O(1) bucket deviation costs.
    let mut s1 = vec![0.0; n + 1];
    let mut s2 = vec![0.0; n + 1];
    for (i, &v) in x.iter().enumerate() {
        s1[i + 1] = s1[i] + v;
        s2[i + 1] = s2[i] + v * v;
    }
    let cost = |lo: usize, hi: usize| -> f64 {
        let len = (hi - lo) as f64;
        let sum = s1[hi] - s1[lo];
        let sq = s2[hi] - s2[lo];
        // Σ(x−mean)² = Σx² − (Σx)²/len, debiased by the (len−1)·σ² the
        // input noise contributes in expectation.
        let dev = sq - sum * sum / len - (len - 1.0) * noise_var;
        dev.max(0.0) + penalty
    };
    let mut best = vec![f64::INFINITY; n + 1];
    let mut back = vec![0usize; n + 1];
    best[0] = 0.0;
    for end in 1..=n {
        let mut len = 1usize;
        while len <= end {
            let start = end - len;
            let c = best[start] + cost(start, end);
            if c < best[end] {
                best[end] = c;
                back[end] = start;
            }
            if len > end / 2 && len < end {
                // Next doubling would overshoot; also allow the full
                // prefix as a bucket (non-power length) for completeness
                // near the boundary.
                len = end;
            } else {
                len *= 2;
            }
        }
    }
    // Walk back to produce labels.
    let mut cuts = Vec::new();
    let mut pos = n;
    while pos > 0 {
        cuts.push((back[pos], pos));
        pos = back[pos];
    }
    cuts.reverse();
    let mut labels = vec![0usize; n];
    for (g, &(lo, hi)) in cuts.iter().enumerate() {
        for l in labels.iter_mut().take(hi).skip(lo) {
            *l = g;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segmentation_labels_are_contiguous_and_increasing() {
        let x = vec![1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0, 2.0];
        let labels = segment(&x, 0.5, 0.0);
        for w in labels.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1, "labels {labels:?}");
        }
        assert_eq!(labels[0], 0);
    }

    #[test]
    fn uniform_region_merges_varied_region_splits() {
        let mut x = vec![5.0; 32];
        for (i, v) in x.iter_mut().enumerate().skip(16) {
            *v = (i * 97 % 41) as f64; // erratic second half
        }
        let labels = segment(&x, 1.0, 0.0);
        let buckets_first: std::collections::HashSet<usize> =
            labels[..16].iter().copied().collect();
        let buckets_second: std::collections::HashSet<usize> =
            labels[16..].iter().copied().collect();
        assert!(
            buckets_first.len() < buckets_second.len(),
            "uniform half {buckets_first:?} vs varied half {buckets_second:?}"
        );
    }

    #[test]
    fn huge_penalty_collapses_to_one_bucket() {
        let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
        let labels = segment(&x, 1e9, 0.0);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn zero_penalty_splits_everything() {
        let x: Vec<f64> = (0..8).map(|i| (i * i) as f64).collect();
        let labels = segment(&x, 0.0, 0.0);
        // With no per-bucket cost, singleton buckets are optimal.
        assert_eq!(labels, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    /// ISSUE 3 satellite: the (optionally threaded) batch must be
    /// **bit-identical** to an explicit sequential loop over the same
    /// counter-based substreams — charge order, base draw, per-stripe
    /// partitions and total budget all agree. Run under
    /// `--features parallel` this pins the threaded path against the
    /// serial reference; without the feature both arms are serial and the
    /// test pins the substream protocol itself.
    #[test]
    fn batch_is_bit_identical_to_sequential_substream_loop() {
        use ektelo_matrix::partition_from_labels as labels_p;
        let make = || {
            let x: Vec<f64> = (0..96)
                .map(|i| {
                    if (i / 24) % 2 == 0 {
                        5.0
                    } else {
                        (i * 37 % 29) as f64
                    }
                })
                .collect();
            let k = ProtectedKernel::init_from_vector(x, 10.0, 42);
            let p = labels_p(4, &(0..96).map(|i| i / 24).collect::<Vec<_>>());
            let stripes = k.split_by_partition(k.root(), &p).unwrap();
            (k, stripes)
        };
        let opts = DawaOptions::new(0.5);

        let (k1, stripes1) = make();
        let batch = dawa_partition_batch(&k1, &stripes1, 0.5, &opts, None).unwrap();

        let (k2, stripes2) = make();
        let reqs: Vec<(SourceVar, f64)> = stripes2.iter().map(|&s| (s, 0.5)).collect();
        let (base, snaps) = k2.charge_and_snapshot_batch(&reqs, None).unwrap();
        let mut seq = vec![Matrix::identity(1); snaps.len()];
        fill_partitions_serial(&snaps, base, 0.5, &opts, &mut seq);

        assert_eq!(k1.budget_spent(), k2.budget_spent());
        assert_eq!(batch.len(), seq.len());
        for (a, b) in batch.iter().zip(&seq) {
            assert_eq!(a.shape(), b.shape(), "partition shapes diverged");
            let (da, db) = (a.to_dense(), b.to_dense());
            for r in 0..a.rows() {
                assert_eq!(
                    da.row_slice(r),
                    db.row_slice(r),
                    "threaded batch diverged from the sequential substream loop"
                );
            }
        }
    }

    /// Code-review regression: a failing request in the batch must leave
    /// the kernel exactly as a sequential charge-then-use loop would —
    /// requests up to and including the failing one charged, and **no
    /// privacy randomness consumed** (the substream base is drawn only
    /// after every request succeeded).
    #[test]
    fn failed_batch_charges_prefix_and_consumes_no_randomness() {
        use ektelo_data::{Schema, Table};
        let seed = 23;
        let make = || {
            let schema = Schema::from_sizes(&[("v", 8)]);
            let rows: Vec<Vec<u32>> = (0..32).map(|i| vec![i % 8]).collect();
            let k = ProtectedKernel::init(Table::from_rows(schema, &rows), 10.0, seed);
            let x = k.vectorize(k.root()).unwrap();
            (k, x)
        };
        let opts = DawaOptions::new(0.5);

        // Kernel A: a failing batch (second source is a table, not a
        // vector), then a successful one.
        let (ka, xa) = make();
        let err = dawa_partition_batch(&ka, &[xa, ka.root()], 0.25, &opts, None).unwrap_err();
        assert!(matches!(
            err,
            crate::kernel::EktError::WrongSourceType { .. }
        ));
        // Both the vector charge and the failing source's charge landed
        // (the sequential loop charges before it touches the data).
        assert!((ka.budget_spent() - 0.5).abs() < 1e-12);
        let parts_a = dawa_partition_batch(&ka, &[xa], 0.25, &opts, None).unwrap();

        // Kernel B: only the successful batch. Identical seed, identical
        // draws — the failed attempt must not have advanced the stream.
        let (kb, xb) = make();
        let parts_b = dawa_partition_batch(&kb, &[xb], 0.25, &opts, None).unwrap();
        assert_eq!(parts_a.len(), parts_b.len());
        for (a, b) in parts_a.iter().zip(&parts_b) {
            assert_eq!(a.shape(), b.shape());
            let (da, db) = (a.to_dense(), b.to_dense());
            for r in 0..a.rows() {
                assert_eq!(da.row_slice(r), db.row_slice(r));
            }
        }
    }

    #[test]
    fn batch_charges_with_parallel_composition_and_is_deterministic() {
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64 * 3.0).collect();
        let run = || {
            let k = ProtectedKernel::init_from_vector(x.clone(), 2.0, 9);
            let p = ektelo_matrix::partition_from_labels(
                2,
                &(0..64).map(|i| i / 32).collect::<Vec<_>>(),
            );
            let stripes = k.split_by_partition(k.root(), &p).unwrap();
            let parts =
                dawa_partition_batch(&k, &stripes, 0.75, &DawaOptions::new(0.5), None).unwrap();
            // Sibling stripes compose in parallel: one ε charge at the root.
            assert!((k.budget_spent() - 0.75).abs() < 1e-12);
            parts
                .iter()
                .map(|m| (m.rows(), m.cols()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run(), "batch must be deterministic given the seed");
    }

    #[test]
    fn kernel_integration_produces_partition_and_charges() {
        let x: Vec<f64> = (0..64).map(|i| if i < 32 { 10.0 } else { 50.0 }).collect();
        let k = ProtectedKernel::init_from_vector(x, 2.0, 3);
        let p = dawa_partition(&k, k.root(), 1.0, &DawaOptions::new(1.0)).unwrap();
        assert!(p.is_partition());
        assert_eq!(p.cols(), 64);
        assert!((k.budget_spent() - 1.0).abs() < 1e-12);
        // The partition should be far coarser than singletons.
        assert!(p.rows() < 40, "got {} buckets", p.rows());
    }
}
