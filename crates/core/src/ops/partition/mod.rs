//! Partition selection operators (paper §5.4 and §8).
//!
//! A partition selection operator outputs a `p×n` partition matrix `P`
//! (each domain cell assigned to exactly one group), which feeds
//! `V-ReduceByPartition` (merge cells) or `V-SplitByPartition` (process
//! groups independently under parallel composition).
//!
//! [`ahp_partition`] and [`dawa_partition`] are *data-adaptive*
//! (Private→Public): they inspect a noisy copy of the data to find nearly
//! uniform regions. The rest are Public.

mod ahp;
mod dawa;
mod grid;
mod stripe;
mod workload_based;

pub use ahp::{ahp_partition, AhpOptions};
pub use dawa::{dawa_partition, dawa_partition_batch, DawaOptions};
pub use grid::grid_partition;
pub use stripe::{stripe_partition, stripe_partition_labels};
pub use workload_based::{workload_based_partition, workload_reduction};

use ektelo_matrix::Matrix;

/// The marginal partition over the attributes flagged `true` in `keep`:
/// reduces the data vector to the marginal sub-vector (paper §5.4,
/// `Marginal(attr)`). Identical in form to the marginal *workload*; as a
/// partition it groups all cells sharing the kept attributes' values.
pub fn marginal_partition(sizes: &[usize], keep: &[bool]) -> Matrix {
    let p = ektelo_data::workloads::marginal(sizes, keep);
    debug_assert!(p.is_partition());
    p
}

/// Extracts contiguous bucket boundaries from a 1-D interval partition
/// matrix (as produced by DAWA): returns `buckets + 1` cut positions.
/// Panics if the partition is not contiguous.
pub fn interval_partition_bounds(p: &Matrix) -> Vec<usize> {
    let sp = p.to_sparse();
    let n = sp.cols();
    let mut label_of = vec![usize::MAX; n];
    for g in 0..sp.rows() {
        for (c, _) in sp.row_entries(g) {
            label_of[c] = g;
        }
    }
    let mut bounds = vec![0usize];
    for j in 1..n {
        if label_of[j] != label_of[j - 1] {
            bounds.push(j);
        }
    }
    bounds.push(n);
    // Verify contiguity: number of cuts must equal number of groups + 1.
    assert_eq!(
        bounds.len(),
        sp.rows() + 1,
        "partition is not a contiguous interval partition"
    );
    bounds
}

/// Maps 1-D range queries on the original domain onto bucket indices of a
/// contiguous partition (for running Greedy-H on DAWA's reduced domain).
pub fn map_ranges_to_buckets(ranges: &[(usize, usize)], bounds: &[usize]) -> Vec<(usize, usize)> {
    let bucket_of = |cell: usize| -> usize {
        // bounds is sorted; find the bucket containing `cell`.
        match bounds.binary_search(&cell) {
            Ok(i) => i.min(bounds.len() - 2),
            Err(i) => i - 1,
        }
    };
    ranges
        .iter()
        .map(|&(lo, hi)| {
            let b_lo = bucket_of(lo);
            let b_hi = bucket_of(hi - 1) + 1;
            (b_lo, b_hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_partition_is_a_partition() {
        let p = marginal_partition(&[3, 4, 2], &[true, false, true]);
        assert!(p.is_partition());
        assert_eq!(p.shape(), (6, 24));
    }
}
