//! Partition selection operators (paper §5.4 and §8).
//!
//! A partition selection operator outputs a `p×n` partition matrix `P`
//! (each domain cell assigned to exactly one group), which feeds
//! `V-ReduceByPartition` (merge cells) or `V-SplitByPartition` (process
//! groups independently under parallel composition).
//!
//! [`ahp_partition`] and [`dawa_partition`] are *data-adaptive*
//! (Private→Public): they inspect a noisy copy of the data to find nearly
//! uniform regions. The rest are Public.

mod ahp;
mod dawa;
mod grid;
mod stripe;
mod workload_based;

pub use ahp::{ahp_partition, AhpOptions};
pub use dawa::{dawa_partition, dawa_partition_batch, DawaOptions};
pub use grid::grid_partition;
pub use stripe::{stripe_partition, stripe_partition_labels};
pub use workload_based::{workload_based_partition, workload_reduction};

use ektelo_matrix::Matrix;

/// The marginal partition over the attributes flagged `true` in `keep`:
/// reduces the data vector to the marginal sub-vector (paper §5.4,
/// `Marginal(attr)`). Identical in form to the marginal *workload*; as a
/// partition it groups all cells sharing the kept attributes' values.
pub fn marginal_partition(sizes: &[usize], keep: &[bool]) -> Matrix {
    let p = ektelo_data::workloads::marginal(sizes, keep);
    debug_assert!(p.is_partition());
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marginal_partition_is_a_partition() {
        let p = marginal_partition(&[3, 4, 2], &[true, false, true]);
        assert!(p.is_partition());
        assert_eq!(p.shape(), (6, 24));
    }
}
