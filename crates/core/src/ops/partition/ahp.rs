//! AHPpartition (Zhang et al. 2014; paper §5.4, Plan #8).
//! Private→Public.
//!
//! AHP's key subroutine: spend ε on a noisy histogram, zero out cells below
//! a threshold `t = η·ln(n)/ε` (noise dominates them anyway), then cluster
//! cells with similar noisy counts so that within-cluster uniformity error
//! is balanced against per-cluster noise. Cells are sorted by noisy value
//! and greedily grouped while the cluster's spread stays under the
//! threshold — matching AHP's sort-and-cluster stage.

use ektelo_matrix::{partition_from_labels, Matrix};

use crate::kernel::noise::laplace;
use crate::kernel::{ProtectedKernel, Result, SourceVar};

/// Tuning constants for [`ahp_partition`] (defaults follow the AHP paper's
/// recommendations).
#[derive(Clone, Debug)]
pub struct AhpOptions {
    /// Threshold multiplier η: cells with noisy count below `η·ln(n)/ε`
    /// are treated as empty.
    pub eta: f64,
    /// Cluster spread multiplier: a cluster is closed once
    /// `max − min > gamma/ε`.
    pub gamma: f64,
}

impl Default for AhpOptions {
    fn default() -> Self {
        AhpOptions {
            eta: 0.35,
            gamma: 2.0,
        }
    }
}

/// Computes a data-adaptive partition of vector source `sv`, spending
/// `eps`.
pub fn ahp_partition(
    kernel: &ProtectedKernel,
    sv: SourceVar,
    eps: f64,
    opts: &AhpOptions,
) -> Result<Matrix> {
    kernel.charge(sv, eps)?;
    kernel.with_vector(sv, move |x, rng| {
        let n = x.len();
        let mut noisy: Vec<f64> = x.iter().map(|&v| v + laplace(rng, 1.0 / eps)).collect();
        // Thresholding: suppress noise-dominated cells.
        let t = opts.eta * (n.max(2) as f64).ln() / eps;
        for v in noisy.iter_mut() {
            if *v < t {
                *v = 0.0;
            }
        }
        // Sort cells by noisy value, then greedily cluster.
        let mut order: Vec<usize> = (0..n).collect();
        // total_cmp: no unwrap on a partial order — NaN (impossible for
        // finite data + Laplace draws, but cheap to be total about) sorts
        // last instead of panicking.
        order.sort_by(|&a, &b| noisy[a].total_cmp(&noisy[b]));
        let spread_cap = opts.gamma / eps;
        let mut labels = vec![0usize; n];
        let mut group = 0usize;
        let mut cluster_min = noisy[order[0]];
        for (rank, &cell) in order.iter().enumerate() {
            if rank > 0 && noisy[cell] - cluster_min > spread_cap {
                group += 1;
                cluster_min = noisy[cell];
            }
            labels[cell] = group;
        }
        partition_from_labels(group + 1, &labels)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_valid_partition() {
        let x: Vec<f64> = (0..64).map(|i| (i / 16) as f64 * 50.0).collect();
        let k = ProtectedKernel::init_from_vector(x, 10.0, 5);
        let p = ahp_partition(&k, k.root(), 5.0, &AhpOptions::default()).unwrap();
        assert!(p.is_partition());
        assert_eq!(p.cols(), 64);
    }

    #[test]
    fn uniform_data_collapses_to_few_groups() {
        let x = vec![100.0; 128];
        let k = ProtectedKernel::init_from_vector(x, 10.0, 6);
        let p = ahp_partition(&k, k.root(), 5.0, &AhpOptions::default()).unwrap();
        assert!(
            p.rows() <= 16,
            "uniform data should form few clusters, got {}",
            p.rows()
        );
    }

    #[test]
    fn distinct_levels_stay_separate_at_high_eps() {
        // Two well-separated levels must not merge when noise is small.
        let mut x = vec![0.0; 64];
        for v in x.iter_mut().take(32) {
            *v = 1000.0;
        }
        let k = ProtectedKernel::init_from_vector(x, 100.0, 7);
        let p = ahp_partition(&k, k.root(), 50.0, &AhpOptions::default()).unwrap();
        let dense = p.to_dense();
        // Find groups of cell 0 and cell 63; they must differ.
        let group_of = |j: usize| (0..p.rows()).find(|&g| dense.get(g, j) == 1.0).unwrap();
        assert_ne!(group_of(0), group_of(63));
    }

    #[test]
    fn charges_exactly_eps() {
        let k = ProtectedKernel::init_from_vector(vec![1.0; 16], 1.0, 8);
        ahp_partition(&k, k.root(), 0.3, &AhpOptions::default()).unwrap();
        assert!((k.budget_spent() - 0.3).abs() < 1e-12);
    }
}
