//! Grid partition (paper §5.4, `Grid`). Public.
//!
//! Partitions a 2-D `rows×cols` domain into a `g×g` block grid; the
//! blocks feed `V-SplitByPartition` (AdaptiveGrid's per-block subplans) or
//! `V-ReduceByPartition` (coarsening).

use ektelo_matrix::{partition_from_labels, Matrix};

/// The g×g block partition of a `rows×cols` grid (blocks near-equal).
/// Returns the partition matrix together with each block's rectangle
/// `(r_lo, r_hi, c_lo, c_hi)` in group order.
pub fn grid_partition(
    rows: usize,
    cols: usize,
    g: usize,
) -> (Matrix, Vec<(usize, usize, usize, usize)>) {
    assert!(rows > 0 && cols > 0 && g >= 1);
    let gr = g.min(rows);
    let gc = g.min(cols);
    let rb = bounds(rows, gr);
    let cb = bounds(cols, gc);
    let mut rects = Vec::with_capacity(gr * gc);
    for r in rb.windows(2) {
        for c in cb.windows(2) {
            rects.push((r[0], r[1], c[0], c[1]));
        }
    }
    let mut labels = vec![0usize; rows * cols];
    for (gidx, &(r1, r2, c1, c2)) in rects.iter().enumerate() {
        for r in r1..r2 {
            for c in c1..c2 {
                labels[r * cols + c] = gidx;
            }
        }
    }
    (partition_from_labels(rects.len(), &labels), rects)
}

fn bounds(n: usize, g: usize) -> Vec<usize> {
    let base = n / g;
    let extra = n % g;
    let mut out = Vec::with_capacity(g + 1);
    let mut pos = 0;
    out.push(0);
    for i in 0..g {
        pos += base + usize::from(i < extra);
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_valid_and_complete() {
        let (p, rects) = grid_partition(6, 8, 3);
        assert!(p.is_partition());
        assert_eq!(p.rows(), 9);
        assert_eq!(rects.len(), 9);
        let total_area: usize = rects.iter().map(|&(a, b, c, d)| (b - a) * (d - c)).sum();
        assert_eq!(total_area, 48);
    }

    #[test]
    fn reduce_by_grid_sums_blocks() {
        let (p, _) = grid_partition(4, 4, 2);
        let x = vec![1.0; 16];
        assert_eq!(p.matvec(&x), vec![4.0; 4]);
    }

    #[test]
    fn g_larger_than_domain_clamps() {
        let (p, _) = grid_partition(2, 2, 10);
        assert_eq!(p.rows(), 4);
    }
}
