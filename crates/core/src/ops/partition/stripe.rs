//! Stripe partition (paper §9.2, `Stripe(attr)`). Public.
//!
//! Splits a multi-dimensional domain into parallel 1-D "stripes" along
//! `attr`: one group per combination of the *other* attributes' values.
//! Each group, in original cell order, is exactly the 1-D histogram of
//! `attr` for that fixed combination — the input to the per-stripe
//! subplans of `HB-Striped` / `DAWA-Striped` (Algorithm 5).

use ektelo_matrix::{partition_from_labels, Matrix};

/// Per-cell stripe labels: cell → index of its non-`attr` value
/// combination.
pub fn stripe_partition_labels(sizes: &[usize], attr: usize) -> Vec<usize> {
    assert!(attr < sizes.len(), "stripe attribute out of range");
    let n: usize = sizes.iter().product();
    let mut labels = Vec::with_capacity(n);
    for cell in 0..n {
        // Decode mixed-radix coordinates (first attribute most
        // significant, matching `Schema::cell_index`).
        let mut rest = cell;
        let mut coords = vec![0usize; sizes.len()];
        for i in (0..sizes.len()).rev() {
            coords[i] = rest % sizes[i];
            rest /= sizes[i];
        }
        let mut label = 0usize;
        for i in 0..sizes.len() {
            if i != attr {
                label = label * sizes[i] + coords[i];
            }
        }
        labels.push(label);
    }
    labels
}

/// The stripe partition matrix: `(∏_{i≠attr} sizes[i]) × ∏ sizes[i]`.
pub fn stripe_partition(sizes: &[usize], attr: usize) -> Matrix {
    let groups: usize = sizes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != attr)
        .map(|(_, &s)| s)
        .product();
    partition_from_labels(groups.max(1), &stripe_partition_labels(sizes, attr))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_counts_and_validity() {
        let p = stripe_partition(&[4, 3, 2], 0);
        assert!(p.is_partition());
        assert_eq!(p.shape(), (6, 24));
        // Every group has exactly sizes[attr] = 4 cells.
        let sizes = p.abs_row_sums();
        assert!(sizes.iter().all(|&s| s == 4.0));
    }

    #[test]
    fn stripe_on_first_attr_preserves_attr_order_within_group() {
        // sizes [3, 2], stripe on attr 0: group g = value of attr 1;
        // its cells are {0*2+g, 1*2+g, 2*2+g} in increasing order.
        let labels = stripe_partition_labels(&[3, 2], 0);
        assert_eq!(labels, vec![0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn stripe_on_last_attr_groups_rows() {
        let labels = stripe_partition_labels(&[2, 3], 1);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn single_attribute_degenerates_to_one_group() {
        let p = stripe_partition(&[5], 0);
        assert_eq!(p.shape(), (1, 5));
    }
}
