//! Workload-based partition selection (paper §8, Algorithm 4). Public.
//!
//! Cells the workload never distinguishes — identical columns of `W` — can
//! be merged losslessly: `W x = W' x'` with `W' = W P⁺`, `x' = P x`
//! (Prop. 8.3), and the reduction never increases error (Thm. 8.4).
//! Finding identical columns without materializing `W` uses a randomized
//! sketch (Algorithm 4): `h = Wᵀ v` for random `v` groups columns by the
//! value of `h`; identical columns always collide, distinct columns
//! collide with probability ≈ 0. We run the sketch `k` times (default 2)
//! to push the failure probability below ~10⁻³².

use ektelo_matrix::{partition_from_labels, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// Computes the workload-based reduction matrix `P` (Algorithm 4) with `k`
/// independent sketch repetitions.
///
/// Columns are compared after quantizing the sketch to an absolute grid
/// (10⁻¹¹ of the sketch's range): implicit evaluation (prefix sums,
/// difference arrays) reaches mathematically identical columns along
/// different floating-point accumulation paths, so bit-exact comparison
/// would spuriously split them. Quantization keeps the false-collision
/// probability of *distinct* columns at ~10⁻¹¹ per sketch (~10⁻²² with
/// the default k = 2) while absorbing the absolute accumulation error.
pub fn workload_based_partition(workload: &Matrix, seed: u64, k: usize) -> Matrix {
    let n = workload.cols();
    let m = workload.rows();
    let k = k.max(1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x8a17);
    // Column signatures: k quantized sketch values per column. The grid
    // step is absolute (10⁻¹¹ of the sketch's dynamic range) because the
    // accumulation error of implicit evaluation is absolute too — e.g. a
    // zero column downstream of cancelling prefix sums carries ~1e-16
    // residue that a relative comparison could never match with an exact
    // zero.
    let mut signatures: Vec<Vec<i64>> = vec![Vec::with_capacity(k); n];
    for _ in 0..k {
        let v: Vec<f64> = (0..m).map(|_| rng.random::<f64>()).collect();
        let h = workload.rmatvec(&v);
        let max_abs = h.iter().fold(0.0f64, |a, &b| a.max(b.abs()));
        let step = (max_abs * 1e-11).max(f64::MIN_POSITIVE);
        for (sig, &hv) in signatures.iter_mut().zip(&h) {
            sig.push((hv / step).round() as i64);
        }
    }
    let mut groups: HashMap<&[i64], usize> = HashMap::new();
    let mut labels = vec![0usize; n];
    for (j, sig) in signatures.iter().enumerate() {
        let next = groups.len();
        let g = *groups.entry(sig.as_slice()).or_insert(next);
        labels[j] = g;
    }
    partition_from_labels(groups.len(), &labels)
}

/// Convenience: the full reduction of paper Prop. 8.3 — returns
/// `(P, W' = W·P⁺)` so plans can transform both the data and the workload.
pub fn workload_reduction(workload: &Matrix, seed: u64) -> (Matrix, Matrix) {
    let p = workload_based_partition(workload, seed, 2);
    let w_reduced = Matrix::product(workload.clone(), p.partition_pinv());
    (p, w_reduced)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_8_1_two_group_reduction() {
        // Census(salary≤100K ∧ sex=M), (salary>100K ∧ sex=F): over a
        // 4-cell domain (salary≤?, sex) the workload needs only the cells
        // it touches; untouched cells share the all-zero column group.
        let w = Matrix::from_rows(vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 0.0, 1.0]]);
        let p = workload_based_partition(&w, 0, 2);
        // Groups: {cell0}, {cell1, cell2}, {cell3} → 3 groups.
        assert_eq!(p.rows(), 3);
    }

    #[test]
    fn marginal_workload_admits_no_reduction() {
        // All 1-way marginals distinguish every cell (paper Example 8.1).
        let w = ektelo_data::workloads::all_k_way_marginals(&[3, 4], 1);
        let p = workload_based_partition(&w, 1, 2);
        assert_eq!(p.rows(), 12);
    }

    #[test]
    fn reduction_is_lossless_prop_8_3() {
        // Random small-range workload over 64 cells with forced duplicate
        // columns (queries over pairs).
        let ranges: Vec<(usize, usize)> = (0..16).map(|i| (4 * (i % 8), 4 * (i % 8) + 4)).collect();
        let w = Matrix::range_queries(64, ranges);
        let (p, w_red) = workload_reduction(&w, 7);
        assert!(p.rows() < 64, "expected a real reduction, got {}", p.rows());
        let x: Vec<f64> = (0..64).map(|i| ((i * 31) % 11) as f64).collect();
        let x_red = p.matvec(&x);
        let full = w.matvec(&x);
        let reduced = w_red.matvec(&x_red);
        for (a, b) in full.iter().zip(&reduced) {
            assert!((a - b).abs() < 1e-9, "lossless reduction violated");
        }
    }

    #[test]
    fn total_workload_reduces_to_one_group() {
        let w = Matrix::total(100);
        let p = workload_based_partition(&w, 3, 2);
        assert_eq!(p.rows(), 1);
    }

    #[test]
    fn identity_workload_reduces_nothing() {
        let w = Matrix::identity(32);
        let p = workload_based_partition(&w, 4, 2);
        assert_eq!(p.rows(), 32);
    }

    #[test]
    fn works_on_implicit_census_style_workload() {
        // Prefix ⊗ (Total ∪ Identity): huge row count, implicit evaluation.
        let w = Matrix::kron(
            Matrix::prefix(64),
            Matrix::vstack(vec![Matrix::total(4), Matrix::identity(4)]),
        );
        let p = workload_based_partition(&w, 5, 2);
        // This workload distinguishes all cells.
        assert_eq!(p.rows(), 256);
        assert!(p.is_partition());
    }
}
