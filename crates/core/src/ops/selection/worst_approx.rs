//! Worst-approx: MWEM's private query selection (paper §5.3; Hardt et al.
//! 2012). Private→Public.
//!
//! Given the analyst's current estimate `x̂`, selects the workload query
//! whose answer on the private data deviates most from its answer on `x̂`,
//! via the exponential mechanism (implemented with the Gumbel-max trick,
//! which is exactly equivalent).

use ektelo_matrix::Matrix;

use crate::kernel::noise::exponential_mechanism;
use crate::kernel::{BudgetReservation, EktError, ProtectedKernel, Result, SourceVar};

/// Selects the index of the workload row worst-approximated by `x_hat`,
/// spending `eps`. `score_sensitivity` bounds how much one record can move
/// any single query's score — 1 for counting queries with 0/1
/// coefficients (all workloads in the paper's MWEM experiments).
///
/// When `res` is given, the charge is redeemed from that reservation's
/// hold (the plan executor's path); with `None` it competes for open
/// budget like any imperative charge.
pub fn worst_approx(
    kernel: &ProtectedKernel,
    sv: SourceVar,
    workload: &Matrix,
    x_hat: &[f64],
    score_sensitivity: f64,
    eps: f64,
    res: Option<&BudgetReservation<'_>>,
) -> Result<usize> {
    if workload.rows() == 0 {
        return Err(EktError::InvalidArgument("empty workload".into()));
    }
    if workload.cols() != x_hat.len() {
        return Err(EktError::ShapeMismatch {
            expected: x_hat.len(),
            found: workload.cols(),
        });
    }
    kernel.charge_in(sv, eps, res)?;
    // Surface a wrong source type *before* checking a workspace out of
    // the pool: the closure below moves the workspace, so an error from
    // `with_vector` would drop it instead of restoring it.
    kernel.vector_len(sv)?;
    // Both workload evaluations (public estimate, private truth) share one
    // workspace; the truth answers are overwritten in place with the
    // per-query deviation scores. The workspace comes from the kernel's
    // pool, so MWEM's round loop — which calls this once per round with
    // the same workload — reuses one warm arena instead of rebuilding it.
    let mut ws = kernel.workspace_checkout();
    let mut est = vec![0.0; workload.rows()];
    workload.matvec_into(x_hat, &mut est, &mut ws);
    let (idx, ws) = kernel.with_vector(sv, move |x, rng| {
        let mut scores = vec![0.0; workload.rows()];
        workload.matvec_into(x, &mut scores, &mut ws);
        for (s, e) in scores.iter_mut().zip(&est) {
            *s = (*s - e).abs();
        }
        (
            exponential_mechanism(rng, &scores, score_sensitivity, eps),
            ws,
        )
    })?;
    kernel.workspace_restore(ws);
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_obvious_worst_query() {
        // Data: spike at cell 3; estimate: uniform. The singleton query on
        // cell 3 has by far the worst approximation.
        let mut x = vec![1.0; 8];
        x[3] = 100.0;
        let x_hat = vec![1.0; 8];
        let w = Matrix::identity(8);
        let mut hits = 0;
        for seed in 0..50 {
            let k = ProtectedKernel::init_from_vector(x.clone(), 10.0, seed);
            let idx = worst_approx(&k, k.root(), &w, &x_hat, 1.0, 5.0, None).unwrap();
            if idx == 3 {
                hits += 1;
            }
        }
        assert!(hits > 40, "picked the spike only {hits}/50 times");
    }

    #[test]
    fn charges_budget() {
        let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
        let w = Matrix::identity(4);
        worst_approx(&k, k.root(), &w, &[0.0; 4], 1.0, 0.25, None).unwrap();
        assert!((k.budget_spent() - 0.25).abs() < 1e-12);
        // Exhausting the budget errors out.
        assert!(worst_approx(&k, k.root(), &w, &[0.0; 4], 1.0, 1.0, None).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
        let w = Matrix::identity(5);
        assert!(matches!(
            worst_approx(&k, k.root(), &w, &[0.0; 4], 1.0, 0.1, None),
            Err(EktError::ShapeMismatch { .. })
        ));
    }
}
