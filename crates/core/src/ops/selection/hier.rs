//! Hierarchical strategies: H2 (binary tree, Hay et al. 2010) and HB
//! (optimized branching factor, Qardaji et al. 2013) — plus Greedy-H
//! (workload-weighted binary hierarchy from the DAWA paper).
//!
//! All hierarchies are expressed as implicit [`Matrix::Range`] workloads:
//! one interval per tree node, so a strategy over n cells stores `O(n)`
//! index pairs and multiplies in `O(n)` (the paper's "special instance of
//! range queries" representation, §7.5).

use ektelo_matrix::Matrix;

/// The intervals of a k-ary hierarchy over `[0, n)`: the root, then each
/// level's children, down to singletons. Children split their parent into
/// `k` near-equal parts.
pub fn hierarchical_intervals(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(n > 0 && k >= 2, "hierarchy needs n > 0 and branching ≥ 2");
    let mut out = Vec::new();
    let mut frontier = vec![(0usize, n)];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &(lo, hi) in &frontier {
            out.push((lo, hi));
            let len = hi - lo;
            if len <= 1 {
                continue;
            }
            // Split into min(k, len) near-equal parts.
            let parts = k.min(len);
            let base = len / parts;
            let extra = len % parts;
            let mut start = lo;
            for i in 0..parts {
                let w = base + usize::from(i < extra);
                next.push((start, start + w));
                start += w;
            }
            debug_assert_eq!(start, hi);
        }
        frontier = next;
    }
    out
}

/// H2: the binary hierarchy of interval sums (paper Plan #3).
pub fn h2(n: usize) -> Matrix {
    Matrix::range_queries(n, hierarchical_intervals(n, 2))
}

/// HB's branching-factor rule (Qardaji et al.): pick the k ≥ 2 minimizing
/// the average range-query variance proxy `(k − 1) · h(k)³` where
/// `h(k) = ⌈log_k n⌉` — wider trees are shallower but each level costs
/// more sensitivity.
pub fn hb_branching(n: usize) -> usize {
    let mut best_k = 2;
    let mut best = f64::INFINITY;
    for k in 2..=n.clamp(2, 1024) {
        let h = (n as f64).ln() / (k as f64).ln();
        let h = h.ceil().max(1.0);
        let score = (k as f64 - 1.0) * h * h * h;
        if score < best {
            best = score;
            best_k = k;
        }
        // Score is quasi-convex in k; stop once clearly past the minimum.
        if score > 4.0 * best {
            break;
        }
    }
    best_k
}

/// HB: hierarchy with the optimized branching factor (paper Plan #4).
pub fn hb(n: usize) -> Matrix {
    Matrix::range_queries(n, hierarchical_intervals(n, hb_branching(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_hierarchy_counts() {
        // n = 4: [0,4), [0,2), [2,4), [0,1), [1,2), [2,3), [3,4) = 7 nodes.
        let iv = hierarchical_intervals(4, 2);
        assert_eq!(iv.len(), 7);
        assert_eq!(iv[0], (0, 4));
    }

    #[test]
    fn hierarchy_covers_every_level_fully() {
        for n in [3usize, 5, 8, 17] {
            for k in [2usize, 3, 4] {
                let iv = hierarchical_intervals(n, k);
                // Singletons must all be present (the leaf level).
                for j in 0..n {
                    assert!(iv.contains(&(j, j + 1)), "n={n} k={k} missing leaf {j}");
                }
                // The root must be present.
                assert!(iv.contains(&(0, n)));
            }
        }
    }

    #[test]
    fn h2_answers_range_queries_exactly() {
        let n = 8;
        let m = h2(n);
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = m.matvec(&x);
        // Root row is the total.
        assert_eq!(y[0], 28.0);
        // Sensitivity = levels = log2(8) + 1 = 4.
        assert_eq!(m.l1_sensitivity(), 4.0);
    }

    #[test]
    fn hb_branching_grows_with_domain() {
        let small = hb_branching(64);
        let large = hb_branching(1 << 20);
        assert!(small >= 2);
        assert!(
            large >= small,
            "branching should not shrink: {small} vs {large}"
        );
    }

    #[test]
    fn hb_sensitivity_below_h2_for_large_domains() {
        let n = 4096;
        assert!(hb(n).l1_sensitivity() <= h2(n).l1_sensitivity());
    }
}
