//! Greedy-H: the workload-weighted binary hierarchy from the DAWA paper
//! (Li et al. 2014; paper Plan #5 and the second stage of Plan #9).
//!
//! Each workload range query decomposes greedily into maximal nodes of a
//! binary interval tree. Levels that answer many workload queries get
//! proportionally more of the noise budget: minimizing
//! `Σ_ℓ c_ℓ / λ_ℓ²` subject to `Σ_ℓ λ_ℓ = const` gives the closed form
//! `λ_ℓ ∝ c_ℓ^{1/3}` for per-level weights λ_ℓ and usage counts c_ℓ.

use ektelo_matrix::Matrix;

/// Per-level intervals of the binary split tree over `[0, n)`.
fn levels(n: usize) -> Vec<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    let mut frontier = vec![(0usize, n)];
    while !frontier.is_empty() {
        out.push(frontier.clone());
        let mut next = Vec::new();
        for &(lo, hi) in &frontier {
            if hi - lo <= 1 {
                continue;
            }
            let mid = (lo + hi) / 2;
            next.push((lo, mid));
            next.push((mid, hi));
        }
        frontier = next;
    }
    out
}

/// Counts, per tree level, how many workload ranges use a node of that
/// level in their greedy decomposition.
fn level_usage(n: usize, ranges: &[(usize, usize)]) -> Vec<f64> {
    let depth = levels(n).len();
    let mut counts = vec![0.0; depth];
    for &(qlo, qhi) in ranges {
        decompose(0, n, qlo.min(n), qhi.min(n), 0, &mut counts);
    }
    counts
}

fn decompose(lo: usize, hi: usize, qlo: usize, qhi: usize, level: usize, counts: &mut [f64]) {
    if qlo >= hi || qhi <= lo || qlo >= qhi {
        return;
    }
    if qlo <= lo && hi <= qhi {
        counts[level] += 1.0;
        return;
    }
    debug_assert!(hi - lo > 1, "singleton must be fully covered or disjoint");
    let mid = (lo + hi) / 2;
    decompose(lo, mid, qlo, qhi, level + 1, counts);
    decompose(mid, hi, qlo, qhi, level + 1, counts);
}

/// Builds the Greedy-H strategy for a workload of range queries over
/// `[0, n)`. Falls back to uniform level weights when `ranges` is empty.
pub fn greedy_h(n: usize, ranges: &[(usize, usize)]) -> Matrix {
    let lv = levels(n);
    let usage = level_usage(n, ranges);
    // λ_ℓ ∝ c_ℓ^{1/3}; floor keeps unused levels measurable at low weight
    // so the strategy stays full-rank (leaves are always included).
    let weights: Vec<f64> = usage.iter().map(|&c| (c + 0.125).cbrt()).collect();
    let max_w = weights.iter().cloned().fold(f64::MIN, f64::max);
    let blocks = lv
        .into_iter()
        .zip(weights)
        .map(|(iv, w)| Matrix::scaled(w / max_w, Matrix::range_queries(n, iv)))
        .collect();
    Matrix::vstack(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_partition_each_depth() {
        for n in [4usize, 7, 16] {
            for lv in levels(n) {
                // Intervals at one level are disjoint.
                let mut cells = vec![0usize; n];
                for (lo, hi) in lv {
                    for c in cells.iter_mut().take(hi).skip(lo) {
                        *c += 1;
                    }
                }
                assert!(cells.iter().all(|&c| c <= 1));
            }
        }
    }

    #[test]
    fn decomposition_counts_match_hand_example() {
        // n = 8, query [0, 8): uses exactly the root.
        let u = level_usage(8, &[(0, 8)]);
        assert_eq!(u[0], 1.0);
        assert_eq!(u[1..].iter().sum::<f64>(), 0.0);
        // Query [1, 8) over the binary tree on [0,8):
        // right half [4,8) + [2,4) + [1,2) → one node at each of 3 levels.
        let u2 = level_usage(8, &[(1, 8)]);
        assert_eq!(u2.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn strategy_shape_and_rank() {
        let w = greedy_h(8, &[(0, 4), (2, 6)]);
        // All levels present: 1 + 2 + 4 + 8 = 15 rows.
        assert_eq!(w.rows(), 15);
        assert_eq!(w.cols(), 8);
        // Leaves present with nonzero weight → full rank (check by solving).
        let x: Vec<f64> = (0..8).map(|i| i as f64 + 1.0).collect();
        let y = w.matvec(&x);
        let r = ektelo_solvers::lsqr(&w, &y, &ektelo_solvers::LsqrOptions::default());
        for (a, b) in r.x.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn heavily_used_levels_get_more_weight() {
        // Workload of singletons at level=leaf: leaf weight should dominate
        // the root weight.
        let ranges: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 1)).collect();
        let w = greedy_h(8, &ranges);
        // Extract level weights from the union structure.
        if let Matrix::Union(blocks) = &w {
            let weight_of = |b: &Matrix| match b {
                Matrix::Scaled(c, _) => *c,
                _ => 1.0,
            };
            let root_w = weight_of(&blocks[0]);
            let leaf_w = weight_of(blocks.last().unwrap());
            assert!(leaf_w > root_w, "leaf {leaf_w} vs root {root_w}");
        } else {
            panic!("expected union structure");
        }
    }
}
