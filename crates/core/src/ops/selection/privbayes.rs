//! PrivBayes select (Zhang et al. 2017; paper §5.3, Plan #17).
//! Private→Public.
//!
//! Privately constructs a Bayesian network over the table's attributes by
//! greedily choosing, for each new attribute, a parent set maximizing
//! (private) mutual information via the exponential mechanism. The output
//! is the network structure: a list of cliques whose marginals are the
//! sufficient statistics for fitting the model. Measuring those marginals
//! (with `Vector Laplace`) and fitting is the rest of the PrivBayes plan.
//!
//! Assumption (as in the PrivBayes paper): the table cardinality `N` is
//! public. The mutual-information quality function then has sensitivity
//! `Δ(I) = (1/N)·ln N + ((N−1)/N)·ln(N/(N−1))` (natural-log variant of
//! PrivBayes Lemma 4.1 for non-binary attributes).

use ektelo_data::Table;

use crate::kernel::noise::exponential_mechanism;
use crate::kernel::{EktError, ProtectedKernel, Result, SourceVar};

/// One node of the learned network: `child` with its `parents`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clique {
    /// Attribute index of the child.
    pub child: usize,
    /// Attribute indices of the parents (possibly empty).
    pub parents: Vec<usize>,
}

/// A Bayesian network over the table's attributes.
#[derive(Clone, Debug)]
pub struct BayesNet {
    /// Attribute order in which the network was grown.
    pub order: Vec<usize>,
    /// One clique per attribute (the first has no parents).
    pub cliques: Vec<Clique>,
}

impl BayesNet {
    /// The attribute sets whose marginals must be measured: for each
    /// clique, `{child} ∪ parents`.
    pub fn measured_attribute_sets(&self) -> Vec<Vec<usize>> {
        self.cliques
            .iter()
            .map(|c| {
                let mut s = c.parents.clone();
                s.push(c.child);
                s.sort_unstable();
                s
            })
            .collect()
    }
}

/// Sensitivity of empirical mutual information w.r.t. one record, with
/// public N (PrivBayes Lemma 4.1, natural-log form).
pub fn mi_sensitivity(n: usize) -> f64 {
    assert!(n >= 2, "mutual information needs at least 2 records");
    let nf = n as f64;
    (1.0 / nf) * nf.ln() + ((nf - 1.0) / nf) * (nf / (nf - 1.0)).ln()
}

/// Privately selects a Bayesian network with at most `max_parents` parents
/// per node, spending `eps` (split evenly over the `d − 1` exponential-
/// mechanism selections).
pub fn privbayes_select(
    kernel: &ProtectedKernel,
    sv: SourceVar,
    max_parents: usize,
    eps: f64,
) -> Result<BayesNet> {
    let schema = kernel.schema(sv)?;
    let d = schema.arity();
    if d < 2 {
        return Err(EktError::InvalidArgument(
            "PrivBayes needs at least two attributes".into(),
        ));
    }
    kernel.charge(sv, eps)?;
    let eps_step = eps / (d as f64 - 1.0);
    kernel.with_table(sv, move |table, rng| {
        let n = table.num_rows().max(2);
        let sens = mi_sensitivity(n);

        // First attribute: highest (public-domain-agnostic) choice — we
        // follow PrivBayes in picking it uniformly at random.
        let first = {
            let scores = vec![0.0; d];
            exponential_mechanism(rng, &scores, 1.0, eps_step.max(f64::MIN_POSITIVE))
        };
        let mut order = vec![first];
        let mut cliques = vec![Clique {
            child: first,
            parents: Vec::new(),
        }];

        while order.len() < d {
            // Candidates: (remaining attr X, parent set Π ⊆ order, |Π| ≤ k).
            let mut candidates: Vec<Clique> = Vec::new();
            for x in 0..d {
                if order.contains(&x) {
                    continue;
                }
                for parents in subsets_up_to(&order, max_parents) {
                    candidates.push(Clique { child: x, parents });
                }
            }
            let scores: Vec<f64> = candidates
                .iter()
                .map(|c| mutual_information(table, c.child, &c.parents))
                .collect();
            let idx = exponential_mechanism(rng, &scores, sens, eps_step);
            let chosen = candidates.swap_remove(idx);
            order.push(chosen.child);
            cliques.push(chosen);
        }
        BayesNet { order, cliques }
    })
}

/// Empirical mutual information `I(X; Π)` in nats; `I(X; ∅) = 0`.
pub fn mutual_information(table: &Table, child: usize, parents: &[usize]) -> f64 {
    if parents.is_empty() {
        return 0.0;
    }
    let n = table.num_rows();
    if n == 0 {
        return 0.0;
    }
    let schema = table.schema();
    let names: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    let child_col = table.column(names[child]);
    let parent_cols: Vec<&[u32]> = parents.iter().map(|&p| table.column(names[p])).collect();
    let parent_sizes: Vec<usize> = parents
        .iter()
        .map(|&p| schema.attributes()[p].size())
        .collect();
    let child_size = schema.attributes()[child].size();

    // Joint histogram over (Π, X).
    let parent_domain: usize = parent_sizes.iter().product();
    let mut joint = vec![0.0f64; parent_domain * child_size];
    for i in 0..n {
        let mut pidx = 0usize;
        for (col, &size) in parent_cols.iter().zip(&parent_sizes) {
            pidx = pidx * size + col[i] as usize;
        }
        joint[pidx * child_size + child_col[i] as usize] += 1.0;
    }
    let nf = n as f64;
    // Marginals.
    let mut px = vec![0.0; child_size];
    let mut ppi = vec![0.0; parent_domain];
    for (idx, &c) in joint.iter().enumerate() {
        px[idx % child_size] += c;
        ppi[idx / child_size] += c;
    }
    let mut mi = 0.0;
    for (idx, &c) in joint.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        let pxy = c / nf;
        let p1 = ppi[idx / child_size] / nf;
        let p2 = px[idx % child_size] / nf;
        mi += pxy * (pxy / (p1 * p2)).ln();
    }
    mi.max(0.0)
}

/// All subsets of `set` of size 1..=k (and the empty set).
fn subsets_up_to(set: &[usize], k: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    let d = set.len();
    for mask in 1u32..(1 << d) {
        if (mask.count_ones() as usize) <= k {
            out.push(
                (0..d)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| set[i])
                    .collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A table where b is a noisy copy of a, and c is independent noise.
    fn correlated_table(rows: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("a", 4), ("b", 4), ("c", 4)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let a = rng.random_range(0..4u32);
            let b = if rng.random_bool(0.9) {
                a
            } else {
                rng.random_range(0..4u32)
            };
            let c = rng.random_range(0..4u32);
            t.push_row(&[a, b, c]);
        }
        t
    }

    #[test]
    fn mi_detects_correlation() {
        let t = correlated_table(5000, 1);
        let mi_ab = mutual_information(&t, 1, &[0]);
        let mi_cb = mutual_information(&t, 2, &[0]);
        assert!(mi_ab > 0.5, "correlated MI too small: {mi_ab}");
        assert!(mi_cb < 0.05, "independent MI too large: {mi_cb}");
    }

    #[test]
    fn mi_of_empty_parents_is_zero() {
        let t = correlated_table(100, 2);
        assert_eq!(mutual_information(&t, 0, &[]), 0.0);
    }

    #[test]
    fn sensitivity_decreases_with_n() {
        assert!(mi_sensitivity(100) > mi_sensitivity(10_000));
    }

    #[test]
    fn select_finds_the_correlated_edge_at_high_eps() {
        let mut found = 0;
        for seed in 0..10 {
            let t = correlated_table(5000, seed);
            let k = ProtectedKernel::init(t, 100.0, seed);
            let net = privbayes_select(&k, k.root(), 2, 50.0).unwrap();
            // Somewhere in the network, a and b must be linked.
            let linked = net.cliques.iter().any(|c| {
                (c.child == 0 && c.parents.contains(&1)) || (c.child == 1 && c.parents.contains(&0))
            });
            if linked {
                found += 1;
            }
        }
        assert!(found >= 8, "a–b edge found only {found}/10 times");
    }

    #[test]
    fn network_covers_every_attribute_once() {
        let t = correlated_table(500, 3);
        let k = ProtectedKernel::init(t, 10.0, 3);
        let net = privbayes_select(&k, k.root(), 1, 1.0).unwrap();
        let mut children: Vec<usize> = net.cliques.iter().map(|c| c.child).collect();
        children.sort_unstable();
        assert_eq!(children, vec![0, 1, 2]);
        // Parents precede children in the order.
        for c in &net.cliques {
            for p in &c.parents {
                let pi = net.order.iter().position(|&o| o == *p).unwrap();
                let ci = net.order.iter().position(|&o| o == c.child).unwrap();
                assert!(pi < ci);
            }
        }
    }

    #[test]
    fn budget_is_charged_once() {
        let t = correlated_table(500, 4);
        let k = ProtectedKernel::init(t, 1.0, 4);
        privbayes_select(&k, k.root(), 1, 0.4).unwrap();
        assert!((k.budget_spent() - 0.4).abs() < 1e-12);
    }
}
