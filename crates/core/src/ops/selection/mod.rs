//! Query selection operators (paper §5.3).
//!
//! A query selection operator outputs a set of linear queries in matrix
//! form — the *strategy* handed to `Vector Laplace`. Most are Public (they
//! depend only on domain size or workload); [`worst_approx`] and
//! [`privbayes_select`] consult the private data and are Private→Public.

mod greedy_h;
mod grids;
mod hdmm;
mod hier;
mod privbayes;
mod stripe;
mod worst_approx;

pub use greedy_h::greedy_h;
pub use grids::{adaptive_grid_round2, quad_tree, uniform_grid, uniform_grid_size};
pub use hdmm::{hdmm_1d, hdmm_kron, HdmmOptions};
pub use hier::{h2, hb, hb_branching, hierarchical_intervals};
pub use privbayes::{privbayes_select, BayesNet, Clique};
pub use stripe::stripe_select;
pub use worst_approx::worst_approx;

use ektelo_matrix::Matrix;

/// The Identity strategy (measure every cell).
pub fn identity(n: usize) -> Matrix {
    Matrix::identity(n)
}

/// The Total strategy (single sum query).
pub fn total(n: usize) -> Matrix {
    Matrix::total(n)
}

/// The Privelet strategy: Haar wavelet coefficients (paper Plan #2).
pub fn privelet(n: usize) -> Matrix {
    Matrix::wavelet(n)
}

/// The Prefix strategy (used as the *workload* in the CDF example).
pub fn prefix(n: usize) -> Matrix {
    Matrix::prefix(n)
}
