//! The Stripe(attr) selection operator (paper §9.2, Plan #16).
//!
//! When a striped plan's per-stripe subplan is data-independent (e.g. HB),
//! every stripe selects the same measurements, so the global strategy is a
//! single Kronecker product: the stripe strategy along the chosen attribute
//! and identity along every other attribute. This collapses hundreds of
//! per-partition subplans into one implicit matrix (`HB-Striped_kron`).

use ektelo_matrix::Matrix;

/// Builds `I ⊗ … ⊗ strategy(sizes[attr]) ⊗ … ⊗ I` over the given attribute
/// sizes.
pub fn stripe_select(
    sizes: &[usize],
    attr: usize,
    strategy: impl FnOnce(usize) -> Matrix,
) -> Matrix {
    assert!(attr < sizes.len(), "stripe attribute {attr} out of range");
    let mut strategy = Some(strategy);
    let factors = sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            if i == attr {
                // xlint: allow(panic-policy, reason = "i == attr holds for exactly one enumerate index, so the Option is taken exactly once")
                (strategy.take().expect("stripe attribute visited once"))(s)
            } else {
                Matrix::identity(s)
            }
        })
        .collect();
    Matrix::kron_list(factors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::selection::hier::hb;

    #[test]
    fn shape_is_product_of_factors() {
        let m = stripe_select(&[4, 3, 2], 0, Matrix::wavelet);
        assert_eq!(m.cols(), 24);
        assert_eq!(m.rows(), 4 * 3 * 2);
    }

    #[test]
    fn stripe_measures_independent_histograms() {
        // Stripe on attr 1 of a 2×3 domain with Total: measures the per-
        // value-of-attr-0 totals over attr 1? No — Total along attr 1 and
        // identity on attr 0 gives the attr-0 marginal.
        let m = stripe_select(&[2, 3], 1, Matrix::total);
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(m.matvec(&x), vec![6.0, 15.0]);
    }

    #[test]
    fn hb_stripe_is_fully_implicit() {
        let m = stripe_select(&[5000, 5, 7, 4, 2], 0, hb);
        assert_eq!(m.cols(), 1_400_000);
        // Only the HB interval list is stored.
        assert!(m.stored_scalars() < 50_000);
    }
}
