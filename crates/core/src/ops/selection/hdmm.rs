//! HDMM-style strategy optimization (McKenna et al. 2018; paper Plan #13).
//!
//! Full HDMM optimizes a parameterized strategy (p-Identity) per Kronecker
//! factor by gradient descent on the expected-error objective
//! `err(W, A) = ‖A‖₁² · trace(W (AᵀA)⁻¹ Wᵀ)`. We implement the same
//! objective over a slightly restricted parameterization — per-level
//! weights of a binary hierarchy plus an identity block — optimized by
//! coordinate descent with golden-section line search. This keeps the
//! workload-adaptive behaviour (and the `O(n³)`-per-evaluation cost
//! profile the scalability experiment measures) while staying dependency-
//! free; see DESIGN.md §2 for the substitution note.

use ektelo_matrix::{DenseMatrix, Matrix};
use ektelo_solvers::{cholesky_factor, cholesky_solve};

/// Options for the HDMM optimizer.
#[derive(Clone, Debug)]
pub struct HdmmOptions {
    /// Coordinate-descent passes over the weight vector.
    pub passes: usize,
    /// Domains larger than this are optimized on a coarsened copy and the
    /// learned level weights are stretched back (dense `O(n³)` algebra
    /// bounds the exact optimization).
    pub max_opt_domain: usize,
}

impl Default for HdmmOptions {
    fn default() -> Self {
        HdmmOptions {
            passes: 3,
            max_opt_domain: 256,
        }
    }
}

/// Optimizes a 1-D strategy for `workload` (n columns). Returns the
/// weighted strategy matrix.
pub fn hdmm_1d(workload: &Matrix, opts: &HdmmOptions) -> Matrix {
    let n = workload.cols();
    assert!(n > 0, "hdmm over empty domain");
    if n <= opts.max_opt_domain {
        let weights = optimize_weights(workload, n, opts.passes);
        weighted_strategy(n, &weights)
    } else {
        // Coarsen: optimize level weights on a uniformly reduced domain,
        // then stretch the learned weight profile to the full tree depth.
        let b = opts.max_opt_domain;
        let p = uniform_partition(n, b);
        let pinv = p.partition_pinv();
        let coarse_w = Matrix::product(workload.clone(), pinv);
        let coarse_weights = optimize_weights(&coarse_w, b, opts.passes);
        let full_depth = depth_of(n) + 1; // + identity block
        let weights = stretch(&coarse_weights, full_depth);
        weighted_strategy(n, &weights)
    }
}

/// Per-factor HDMM for Kronecker workloads: optimizes each 1-D factor
/// independently and returns the Kronecker product of the learned
/// strategies (HDMM's OPT_⊗ decomposition).
pub fn hdmm_kron(factors: &[Matrix], opts: &HdmmOptions) -> Matrix {
    assert!(!factors.is_empty());
    let strategies = factors.iter().map(|f| hdmm_1d(f, opts)).collect();
    Matrix::kron_list(strategies)
}

/// The parameterized strategy: binary-hierarchy levels (root .. depth) each
/// scaled by a weight, plus a weighted identity block as the last entry.
fn weighted_strategy(n: usize, weights: &[f64]) -> Matrix {
    let lv = level_intervals(n);
    let mut blocks: Vec<Matrix> = Vec::with_capacity(weights.len());
    for (iv, &w) in lv.iter().zip(weights) {
        if w > 1e-6 {
            blocks.push(Matrix::scaled(w, Matrix::range_queries(n, iv.clone())));
        }
    }
    // Identity block (last weight) keeps the strategy full-rank.
    let id_w = weights.last().copied().unwrap_or(1.0).max(1e-3);
    blocks.push(Matrix::scaled(id_w, Matrix::identity(n)));
    Matrix::vstack(blocks)
}

fn optimize_weights(workload: &Matrix, n: usize, passes: usize) -> Vec<f64> {
    let depth = depth_of(n);
    let lv = level_intervals(n);
    // Precompute each level's Gram (dense) and the workload Gram.
    let level_grams: Vec<DenseMatrix> = lv
        .iter()
        .map(|iv| Matrix::range_queries(n, iv.clone()).gram_dense())
        .collect();
    let id_gram = DenseMatrix::identity(n);
    let w_gram = workload.gram_dense();

    // weights: one per hierarchy level + identity block.
    let mut weights = vec![1.0; depth + 1];
    let mut best = objective(&weights, &level_grams, &id_gram, &w_gram);
    for _ in 0..passes {
        for i in 0..weights.len() {
            let (w, val) = golden_section(
                |w| {
                    let mut cand = weights.clone();
                    cand[i] = w;
                    objective(&cand, &level_grams, &id_gram, &w_gram)
                },
                1e-3,
                8.0,
                24,
            );
            if val < best {
                weights[i] = w;
                best = val;
            }
        }
    }
    weights
}

/// `err(A(w)) = ‖A‖₁² · trace(W G⁻¹ Wᵀ)` with
/// `G = Σ_ℓ w_ℓ² G_ℓ + w_id² I`. Levels are disjoint interval covers so
/// `‖A‖₁ = Σ_ℓ w_ℓ + w_id` exactly.
fn objective(
    weights: &[f64],
    level_grams: &[DenseMatrix],
    id_gram: &DenseMatrix,
    w_gram: &DenseMatrix,
) -> f64 {
    let n = id_gram.rows();
    let mut g = DenseMatrix::zeros(n, n);
    for (gm, &w) in level_grams.iter().zip(weights) {
        let w2 = w * w;
        for (o, v) in g.values_mut().iter_mut().zip(gm.values()) {
            *o += w2 * v;
        }
    }
    let wid = weights[level_grams.len()];
    for (o, v) in g.values_mut().iter_mut().zip(id_gram.values()) {
        *o += wid * wid * v + 1e-10;
    }
    let Some(l) = cholesky_factor(&g) else {
        return f64::INFINITY;
    };
    // trace(W G⁻¹ Wᵀ) = Σ_j (G⁻¹ G_W)[j][j] via one solve per column.
    let mut trace = 0.0;
    let mut col = vec![0.0; n];
    for j in 0..n {
        for (i, c) in col.iter_mut().enumerate() {
            *c = w_gram.get(i, j);
        }
        let sol = cholesky_solve(&l, &col);
        trace += sol[j];
    }
    let sens: f64 = weights.iter().sum();
    sens * sens * trace
}

fn golden_section(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64, iters: usize) -> (f64, f64) {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = hi - PHI * (hi - lo);
    let mut b = lo + PHI * (hi - lo);
    let mut fa = f(a);
    let mut fb = f(b);
    for _ in 0..iters {
        if fa < fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - PHI * (hi - lo);
            fa = f(a);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + PHI * (hi - lo);
            fb = f(b);
        }
    }
    if fa < fb {
        (a, fa)
    } else {
        (b, fb)
    }
}

fn depth_of(n: usize) -> usize {
    let mut d = 0;
    let mut span = n;
    while span > 1 {
        span = span.div_ceil(2);
        d += 1;
    }
    d + 1
}

fn level_intervals(n: usize) -> Vec<Vec<(usize, usize)>> {
    let mut out = Vec::new();
    let mut frontier = vec![(0usize, n)];
    while !frontier.is_empty() {
        out.push(frontier.clone());
        let mut next = Vec::new();
        for &(lo, hi) in &frontier {
            if hi - lo <= 1 {
                continue;
            }
            let mid = (lo + hi) / 2;
            next.push((lo, mid));
            next.push((mid, hi));
        }
        frontier = next;
    }
    out
}

fn uniform_partition(n: usize, groups: usize) -> Matrix {
    let labels: Vec<usize> = (0..n).map(|i| i * groups / n).collect();
    ektelo_matrix::partition_from_labels(groups, &labels)
}

fn stretch(weights: &[f64], new_len: usize) -> Vec<f64> {
    if weights.is_empty() {
        return vec![1.0; new_len];
    }
    (0..new_len)
        .map(|i| {
            let idx = i * weights.len() / new_len.max(1);
            weights[idx.min(weights.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected total squared error of strategy `A` for workload `W` under
    /// unit-ε Laplace: `2‖A‖₁² · trace(W G⁻¹ Wᵀ)` (constant factor dropped
    /// for comparisons).
    fn expected_error(w: &Matrix, a: &Matrix) -> f64 {
        let g = a.gram_dense();
        let mut gr = g.clone();
        let n = gr.rows();
        for i in 0..n {
            let v = gr.get(i, i);
            gr.set(i, i, v + 1e-9);
        }
        let l = cholesky_factor(&gr).unwrap();
        let wg = w.gram_dense();
        let mut trace = 0.0;
        let mut col = vec![0.0; n];
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = wg.get(i, j);
            }
            trace += cholesky_solve(&l, &col)[j];
        }
        let s = a.l1_sensitivity();
        s * s * trace
    }

    #[test]
    fn beats_identity_on_range_workloads() {
        let n = 32;
        let w = Matrix::prefix(n);
        let a = hdmm_1d(&w, &HdmmOptions::default());
        let err_hdmm = expected_error(&w, &a);
        let err_id = expected_error(&w, &Matrix::identity(n));
        assert!(
            err_hdmm < err_id,
            "optimized strategy ({err_hdmm}) should beat identity ({err_id}) on prefix workload"
        );
    }

    #[test]
    fn near_identity_on_identity_workload() {
        // For the identity workload, measuring cells directly is optimal;
        // the optimizer should not be much worse than identity itself.
        let n = 16;
        let w = Matrix::identity(n);
        let a = hdmm_1d(&w, &HdmmOptions::default());
        let err_hdmm = expected_error(&w, &a);
        let err_id = expected_error(&w, &Matrix::identity(n));
        assert!(err_hdmm <= err_id * 1.3, "{err_hdmm} vs {err_id}");
    }

    #[test]
    fn large_domain_uses_coarsening() {
        let n = 2048;
        let w = Matrix::prefix(n);
        let a = hdmm_1d(
            &w,
            &HdmmOptions {
                passes: 1,
                max_opt_domain: 64,
            },
        );
        assert_eq!(a.cols(), n);
        // Full-rank: the identity block guarantees solvability.
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let y = a.matvec(&x);
        assert_eq!(y.len(), a.rows());
    }

    #[test]
    fn kron_strategy_matches_factor_shapes() {
        let f1 = Matrix::prefix(8);
        let f2 = Matrix::identity(4);
        let a = hdmm_kron(
            &[f1, f2],
            &HdmmOptions {
                passes: 1,
                max_opt_domain: 64,
            },
        );
        assert_eq!(a.cols(), 32);
    }

    #[test]
    fn golden_section_finds_quadratic_minimum() {
        let (x, v) = golden_section(|x| (x - 2.0) * (x - 2.0) + 1.0, 0.0, 8.0, 40);
        assert!((x - 2.0).abs() < 1e-4);
        assert!((v - 1.0).abs() < 1e-8);
    }
}
