//! 2-D strategies: QuadTree (Cormode et al. 2012), UniformGrid and the
//! adaptive second round of AdaptiveGrid (Qardaji et al. 2013) — paper
//! Plans #10–#12.
//!
//! All three are rectangle-sum strategies and use the implicit
//! [`Matrix::Rect2D`] representation (`O(m)` storage, `O(n + m)` products).

use ektelo_matrix::Matrix;

/// QuadTree: recursively split the grid into four quadrants down to unit
/// cells; measure every node's rectangle sum.
pub fn quad_tree(rows: usize, cols: usize) -> Matrix {
    assert!(rows > 0 && cols > 0);
    let mut rects = Vec::new();
    let mut frontier = vec![(0usize, rows, 0usize, cols)];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &(r1, r2, c1, c2) in &frontier {
            rects.push((r1, r2, c1, c2));
            let (h, w) = (r2 - r1, c2 - c1);
            if h * w <= 1 {
                continue;
            }
            let rm = r1 + h.div_ceil(2);
            let cm = c1 + w.div_ceil(2);
            for &(a, b) in &[(r1, rm), (rm, r2)] {
                for &(c, d) in &[(c1, cm), (cm, c2)] {
                    if a < b && c < d {
                        next.push((a, b, c, d));
                    }
                }
            }
        }
        frontier = next;
    }
    Matrix::rect_queries(rows, cols, rects)
}

/// Qardaji's UniformGrid sizing rule: grid side `g ≈ sqrt(N·ε / c)` with
/// `c = 10`, clamped to the domain.
pub fn uniform_grid_size(rows: usize, cols: usize, expected_total: f64, eps: f64) -> usize {
    let g = (expected_total * eps / 10.0).sqrt().ceil().max(1.0) as usize;
    g.min(rows).min(cols).max(1)
}

/// UniformGrid: a g×g partition of the domain into near-equal blocks, each
/// measured as one rectangle sum. Disjoint blocks → sensitivity 1.
pub fn uniform_grid(rows: usize, cols: usize, g: usize) -> Matrix {
    assert!(g >= 1);
    let g = g.min(rows).min(cols);
    let mut rects = Vec::with_capacity(g * g);
    let rb = block_bounds(rows, g);
    let cb = block_bounds(cols, g);
    for r in rb.windows(2) {
        for c in cb.windows(2) {
            rects.push((r[0], r[1], c[0], c[1]));
        }
    }
    Matrix::rect_queries(rows, cols, rects)
}

/// AdaptiveGrid's second round: per coarse block, choose a finer grid
/// granularity from the block's noisy round-1 count and return the finer
/// rectangles for that block (paper Plan #12 runs a subplan per block).
/// `c2 = 5` follows Qardaji's recommendation (√2-scaled constant).
pub fn adaptive_grid_round2(
    block: (usize, usize, usize, usize),
    noisy_count: f64,
    eps2: f64,
) -> Vec<(usize, usize, usize, usize)> {
    let (r1, r2, c1, c2b) = block;
    let h = r2 - r1;
    let w = c2b - c1;
    let g = ((noisy_count.max(0.0) * eps2 / 5.0).sqrt().ceil().max(1.0) as usize)
        .min(h)
        .min(w)
        .max(1);
    let rb: Vec<usize> = block_bounds(h, g).iter().map(|&b| b + r1).collect();
    let cb: Vec<usize> = block_bounds(w, g).iter().map(|&b| b + c1).collect();
    let mut out = Vec::with_capacity(g * g);
    for r in rb.windows(2) {
        for c in cb.windows(2) {
            out.push((r[0], r[1], c[0], c[1]));
        }
    }
    out
}

/// `g+1` block boundaries splitting `[0, n)` into g near-equal parts.
fn block_bounds(n: usize, g: usize) -> Vec<usize> {
    let g = g.min(n).max(1);
    let base = n / g;
    let extra = n % g;
    let mut bounds = Vec::with_capacity(g + 1);
    let mut pos = 0;
    bounds.push(0);
    for i in 0..g {
        pos += base + usize::from(i < extra);
        bounds.push(pos);
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quad_tree_root_is_total() {
        let m = quad_tree(4, 4);
        let x = vec![1.0; 16];
        assert_eq!(m.matvec(&x)[0], 16.0);
        // Leaves (unit cells) must all be present.
        assert!(m.rows() > 16);
    }

    #[test]
    fn quad_tree_sensitivity_is_depth() {
        // Every cell lies in exactly one node per level.
        let m = quad_tree(4, 4);
        // Depth for 4x4 = levels {4x4, 2x2, 1x1} = 3.
        assert_eq!(m.l1_sensitivity(), 3.0);
    }

    #[test]
    fn quad_tree_handles_non_square_and_non_power_of_two() {
        let m = quad_tree(5, 3);
        assert_eq!(m.cols(), 15);
        let x: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let y = m.matvec(&x);
        assert_eq!(y[0], x.iter().sum::<f64>());
    }

    #[test]
    fn uniform_grid_is_disjoint_cover() {
        let m = uniform_grid(7, 5, 3);
        assert_eq!(m.rows(), 9);
        // Disjoint cover → column sums all equal 1 → sensitivity 1.
        assert_eq!(m.l1_sensitivity(), 1.0);
        let x = vec![1.0; 35];
        assert_eq!(m.matvec(&x).iter().sum::<f64>(), 35.0);
    }

    #[test]
    fn grid_size_scales_with_data_and_budget() {
        let small = uniform_grid_size(1024, 1024, 1000.0, 0.01);
        let large = uniform_grid_size(1024, 1024, 1_000_000.0, 0.1);
        assert!(large > small);
    }

    #[test]
    fn adaptive_round2_splits_dense_blocks_more() {
        let sparse = adaptive_grid_round2((0, 16, 0, 16), 10.0, 0.1);
        let dense = adaptive_grid_round2((0, 16, 0, 16), 100_000.0, 0.1);
        assert!(dense.len() > sparse.len());
        // Rectangles stay inside the block.
        for (r1, r2, c1, c2) in dense {
            assert!(r2 <= 16 && c2 <= 16 && r1 < r2 && c1 < c2);
        }
    }

    #[test]
    fn block_bounds_cover_exactly() {
        for n in [5usize, 8, 13] {
            for g in [1usize, 2, 3, 5] {
                let b = block_bounds(n, g);
                assert_eq!(*b.first().unwrap(), 0);
                assert_eq!(*b.last().unwrap(), n);
                assert!(b.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }
}
