//! Inference operators (Public; paper §5.5 and §7.6).
//!
//! All operators here consume the kernel's recorded measurement history —
//! queries already mapped onto a common base domain — and produce an
//! estimate `x̂` of the base data vector. None of them touch private data:
//! inference is free (Theorem 5.3 even shows extra measurements never hurt
//! least-squares accuracy).
//!
//! Measurements with unequal noise are handled by weighting each query row
//! by the inverse of its noise scale (objective (i) of §5.5); incomplete
//! measurement sets are handled by the iterative solvers' implicit
//! minimum-norm behaviour or by multiplicative weights (objective (ii)).

use ektelo_matrix::{Matrix, Workspace};
use ektelo_solvers::{
    cgls, direct_least_squares, lsqr, mult_weights, nnls, LsqrOptions, MwOptions, NnlsOptions,
};

use crate::kernel::MeasuredQuery;

/// Which least-squares engine to use (the Fig. 5 ablation axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LsSolver {
    /// Iterative LSQR (default; `O(k · Time(M))`).
    Iterative,
    /// Iterative CGLS (cross-check implementation).
    IterativeCgls,
    /// Direct normal equations + Cholesky (`O(n³)`; Fig. 5 baseline).
    Direct,
}

/// Stacks the measurement history into a single weighted system
/// `(W·M) x ≈ W·y` with `W = diag(1/noise_scale)`, so that unequally-noisy
/// measurements contribute proportionally to their precision.
pub fn stack_measurements(measurements: &[MeasuredQuery]) -> (Matrix, Vec<f64>) {
    assert!(!measurements.is_empty(), "inference with no measurements");
    let base_cols = measurements[0].query.cols();
    let mut blocks = Vec::with_capacity(measurements.len());
    let mut rhs = Vec::new();
    for m in measurements {
        assert_eq!(
            m.query.cols(),
            base_cols,
            "measurements span different base domains; run inference per base"
        );
        let w = 1.0 / m.noise_scale.max(f64::MIN_POSITIVE);
        blocks.push(Matrix::scaled(w, m.query.clone()));
        rhs.extend(m.answers.iter().map(|&a| a * w));
    }
    (Matrix::vstack(blocks), rhs)
}

/// Ordinary least squares over the measurement history (paper Def. 5.1).
pub fn least_squares(measurements: &[MeasuredQuery], solver: LsSolver) -> Vec<f64> {
    let (m, y) = stack_measurements(measurements);
    match solver {
        LsSolver::Iterative => lsqr(&m, &y, &LsqrOptions::default()).x,
        LsSolver::IterativeCgls => cgls(&m, &y, &LsqrOptions::default()).x,
        LsSolver::Direct => direct_least_squares(&m, &y),
    }
}

/// Non-negative least squares over the measurement history
/// (paper Def. 5.2).
pub fn non_negative_least_squares(measurements: &[MeasuredQuery]) -> Vec<f64> {
    non_negative_least_squares_opts(measurements, &NnlsOptions::default())
}

/// [`non_negative_least_squares`] with explicit solver options (iteration
/// budget matters inside iterative plans like MWEM that re-infer every
/// round).
pub fn non_negative_least_squares_opts(
    measurements: &[MeasuredQuery],
    opts: &NnlsOptions,
) -> Vec<f64> {
    let (m, y) = stack_measurements(measurements);
    nnls(&m, &y, opts)
}

/// Multiplicative-weights inference (MWEM's update; paper Table 1).
/// `total` is the assumed dataset size; `x0` defaults to uniform when
/// `None`.
pub fn mult_weights_inference(
    measurements: &[MeasuredQuery],
    total: f64,
    x0: Option<&[f64]>,
    iterations: usize,
) -> Vec<f64> {
    // MW works on raw (unweighted) queries; it is scale-sensitive.
    assert!(!measurements.is_empty(), "inference with no measurements");
    let n = measurements[0].query.cols();
    let m = Matrix::vstack(measurements.iter().map(|m| m.query.clone()).collect());
    let y: Vec<f64> = measurements
        .iter()
        .flat_map(|m| m.answers.iter().copied())
        .collect();
    let uniform = vec![total / n as f64; n];
    let x0 = x0.map(<[f64]>::to_vec).unwrap_or(uniform);
    mult_weights(&m, &y, &x0, &MwOptions { iterations, total })
}

/// Appends a high-confidence "known total" pseudo-measurement (paper
/// §5.5: public facts enter inference as near-noiseless answers).
///
/// `noise_scale` should be small *relative to the real measurements* (one
/// to two orders of magnitude below their noise scales), not absolutely
/// tiny: inference weights rows by inverse noise scale, and an extreme
/// ratio destroys the conditioning of the iterative solvers. Use
/// [`relative_total_scale`] to derive a safe value.
pub fn known_total_measurement(
    n: usize,
    total: f64,
    base: crate::kernel::SourceVar,
    noise_scale: f64,
) -> MeasuredQuery {
    MeasuredQuery {
        base,
        query: Matrix::total(n),
        answers: vec![total],
        noise_scale: noise_scale.max(f64::MIN_POSITIVE),
    }
}

/// A known-total noise scale 10× more precise than the most precise real
/// measurement — enough to pin the total without wrecking conditioning.
pub fn relative_total_scale(measurements: &[MeasuredQuery]) -> f64 {
    measurements
        .iter()
        .map(|m| m.noise_scale)
        .fold(f64::INFINITY, f64::min)
        .min(1e6)
        / 10.0
}

/// Thresholding inference ("HR" in Fig. 1): for identity-style
/// measurements, clamp negatives to zero and zero-out any estimate below
/// `threshold` (a denoising heuristic for sparse data vectors).
pub fn thresholding(measurements: &[MeasuredQuery], threshold: f64) -> Vec<f64> {
    let mut x = least_squares(measurements, LsSolver::Iterative);
    for v in x.iter_mut() {
        if *v < threshold {
            *v = 0.0;
        }
    }
    x
}

/// Evaluates a workload on an estimate and returns per-query answers.
/// (For repeated evaluation against many estimates, use
/// [`answer_workload_into`] with a reused [`Workspace`].)
pub fn answer_workload(workload: &Matrix, x_hat: &[f64]) -> Vec<f64> {
    workload.matvec(x_hat)
}

/// In-place variant of [`answer_workload`] for loops that score many
/// estimates against one workload (MWEM rounds, error sweeps): the
/// workspace caches the workload's evaluation plan and scratch arena, so
/// every call after the first is allocation- and planning-free.
pub fn answer_workload_into(
    workload: &Matrix,
    x_hat: &[f64],
    answers: &mut [f64],
    ws: &mut Workspace,
) {
    workload.matvec_into(x_hat, answers, ws);
}

/// Tree-based least squares for *binary hierarchical* measurements (Hay
/// et al. 2010) — the specialized `O(n)` inference the paper compares its
/// generic engine against in Fig. 5.
///
/// Input: the noisy answers for every node of the binary interval tree
/// over `[0, n)` in the order produced by
/// [`crate::ops::selection::hierarchical_intervals`]`(n, 2)` (level by
/// level), all with equal noise. Two passes: bottom-up weighted averaging
/// of each node with the sum of its children, then top-down consistency
/// adjustment. Only valid for this one strategy — which is exactly the
/// paper's point about custom inference.
pub fn tree_based_h2(n: usize, answers: &[f64]) -> Vec<f64> {
    use crate::ops::selection::hierarchical_intervals;
    let intervals = hierarchical_intervals(n, 2);
    assert_eq!(
        answers.len(),
        intervals.len(),
        "answer count must match the H2 tree"
    );

    // Rebuild the tree: children of (lo,hi) are (lo,mid),(mid,hi) with the
    // same near-equal split used by hierarchical_intervals.
    use std::collections::HashMap;
    let index: HashMap<(usize, usize), usize> = intervals
        .iter()
        .enumerate()
        .map(|(i, &iv)| (iv, i))
        .collect();
    let children = |lo: usize, hi: usize| -> Option<((usize, usize), (usize, usize))> {
        let len = hi - lo;
        if len <= 1 {
            return None;
        }
        let left = len.div_ceil(2);
        Some(((lo, lo + left), (lo + left, hi)))
    };

    // Bottom-up: z[v] = weighted average of the node's own answer and its
    // children's combined estimate. With equal noise the optimal weights
    // follow α_v = (2^h − 2^{h−1}) / (2^h − 1) for height h (Hay et al.).
    let mut z = answers.to_vec();
    // 2^h per node, where leaves have height 1 (2^h = 2): Hay et al.'s
    // α = (2^h − 2^{h−1})/(2^h − 1).
    let mut eff_count = vec![2.0f64; intervals.len()];
    for i in (0..intervals.len()).rev() {
        let (lo, hi) = intervals[i];
        if let Some((l, r)) = children(lo, hi) {
            let li = index[&l];
            let ri = index[&r];
            let child_sum = z[li] + z[ri];
            let m = eff_count[li].min(eff_count[ri]) * 2.0;
            let alpha = (m - m / 2.0) / (m - 1.0);
            z[i] = alpha * answers[i] + (1.0 - alpha) * child_sum;
            eff_count[i] = m;
        }
    }
    // Top-down: distribute each parent's adjusted value consistently.
    let mut consistent = z.clone();
    for i in 0..intervals.len() {
        let (lo, hi) = intervals[i];
        if let Some((l, r)) = children(lo, hi) {
            let li = index[&l];
            let ri = index[&r];
            let child_sum = z[li] + z[ri];
            let diff = (consistent[i] - child_sum) / 2.0;
            consistent[li] = z[li] + diff;
            consistent[ri] = z[ri] + diff;
            // Propagate: children's consistent values feed their subtrees.
            z[li] = consistent[li];
            z[ri] = consistent[ri];
        }
    }
    // Leaves, in domain order.
    let mut x = vec![0.0; n];
    for (i, &(lo, hi)) in intervals.iter().enumerate() {
        if hi - lo == 1 {
            x[lo] = consistent[i];
        }
    }
    x
}

/// Scaled, per-query L2 error between true and estimated workload answers:
/// `‖W x − W x̂‖₂ / (m · scale)` — the metric of the paper's Table 5.
pub fn scaled_per_query_l2_error(
    workload: &Matrix,
    x_true: &[f64],
    x_hat: &[f64],
    scale: f64,
) -> f64 {
    let mut ws = Workspace::for_matrix(workload);
    let m = workload.rows();
    let mut t = vec![0.0; m];
    let mut e = vec![0.0; m];
    workload.matvec_into(x_true, &mut t, &mut ws);
    workload.matvec_into(x_hat, &mut e, &mut ws);
    let sq: f64 = t.iter().zip(&e).map(|(a, b)| (a - b) * (a - b)).sum();
    (sq / t.len() as f64).sqrt() / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ProtectedKernel, SourceVar};

    fn measured(query: Matrix, answers: Vec<f64>, noise_scale: f64) -> MeasuredQuery {
        MeasuredQuery {
            base: SourceVar(0),
            query,
            answers,
            noise_scale,
        }
    }

    #[test]
    fn ls_recovers_consistent_system() {
        let ms = vec![
            measured(Matrix::identity(3), vec![1.0, 2.0, 3.0], 1.0),
            measured(Matrix::total(3), vec![6.0], 1.0),
        ];
        for solver in [
            LsSolver::Iterative,
            LsSolver::IterativeCgls,
            LsSolver::Direct,
        ] {
            let x = least_squares(&ms, solver);
            for (a, b) in x.iter().zip(&[1.0, 2.0, 3.0]) {
                assert!((a - b).abs() < 1e-6, "{solver:?}: {x:?}");
            }
        }
    }

    #[test]
    fn weighting_prefers_precise_measurements() {
        // Two total measurements: noisy says 0, precise says 10.
        let ms = vec![
            measured(Matrix::total(2), vec![0.0], 100.0),
            measured(Matrix::total(2), vec![10.0], 0.1),
        ];
        let x = least_squares(&ms, LsSolver::Iterative);
        let total: f64 = x.iter().sum();
        assert!((total - 10.0).abs() < 0.1, "total {total}");
    }

    #[test]
    fn nnls_clamps_negative_regions() {
        let ms = vec![measured(Matrix::identity(2), vec![-4.0, 4.0], 1.0)];
        let x = non_negative_least_squares(&ms);
        assert!(x[0].abs() < 1e-6);
        assert!((x[1] - 4.0).abs() < 1e-4);
    }

    #[test]
    fn mw_respects_total() {
        let ms = vec![measured(Matrix::identity(4), vec![4.0, 0.0, 0.0, 0.0], 1.0)];
        let x = mult_weights_inference(&ms, 4.0, None, 100);
        assert!((x.iter().sum::<f64>() - 4.0).abs() < 1e-9);
        assert!(x[0] > 2.0, "{x:?}");
    }

    #[test]
    fn answer_workload_into_matches_allocating_form() {
        let w = Matrix::vstack(vec![Matrix::prefix(6), Matrix::total(6)]);
        let mut ws = Workspace::for_matrix(&w);
        let mut out = vec![0.0; w.rows()];
        for round in 0..3 {
            let x: Vec<f64> = (0..6).map(|i| (i + round) as f64).collect();
            answer_workload_into(&w, &x, &mut out, &mut ws);
            assert_eq!(out, answer_workload(&w, &x));
        }
        // One plan, reused across rounds.
        assert_eq!(ws.plan_cache_builds(), 1);
    }

    #[test]
    fn thresholding_zeroes_small_values() {
        let ms = vec![measured(Matrix::identity(3), vec![0.4, 5.0, -2.0], 1.0)];
        let x = thresholding(&ms, 1.0);
        assert_eq!(x[0], 0.0);
        assert_eq!(x[2], 0.0);
        assert!((x[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn theorem_5_3_extra_measurements_never_hurt() {
        // Empirically verify Theorem 5.3 on a small domain: adding a
        // measurement reduces (or preserves) expected squared error of a
        // fixed query under least squares. We average over noise draws.
        let n = 8;
        let x_true: Vec<f64> = (0..n).map(|i| (i * i % 7) as f64).collect();
        let q = Matrix::prefix(n);
        let trials = 200;
        let mut err_small = 0.0;
        let mut err_big = 0.0;
        let mut seed = 0u64;
        for _ in 0..trials {
            seed += 1;
            let k = ProtectedKernel::init_from_vector(x_true.clone(), 10.0, seed);
            let root = k.root();
            k.vector_laplace(root, &Matrix::identity(n), 1.0).unwrap();
            let ms1 = k.measurements();
            let x1 = least_squares(&ms1, LsSolver::Direct);
            k.vector_laplace(root, &Matrix::total(n), 1.0).unwrap();
            let ms2 = k.measurements();
            let x2 = least_squares(&ms2, LsSolver::Direct);
            let e = |xh: &[f64]| -> f64 {
                let a = q.matvec(&x_true);
                let b = q.matvec(xh);
                a.iter()
                    .zip(&b)
                    .map(|(p, r)| (p - r) * (p - r))
                    .sum::<f64>()
            };
            err_small += e(&x1);
            err_big += e(&x2);
        }
        assert!(
            err_big <= err_small * 1.02,
            "extra measurement increased error: {err_big} vs {err_small}"
        );
    }

    #[test]
    fn tree_based_matches_generic_ls_on_h2() {
        use crate::ops::selection::h2;
        let n = 16;
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 5) % 11) as f64).collect();
        let k = ProtectedKernel::init_from_vector(x_true, 10.0, 4);
        k.vector_laplace(k.root(), &h2(n), 1.0).unwrap();
        let ms = k.measurements();
        let generic = least_squares(&ms, LsSolver::Direct);
        let tree = tree_based_h2(n, &ms[0].answers);
        for (g, t) in generic.iter().zip(&tree) {
            assert!(
                (g - t).abs() < 0.5,
                "tree-based should closely track LS: {generic:?} vs {tree:?}"
            );
        }
        // Both must be consistent with the measured total (root answer is
        // blended, but the estimates reproduce one consistent hierarchy).
        let sum_g: f64 = generic.iter().sum();
        let sum_t: f64 = tree.iter().sum();
        assert!((sum_g - sum_t).abs() < 1.0, "totals {sum_g} vs {sum_t}");
    }

    #[test]
    #[should_panic(expected = "different base domains")]
    fn mixed_bases_rejected() {
        let ms = vec![
            measured(Matrix::identity(3), vec![0.0; 3], 1.0),
            measured(Matrix::identity(4), vec![0.0; 4], 1.0),
        ];
        let _ = least_squares(&ms, LsSolver::Iterative);
    }
}
