//! The plan executor: runs a [`PlanSpec`] against a kernel session.
//!
//! Execution order is the spec's node order, and each node issues
//! *exactly* the kernel calls the imperative plan functions issue — same
//! charges, same privacy-RNG consumption, same measurement history — so
//! a migrated plan is bit-identical to its imperative ancestor given the
//! same kernel seed.
//!
//! Budget flow: the executor pre-accounts the spec, takes one
//! [`BudgetReservation`] for the whole plan (the rejection point for
//! over-budget specs — zero kernel history entries on failure), then
//! passes the reservation into every charging kernel call. Each charge
//! *redeems* its cost from the reservation's hold atomically with the
//! root-ledger update, under one `KernelState` lock — there is no
//! unlock→charge window at all, so a concurrent session can never take
//! an admitted plan's budget, no matter how long a batch node computes
//! between admission and its charges. On any failure — a typed kernel
//! error, an injected fault, or a panic unwinding out of a worker job
//! or solver — dropping the reservation releases exactly the unredeemed
//! remainder: charges already issued stand, nothing else is held.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ektelo_matrix::{CsrMatrix, Matrix};
use ektelo_solvers::NnlsOptions;

use crate::kernel::{BudgetReservation, EktError, ProtectedKernel, Result, SourceVar};
use crate::ops::inference::{
    known_total_measurement, least_squares, mult_weights_inference,
    non_negative_least_squares_opts, relative_total_scale,
};
use crate::ops::partition::{
    dawa_partition_batch, interval_partition_bounds, map_ranges_to_buckets, stripe_partition,
};
use crate::ops::selection::{self, greedy_h, worst_approx};

use super::{
    InferOp, MeasureOp, MwemLoopOp, MwemRoundInference, NodeKind, PartitionOp, PlanSpec,
    SelectDomain, SelectOp, StrategySource, TransformOp,
};

/// What executing a plan produced, plus the budget ledger a service logs.
#[derive(Clone, Debug)]
pub struct ExecReport {
    /// The plan's estimate of the data vector (output node's value).
    pub x_hat: Vec<f64>,
    /// The rendered Fig. 2 signature of the executed spec.
    pub signature: String,
    /// Worst-case root ε the pre-accounting predicted (scaled through
    /// the input's stability path).
    pub eps_pre_accounted: f64,
    /// Root ε the kernel charged *to this plan*, read from the plan's
    /// own reservation ledger: every charge the executor issues is
    /// attributed to its [`BudgetReservation`], so concurrent sessions
    /// never contaminate the figure. It equals `eps_pre_accounted` bit
    /// for bit — the pre-accounting replays the kernel's exact charge
    /// arithmetic and the ledger accumulates the same root increments
    /// in the same order. (The [`PlanExecutor::unchecked`] path runs
    /// without a reservation and falls back to the global-ledger delta
    /// across the run, which is per-plan only on single-session
    /// kernels.)
    pub eps_charged: f64,
}

/// Runs [`PlanSpec`]s against a [`ProtectedKernel`].
pub struct PlanExecutor<'k> {
    kernel: &'k ProtectedKernel,
    check_budget: bool,
}

/// Execution-time value of a spec node.
#[derive(Debug)]
enum Value {
    None,
    Source(SourceVar),
    Sources(Vec<SourceVar>),
    Strategy(Matrix),
    Strategies(Vec<Matrix>),
    Partition(Matrix),
    Partitions(Vec<Matrix>),
    Estimate(Vec<f64>),
}

fn type_err(id: usize, want: &str, got: &Value) -> EktError {
    EktError::InvalidPlan(format!("node #{id} is not a {want} (found {got:?})"))
}

impl<'k> PlanExecutor<'k> {
    /// An executor with static pre-accounting **on**: over-budget specs
    /// are rejected before any kernel call.
    pub fn new(kernel: &'k ProtectedKernel) -> Self {
        PlanExecutor {
            kernel,
            check_budget: true,
        }
    }

    /// An executor that skips the admission check (budget exhaustion
    /// then surfaces *mid-plan* as the typed kernel error of whichever
    /// operator hits it — the pre-graph behaviour, kept for comparison
    /// and for failure-path tests).
    pub fn unchecked(kernel: &'k ProtectedKernel) -> Self {
        PlanExecutor {
            kernel,
            check_budget: false,
        }
    }

    /// Executes `spec` with `input` bound to the spec's input node.
    ///
    /// # Failure semantics
    ///
    /// Every failure path leaves the kernel consistent: charges issued
    /// before the failure stand (they bought real noise draws), nothing
    /// after it is charged, and the reservation's unredeemed remainder
    /// is released — `budget_reserved()` returns to its pre-plan value.
    /// A panic unwinding out of the plan body (a deferred worker-job
    /// crash, a solver blow-up) is caught here and surfaced as
    /// [`EktError::ExecutionPanic`] *after* the reservation is dropped,
    /// so even a crashed plan never wedges the ledger.
    pub fn run(&self, spec: &PlanSpec, input: SourceVar) -> Result<ExecReport> {
        let cost = spec.pre_account()?;
        let path = self.kernel.stability_to_root(input);
        let reservation = if self.check_budget {
            Some(self.kernel.reserve_budget(cost.total * path)?)
        } else {
            None
        };
        let spent_before = self.kernel.budget_spent();
        let run = Run {
            kernel: self.kernel,
            spec,
            reservation,
            start: self.kernel.measurement_count(),
        };
        // AssertUnwindSafe is sound here: every panicking site runs
        // outside the kernel's state lock (worker jobs in a batch's
        // compute phase, solver iterations during inference), the lock
        // shim does not poison, and each lock acquisition's mutations
        // are transactional — so after an unwind the kernel `run`
        // borrows is consistent, and `run` itself is dropped below
        // without being touched again.
        let outcome = catch_unwind(AssertUnwindSafe(|| run.execute(input)));
        let x_hat = match outcome {
            Ok(result) => result?,
            Err(payload) => {
                // Release the unredeemed remainder before reporting, so
                // the caller observes a clean ledger from the error
                // handler onwards.
                drop(run);
                return Err(EktError::ExecutionPanic(panic_message(&payload)));
            }
        };
        let eps_charged = match &run.reservation {
            Some(res) => res.charged(),
            None => self.kernel.budget_spent() - spent_before,
        };
        Ok(ExecReport {
            x_hat,
            signature: spec.signature(),
            eps_pre_accounted: cost.total * path,
            eps_charged,
        })
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted `String` — everything the codebase and
/// the fault-injection sites produce).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One in-flight execution.
struct Run<'a, 'k> {
    kernel: &'k ProtectedKernel,
    spec: &'a PlanSpec,
    reservation: Option<BudgetReservation<'k>>,
    /// Measurement-history index at session start; inference nodes see
    /// only this session's measurements.
    start: usize,
}

impl<'k> Run<'_, 'k> {
    /// The reservation every charging kernel call redeems against
    /// (`None` on the unchecked path — charges then compete for open
    /// budget like imperative plans).
    fn res(&self) -> Option<&BudgetReservation<'k>> {
        self.reservation.as_ref()
    }

    fn source(&self, vals: &[Value], id: usize) -> Result<SourceVar> {
        match &vals[id] {
            Value::Source(sv) => Ok(*sv),
            other => Err(type_err(id, "source", other)),
        }
    }

    fn sources<'v>(&self, vals: &'v [Value], id: usize) -> Result<&'v [SourceVar]> {
        match &vals[id] {
            Value::Sources(s) => Ok(s),
            other => Err(type_err(id, "source list", other)),
        }
    }

    fn domain_len(&self, vals: &[Value], domain: &SelectDomain) -> Result<usize> {
        let sv = match domain {
            SelectDomain::Source(r) => self.source(vals, r.id)?,
            SelectDomain::FirstOf(r) => *self
                .sources(vals, r.id)?
                .first()
                .ok_or_else(|| EktError::InvalidPlan("empty source list".into()))?,
        };
        self.kernel.vector_len(sv)
    }

    fn execute(&self, input: SourceVar) -> Result<Vec<f64>> {
        let kernel = self.kernel;
        let mut vals: Vec<Value> = Vec::with_capacity(self.spec.nodes.len());
        for node in self.spec.nodes.iter() {
            let val = match node {
                NodeKind::Input => Value::Source(input),

                NodeKind::Partition(PartitionOp::Stripe { sizes, attr }) => {
                    Value::Partition(stripe_partition(sizes, *attr))
                }
                NodeKind::Partition(PartitionOp::Fixed { matrix }) => {
                    Value::Partition(matrix.clone())
                }
                NodeKind::Partition(PartitionOp::DawaEach { inputs, eps, opts }) => {
                    let svs = self.sources(&vals, inputs.id)?.to_vec();
                    Value::Partitions(dawa_partition_batch(kernel, &svs, *eps, opts, self.res())?)
                }

                NodeKind::Transform(TransformOp::Split { input, partition }) => {
                    let sv = self.source(&vals, input.id)?;
                    let p = match &vals[partition.id] {
                        Value::Partition(p) => p,
                        other => return Err(type_err(partition.id, "partition", other)),
                    };
                    Value::Sources(kernel.split_by_partition(sv, p)?)
                }
                NodeKind::Transform(TransformOp::ReduceEach { inputs, partitions }) => {
                    let svs = self.sources(&vals, inputs.id)?.to_vec();
                    let ps = match &vals[partitions.id] {
                        Value::Partitions(p) => p,
                        other => return Err(type_err(partitions.id, "partition list", other)),
                    };
                    if svs.len() != ps.len() {
                        return Err(EktError::InvalidPlan(format!(
                            "reduce-each over {} sources but {} partitions",
                            svs.len(),
                            ps.len()
                        )));
                    }
                    Value::Sources(
                        svs.iter()
                            .zip(ps)
                            .map(|(&sv, p)| kernel.reduce_by_partition(sv, p))
                            .collect::<Result<_>>()?,
                    )
                }
                NodeKind::Transform(TransformOp::Linear { input, matrix }) => {
                    let sv = self.source(&vals, input.id)?;
                    Value::Source(kernel.transform_linear(sv, matrix)?)
                }

                NodeKind::Select(op) => self.eval_select(&vals, op)?,

                NodeKind::Measure(MeasureOp::Laplace {
                    input,
                    strategy,
                    eps,
                }) => {
                    let sv = self.source(&vals, input.id)?;
                    let m = match &vals[strategy.id] {
                        Value::Strategy(m) => m,
                        other => return Err(type_err(strategy.id, "strategy", other)),
                    };
                    kernel.vector_laplace_in(sv, m, *eps, self.res())?;
                    Value::None
                }
                NodeKind::Measure(MeasureOp::LaplaceBatch {
                    inputs,
                    strategies,
                    eps,
                }) => {
                    let svs = self.sources(&vals, inputs.id)?.to_vec();
                    match strategies {
                        StrategySource::Shared(s) => {
                            let m = match &vals[s.id] {
                                Value::Strategy(m) => m,
                                other => return Err(type_err(s.id, "strategy", other)),
                            };
                            let reqs: Vec<(SourceVar, &Matrix, f64)> =
                                svs.iter().map(|&sv| (sv, m, *eps)).collect();
                            kernel.vector_laplace_batch_in(&reqs, self.res())?;
                        }
                        StrategySource::PerSource(s) => {
                            let ms = match &vals[s.id] {
                                Value::Strategies(ms) => ms,
                                other => return Err(type_err(s.id, "strategy list", other)),
                            };
                            if svs.len() != ms.len() {
                                return Err(EktError::InvalidPlan(format!(
                                    "batch over {} sources but {} strategies",
                                    svs.len(),
                                    ms.len()
                                )));
                            }
                            let reqs: Vec<(SourceVar, &Matrix, f64)> =
                                svs.iter().zip(ms).map(|(&sv, m)| (sv, m, *eps)).collect();
                            kernel.vector_laplace_batch_in(&reqs, self.res())?;
                        }
                    }
                    Value::None
                }

                NodeKind::Infer(InferOp::LeastSquares { solver }) => Value::Estimate(
                    least_squares(&kernel.measurements_since(self.start), *solver),
                ),
                NodeKind::Infer(InferOp::Nnls) => Value::Estimate(non_negative_least_squares_opts(
                    &kernel.measurements_since(self.start),
                    &NnlsOptions::default(),
                )),

                NodeKind::AdaptiveMwem(op) => {
                    Value::Estimate(self.run_mwem_loop(&vals, op, input)?)
                }
            };
            vals.push(val);
        }

        match std::mem::replace(&mut vals[self.spec.output], Value::None) {
            Value::Estimate(x_hat) => Ok(x_hat),
            other => Err(type_err(self.spec.output, "estimate", &other)),
        }
    }

    fn eval_select(&self, vals: &[Value], op: &SelectOp) -> Result<Value> {
        Ok(match op {
            SelectOp::Identity { domain } => {
                Value::Strategy(selection::identity(self.domain_len(vals, domain)?))
            }
            SelectOp::Total { domain } => {
                Value::Strategy(selection::total(self.domain_len(vals, domain)?))
            }
            SelectOp::Privelet { domain } => {
                Value::Strategy(selection::privelet(self.domain_len(vals, domain)?))
            }
            SelectOp::H2 { domain } => {
                Value::Strategy(selection::h2(self.domain_len(vals, domain)?))
            }
            SelectOp::Hb { domain } => {
                Value::Strategy(selection::hb(self.domain_len(vals, domain)?))
            }
            SelectOp::GreedyH { domain, ranges } => {
                Value::Strategy(greedy_h(self.domain_len(vals, domain)?, ranges))
            }
            SelectOp::GreedyHEach {
                inputs,
                partitions,
                ranges,
            } => {
                let svs = self.sources(vals, inputs.id)?;
                let ps = match &vals[partitions.id] {
                    Value::Partitions(p) => p,
                    other => return Err(type_err(partitions.id, "partition list", other)),
                };
                let mut strategy_inputs = Vec::with_capacity(svs.len());
                for (&sv, p) in svs.iter().zip(ps) {
                    let groups = self.kernel.vector_len(sv)?;
                    let bounds = interval_partition_bounds(p);
                    strategy_inputs.push((groups, map_ranges_to_buckets(ranges, &bounds)));
                }
                Value::Strategies(build_greedy_strategies(&strategy_inputs))
            }
            SelectOp::Fixed { matrix, .. } => Value::Strategy(matrix.clone()),
        })
    }

    /// MWEM's adaptive loop — an exact port of the imperative
    /// `plan_mwem` body, with every round's charges redeemed from the
    /// plan reservation. Budget exhaustion inside the loop (only
    /// reachable without pre-accounting or under external drain)
    /// surfaces as the selection or measurement operator's typed error.
    fn run_mwem_loop(
        &self,
        vals: &[Value],
        op: &MwemLoopOp,
        session_input: SourceVar,
    ) -> Result<Vec<f64>> {
        let kernel = self.kernel;
        let x = self.source(vals, op.input.id)?;
        let n = kernel.vector_len(x)?;
        let mut x_hat = vec![op.total / n as f64; n];
        for round in 0..op.rounds {
            // SW: worst-approximated workload query (exponential
            // mechanism).
            let idx = worst_approx(
                kernel,
                x,
                &op.workload,
                &x_hat,
                1.0,
                op.eps_select,
                self.res(),
            )?;
            let row = op.workload.row(idx);
            let selected = mwem_row_strategy(n, &row);
            let strategy = if op.augment {
                mwem_augment_with_level(&selected, &row, n, round)
            } else {
                selected
            };
            // LM: the strategy has sensitivity 1 by construction
            // (disjoint augmentation), so measuring costs eps_measure.
            kernel.vector_laplace_in(x, &strategy, op.eps_measure, self.res())?;

            // Per-round inference over all session measurements so far.
            let measurements = kernel.measurements_since(self.start);
            x_hat = match op.inference {
                MwemRoundInference::MultWeights => {
                    mult_weights_inference(&measurements, op.total, None, op.mw_iterations)
                }
                MwemRoundInference::NnlsKnownTotal => {
                    let cols = measurements[0].query.cols();
                    let mut ms = measurements.to_vec();
                    let scale = relative_total_scale(&measurements);
                    ms.push(known_total_measurement(
                        cols,
                        op.total,
                        session_input,
                        scale,
                    ));
                    non_negative_least_squares_opts(
                        &ms,
                        &NnlsOptions {
                            max_iters: 600,
                            tol: 1e-7,
                        },
                    )
                }
            };
        }
        Ok(x_hat)
    }
}

/// The single-row strategy MWEM measures in a round: workload row `row`
/// as a `1 × n` sparse matrix.
pub fn mwem_row_strategy(n: usize, row: &[f64]) -> Matrix {
    let triplets: Vec<(usize, usize, f64)> = row
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(j, &v)| (0, j, v))
        .collect();
    Matrix::sparse(CsrMatrix::from_triplets(1, n, &triplets))
}

/// MWEM variant b's augmentation: in round `r`, add all dyadic intervals
/// of length `2^r` that do not intersect the selected query's support.
/// The union still has L1 sensitivity 1 (disjoint supports), so the
/// measurement is free relative to the un-augmented plan.
pub fn mwem_augment_with_level(selected: &Matrix, row: &[f64], n: usize, round: usize) -> Matrix {
    let len = 1usize << round.min(62);
    if len > n {
        return selected.clone();
    }
    let mut extra = Vec::new();
    let mut lo = 0;
    while lo + len <= n {
        let hi = lo + len;
        let intersects = row[lo..hi].iter().any(|&v| v != 0.0);
        if !intersects {
            extra.push((lo, hi));
        }
        lo += len;
    }
    if extra.is_empty() {
        selected.clone()
    } else {
        Matrix::vstack(vec![selected.clone(), Matrix::range_queries(n, extra)])
    }
}

/// Builds one Greedy-H strategy per stripe from `(groups, ranges)`
/// inputs (DAWA-Striped's per-stripe selection — pure public compute).
#[cfg(not(feature = "parallel"))]
fn build_greedy_strategies(inputs: &[(usize, Vec<(usize, usize)>)]) -> Vec<Matrix> {
    inputs
        .iter()
        .map(|(groups, ranges)| greedy_h(*groups, ranges))
        .collect()
}

/// Threaded variant: stripes are independent and `greedy_h` is pure, so
/// chunks of stripes build on the persistent pool executor; results are
/// written into per-stripe slots, so the output order (and every matrix
/// in it) is identical to the serial build — for any pool size and any
/// steal schedule (oversubscribed spawns queue on worker deques and may
/// be stolen; the per-stripe slots don't care which thread filled them).
#[cfg(feature = "parallel")]
fn build_greedy_strategies(inputs: &[(usize, Vec<(usize, usize)>)]) -> Vec<Matrix> {
    let nthreads = ektelo_matrix::pool::configured_parallelism();
    if inputs.len() < 2 || nthreads < 2 {
        return inputs
            .iter()
            .map(|(groups, ranges)| greedy_h(*groups, ranges))
            .collect();
    }
    let chunk = inputs.len().div_ceil(nthreads);
    let mut out: Vec<Matrix> = vec![Matrix::identity(1); inputs.len()];
    ektelo_matrix::pool::scope(|s| {
        for (ochunk, ichunk) in out.chunks_mut(chunk).zip(inputs.chunks(chunk)) {
            s.spawn(move || {
                for (slot, (groups, ranges)) in ochunk.iter_mut().zip(ichunk) {
                    *slot = greedy_h(*groups, ranges);
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::graph::PlanBuilder;
    use crate::ops::inference::LsSolver;

    fn identity_spec(eps: f64) -> PlanSpec {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let s = b.select_identity(x);
        b.measure_laplace(x, s, eps);
        let e = b.infer_least_squares(LsSolver::Iterative);
        b.finish(e)
    }

    #[test]
    fn executes_and_charges_exactly_the_preaccounted_budget() {
        let k = ProtectedKernel::init_from_vector(vec![10.0; 16], 1.0, 9);
        let spec = identity_spec(0.75);
        let report = PlanExecutor::new(&k).run(&spec, k.root()).unwrap();
        assert_eq!(report.x_hat.len(), 16);
        assert_eq!(report.eps_pre_accounted, report.eps_charged);
        assert_eq!(k.budget_spent(), 0.75);
        assert_eq!(k.budget_reserved(), 0.0, "reservation fully unlocked");
    }

    #[test]
    fn over_budget_spec_rejected_with_zero_history() {
        let k = ProtectedKernel::init_from_vector(vec![10.0; 16], 0.5, 9);
        let spec = identity_spec(0.75);
        let err = PlanExecutor::new(&k).run(&spec, k.root()).unwrap_err();
        assert!(matches!(err, EktError::BudgetExceeded { .. }));
        assert_eq!(k.measurement_count(), 0, "no kernel history entries");
        assert_eq!(k.budget_spent(), 0.0);
        assert_eq!(k.budget_reserved(), 0.0, "failed admission holds nothing");
    }

    #[test]
    fn unchecked_executor_hits_the_kernel_error_mid_plan() {
        let k = ProtectedKernel::init_from_vector(vec![10.0; 16], 0.5, 9);
        let spec = identity_spec(0.75);
        let err = PlanExecutor::unchecked(&k)
            .run(&spec, k.root())
            .unwrap_err();
        assert!(matches!(err, EktError::BudgetExceeded { .. }));
    }

    #[test]
    fn executor_matches_imperative_call_sequence_bitwise() {
        // The graph path and a hand-written imperative plan on equally
        // seeded kernels must draw identical noise.
        let imperative = {
            let k = ProtectedKernel::init_from_vector(vec![7.0; 8], 1.0, 42);
            k.vector_laplace(k.root(), &Matrix::identity(8), 1.0)
                .unwrap();
            least_squares(&k.measurements(), LsSolver::Iterative)
        };
        let graph = {
            let k = ProtectedKernel::init_from_vector(vec![7.0; 8], 1.0, 42);
            PlanExecutor::new(&k)
                .run(&identity_spec(1.0), k.root())
                .unwrap()
                .x_hat
        };
        assert_eq!(imperative, graph);
    }
}
