//! Static budget pre-accounting: replay the kernel's `Request` procedure
//! (paper Algorithm 2) over a *shadow* source tree derived from the spec
//! alone — no kernel, no data.
//!
//! Soundness rests on two facts the type system and node payloads pin
//! down statically:
//!
//! * **Structure is static.** Every transformation node's arity is known
//!   from the spec: a `Split` consumes a *static* partition (its group
//!   count is in the spec), `ReduceEach` is one child per input, and the
//!   adaptive MWEM loop declares its round count. Data-dependence is
//!   confined to *matrix contents* (which cells a DAWA bucket covers),
//!   never to how many sources exist or how often they are charged.
//! * **Charges are declared.** Every budget-consuming node carries its ε
//!   in the spec. The shadow replay applies the *same* floating-point
//!   arithmetic as `KernelState::request` — including the partition
//!   variable's max-difference rule — so the pre-accounted total equals
//!   the root budget the kernel will actually charge, bit for bit, when
//!   the plan runs on a source whose ancestry carries no prior
//!   parallel-composition credit (an upper bound otherwise).

use crate::kernel::{EktError, Result};

use super::{MeasureOp, NodeKind, PartitionOp, PlanSpec, TransformOp};

/// The outcome of [`PlanSpec::pre_account`]: worst-case root ε plus a
/// per-node breakdown and the ordered schedule of root increments each
/// node's kernel charges will cause.
#[derive(Clone, Debug)]
pub struct PlanCost {
    /// Worst-case total root ε the plan can charge (relative to the
    /// session input; equals the at-root cost for 1-stable inputs).
    pub total: f64,
    /// Root ε attributed to each node of the spec (zero for nodes that
    /// never charge).
    pub per_node: Vec<f64>,
    /// Per node: the ordered root-budget increments its kernel charges
    /// will cause (one entry per charge event — per stripe for batches,
    /// two per round for the MWEM loop). The executor no longer needs
    /// this schedule — charges redeem atomically from the plan's
    /// reservation — but services use it to audit or meter a plan's
    /// spend profile ahead of admission.
    pub events: Vec<Vec<f64>>,
}

/// Shadow of the kernel's source tree: parent links, stabilities, budget
/// trackers and the partition-dummy flag — exactly the state Algorithm 2
/// reads.
struct Shadow {
    parent: Vec<Option<usize>>,
    stability: Vec<f64>,
    budget: Vec<f64>,
    dummy: Vec<bool>,
}

impl Shadow {
    fn new() -> Self {
        // Node 0: the session input, treated as the accounting root.
        Shadow {
            parent: vec![None],
            stability: vec![1.0],
            budget: vec![0.0],
            dummy: vec![false],
        }
    }

    fn add(&mut self, parent: usize, stability: f64, dummy: bool) -> usize {
        self.parent.push(Some(parent));
        self.stability.push(stability);
        self.budget.push(0.0);
        self.dummy.push(dummy);
        self.parent.len() - 1
    }

    /// Replays `KernelState::request` and returns the *root* tracker
    /// increment this charge causes — the marginal cost the matching
    /// real charge will redeem from the plan's reservation.
    fn request(&mut self, sv: usize, sigma: f64, from_child: Option<usize>) -> f64 {
        match self.parent[sv] {
            None => {
                self.budget[sv] += sigma;
                sigma
            }
            Some(parent) => {
                if self.dummy[sv] {
                    // xlint: allow(panic-policy, reason = "mirror of KernelState::request: dummy nodes are only reached via the recursive call, which always passes Some(child)")
                    let child = from_child.expect("partition variable reached without child");
                    let r = (self.budget[child] + sigma - self.budget[sv]).max(0.0);
                    let inc = self.request(parent, r, Some(sv));
                    self.budget[sv] += r;
                    inc
                } else {
                    let s = self.stability[sv];
                    let inc = self.request(parent, s * sigma, Some(sv));
                    self.budget[sv] += sigma;
                    inc
                }
            }
        }
    }

    fn charge(&mut self, sv: usize, sigma: f64) -> f64 {
        self.request(sv, sigma, None)
    }
}

/// What a spec node contributes to the shadow tree.
#[derive(Clone, Debug)]
enum ShadowVal {
    None,
    Source(usize),
    Sources(Vec<usize>),
}

fn positive_eps(eps: f64) -> Result<f64> {
    // `eps <= 0.0` alone would admit NaN (every comparison on NaN is
    // false), and a NaN declared budget poisons the whole reservation
    // ledger downstream — require a strictly positive *finite* value.
    if !eps.is_finite() || eps <= 0.0 {
        return Err(EktError::InvalidArgument(format!(
            "epsilon must be a positive finite number, got {eps}"
        )));
    }
    Ok(eps)
}

fn source(vals: &[ShadowVal], id: usize) -> Result<usize> {
    match &vals[id] {
        ShadowVal::Source(s) => Ok(*s),
        other => Err(EktError::InvalidPlan(format!(
            "node #{id} is not a source (found {other:?})"
        ))),
    }
}

fn sources(vals: &[ShadowVal], id: usize) -> Result<Vec<usize>> {
    match &vals[id] {
        ShadowVal::Sources(s) => Ok(s.clone()),
        other => Err(EktError::InvalidPlan(format!(
            "node #{id} is not a source list (found {other:?})"
        ))),
    }
}

/// The static group count of a partition node (what makes `Split` arity
/// pre-accountable).
fn static_groups(spec: &PlanSpec, partition: usize) -> Result<usize> {
    match &spec.nodes[partition] {
        NodeKind::Partition(PartitionOp::Stripe { sizes, attr }) => {
            if *attr >= sizes.len() {
                return Err(EktError::InvalidPlan(format!(
                    "stripe attribute {attr} out of range for {} attributes",
                    sizes.len()
                )));
            }
            Ok(sizes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != *attr)
                .map(|(_, &s)| s)
                .product::<usize>()
                .max(1))
        }
        NodeKind::Partition(PartitionOp::Fixed { matrix }) => Ok(matrix.rows()),
        other => Err(EktError::InvalidPlan(format!(
            "split consumes node #{partition}, which is not a static partition ({other:?})"
        ))),
    }
}

/// Rejects specs whose node references do not point at strictly earlier
/// nodes of *this* spec (a `Ref` is a bare index — one taken from a
/// different builder, or a corrupted output index, must surface as a
/// typed error, not an out-of-bounds panic during the walk).
fn validate_refs(spec: &PlanSpec) -> Result<()> {
    let check = |id: usize, here: usize| -> Result<()> {
        if id >= here {
            return Err(EktError::InvalidPlan(format!(
                "node #{here} references node #{id}, which is not an earlier node of this spec \
                 (was the Ref taken from a different builder?)"
            )));
        }
        Ok(())
    };
    let check_domain = |d: &super::SelectDomain, here: usize| match d {
        super::SelectDomain::Source(r) => check(r.id, here),
        super::SelectDomain::FirstOf(r) => check(r.id, here),
    };
    for (here, node) in spec.nodes.iter().enumerate() {
        match node {
            NodeKind::Input | NodeKind::Infer(_) => {}
            NodeKind::Transform(TransformOp::Split { input, partition }) => {
                check(input.id, here)?;
                check(partition.id, here)?;
            }
            NodeKind::Transform(TransformOp::ReduceEach { inputs, partitions }) => {
                check(inputs.id, here)?;
                check(partitions.id, here)?;
            }
            NodeKind::Transform(TransformOp::Linear { input, .. }) => check(input.id, here)?,
            NodeKind::Partition(PartitionOp::DawaEach { inputs, .. }) => check(inputs.id, here)?,
            NodeKind::Partition(_) => {}
            NodeKind::Select(op) => match op {
                super::SelectOp::Identity { domain }
                | super::SelectOp::Total { domain }
                | super::SelectOp::Privelet { domain }
                | super::SelectOp::H2 { domain }
                | super::SelectOp::Hb { domain }
                | super::SelectOp::GreedyH { domain, .. } => check_domain(domain, here)?,
                super::SelectOp::GreedyHEach {
                    inputs, partitions, ..
                } => {
                    check(inputs.id, here)?;
                    check(partitions.id, here)?;
                }
                super::SelectOp::Fixed { .. } => {}
            },
            NodeKind::Measure(MeasureOp::Laplace {
                input, strategy, ..
            }) => {
                check(input.id, here)?;
                check(strategy.id, here)?;
            }
            NodeKind::Measure(MeasureOp::LaplaceBatch {
                inputs, strategies, ..
            }) => {
                check(inputs.id, here)?;
                match strategies {
                    super::StrategySource::Shared(r) => check(r.id, here)?,
                    super::StrategySource::PerSource(r) => check(r.id, here)?,
                }
            }
            NodeKind::AdaptiveMwem(op) => check(op.input.id, here)?,
        }
    }
    if spec.output >= spec.nodes.len() {
        return Err(EktError::InvalidPlan(format!(
            "output references node #{}, but the spec has {} nodes",
            spec.output,
            spec.nodes.len()
        )));
    }
    Ok(())
}

/// See [`PlanSpec::pre_account`].
pub(super) fn pre_account(spec: &PlanSpec) -> Result<PlanCost> {
    validate_refs(spec)?;
    let mut shadow = Shadow::new();
    let mut vals: Vec<ShadowVal> = Vec::with_capacity(spec.nodes.len());
    let mut events: Vec<Vec<f64>> = vec![Vec::new(); spec.nodes.len()];
    // Whether a measurement-producing node precedes the current one in
    // execution order: an Infer node fits over the session's measurement
    // history, and running it with an empty history is an execution-time
    // panic — reject such specs here, statically.
    let mut measured = false;

    for (id, node) in spec.nodes.iter().enumerate() {
        let val = match node {
            NodeKind::Input => ShadowVal::Source(0),
            NodeKind::Transform(TransformOp::Split { input, partition }) => {
                let src = source(&vals, input.id)?;
                let groups = static_groups(spec, partition.id)?;
                let dummy = shadow.add(src, 1.0, true);
                ShadowVal::Sources((0..groups).map(|_| shadow.add(dummy, 1.0, false)).collect())
            }
            NodeKind::Transform(TransformOp::ReduceEach { inputs, .. }) => {
                let srcs = sources(&vals, inputs.id)?;
                ShadowVal::Sources(
                    srcs.into_iter()
                        .map(|s| shadow.add(s, 1.0, false))
                        .collect(),
                )
            }
            NodeKind::Transform(TransformOp::Linear { input, matrix }) => {
                let src = source(&vals, input.id)?;
                // Declared ε values are validated elsewhere; the other
                // number entering the cost arithmetic is this stability
                // factor. A NaN/∞ entry in the transform matrix would
                // otherwise propagate into `PlanCost.total`, and a
                // costing service comparing `total <= budget` on NaN
                // gets a vacuously-false answer instead of an error.
                let stability = matrix.l1_sensitivity();
                if !stability.is_finite() {
                    return Err(EktError::InvalidPlan(format!(
                        "transform node #{id} has non-finite stability {stability}"
                    )));
                }
                ShadowVal::Source(shadow.add(src, stability, false))
            }
            NodeKind::Partition(PartitionOp::DawaEach { inputs, eps, .. }) => {
                let eps = positive_eps(*eps)?;
                for s in sources(&vals, inputs.id)? {
                    let inc = shadow.charge(s, eps);
                    events[id].push(inc);
                }
                ShadowVal::None
            }
            NodeKind::Partition(PartitionOp::Stripe { sizes, attr }) => {
                // Validated here (not only when a Split consumes it) so a
                // malformed node surfaces as a typed error instead of an
                // execution-time panic in `stripe_partition`.
                if *attr >= sizes.len() {
                    return Err(EktError::InvalidPlan(format!(
                        "stripe attribute {attr} out of range for {} attributes",
                        sizes.len()
                    )));
                }
                ShadowVal::None
            }
            NodeKind::Partition(_) | NodeKind::Select(_) => ShadowVal::None,
            NodeKind::Infer(_) => {
                // An Infer node fits the measurements recorded so far; a
                // spec where none can exist would panic at execution
                // ("inference with no measurements") — surface it as a
                // typed error before any kernel call instead.
                if !measured {
                    return Err(EktError::InvalidPlan(format!(
                        "inference node #{id} is not preceded by any measurement-producing \
                         node, so it would run over an empty measurement history"
                    )));
                }
                ShadowVal::None
            }
            NodeKind::Measure(MeasureOp::Laplace { input, eps, .. }) => {
                let eps = positive_eps(*eps)?;
                let src = source(&vals, input.id)?;
                let inc = shadow.charge(src, eps);
                events[id].push(inc);
                measured = true;
                ShadowVal::None
            }
            NodeKind::Measure(MeasureOp::LaplaceBatch {
                inputs,
                eps,
                strategies,
            }) => {
                let eps = positive_eps(*eps)?;
                // Type-level guarantee a strategy ref exists; nothing to
                // pre-account for it.
                let _ = strategies;
                let srcs = sources(&vals, inputs.id)?;
                // An empty batch records nothing, so it does not satisfy
                // a downstream Infer node's need for history.
                measured |= !srcs.is_empty();
                for s in srcs {
                    let inc = shadow.charge(s, eps);
                    events[id].push(inc);
                }
                ShadowVal::None
            }
            NodeKind::AdaptiveMwem(op) => {
                // Validated unconditionally — a zero-round loop charges
                // nothing, but malformed declared budgets or an empty
                // workload must still surface as typed errors (the
                // "malformed specs are rejected statically" contract
                // does not depend on whether the node happens to run).
                positive_eps(op.eps_select)?;
                positive_eps(op.eps_measure)?;
                if op.workload.rows() == 0 {
                    return Err(EktError::InvalidArgument("empty workload".into()));
                }
                let src = source(&vals, op.input.id)?;
                // A zero-round loop issues no measurements (it returns
                // the uniform estimate without consulting history).
                measured |= op.rounds > 0;
                for _ in 0..op.rounds {
                    // Declared per-round budgets: one selection charge,
                    // one measurement charge — Algorithm 2 order.
                    events[id].push(shadow.charge(src, op.eps_select));
                    events[id].push(shadow.charge(src, op.eps_measure));
                }
                ShadowVal::None
            }
        };
        vals.push(val);
    }

    let per_node: Vec<f64> = events.iter().map(|e| e.iter().sum()).collect();
    Ok(PlanCost {
        // The root tracker after the replay IS the worst-case total —
        // same accumulation order as the kernel's root node will see.
        total: shadow.budget[0],
        per_node,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::graph::{MwemLoopOp, MwemRoundInference, PlanBuilder};
    use crate::ops::inference::LsSolver;
    use crate::ops::partition::DawaOptions;
    use ektelo_matrix::Matrix;

    #[test]
    fn sequential_measurements_add_up() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let s1 = b.select_identity(x);
        b.measure_laplace(x, s1, 0.3);
        let s2 = b.select_total(x);
        b.measure_laplace(x, s2, 0.2);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let cost = b.finish(e).pre_account().unwrap();
        assert!((cost.total - 0.5).abs() < 1e-15);
    }

    #[test]
    fn split_siblings_compose_in_parallel() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let p = b.partition_stripes(&[4, 3, 2], 0);
        let stripes = b.transform_split(x, p);
        let s = b.select_hb_shared(stripes);
        b.measure_laplace_batch_shared(stripes, s, 0.7);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let spec = b.finish(e);
        let cost = spec.pre_account().unwrap();
        // 6 stripes at 0.7 each cost 0.7 total under parallel
        // composition.
        assert_eq!(cost.total, 0.7);
        // Only the first stripe's charge reaches the root.
        let measure_events = cost
            .events
            .iter()
            .find(|e| !e.is_empty())
            .expect("measure node has events");
        assert_eq!(measure_events.len(), 6);
        assert_eq!(measure_events[0], 0.7);
        assert!(measure_events[1..].iter().all(|&e| e == 0.0));
    }

    #[test]
    fn stability_scales_cost() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let doubled = b.transform_linear(x, Matrix::scaled(2.0, Matrix::identity(8)));
        let s = b.select_identity(doubled);
        b.measure_laplace(doubled, s, 0.25);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let cost = b.finish(e).pre_account().unwrap();
        assert_eq!(cost.total, 0.5, "2-stable transform doubles the charge");
    }

    #[test]
    fn mwem_loop_uses_declared_round_budgets() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let e = b.mwem_loop(MwemLoopOp {
            input: x,
            workload: Matrix::prefix(16),
            rounds: 5,
            eps_select: 0.1,
            eps_measure: 0.1,
            augment: false,
            inference: MwemRoundInference::MultWeights,
            total: 100.0,
            mw_iterations: 5,
        });
        let cost = b.finish(e).pre_account().unwrap();
        assert!((cost.total - 1.0).abs() < 1e-12);
        assert_eq!(cost.events.iter().map(Vec::len).sum::<usize>(), 10);
    }

    #[test]
    fn dawa_then_measure_totals_both_stages() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let p = b.partition_stripes(&[8, 2], 0);
        let stripes = b.transform_split(x, p);
        let parts = b.partition_dawa_each(stripes, 0.25, DawaOptions::new(0.75));
        let reduced = b.transform_reduce_each(stripes, parts);
        let strats = b.select_greedy_h_each(reduced, parts, &[]);
        b.measure_laplace_batch_each(reduced, strats, 0.75);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let cost = b.finish(e).pre_account().unwrap();
        assert!((cost.total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_builder_refs_rejected_not_panicking() {
        // Refs are bare indices; one taken from a bigger spec and fed to
        // a smaller builder must surface as a typed error, not an
        // out-of-bounds panic — a plan-validating service sees arbitrary
        // specs.
        let mut big = PlanBuilder::new();
        let x = big.input();
        let s = big.select_identity(x);
        big.measure_laplace(x, s, 0.1);
        let e_far = big.infer_least_squares(LsSolver::Iterative); // id 3
        let small = PlanBuilder::new();
        let spec = small.finish(e_far); // output index out of range
        assert!(matches!(spec.pre_account(), Err(EktError::InvalidPlan(_))));

        // And a foreign *input* ref inside a node is caught the same way.
        let mut b1 = PlanBuilder::new();
        let x1 = b1.input();
        let s1 = b1.select_identity(x1);
        let far_strategy = {
            let mut b2 = PlanBuilder::new();
            let x2 = b2.input();
            let _ = b2.select_identity(x2);
            let _ = b2.select_identity(x2);
            b2.select_identity(x2) // id 3 — beyond b1's node count there
        };
        b1.measure_laplace(x1, far_strategy, 0.1);
        let _ = s1;
        let e = b1.infer_least_squares(LsSolver::Iterative);
        assert!(matches!(
            b1.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));
    }

    #[test]
    fn dangling_stripe_with_bad_attr_rejected_statically() {
        // A malformed Stripe node that no Split consumes must still be
        // caught by pre-accounting (typed error, not an executor panic).
        let mut b = PlanBuilder::new();
        let x = b.input();
        b.partition_stripes(&[4], 1); // attr out of range, never consumed
        let s = b.select_identity(x);
        b.measure_laplace(x, s, 0.1);
        let e = b.infer_least_squares(LsSolver::Iterative);
        assert!(matches!(
            b.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));
    }

    #[test]
    fn non_positive_epsilon_rejected_statically() {
        // Zero, NaN and ∞ all fail `eps <= 0.0`-style guards differently
        // (NaN fails every comparison), so each must be covered: a NaN
        // that reaches the reservation poisons budget enforcement.
        for bad in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            let mut b = PlanBuilder::new();
            let x = b.input();
            let s = b.select_identity(x);
            b.measure_laplace(x, s, bad);
            let e = b.infer_least_squares(LsSolver::Iterative);
            assert!(
                matches!(b.finish(e).pre_account(), Err(EktError::InvalidArgument(_))),
                "epsilon {bad} must be rejected statically"
            );
        }
    }

    #[test]
    fn non_finite_stability_rejected_statically() {
        // Declared ε values are validated; the transform stability is
        // the other number entering the cost arithmetic and must not
        // smuggle an ∞ into `PlanCost.total`. (NaN cannot reach here:
        // `l1_sensitivity` folds with `f64::max`, which ignores NaN, so
        // a NaN-scaled matrix collapses to stability 0 — identically in
        // the shadow and the kernel.)
        let mut b = PlanBuilder::new();
        let x = b.input();
        let t = b.transform_linear(x, Matrix::scaled(f64::INFINITY, Matrix::identity(8)));
        let s = b.select_identity(t);
        b.measure_laplace(t, s, 0.1);
        let e = b.infer_least_squares(LsSolver::Iterative);
        assert!(matches!(
            b.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));
    }

    #[test]
    fn default_builder_is_equivalent_to_new() {
        // A derived Default would start with an empty node list, so
        // `input()`'s Ref(0) would alias the first operator pushed.
        let mut b = PlanBuilder::default();
        let x = b.input();
        let s = b.select_identity(x);
        b.measure_laplace(x, s, 0.2);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let cost = b.finish(e).pre_account().unwrap();
        assert!((cost.total - 0.2).abs() < 1e-15);
    }

    #[test]
    fn inference_without_measurements_rejected_statically() {
        // A measurement-free spec used to pass pre-accounting (cost 0)
        // and then panic at execution inside the inference operator
        // ("inference with no measurements").
        let mut b = PlanBuilder::new();
        let _x = b.input();
        let e = b.infer_least_squares(LsSolver::Iterative);
        assert!(matches!(
            b.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));

        // An Infer node placed *before* the plan's only measure node is
        // equally invalid — execution order is node order.
        let mut b = PlanBuilder::new();
        let x = b.input();
        let e = b.infer_least_squares(LsSolver::Iterative);
        let s = b.select_identity(x);
        b.measure_laplace(x, s, 0.1);
        assert!(matches!(
            b.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));

        // A zero-round MWEM loop records no measurements, so it does not
        // license a downstream Infer node either.
        let mut b = PlanBuilder::new();
        let x = b.input();
        let _loop = b.mwem_loop(MwemLoopOp {
            input: x,
            workload: Matrix::prefix(16),
            rounds: 0,
            eps_select: 0.1,
            eps_measure: 0.1,
            augment: false,
            inference: MwemRoundInference::MultWeights,
            total: 100.0,
            mw_iterations: 5,
        });
        let e = b.infer_least_squares(LsSolver::Iterative);
        assert!(matches!(
            b.finish(e).pre_account(),
            Err(EktError::InvalidPlan(_))
        ));
    }

    #[test]
    fn zero_round_mwem_loop_is_still_validated() {
        // rounds == 0 charges nothing, but malformed declared budgets and
        // an empty workload must surface as typed errors regardless.
        let cases: [(f64, f64, Matrix); 4] = [
            (f64::NAN, 0.1, Matrix::prefix(16)),
            (0.1, -1.0, Matrix::prefix(16)),
            (0.1, f64::INFINITY, Matrix::prefix(16)),
            (0.1, 0.1, Matrix::range_queries(16, vec![])), // empty workload
        ];
        for (eps_select, eps_measure, workload) in cases {
            let mut b = PlanBuilder::new();
            let x = b.input();
            let e = b.mwem_loop(MwemLoopOp {
                input: x,
                workload,
                rounds: 0,
                eps_select,
                eps_measure,
                augment: false,
                inference: MwemRoundInference::MultWeights,
                total: 100.0,
                mw_iterations: 5,
            });
            assert!(
                matches!(b.finish(e).pre_account(), Err(EktError::InvalidArgument(_))),
                "zero-round loop with eps_select={eps_select}, eps_measure={eps_measure} \
                 must still fail validation"
            );
        }
    }
}
