//! Plans as data: a typed operator-graph API (paper §3–§5).
//!
//! EKTELO's central claim is that DP computations should be *plans* —
//! inspectable compositions of vetted operators from five fixed classes
//! (Transformation, Query, Query selection, Partition selection,
//! Inference). The imperative plan functions in `ektelo-plans` realize
//! that claim operationally, but each one is opaque Rust: nothing can
//! introspect, cost or validate a plan before it touches the kernel.
//!
//! This module makes plans first-class data:
//!
//! * [`PlanSpec`] — a DAG of class-tagged operator nodes, built through
//!   the typed [`PlanBuilder`] (references are type-checked at compile
//!   time: a measure node cannot consume a partition output, a split can
//!   only consume a *static* partition whose arity is known up front).
//! * [`PlanSpec::pre_account`] — **static budget pre-accounting**: walks
//!   the spec and replays the kernel's `Request` algorithm (Algorithm 2)
//!   over a shadow source tree, computing the exact worst-case root ε the
//!   plan can charge — data-independent parts exactly, adaptive loops via
//!   their declared per-round budgets — *before any kernel call*.
//! * [`PlanExecutor`] — runs a spec against a
//!   [`crate::ProtectedKernel`] session: it pre-accounts, takes a
//!   [`crate::kernel::BudgetReservation`] for the
//!   whole plan (rejecting over-budget specs with zero kernel history
//!   entries), then executes node by node; every charge redeems its
//!   cost from the reservation atomically with the root-ledger update,
//!   so no other session can ever take an admitted plan's budget.
//! * [`PlanSpec::signature`] — renders the paper's Fig. 2 signature
//!   string (e.g. `I:( SW LM MW )`) from the graph, for logging and
//!   plan-catalogue comparison.
//!
//! ```
//! use ektelo_core::kernel::ProtectedKernel;
//! use ektelo_core::ops::graph::{PlanBuilder, PlanExecutor};
//! use ektelo_core::ops::inference::LsSolver;
//!
//! let mut b = PlanBuilder::new();
//! let x = b.input();
//! let s = b.select_identity(x);
//! b.measure_laplace(x, s, 1.0);
//! let e = b.infer_least_squares(LsSolver::Iterative);
//! let spec = b.finish(e);
//!
//! assert_eq!(spec.signature(), "SI LM LS");
//! assert_eq!(spec.pre_account().unwrap().total, 1.0);
//!
//! let k = ProtectedKernel::init_from_vector(vec![5.0; 8], 1.0, 3);
//! let report = PlanExecutor::new(&k).run(&spec, k.root()).unwrap();
//! assert_eq!(report.x_hat.len(), 8);
//! assert_eq!(report.eps_charged, 1.0);
//! ```

mod budget;
mod exec;

pub use budget::PlanCost;
pub use exec::{mwem_augment_with_level, mwem_row_strategy};
pub use exec::{ExecReport, PlanExecutor};

use std::marker::PhantomData;

use ektelo_matrix::Matrix;

use crate::kernel::{EktError, Result};
use crate::ops::inference::LsSolver;
use crate::ops::partition::DawaOptions;

// ---------------------------------------------------------------------
// Operator classes and the `Operator` trait
// ---------------------------------------------------------------------

/// The paper's five operator classes (Fig. 1). Every node of a
/// [`PlanSpec`] is tagged with the class of the operator it applies, so
/// a service can validate plans structurally ("no Measure before the
/// budget check", "Infer nodes never touch the kernel") without running
/// them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Transformations: derive new protected sources (Private).
    Transform,
    /// Query operators: measurements that consume budget
    /// (Private→Public).
    Measure,
    /// Query selection: choose *what* to measure.
    Select,
    /// Partition selection: choose *how to group* domain cells.
    Partition,
    /// Inference: derive estimates from recorded measurements (Public).
    Infer,
}

/// Common surface of every operator node: its class tag and its Fig. 2
/// signature token.
pub trait Operator {
    /// The operator class this node belongs to.
    fn class(&self) -> OpClass;
    /// The Fig. 2 signature token (e.g. `"SI"`, `"LM"`, `"PD"`).
    fn token(&self) -> &'static str;
    /// True when this node consumes privacy budget at execution time
    /// (Private→Public operators).
    fn charges_budget(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Typed node references
// ---------------------------------------------------------------------

/// A typed reference to the output of an earlier node in the spec being
/// built. The type parameter is a phantom tag ([`SourceTag`] etc.), so
/// the builder's methods only accept outputs of the right kind — the
/// "typed builder" of the operator-graph API.
pub struct Ref<T> {
    pub(crate) id: usize,
    _tag: PhantomData<fn() -> T>,
}

impl<T> Ref<T> {
    fn new(id: usize) -> Self {
        Ref {
            id,
            _tag: PhantomData,
        }
    }

    /// Index of the referenced node within the spec (inspection).
    pub fn node_index(&self) -> usize {
        self.id
    }
}

impl<T> Clone for Ref<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ref<T> {}
impl<T> std::fmt::Debug for Ref<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Ref(#{})", self.id)
    }
}

/// Tag: a single protected vector source.
pub enum SourceTag {}
/// Tag: a list of protected vector sources (one per partition group).
pub enum SourceListTag {}
/// Tag: a single strategy matrix.
pub enum StrategyTag {}
/// Tag: a list of strategy matrices (one per source in a list).
pub enum StrategyListTag {}
/// Tag: a single (static, public) partition matrix.
pub enum PartitionTag {}
/// Tag: a list of partition matrices (data-adaptive, one per source).
pub enum PartitionListTag {}
/// Tag: a completed measurement (recorded in the kernel history).
pub enum MeasureTag {}
/// Tag: an estimate of the data vector.
pub enum EstimateTag {}

/// Reference to a protected source.
pub type SourceRef = Ref<SourceTag>;
/// Reference to a list of protected sources.
pub type SourceListRef = Ref<SourceListTag>;
/// Reference to a strategy matrix.
pub type StrategyRef = Ref<StrategyTag>;
/// Reference to a list of strategy matrices.
pub type StrategyListRef = Ref<StrategyListTag>;
/// Reference to a static partition matrix.
pub type PartitionRef = Ref<PartitionTag>;
/// Reference to a list of partition matrices.
pub type PartitionListRef = Ref<PartitionListTag>;
/// Reference to a recorded measurement.
pub type MeasureRef = Ref<MeasureTag>;
/// Reference to an estimate.
pub type EstimateRef = Ref<EstimateTag>;

/// The domain a size-parameterized selection operator reads its `n`
/// from: a single source, or the first source of a list (all stripes of
/// a stripe split share one length).
#[derive(Clone, Copy, Debug)]
pub enum SelectDomain {
    /// Domain size of one source.
    Source(SourceRef),
    /// Domain size of the first source in a list (stripe splits produce
    /// equal-length groups).
    FirstOf(SourceListRef),
}

/// Where a batched measurement takes its strategies from.
#[derive(Clone, Copy, Debug)]
pub enum StrategySource {
    /// One strategy shared by every source (HB-Striped).
    Shared(StrategyRef),
    /// One strategy per source, in order (DAWA-Striped).
    PerSource(StrategyListRef),
}

// ---------------------------------------------------------------------
// Operator node payloads
// ---------------------------------------------------------------------

/// Transformation nodes (Private; tracked stability, no budget).
#[derive(Clone, Debug)]
pub enum TransformOp {
    /// `V-SplitByPartition` with a *static* partition: one child source
    /// per group, composing in parallel. Token `TP`.
    Split {
        /// Source to split.
        input: SourceRef,
        /// The static partition (its group count fixes the split arity
        /// at spec time — what makes pre-accounting exact).
        partition: PartitionRef,
    },
    /// `V-ReduceByPartition` applied element-wise: `outputs[i] =
    /// reduce(inputs[i], partitions[i])`. Token `TR`.
    ReduceEach {
        /// Sources to reduce.
        inputs: SourceListRef,
        /// One partition per source (e.g. DAWA's stage-1 outputs).
        partitions: PartitionListRef,
    },
    /// General linear transformation `x' = M x`; stability is the L1
    /// column norm of `M`, known statically. Token `TM`.
    Linear {
        /// Source to transform.
        input: SourceRef,
        /// The transformation matrix.
        matrix: Matrix,
    },
}

impl Operator for TransformOp {
    fn class(&self) -> OpClass {
        OpClass::Transform
    }
    fn token(&self) -> &'static str {
        match self {
            TransformOp::Split { .. } => "TP",
            TransformOp::ReduceEach { .. } => "TR",
            TransformOp::Linear { .. } => "TM",
        }
    }
}

/// Partition selection nodes.
#[derive(Clone, Debug)]
pub enum PartitionOp {
    /// The stripe partition of §9.2 (Public). Token `PS`.
    Stripe {
        /// Per-attribute domain sizes.
        sizes: Vec<usize>,
        /// The striped attribute.
        attr: usize,
    },
    /// A caller-supplied static partition matrix (Public). Token `PF`.
    Fixed {
        /// The partition matrix (validated at build time).
        matrix: Matrix,
    },
    /// DAWA's data-adaptive stage-1 partition, element-wise over a
    /// source list (Private→Public: charges `eps` per source, composing
    /// in parallel across split siblings). Token `PD`.
    DawaEach {
        /// Sources to partition (one DAWA stage 1 per source).
        inputs: SourceListRef,
        /// Stage-1 budget charged to every source.
        eps: f64,
        /// DAWA options (stage-2 budget for the cost model, debias flag).
        opts: DawaOptions,
    },
}

impl Operator for PartitionOp {
    fn class(&self) -> OpClass {
        OpClass::Partition
    }
    fn token(&self) -> &'static str {
        match self {
            PartitionOp::Stripe { .. } => "PS",
            PartitionOp::Fixed { .. } => "PF",
            PartitionOp::DawaEach { .. } => "PD",
        }
    }
    fn charges_budget(&self) -> bool {
        matches!(self, PartitionOp::DawaEach { .. })
    }
}

/// Query selection nodes (all Public; the private selection of MWEM
/// lives inside [`MwemLoopOp`]).
#[derive(Clone, Debug)]
pub enum SelectOp {
    /// Identity strategy. Token `SI`.
    Identity {
        /// Domain the strategy covers.
        domain: SelectDomain,
    },
    /// Total (single sum) strategy. Token `ST`.
    Total {
        /// Domain the strategy covers.
        domain: SelectDomain,
    },
    /// Privelet / Haar wavelet strategy. Token `SP`.
    Privelet {
        /// Domain the strategy covers.
        domain: SelectDomain,
    },
    /// Hierarchical H2 strategy. Token `SH2`.
    H2 {
        /// Domain the strategy covers.
        domain: SelectDomain,
    },
    /// Hierarchical HB strategy (optimized branching). Token `SHB`.
    Hb {
        /// Domain the strategy covers.
        domain: SelectDomain,
    },
    /// Greedy-H strategy adapted to a range workload. Token `SG`.
    GreedyH {
        /// Domain the strategy covers.
        domain: SelectDomain,
        /// Range queries of interest (empty for uniform weights).
        ranges: Vec<(usize, usize)>,
    },
    /// Greedy-H element-wise over reduced sources: `strategy[i]` adapts
    /// to source `i`'s bucket count and to `ranges` mapped onto its
    /// partition's buckets. Token `SG`.
    GreedyHEach {
        /// Reduced sources (one strategy per entry).
        inputs: SourceListRef,
        /// The interval partitions the sources were reduced by.
        partitions: PartitionListRef,
        /// Ranges on the original per-stripe domain.
        ranges: Vec<(usize, usize)>,
    },
    /// A pre-built strategy carried in the spec (HDMM's optimized
    /// output, Kronecker stripe strategies, …) with its own token.
    Fixed {
        /// The strategy matrix.
        matrix: Matrix,
        /// Signature token to render (e.g. `"SHD"`, `"SS"`).
        token: &'static str,
    },
}

impl Operator for SelectOp {
    fn class(&self) -> OpClass {
        OpClass::Select
    }
    fn token(&self) -> &'static str {
        match self {
            SelectOp::Identity { .. } => "SI",
            SelectOp::Total { .. } => "ST",
            SelectOp::Privelet { .. } => "SP",
            SelectOp::H2 { .. } => "SH2",
            SelectOp::Hb { .. } => "SHB",
            SelectOp::GreedyH { .. } | SelectOp::GreedyHEach { .. } => "SG",
            SelectOp::Fixed { token, .. } => token,
        }
    }
}

/// Query (measurement) nodes — Private→Public, budget-consuming.
#[derive(Clone, Debug)]
pub enum MeasureOp {
    /// `Vector Laplace` on one source. Token `LM`.
    Laplace {
        /// Source to measure.
        input: SourceRef,
        /// Strategy to measure it with.
        strategy: StrategyRef,
        /// Budget charged to the source.
        eps: f64,
    },
    /// Batched `Vector Laplace` over a source list (parallel composition
    /// across split siblings; bit-identical to a sequential loop). Token
    /// `LM`.
    LaplaceBatch {
        /// Sources to measure.
        inputs: SourceListRef,
        /// Shared or per-source strategies.
        strategies: StrategySource,
        /// Budget charged to every source.
        eps: f64,
    },
}

impl Operator for MeasureOp {
    fn class(&self) -> OpClass {
        OpClass::Measure
    }
    fn token(&self) -> &'static str {
        "LM"
    }
    fn charges_budget(&self) -> bool {
        true
    }
}

/// Inference nodes (Public). They consume the *session's* measurement
/// history — every measurement this plan execution recorded so far —
/// exactly as the imperative plans run inference over
/// `measurements_since(start)`.
#[derive(Clone, Debug)]
pub enum InferOp {
    /// Weighted least squares. Token `LS`.
    LeastSquares {
        /// The solver engine.
        solver: LsSolver,
    },
    /// Non-negative least squares. Token `NLS`.
    Nnls,
}

impl Operator for InferOp {
    fn class(&self) -> OpClass {
        OpClass::Infer
    }
    fn token(&self) -> &'static str {
        match self {
            InferOp::LeastSquares { .. } => "LS",
            InferOp::Nnls => "NLS",
        }
    }
}

/// Which inference operator closes each MWEM round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MwemRoundInference {
    /// Multiplicative weights (plans #7/#18). Token `MW`.
    MultWeights,
    /// NNLS with a high-confidence known total (plans #19/#20). Token
    /// `NLS`.
    NnlsKnownTotal,
}

/// MWEM's adaptive loop as a single graph node with **declared per-round
/// budgets**: each round privately selects the worst-approximated
/// workload query (`SW`, exponential mechanism, `eps_select` per round),
/// measures it (`LM`, `eps_measure` per round) and re-infers. The loop's
/// data-adaptivity is confined to *which* queries get measured — the
/// budget schedule is declared up front, which is what lets
/// [`PlanSpec::pre_account`] bound the loop exactly at
/// `rounds × (eps_select + eps_measure)`.
#[derive(Clone, Debug)]
pub struct MwemLoopOp {
    /// The source the loop selects from and measures.
    pub input: SourceRef,
    /// The analyst's workload (selection scores range over its rows).
    pub workload: Matrix,
    /// Number of rounds `T`.
    pub rounds: usize,
    /// Declared selection budget per round.
    pub eps_select: f64,
    /// Declared measurement budget per round.
    pub eps_measure: f64,
    /// Variant b: augment each round's query with that round's disjoint
    /// dyadic intervals (free under parallel composition).
    pub augment: bool,
    /// Per-round inference engine.
    pub inference: MwemRoundInference,
    /// Assumed (public) total number of records.
    pub total: f64,
    /// Multiplicative-weights passes per round.
    pub mw_iterations: usize,
}

// ---------------------------------------------------------------------
// The spec and its nodes
// ---------------------------------------------------------------------

/// One node of a [`PlanSpec`]: the session input, an operator from one
/// of the five classes, or an adaptive loop with declared budgets.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// The session's input source (node 0 of every spec).
    Input,
    /// A transformation node.
    Transform(TransformOp),
    /// A partition selection node.
    Partition(PartitionOp),
    /// A query selection node.
    Select(SelectOp),
    /// A measurement node.
    Measure(MeasureOp),
    /// An inference node.
    Infer(InferOp),
    /// MWEM's adaptive loop (composite; renders as `I:( … )`).
    AdaptiveMwem(MwemLoopOp),
}

impl NodeKind {
    /// The operator class of this node (`None` for the input node; the
    /// adaptive loop reports `Measure`, its budget-carrying aspect).
    pub fn class(&self) -> Option<OpClass> {
        match self {
            NodeKind::Input => None,
            NodeKind::Transform(op) => Some(op.class()),
            NodeKind::Partition(op) => Some(op.class()),
            NodeKind::Select(op) => Some(op.class()),
            NodeKind::Measure(op) => Some(op.class()),
            NodeKind::Infer(op) => Some(op.class()),
            NodeKind::AdaptiveMwem(_) => Some(OpClass::Measure),
        }
    }

    /// True when executing this node charges privacy budget.
    pub fn charges_budget(&self) -> bool {
        match self {
            NodeKind::Input => false,
            NodeKind::Transform(op) => op.charges_budget(),
            NodeKind::Partition(op) => op.charges_budget(),
            NodeKind::Select(op) => op.charges_budget(),
            NodeKind::Measure(op) => op.charges_budget(),
            NodeKind::Infer(op) => op.charges_budget(),
            NodeKind::AdaptiveMwem(_) => true,
        }
    }

    /// Whether this node operates element-wise over a source *list*
    /// (drives the `TP[ … ]` bracket in signature rendering).
    fn is_striped(&self) -> bool {
        matches!(
            self,
            NodeKind::Partition(PartitionOp::DawaEach { .. })
                | NodeKind::Transform(TransformOp::ReduceEach { .. })
                | NodeKind::Select(SelectOp::GreedyHEach { .. })
                | NodeKind::Select(SelectOp::Hb {
                    domain: SelectDomain::FirstOf(_),
                })
                | NodeKind::Select(SelectOp::H2 {
                    domain: SelectDomain::FirstOf(_),
                })
                | NodeKind::Select(SelectOp::Identity {
                    domain: SelectDomain::FirstOf(_),
                })
                | NodeKind::Select(SelectOp::Total {
                    domain: SelectDomain::FirstOf(_),
                })
                | NodeKind::Select(SelectOp::Privelet {
                    domain: SelectDomain::FirstOf(_),
                })
                | NodeKind::Select(SelectOp::GreedyH {
                    domain: SelectDomain::FirstOf(_),
                    ..
                })
                | NodeKind::Measure(MeasureOp::LaplaceBatch { .. })
        )
    }
}

/// An inspectable, executable plan: a DAG of class-tagged operator
/// nodes. Build one with [`PlanBuilder`]; run it with [`PlanExecutor`].
///
/// A spec is pure data — it holds matrices, budgets and node wiring, but
/// no closures and no kernel handles — so a service can cost it
/// ([`PlanSpec::pre_account`]), log it ([`PlanSpec::signature`]), cache
/// it, or reject it before any protected data is touched.
#[derive(Clone, Debug)]
pub struct PlanSpec {
    pub(crate) nodes: Vec<NodeKind>,
    pub(crate) output: usize,
}

impl PlanSpec {
    /// Starts building a spec.
    pub fn builder() -> PlanBuilder {
        PlanBuilder::new()
    }

    /// The nodes of the plan, in execution order (inspection).
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Index of the node whose estimate is the plan's output.
    pub fn output_node(&self) -> usize {
        self.output
    }

    /// Static budget pre-accounting: the exact worst-case root ε this
    /// plan can charge, computed by replaying Algorithm 2 over a shadow
    /// source tree — without touching any kernel. Costs are relative to
    /// the session input (scale by
    /// [`crate::ProtectedKernel::stability_to_root`] for the root-level
    /// figure; the two coincide for 1-stable input chains, which is every
    /// plan in the catalogue).
    pub fn pre_account(&self) -> Result<PlanCost> {
        budget::pre_account(self)
    }

    /// Renders the paper's Fig. 2 signature string from the graph, e.g.
    /// `"SI LM LS"`, `"PS TP[ PD TR SG LM ] LS"`, `"I:( SW LM MW )"`.
    pub fn signature(&self) -> String {
        let mut out: Vec<String> = Vec::new();
        let mut bracket_open = false;
        for node in &self.nodes {
            if bracket_open && !node.is_striped() {
                out.push("]".into());
                bracket_open = false;
            }
            match node {
                NodeKind::Input => {}
                NodeKind::Transform(op @ TransformOp::Split { .. }) => {
                    out.push(format!("{}[", op.token()));
                    bracket_open = true;
                }
                NodeKind::Transform(op) => out.push(op.token().into()),
                NodeKind::Partition(op) => out.push(op.token().into()),
                NodeKind::Select(op) => out.push(op.token().into()),
                NodeKind::Measure(op) => out.push(op.token().into()),
                NodeKind::Infer(op) => out.push(op.token().into()),
                NodeKind::AdaptiveMwem(op) => {
                    let mut body = vec!["SW"];
                    if op.augment {
                        body.push("SH2");
                    }
                    body.push("LM");
                    body.push(match op.inference {
                        MwemRoundInference::MultWeights => "MW",
                        MwemRoundInference::NnlsKnownTotal => "NLS",
                    });
                    out.push(format!("I:( {} )", body.join(" ")));
                }
            }
        }
        if bracket_open {
            out.push("]".into());
        }
        // Join, then tidy the bracket spacing to the paper's style:
        // `TP[ PD … LM ]`.
        out.join(" ").replace("[ ]", "[]")
    }
}

// ---------------------------------------------------------------------
// The typed builder
// ---------------------------------------------------------------------

/// Builds a [`PlanSpec`] node by node. Every method appends one operator
/// node and returns a typed reference to its output; the type system
/// guarantees references are used where their kind fits (compile-time
/// plan validation — the runtime re-checks only what types cannot
/// express, like partition validity).
#[derive(Debug)]
pub struct PlanBuilder {
    nodes: Vec<NodeKind>,
}

/// Same as [`PlanBuilder::new`] — a derived `Default` would start with an
/// *empty* node list, breaking the "node 0 is the session input"
/// invariant every `input()` ref relies on.
impl Default for PlanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanBuilder {
    /// A fresh builder whose node 0 is the session input.
    pub fn new() -> Self {
        PlanBuilder {
            nodes: vec![NodeKind::Input],
        }
    }

    /// The session input source (the `SourceVar` handed to
    /// [`PlanExecutor::run`]).
    pub fn input(&self) -> SourceRef {
        Ref::new(0)
    }

    fn push<T>(&mut self, node: NodeKind) -> Ref<T> {
        self.nodes.push(node);
        Ref::new(self.nodes.len() - 1)
    }

    // --- Partition selection ---------------------------------------

    /// The stripe partition over `sizes` along `attr` (Public).
    pub fn partition_stripes(&mut self, sizes: &[usize], attr: usize) -> PartitionRef {
        self.push(NodeKind::Partition(PartitionOp::Stripe {
            sizes: sizes.to_vec(),
            attr,
        }))
    }

    /// A caller-supplied static partition matrix (Public); rejected at
    /// build time unless `matrix` is a valid partition.
    pub fn partition_fixed(&mut self, matrix: Matrix) -> Result<PartitionRef> {
        if !matrix.is_partition() {
            return Err(EktError::InvalidPartition(format!(
                "matrix of shape {:?} is not a partition",
                matrix.shape()
            )));
        }
        Ok(self.push(NodeKind::Partition(PartitionOp::Fixed { matrix })))
    }

    /// DAWA stage-1 partition selection over every source in `inputs`,
    /// charging `eps` per source (Private→Public).
    pub fn partition_dawa_each(
        &mut self,
        inputs: SourceListRef,
        eps: f64,
        opts: DawaOptions,
    ) -> PartitionListRef {
        self.push(NodeKind::Partition(PartitionOp::DawaEach {
            inputs,
            eps,
            opts,
        }))
    }

    // --- Transformations -------------------------------------------

    /// Splits `input` by a static partition into per-group sources
    /// (parallel composition across the groups).
    pub fn transform_split(&mut self, input: SourceRef, partition: PartitionRef) -> SourceListRef {
        self.push(NodeKind::Transform(TransformOp::Split { input, partition }))
    }

    /// Reduces every source by its matching partition.
    pub fn transform_reduce_each(
        &mut self,
        inputs: SourceListRef,
        partitions: PartitionListRef,
    ) -> SourceListRef {
        self.push(NodeKind::Transform(TransformOp::ReduceEach {
            inputs,
            partitions,
        }))
    }

    /// General linear transformation `x' = M x` (stability = L1 column
    /// norm of `M`, accounted statically).
    pub fn transform_linear(&mut self, input: SourceRef, matrix: Matrix) -> SourceRef {
        self.push(NodeKind::Transform(TransformOp::Linear { input, matrix }))
    }

    // --- Query selection -------------------------------------------

    /// Identity strategy over `input`'s domain.
    pub fn select_identity(&mut self, input: SourceRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Identity {
            domain: SelectDomain::Source(input),
        }))
    }

    /// Total strategy over `input`'s domain.
    pub fn select_total(&mut self, input: SourceRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Total {
            domain: SelectDomain::Source(input),
        }))
    }

    /// Privelet (wavelet) strategy over `input`'s domain.
    pub fn select_privelet(&mut self, input: SourceRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Privelet {
            domain: SelectDomain::Source(input),
        }))
    }

    /// H2 strategy over `input`'s domain.
    pub fn select_h2(&mut self, input: SourceRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::H2 {
            domain: SelectDomain::Source(input),
        }))
    }

    /// HB strategy over `input`'s domain.
    pub fn select_hb(&mut self, input: SourceRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Hb {
            domain: SelectDomain::Source(input),
        }))
    }

    /// HB strategy over the (shared) domain of the sources in `inputs` —
    /// the per-stripe strategy of HB-Striped.
    pub fn select_hb_shared(&mut self, inputs: SourceListRef) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Hb {
            domain: SelectDomain::FirstOf(inputs),
        }))
    }

    /// Greedy-H strategy over `input`'s domain, adapted to `ranges`.
    pub fn select_greedy_h(&mut self, input: SourceRef, ranges: &[(usize, usize)]) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::GreedyH {
            domain: SelectDomain::Source(input),
            ranges: ranges.to_vec(),
        }))
    }

    /// Greedy-H per reduced source, with `ranges` mapped onto each
    /// source's partition buckets (DAWA-Striped's stage 2 selection).
    pub fn select_greedy_h_each(
        &mut self,
        inputs: SourceListRef,
        partitions: PartitionListRef,
        ranges: &[(usize, usize)],
    ) -> StrategyListRef {
        self.push(NodeKind::Select(SelectOp::GreedyHEach {
            inputs,
            partitions,
            ranges: ranges.to_vec(),
        }))
    }

    /// A pre-built strategy carried in the spec, rendered with `token`
    /// (e.g. HDMM's optimized strategy as `"SHD"`).
    pub fn select_fixed(&mut self, matrix: Matrix, token: &'static str) -> StrategyRef {
        self.push(NodeKind::Select(SelectOp::Fixed { matrix, token }))
    }

    // --- Query (measurement) ---------------------------------------

    /// Measures `input` with `strategy` at `eps` (Vector Laplace).
    pub fn measure_laplace(
        &mut self,
        input: SourceRef,
        strategy: StrategyRef,
        eps: f64,
    ) -> MeasureRef {
        self.push(NodeKind::Measure(MeasureOp::Laplace {
            input,
            strategy,
            eps,
        }))
    }

    /// Measures every source in `inputs` with one shared strategy at
    /// `eps` (batched; parallel composition across split siblings).
    pub fn measure_laplace_batch_shared(
        &mut self,
        inputs: SourceListRef,
        strategy: StrategyRef,
        eps: f64,
    ) -> MeasureRef {
        self.push(NodeKind::Measure(MeasureOp::LaplaceBatch {
            inputs,
            strategies: StrategySource::Shared(strategy),
            eps,
        }))
    }

    /// Measures every source in `inputs` with its own strategy at `eps`.
    pub fn measure_laplace_batch_each(
        &mut self,
        inputs: SourceListRef,
        strategies: StrategyListRef,
        eps: f64,
    ) -> MeasureRef {
        self.push(NodeKind::Measure(MeasureOp::LaplaceBatch {
            inputs,
            strategies: StrategySource::PerSource(strategies),
            eps,
        }))
    }

    // --- Inference -------------------------------------------------

    /// Weighted least squares over the session's measurements.
    pub fn infer_least_squares(&mut self, solver: LsSolver) -> EstimateRef {
        self.push(NodeKind::Infer(InferOp::LeastSquares { solver }))
    }

    /// Non-negative least squares over the session's measurements.
    pub fn infer_nnls(&mut self) -> EstimateRef {
        self.push(NodeKind::Infer(InferOp::Nnls))
    }

    // --- Adaptive loop ---------------------------------------------

    /// MWEM's adaptive loop with declared per-round budgets; produces
    /// the final round's estimate.
    pub fn mwem_loop(&mut self, op: MwemLoopOp) -> EstimateRef {
        self.push(NodeKind::AdaptiveMwem(op))
    }

    /// Finalizes the spec with `output` as the plan's estimate.
    pub fn finish(self, output: EstimateRef) -> PlanSpec {
        PlanSpec {
            nodes: self.nodes,
            output: output.id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_for_baseline_shape() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let s = b.select_hb(x);
        b.measure_laplace(x, s, 0.5);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let spec = b.finish(e);
        assert_eq!(spec.signature(), "SHB LM LS");
        assert_eq!(spec.nodes().len(), 4);
        assert_eq!(spec.nodes()[1].class(), Some(OpClass::Select));
        assert_eq!(spec.nodes()[2].class(), Some(OpClass::Measure));
        assert!(spec.nodes()[2].charges_budget());
        assert!(!spec.nodes()[3].charges_budget());
    }

    #[test]
    fn signature_for_striped_shape() {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let p = b.partition_stripes(&[8, 3], 0);
        let stripes = b.transform_split(x, p);
        let s = b.select_hb_shared(stripes);
        b.measure_laplace_batch_shared(stripes, s, 1.0);
        let e = b.infer_least_squares(LsSolver::Iterative);
        let spec = b.finish(e);
        assert_eq!(spec.signature(), "PS TP[ SHB LM ] LS");
    }

    #[test]
    fn signature_for_mwem_variants() {
        let mk = |augment, inference| {
            let mut b = PlanBuilder::new();
            let x = b.input();
            let e = b.mwem_loop(MwemLoopOp {
                input: x,
                workload: Matrix::prefix(8),
                rounds: 3,
                eps_select: 0.1,
                eps_measure: 0.1,
                augment,
                inference,
                total: 100.0,
                mw_iterations: 10,
            });
            b.finish(e)
        };
        assert_eq!(
            mk(false, MwemRoundInference::MultWeights).signature(),
            "I:( SW LM MW )"
        );
        assert_eq!(
            mk(true, MwemRoundInference::NnlsKnownTotal).signature(),
            "I:( SW SH2 LM NLS )"
        );
    }

    #[test]
    fn fixed_partition_validated_at_build_time() {
        let mut b = PlanBuilder::new();
        assert!(matches!(
            b.partition_fixed(Matrix::prefix(4)),
            Err(EktError::InvalidPartition(_))
        ));
    }
}
