#![deny(missing_docs)]
//! # ektelo-core
//!
//! The EKTELO protected kernel and operator library (paper §4–§5, §8).
//!
//! ## Architecture
//!
//! EKTELO splits execution into an untrusted **client space** — where plans
//! (arbitrary Rust code) run — and a **protected kernel** that encloses the
//! private data. Plans interact with the kernel only through *operators*:
//!
//! * **Private** operators ([`ProtectedKernel::transform_where`],
//!   [`ProtectedKernel::vectorize`], …) ask the kernel to derive new data
//!   sources; they return only an opaque [`SourceVar`] handle.
//! * **Private→Public** operators ([`ProtectedKernel::vector_laplace`],
//!   [`ProtectedKernel::noisy_count`], the data-adaptive partition/query
//!   selection operators in [`ops`]) return information about the data and
//!   therefore consume privacy budget, enforced by the kernel's `Request`
//!   algorithm (paper Algorithm 2).
//! * **Public** operators (workload construction, inference in
//!   [`ops::inference`]) never touch the kernel.
//!
//! The kernel tracks, per data source: its *transformation lineage*, its
//! *stability* (paper Def. 3.4), and its *budget consumption*; the special
//! partition-variable accounting makes parallel composition automatic
//! (sibling subplans share, rather than sum, their budget — the key to the
//! striped and grid plans).
//!
//! Any plan built from these operators satisfies ε-differential privacy
//! with ε = the budget the kernel was initialized with (paper Theorem 4.1).
//!
//! ```
//! use ektelo_core::kernel::ProtectedKernel;
//! use ektelo_data::{Schema, Table};
//! use ektelo_matrix::Matrix;
//!
//! let schema = Schema::from_sizes(&[("age", 8)]);
//! let table = Table::from_rows(schema, &[vec![1], vec![1], vec![5]]);
//! let kernel = ProtectedKernel::init(table, 1.0, 42);
//! let x = kernel.vectorize(kernel.root()).unwrap();
//! let y = kernel
//!     .vector_laplace(x, &Matrix::identity(8), 1.0)
//!     .unwrap();
//! assert_eq!(y.len(), 8);
//! // The budget is now exhausted: further measurement fails.
//! assert!(kernel.vector_laplace(x, &Matrix::identity(8), 0.1).is_err());
//! ```

pub mod kernel;
pub mod ops;

pub use kernel::{EktError, MeasuredQuery, ProtectedKernel, SourceVar};
