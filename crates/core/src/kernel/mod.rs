//! The protected kernel (paper §4).
//!
//! The kernel is initialized with one protected table and a global budget
//! `ε_tot`. Plans hold only [`SourceVar`] handles; the actual tables and
//! vectors never leave the kernel. Transformations derive new sources and
//! record their stability; query operators draw calibrated noise and charge
//! the budget through Algorithm 2 (see the private `state` module's
//! `request`).

mod error;
pub mod noise;
mod state;

pub use error::{EktError, Result};
pub use state::MeasuredQuery;

use std::sync::Arc;

use ektelo_data::{vectorize as t_vectorize, Predicate, Schema, Table};
use ektelo_matrix::{failpoints, Matrix, Workspace};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use state::{checked_eps_total, validate_eps, KernelState, Node, NodeData};

/// An opaque handle to a protected data source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SourceVar(pub(crate) usize);

/// Upper bound on idle [`Workspace`]s the kernel retains for reuse —
/// enough for every worker of a threaded batch plus the serial paths.
const WORKSPACE_POOL_CAP: usize = 32;

/// Default bound on the total heap bytes idle pooled workspaces may pin
/// (arena + per-worker pool arenas; 32 MiB). Arenas grow monotonically to
/// the largest requirement seen, so without this bound one huge batch
/// would pin up to [`WORKSPACE_POOL_CAP`] maximum-sized arenas for the
/// kernel's lifetime. Oversized workspaces are shrunk on restore to fit
/// the remaining budget (their plan fast path survives the shrink, so a
/// shed workspace still skips re-planning when reused).
const WORKSPACE_POOL_DEFAULT_MAX_BYTES: usize = 32 << 20;

/// A pool of reusable [`Workspace`]s owned by the kernel.
///
/// `vector_laplace_batch` workers (and single-shot operators like
/// worst-approx) used to construct a fresh `Workspace` per call, paying
/// the arena growth and plan fast-path warmup every time. The pool hands
/// out warm workspaces instead: a checkout pops one (or creates one if
/// the pool is empty), and the restore pushes it back with its arena and
/// single-entry plan fast path intact, so repeated batch calls over the
/// same strategies do zero arena reallocation. The pool lock is separate
/// from the kernel state lock and held only for the push/pop. Residency
/// is bounded twice over: at most [`WORKSPACE_POOL_CAP`] idle workspaces,
/// and at most `max_bytes` of idle arena storage — a workspace that
/// would blow the byte budget is shrunk (`Workspace::shed_to`) before
/// pooling, so steady-state batches keep warm arenas while one-off giant
/// batches cannot pin their peak memory forever.
struct WorkspacePool {
    slots: Mutex<PoolSlots>,
    /// Byte budget for all idle slots together (see `set_max_bytes`).
    max_bytes: std::sync::atomic::AtomicUsize,
}

#[derive(Default)]
struct PoolSlots {
    stack: Vec<Workspace>,
    /// Scalars (f64) resident across all idle workspaces.
    resident_scalars: usize,
}

impl Default for WorkspacePool {
    fn default() -> Self {
        WorkspacePool {
            slots: Mutex::new(PoolSlots {
                // Full capacity up front: `restore` pushes while holding
                // the pool lock, and a pre-sized stack keeps that push a
                // pointer write instead of a possible reallocation.
                stack: Vec::with_capacity(WORKSPACE_POOL_CAP),
                resident_scalars: 0,
            }),
            max_bytes: std::sync::atomic::AtomicUsize::new(WORKSPACE_POOL_DEFAULT_MAX_BYTES),
        }
    }
}

impl WorkspacePool {
    fn checkout(&self) -> Workspace {
        let mut slots = self.slots.lock();
        match slots.stack.pop() {
            Some(ws) => {
                slots.resident_scalars -= ws.resident_scalars();
                ws
            }
            None => Workspace::default(),
        }
    }

    fn restore(&self, mut ws: Workspace) {
        let budget_scalars =
            self.max_bytes.load(std::sync::atomic::Ordering::Relaxed) / std::mem::size_of::<f64>();
        let mut slots = self.slots.lock();
        if slots.stack.len() >= WORKSPACE_POOL_CAP {
            return;
        }
        let headroom = budget_scalars.saturating_sub(slots.resident_scalars);
        if ws.resident_scalars() > headroom {
            ws.shed_to(headroom);
        }
        slots.resident_scalars += ws.resident_scalars();
        // xlint: allow(lock-discipline, reason = "stack is pre-allocated to WORKSPACE_POOL_CAP and the len check above bounds it, so this push is a pointer write that never reallocates")
        slots.stack.push(ws);
    }

    fn len(&self) -> usize {
        self.slots.lock().stack.len()
    }

    fn resident_bytes(&self) -> usize {
        self.slots.lock().resident_scalars * std::mem::size_of::<f64>()
    }

    fn set_max_bytes(&self, bytes: usize) {
        self.max_bytes
            .store(bytes, std::sync::atomic::Ordering::Relaxed);
        // Re-fit the idle inventory under the new budget immediately.
        let budget_scalars = bytes / std::mem::size_of::<f64>();
        let mut slots = self.slots.lock();
        if slots.resident_scalars <= budget_scalars {
            return;
        }
        let mut total = 0usize;
        for ws in slots.stack.iter_mut() {
            let headroom = budget_scalars.saturating_sub(total);
            if ws.resident_scalars() > headroom {
                ws.shed_to(headroom);
            }
            total += ws.resident_scalars();
        }
        slots.resident_scalars = total;
    }
}

/// The protected kernel: owns the private data, the transformation graph,
/// the budget trackers and the privacy RNG. All methods take `&self`; the
/// state sits behind a mutex so plans can be ordinary single-threaded code
/// while benchmark sweeps run kernels on worker threads.
pub struct ProtectedKernel {
    state: Mutex<KernelState>,
    ws_pool: WorkspacePool,
}

impl ProtectedKernel {
    // ------------------------------------------------------------------
    // Initialization & metadata
    // ------------------------------------------------------------------

    /// Initializes the kernel with the protected `table`, a global privacy
    /// budget `eps_total`, and an RNG seed (determinism for experiments).
    pub fn init(table: Table, eps_total: f64, seed: u64) -> Self {
        let eps_total = checked_eps_total(eps_total);
        let mut st = KernelState {
            nodes: Vec::new(),
            eps_total,
            reserved: 0.0,
            reservations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
        };
        st.nodes.push(Node {
            data: NodeData::Table(table),
            parent: None,
            stability: 1.0,
            budget: 0.0,
            base: None,
            lineage: None,
        });
        ProtectedKernel {
            state: Mutex::new(st),
            ws_pool: WorkspacePool::default(),
        }
    }

    /// Convenience: initialize directly from a data vector (plans that skip
    /// the relational stage, e.g. the 1-D benchmark suite). The vector is
    /// its own vectorize base.
    pub fn init_from_vector(x: Vec<f64>, eps_total: f64, seed: u64) -> Self {
        let eps_total = checked_eps_total(eps_total);
        let n = x.len();
        let mut st = KernelState {
            nodes: Vec::new(),
            eps_total,
            reserved: 0.0,
            reservations: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            history: Vec::new(),
        };
        st.nodes.push(Node {
            data: NodeData::Vector(Arc::new(x)),
            parent: None,
            stability: 1.0,
            budget: 0.0,
            base: Some(0),
            lineage: Some(Matrix::identity(n)),
        });
        ProtectedKernel {
            state: Mutex::new(st),
            ws_pool: WorkspacePool::default(),
        }
    }

    /// The root source variable.
    pub fn root(&self) -> SourceVar {
        SourceVar(0)
    }

    /// The global privacy budget.
    pub fn eps_total(&self) -> f64 {
        self.state.lock().eps_total
    }

    /// Root budget consumed so far (public: depends only on the sequence of
    /// operator calls, not on the data).
    pub fn budget_spent(&self) -> f64 {
        self.state.lock().spent()
    }

    /// Budget still available to a new charge or reservation at the
    /// root: total minus spent minus outstanding reservation holds (a
    /// charge sized by this figure is admissible; held budget belongs to
    /// already-admitted plans).
    pub fn budget_remaining(&self) -> f64 {
        let st = self.state.lock();
        (st.eps_total - st.spent() - st.reserved).max(0.0)
    }

    /// Root budget currently held by outstanding [`BudgetReservation`]s
    /// (public: reservations are made before any data is touched).
    pub fn budget_reserved(&self) -> f64 {
        self.state.lock().reserved
    }

    /// Number of live (unreleased) budget reservations. Failure-semantics
    /// observability: after a plan dies — typed error or caught panic —
    /// this must return to its prior value (no leaked holds).
    pub fn active_reservations(&self) -> usize {
        self.state.lock().active_reservations()
    }

    // ------------------------------------------------------------------
    // Budget reservation (plan-graph session admission)
    // ------------------------------------------------------------------

    /// Reserves `eps` of root budget for a pre-accounted plan, failing
    /// with [`EktError::BudgetExceeded`] — before any data access — if
    /// the budget already spent plus existing reservations cannot cover
    /// it. While the reservation is held, ordinary charges (from any
    /// session) only see `ε_tot − reserved`. The holder *redeems* its
    /// hold by issuing charges through the reservation (e.g.
    /// [`BudgetReservation::vector_laplace`], or the executor's
    /// reservation-threaded charging calls): the hold consumption and the
    /// root charge commit under **one** kernel state lock, so there is no
    /// window in which a concurrent session can observe — let alone steal
    /// — a released-but-not-yet-charged slice. Dropping the reservation
    /// releases its exact tracked remainder.
    ///
    /// The admission decision depends only on `eps`, prior charges and
    /// prior reservations — all data-independent — so rejecting leaks
    /// nothing (same argument as Algorithm 2's budget check).
    pub fn reserve_budget(&self, eps: f64) -> Result<BudgetReservation<'_>> {
        // Validation (NaN/∞ rejection) and the admission comparison both
        // live in `KernelState::reserve` — the reservation-side budget
        // chokepoint — so this wrapper only manages the lock and the
        // RAII handle.
        let id = self.state.lock().reserve(eps)?;
        Ok(BudgetReservation { kernel: self, id })
    }

    /// Resolves an optional reservation handle to its ledger slot,
    /// rejecting a handle minted by a different kernel (its slot id would
    /// index an unrelated slab and redeem someone else's hold).
    fn res_slot(&self, res: Option<&BudgetReservation<'_>>) -> Result<Option<usize>> {
        match res {
            None => Ok(None),
            Some(r) if std::ptr::eq(r.kernel, self) => Ok(Some(r.id)),
            Some(_) => Err(EktError::InvalidArgument(
                "budget reservation belongs to a different kernel".into(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Reusable workspaces (kernel-owned scratch for batch/operator calls)
    // ------------------------------------------------------------------

    /// Checks a warm [`Workspace`] out of the kernel's pool (or creates a
    /// fresh one when the pool is empty). Pair with
    /// [`ProtectedKernel::workspace_restore`]; used by the batched
    /// measurement path and scratch-hungry vetted operators so repeated
    /// calls reuse arenas instead of rebuilding them.
    pub(crate) fn workspace_checkout(&self) -> Workspace {
        self.ws_pool.checkout()
    }

    /// Returns a workspace to the pool for the next checkout.
    pub(crate) fn workspace_restore(&self, ws: Workspace) {
        self.ws_pool.restore(ws);
    }

    /// Number of idle pooled workspaces (observability for tests and
    /// capacity tuning; the count is bounded by a small internal cap).
    pub fn workspace_pool_len(&self) -> usize {
        self.ws_pool.len()
    }

    /// Heap bytes currently pinned by idle pooled workspaces (arena plus
    /// per-worker pool arenas). Bounded by the pool's byte budget: a
    /// restore that would exceed it shrinks the workspace first, so one
    /// huge batch can no longer pin its peak arenas for the kernel's
    /// lifetime.
    pub fn workspace_pool_resident_bytes(&self) -> usize {
        self.ws_pool.resident_bytes()
    }

    /// Sets the byte budget for idle pooled workspaces (default 32 MiB)
    /// and immediately re-fits the idle inventory under it. A memory
    /// dial only — a shrunk workspace regrows on demand and keeps its
    /// plan fast path, so correctness and plan reuse are unaffected.
    pub fn set_workspace_pool_max_bytes(&self, bytes: usize) {
        self.ws_pool.set_max_bytes(bytes);
    }

    /// The product of stability factors along the transformation chain
    /// from `sv` up to the root (public metadata: stabilities derive from
    /// the sequence of operator calls, not the data). An upper bound on
    /// how much a unit of budget charged at `sv` can cost at the root —
    /// exact when no partition variable above `sv` carries prior sibling
    /// charges.
    pub fn stability_to_root(&self, sv: SourceVar) -> f64 {
        let st = self.state.lock();
        let mut s = 1.0;
        let mut node = sv.0;
        loop {
            s *= st.nodes[node].stability;
            match st.nodes[node].parent {
                Some(p) => node = p,
                None => break,
            }
        }
        s
    }

    /// The schema of a table source (public metadata).
    pub fn schema(&self, sv: SourceVar) -> Result<Schema> {
        let st = self.state.lock();
        // xlint: allow(lock-discipline, reason = "the schema clone is the return value and the table is only readable under the lock; O(attributes) metadata copy on a control-plane query")
        Ok(st.table(sv.0)?.schema().clone())
    }

    /// The length of a vector source. Public: domain sizes derive from the
    /// schema and from partitions, which are themselves public outputs.
    pub fn vector_len(&self, sv: SourceVar) -> Result<usize> {
        let st = self.state.lock();
        Ok(st.vector(sv.0)?.len())
    }

    /// The vectorize base this vector descends from.
    pub fn base_of(&self, sv: SourceVar) -> Result<SourceVar> {
        let st = self.state.lock();
        st.vector(sv.0)?;
        Ok(SourceVar(
            st.nodes[sv.0]
                .base
                // xlint: allow(panic-policy, reason = "construction invariant: every vector node is created with base = Some (vectorize sets itself, transforms inherit); the vector() check above already rejected non-vector nodes")
                .expect("vector nodes always have a base"),
        ))
    }

    // ------------------------------------------------------------------
    // Table transformations (Private; no budget, tracked stability)
    // ------------------------------------------------------------------

    /// `Where`: keeps rows satisfying `pred`. 1-stable (paper §5.1).
    pub fn transform_where(&self, sv: SourceVar, pred: &Predicate) -> Result<SourceVar> {
        let mut st = self.state.lock();
        let out = st.table(sv.0)?.filter(pred);
        Ok(SourceVar(st.add_node(Node {
            data: NodeData::Table(out),
            parent: Some(sv.0),
            stability: 1.0,
            budget: 0.0,
            base: None,
            lineage: None,
        })))
    }

    /// `Select`: projects onto the named attributes. 1-stable.
    pub fn transform_select(&self, sv: SourceVar, names: &[&str]) -> Result<SourceVar> {
        let mut st = self.state.lock();
        let out = st.table(sv.0)?.select(names);
        Ok(SourceVar(st.add_node(Node {
            data: NodeData::Table(out),
            parent: Some(sv.0),
            stability: 1.0,
            budget: 0.0,
            base: None,
            lineage: None,
        })))
    }

    /// `GroupBy`: distinct combinations of the named attributes. 2-stable.
    pub fn transform_group_by(&self, sv: SourceVar, names: &[&str]) -> Result<SourceVar> {
        let mut st = self.state.lock();
        let out = st.table(sv.0)?.group_by(names);
        Ok(SourceVar(st.add_node(Node {
            data: NodeData::Table(out),
            parent: Some(sv.0),
            stability: 2.0,
            budget: 0.0,
            base: None,
            lineage: None,
        })))
    }

    /// Table-level `SplitByPartition` on attribute `attr`: rows are routed
    /// by `labels[value]`; `None` drops the value's rows. Introduces a
    /// partition dummy node so sibling budgets compose in parallel.
    pub fn split_table_by_partition(
        &self,
        sv: SourceVar,
        attr: &str,
        labels: &[Option<usize>],
    ) -> Result<Vec<SourceVar>> {
        let mut st = self.state.lock();
        let parts = st.table(sv.0)?.split_by_partition(attr, labels);
        let dummy = st.add_node(Node {
            data: NodeData::PartitionDummy,
            parent: Some(sv.0),
            stability: 1.0,
            budget: 0.0,
            base: None,
            lineage: None,
        });
        Ok(parts
            .into_iter()
            .map(|t| {
                SourceVar(st.add_node(Node {
                    data: NodeData::Table(t),
                    parent: Some(dummy),
                    stability: 1.0,
                    budget: 0.0,
                    base: None,
                    lineage: None,
                }))
            })
            // xlint: allow(lock-discipline, reason = "table transformation is control-plane (once per plan); the protected table is only readable under the lock and child registration shares the same acquisition")
            .collect())
    }

    // ------------------------------------------------------------------
    // Vectorization and vector transformations
    // ------------------------------------------------------------------

    /// `T-Vectorize`: turns a table source into its count vector over the
    /// full schema domain. 1-stable. The output becomes a *base* vector:
    /// downstream measurements are mapped back onto it for inference.
    pub fn vectorize(&self, sv: SourceVar) -> Result<SourceVar> {
        let mut st = self.state.lock();
        let x = t_vectorize(st.table(sv.0)?);
        let n = x.len();
        let id = st.add_node(Node {
            // xlint: allow(lock-discipline, reason = "vectorize is control-plane (once per plan); the table it reads is only accessible under the lock, and node registration shares the acquisition")
            data: NodeData::Vector(Arc::new(x)),
            parent: Some(sv.0),
            stability: 1.0,
            budget: 0.0,
            base: None,
            lineage: Some(Matrix::identity(n)),
        });
        st.nodes[id].base = Some(id);
        Ok(SourceVar(id))
    }

    /// `V-ReduceByPartition`: `x' = P x` for a valid partition matrix `P`.
    /// 1-stable (paper §5.1).
    pub fn reduce_by_partition(&self, sv: SourceVar, p: &Matrix) -> Result<SourceVar> {
        if !p.is_partition() {
            return Err(EktError::InvalidPartition(format!(
                "matrix of shape {:?} is not a partition",
                p.shape()
            )));
        }
        self.transform_linear_unchecked(sv, p, 1.0)
    }

    /// General linear vector transformation `x' = M x`. Stability is the
    /// maximum L1 column norm of `M` (paper §5.1).
    pub fn transform_linear(&self, sv: SourceVar, m: &Matrix) -> Result<SourceVar> {
        let stability = m.l1_sensitivity_cached();
        self.transform_linear_unchecked(sv, m, stability)
    }

    fn transform_linear_unchecked(
        &self,
        sv: SourceVar,
        m: &Matrix,
        stability: f64,
    ) -> Result<SourceVar> {
        // Zero-copy snapshot under the lock; the matvec — the expensive
        // part, threaded under the `parallel` feature — runs outside it.
        // Sound because node data is immutable and nodes are never
        // removed, so `sv` and its metadata cannot change in between.
        let (x, base, lineage) = {
            let st = self.state.lock();
            let x = st.vector_arc(sv.0)?;
            if m.cols() != x.len() {
                return Err(EktError::ShapeMismatch {
                    expected: x.len(),
                    found: m.cols(),
                });
            }
            // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation) taken while snapshotting; the node's lineage is only readable under the lock")
            (x, st.nodes[sv.0].base, st.nodes[sv.0].lineage.clone())
        };
        let out = m.matvec(&x);
        let lineage = lineage.map(|l| Matrix::product(m.clone(), l));
        // The full node payload is built before re-locking, so the second
        // critical section is registration only.
        let data = NodeData::Vector(Arc::new(out));
        let mut st = self.state.lock();
        Ok(SourceVar(st.add_node(Node {
            data,
            parent: Some(sv.0),
            stability,
            budget: 0.0,
            base,
            lineage,
        })))
    }

    /// `V-SplitByPartition`: splits the vector into one child per partition
    /// group (cells in original order). Introduces the partition dummy node
    /// that makes sibling budget use compose in parallel — the engine
    /// behind the striped plans of §9.2.
    pub fn split_by_partition(&self, sv: SourceVar, p: &Matrix) -> Result<Vec<SourceVar>> {
        if !p.is_partition() {
            return Err(EktError::InvalidPartition(format!(
                "matrix of shape {:?} is not a partition",
                p.shape()
            )));
        }
        let groups = partition_groups(p);
        // Zero-copy snapshot under a short lock; node data is immutable
        // and nodes are never removed, so the snapshot stays valid after
        // release and the per-group payloads build outside the critical
        // section.
        let (x, base, parent_lineage) = {
            let st = self.state.lock();
            let x = st.vector_arc(sv.0)?;
            if p.cols() != x.len() {
                return Err(EktError::ShapeMismatch {
                    expected: x.len(),
                    found: p.cols(),
                });
            }
            // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation) taken while snapshotting; the node's lineage is only readable under the lock")
            (x, st.nodes[sv.0].base, st.nodes[sv.0].lineage.clone())
        };
        let n = x.len();
        let mut children = Vec::with_capacity(groups.len());
        for cells in &groups {
            let selector = Matrix::select_rows(n, cells);
            let data: Vec<f64> = cells.iter().map(|&c| x[c]).collect();
            let lineage = parent_lineage
                .as_ref()
                .map(|l| Matrix::product(selector, l.clone()));
            children.push((NodeData::Vector(Arc::new(data)), lineage));
        }
        let mut out = Vec::with_capacity(children.len());
        // Commit under one lock acquisition: registration only, every
        // payload was built above.
        let mut st = self.state.lock();
        let dummy = st.add_node(Node {
            data: NodeData::PartitionDummy,
            parent: Some(sv.0),
            stability: 1.0,
            budget: 0.0,
            base,
            lineage: None,
        });
        for (data, lineage) in children {
            // xlint: allow(lock-discipline, reason = "out is pre-allocated to the group count before the lock, so this push is a pointer write that never reallocates")
            out.push(SourceVar(st.add_node(Node {
                data,
                parent: Some(dummy),
                stability: 1.0,
                budget: 0.0,
                base,
                lineage,
            })));
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Query operators (Private→Public; consume budget)
    // ------------------------------------------------------------------

    /// `Vector Laplace` (paper §5.2): answers the query set `M` on vector
    /// source `sv` with noise scale `‖M‖₁ / ε` per answer, charging ε to
    /// the source (Algorithm 2 scales it through the lineage). The
    /// measurement is recorded for inference.
    pub fn vector_laplace(&self, sv: SourceVar, m: &Matrix, eps: f64) -> Result<Vec<f64>> {
        self.vector_laplace_in(sv, m, eps, None)
    }

    /// [`ProtectedKernel::vector_laplace`] with the charge attributed to
    /// (and redeemed from) `res` when given — the reservation-aware charge
    /// pathway the plan executor uses, committing hold consumption and the
    /// root charge under one state lock.
    pub(crate) fn vector_laplace_in(
        &self,
        sv: SourceVar,
        m: &Matrix,
        eps: f64,
        res: Option<&BudgetReservation<'_>>,
    ) -> Result<Vec<f64>> {
        let res = self.res_slot(res)?;
        validate_eps(eps)?;
        let mut st = self.state.lock();
        {
            let x = st.vector(sv.0)?;
            if m.cols() != x.len() {
                return Err(EktError::ShapeMismatch {
                    expected: x.len(),
                    found: m.cols(),
                });
            }
        }
        let sensitivity = m.l1_sensitivity_cached();
        if sensitivity == 0.0 {
            return Err(EktError::InvalidArgument(
                "measurement matrix has zero sensitivity (no queries touch the data)".into(),
            ));
        }
        st.request(sv.0, eps, None, res)?;
        let scale = sensitivity / eps;
        let exact = m.matvec(st.vector(sv.0)?);
        let answers: Vec<f64> = exact
            .into_iter()
            .map(|v| v + noise::laplace(&mut st.rng, scale))
            // xlint: allow(lock-discipline, reason = "privacy-ordered section: the noise draws consume the kernel RNG and must commit atomically with the charge under one lock (Algorithm 2 ordering)")
            .collect();
        // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation); the node's lineage is only readable under the lock")
        if let (Some(base), Some(lineage)) = (st.nodes[sv.0].base, st.nodes[sv.0].lineage.clone()) {
            let effective = match &lineage {
                // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation) for the recorded effective query")
                Matrix::Identity { .. } => m.clone(),
                // xlint: allow(lock-discipline, reason = "structural Matrix clones (shared representation) composing the recorded effective query")
                _ => Matrix::product(m.clone(), lineage),
            };
            // xlint: allow(lock-discipline, reason = "the measurement record must append atomically with the charge and the noise draws; splitting the lock would let a concurrent session interleave between charge and history")
            st.history.push(MeasuredQuery {
                base: SourceVar(base),
                query: effective,
                // xlint: allow(lock-discipline, reason = "the history record and the caller's return value are independent owners of the answers; the copy is inherent to recording the measurement")
                answers: answers.clone(),
                noise_scale: scale,
            });
        }
        Ok(answers)
    }

    /// Batched `Vector Laplace`: answers one query set per source, exactly
    /// as a sequential loop of [`ProtectedKernel::vector_laplace`] calls
    /// would — same budget charges, same measurement history, and **the
    /// same noise draws in the same order**, so the answers are
    /// bit-identical to the sequential loop regardless of the `parallel`
    /// feature. What the batch form buys is that the exact (pre-noise)
    /// answers, which depend only on the data and not on the privacy RNG,
    /// are computed outside the sequential section — with the `parallel`
    /// feature they evaluate on worker threads. This is the engine behind
    /// the striped plans of §9.2: hundreds of per-stripe measurements
    /// whose matvec work parallelizes while privacy randomness stays
    /// ordered.
    ///
    /// Failure semantics: requests are validated and charged in order; if
    /// request `k` fails, requests `0..k` have been charged and recorded
    /// (matching the sequential loop) and `k..` have not. A *panic* in the
    /// exact-answer phase (a worker-job crash — exercised by the
    /// `kernel::batch_exact` / `pool::job` failpoints) is deferred until
    /// every sibling job completes and then unwinds out of this call with
    /// **zero** charges issued and zero history recorded: the charging
    /// phase never ran, and the kernel's state mutex does not poison, so
    /// subsequent sessions proceed against an exactly-conserved ledger.
    pub fn vector_laplace_batch(
        &self,
        reqs: &[(SourceVar, &Matrix, f64)],
    ) -> Result<Vec<Vec<f64>>> {
        self.vector_laplace_batch_in(reqs, None)
    }

    /// [`ProtectedKernel::vector_laplace_batch`] with every charge
    /// attributed to (and redeemed from) `res` when given.
    pub(crate) fn vector_laplace_batch_in(
        &self,
        reqs: &[(SourceVar, &Matrix, f64)],
        res: Option<&BudgetReservation<'_>>,
    ) -> Result<Vec<Vec<f64>>> {
        let res = self.res_slot(res)?;
        // Phase 1 (no privacy side effects): snapshot each source vector —
        // a refcount bump, not a deep clone; node data is immutable, so the
        // snapshot stays valid after the lock is dropped — and compute
        // sensitivities, memoized per distinct matrix reference: striped
        // plans pass one shared strategy for every stripe, so the
        // `O(cols)` column-norm computation runs once per batch instead of
        // once per stripe. (Arc-backed strategies additionally hit the
        // process-wide identity cache behind `l1_sensitivity_cached`, which
        // spans batches; the per-batch memo still covers implicit variants
        // like `Ones`/`Prefix` that the cache bypasses.) Invalid requests
        // surface here only if phase 2 reaches them, mirroring the
        // sequential loop's ordering.
        let snapshots: Vec<Snapshot> = {
            let st = self.state.lock();
            let mut sens_memo: Vec<(*const Matrix, f64)> = Vec::new();
            reqs.iter()
                .map(|&(sv, m, eps)| {
                    validate_eps(eps)?;
                    let x = st.vector_arc(sv.0)?;
                    if m.cols() != x.len() {
                        return Err(EktError::ShapeMismatch {
                            expected: x.len(),
                            found: m.cols(),
                        });
                    }
                    let sensitivity = match sens_memo.iter().find(|&&(p, _)| std::ptr::eq(p, m)) {
                        Some(&(_, s)) => s,
                        None => {
                            let s = m.l1_sensitivity_cached();
                            // xlint: allow(lock-discipline, reason = "memo of one entry per distinct strategy matrix (striped plans share one), bounded by the request list; the sensitivities must be read under the same snapshot lock")
                            sens_memo.push((m as *const Matrix, s));
                            s
                        }
                    };
                    if sensitivity == 0.0 {
                        return Err(EktError::InvalidArgument(
                            "measurement matrix has zero sensitivity (no queries touch the data)"
                                .into(),
                        ));
                    }
                    Ok((x, sensitivity))
                })
                // xlint: allow(lock-discipline, reason = "snapshot phase: one result vec sized by the request list, filled with refcount bumps — the sources are only readable under the lock")
                .collect()
        };

        // Phase 2 (pure compute, outside the lock): the exact answers.
        // Each entry is independent, so with the `parallel` feature the
        // valid requests evaluate on scoped worker threads. Every worker
        // (and the serial path) reuses one Workspace across its requests,
        // so same-shaped stripe strategies share a single evaluation plan
        // instead of re-planning per stripe.
        let mut exacts: Vec<Option<Vec<f64>>> = snapshots
            .iter()
            .map(|s| s.as_ref().ok().map(|_| Vec::new()))
            .collect();
        #[cfg(feature = "parallel")]
        {
            // Chunk geometry comes from the process-constant configured
            // parallelism, not the executor's current worker count, and
            // every request fills its own slot — so the answers are
            // bit-identical however many pool workers run the chunks, and
            // regardless of whether a chunk is slot-dispatched, queued on
            // a worker deque, stolen by a sibling, or (pool size 0) run
            // inline on the caller.
            let nthreads = ektelo_matrix::pool::configured_parallelism();
            let total_cells: usize = snapshots
                .iter()
                .filter_map(|s| s.as_ref().ok().map(|(x, _)| x.len()))
                .sum();
            if reqs.len() >= 2 && nthreads >= 2 && total_cells >= 4096 {
                let chunk = reqs.len().div_ceil(nthreads);
                let pool = &self.ws_pool;
                ektelo_matrix::pool::scope(|scope| {
                    for (echunk, (rchunk, schunk)) in exacts
                        .chunks_mut(chunk)
                        .zip(reqs.chunks(chunk).zip(snapshots.chunks(chunk)))
                    {
                        scope.spawn(move || fill_exact_answers(rchunk, schunk, echunk, pool));
                    }
                });
            } else {
                fill_exact_answers(reqs, &snapshots, &mut exacts, &self.ws_pool);
            }
        }
        #[cfg(not(feature = "parallel"))]
        fill_exact_answers(reqs, &snapshots, &mut exacts, &self.ws_pool);

        // Phase 3 (sequential, under the lock): charge budgets, draw noise
        // in request order, record history — the privacy-ordered section.
        // The output vec is sized before the lock so the pushes below are
        // pointer writes.
        let mut out = Vec::with_capacity(reqs.len());
        let mut st = self.state.lock();
        for ((&(sv, m, eps), snap), exact) in reqs.iter().zip(snapshots).zip(exacts) {
            // Mid-stripe failpoint: a batch dying between stripes must
            // leave exactly the sequential loop's prefix semantics behind.
            if failpoints::triggered("kernel::batch_stripe") {
                return Err(EktError::FaultInjected("kernel::batch_stripe"));
            }
            let (_, sensitivity) = snap?;
            st.request(sv.0, eps, None, res)?;
            let scale = sensitivity / eps;
            let answers: Vec<f64> = exact
                // xlint: allow(panic-policy, reason = "phase invariant: phase 2 fills the exact answer for every request whose snapshot was Ok, and the `snap?` above already propagated the Err case")
                .expect("valid request has an exact answer")
                .into_iter()
                .map(|v| v + noise::laplace(&mut st.rng, scale))
                // xlint: allow(lock-discipline, reason = "privacy-ordered section: the noise draws consume the kernel RNG and must commit atomically with the charges under one lock (Algorithm 2 ordering)")
                .collect();
            if let (Some(base), Some(lineage)) =
                // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation); the node's lineage is only readable under the lock")
                (st.nodes[sv.0].base, st.nodes[sv.0].lineage.clone())
            {
                let effective = match &lineage {
                    // xlint: allow(lock-discipline, reason = "structural Matrix clone (shared representation) for the recorded effective query")
                    Matrix::Identity { .. } => m.clone(),
                    // xlint: allow(lock-discipline, reason = "structural Matrix clones (shared representation) composing the recorded effective query")
                    _ => Matrix::product(m.clone(), lineage),
                };
                // xlint: allow(lock-discipline, reason = "the measurement record must append atomically with the charge and the noise draws; splitting the lock would let a concurrent session interleave between charge and history")
                st.history.push(MeasuredQuery {
                    base: SourceVar(base),
                    query: effective,
                    // xlint: allow(lock-discipline, reason = "the history record and the caller's return value are independent owners of the answers; the copy is inherent to recording the measurement")
                    answers: answers.clone(),
                    noise_scale: scale,
                });
            }
            // xlint: allow(lock-discipline, reason = "out is pre-allocated to the request count before the lock, so this push is a pointer write that never reallocates")
            out.push(answers);
        }
        Ok(out)
    }

    /// `NoisyCount` (paper §5.2): the table cardinality plus
    /// `Laplace(1/ε)` noise.
    pub fn noisy_count(&self, sv: SourceVar, eps: f64) -> Result<f64> {
        validate_eps(eps)?;
        let mut st = self.state.lock();
        let count = match &st.nodes[sv.0].data {
            NodeData::Table(t) => t.num_rows() as f64,
            NodeData::Vector(v) => v.iter().sum(),
            NodeData::PartitionDummy => {
                return Err(EktError::WrongSourceType { expected: "table" })
            }
        };
        st.request(sv.0, eps, None, None)?;
        let noisy = count + noise::laplace(&mut st.rng, 1.0 / eps);
        Ok(noisy)
    }

    /// Hardened integer count using the two-sided geometric mechanism
    /// (extension; see [`noise`] module docs on the floating-point attack).
    pub fn noisy_count_geometric(&self, sv: SourceVar, eps: f64) -> Result<i64> {
        validate_eps(eps)?;
        let mut st = self.state.lock();
        let count = match &st.nodes[sv.0].data {
            NodeData::Table(t) => t.num_rows() as i64,
            NodeData::Vector(v) => v.iter().sum::<f64>().round() as i64,
            NodeData::PartitionDummy => {
                return Err(EktError::WrongSourceType { expected: "table" })
            }
        };
        st.request(sv.0, eps, None, None)?;
        let noisy = count + noise::two_sided_geometric(&mut st.rng, eps);
        Ok(noisy)
    }

    // ------------------------------------------------------------------
    // Measurement history (for Public inference operators)
    // ------------------------------------------------------------------

    /// All measurements recorded so far (cheap clones: matrices share
    /// structure).
    pub fn measurements(&self) -> Vec<MeasuredQuery> {
        // xlint: allow(lock-discipline, reason = "snapshot-for-return: the history is the protected record and must be copied under the lock; matrix payloads share structure")
        self.state.lock().history.clone()
    }

    /// Number of measurements recorded so far. Plans snapshot this before
    /// their measurement phase and pass the index to
    /// [`ProtectedKernel::measurements_since`] so that inference uses only
    /// their own measurements (useful when several plans share a kernel).
    pub fn measurement_count(&self) -> usize {
        self.state.lock().history.len()
    }

    /// The measurements recorded at or after history index `start`.
    pub fn measurements_since(&self, start: usize) -> Vec<MeasuredQuery> {
        let st = self.state.lock();
        // xlint: allow(lock-discipline, reason = "snapshot-for-return: the history is the protected record and must be copied under the lock; matrix payloads share structure")
        st.history[start.min(st.history.len())..].to_vec()
    }

    /// The measurements mapped onto the given base vector.
    pub fn measurements_for_base(&self, base: SourceVar) -> Vec<MeasuredQuery> {
        self.state
            .lock()
            .history
            .iter()
            .filter(|m| m.base == base)
            // xlint: allow(lock-discipline, reason = "snapshot-for-return: the history is the protected record and must be copied under the lock; matrix payloads share structure")
            .cloned()
            // xlint: allow(lock-discipline, reason = "snapshot-for-return: one result vec of the caller's matching measurements, filled under the same lock that guards the history")
            .collect()
    }

    // ------------------------------------------------------------------
    // Vetted internal access for privacy-critical operators
    // ------------------------------------------------------------------
    //
    // The paper's trust model: privacy-critical operators (AHP/DAWA
    // partition selection, Worst-approx, PrivBayes select) are vetted once
    // and live inside the trusted codebase. They get controlled access via
    // the pub(crate) helpers below — *after* charging budget — and plans in
    // other crates can only call their public, vetted entry points.

    /// Charges ε against `sv` (Algorithm 2) without returning data.
    pub(crate) fn charge(&self, sv: SourceVar, eps: f64) -> Result<()> {
        self.charge_in(sv, eps, None)
    }

    /// [`ProtectedKernel::charge`] with the charge attributed to (and
    /// redeemed from) `res` when given.
    pub(crate) fn charge_in(
        &self,
        sv: SourceVar,
        eps: f64,
        res: Option<&BudgetReservation<'_>>,
    ) -> Result<()> {
        let res = self.res_slot(res)?;
        validate_eps(eps)?;
        self.state.lock().request(sv.0, eps, None, res)
    }

    /// Runs `f` over the private vector and the privacy RNG. Callers MUST
    /// have charged an appropriate budget; each call site is part of the
    /// vetted operator surface.
    pub(crate) fn with_vector<T>(
        &self,
        sv: SourceVar,
        f: impl FnOnce(&[f64], &mut StdRng) -> T,
    ) -> Result<T> {
        let mut st = self.state.lock();
        // Zero-copy split borrow: the Arc snapshot keeps the vector alive
        // while the RNG is borrowed mutably.
        let data = st.vector_arc(sv.0)?;
        Ok(f(&data, &mut st.rng))
    }

    /// Runs `f` over the private table and the privacy RNG (vetted
    /// operators only; same contract as [`ProtectedKernel::with_vector`]).
    pub(crate) fn with_table<T>(
        &self,
        sv: SourceVar,
        f: impl FnOnce(&Table, &mut StdRng) -> T,
    ) -> Result<T> {
        let mut st = self.state.lock();
        let data = match &st.nodes[sv.0].data {
            // xlint: allow(lock-discipline, reason = "vetted-operator table snapshot: the protected table is only readable under the lock and f needs the kernel RNG from the same acquisition; callers are the once-per-plan selection operators")
            NodeData::Table(t) => t.clone(),
            _ => return Err(EktError::WrongSourceType { expected: "table" }),
        };
        Ok(f(&data, &mut st.rng))
    }

    /// A fresh RNG forked from the kernel's stream, for Public operators
    /// that want reproducible randomness (e.g. Algorithm 4's random
    /// projection) without consuming privacy randomness state ordering.
    pub fn fork_rng(&self) -> StdRng {
        let mut st = self.state.lock();
        let seed: u64 = st.rng.random();
        StdRng::seed_from_u64(seed)
    }

    /// Batched charge + snapshot for vetted privacy-critical operators
    /// that thread their per-source computation (DAWA-Striped's stage 1):
    /// under **one** lock acquisition, charges every `(source, ε)` request
    /// in order through Algorithm 2, draws one `u64` from the privacy
    /// stream (the base of the caller's counter-based per-source RNG
    /// substreams — drawn *after* the charges, so the stream position is a
    /// deterministic function of the request sequence), and snapshots each
    /// source vector by refcount bump.
    ///
    /// Failure semantics match a sequential (charge, snapshot) loop: if
    /// request `k`'s charge fails, requests `0..k` have been charged; if
    /// its snapshot fails (wrong source type), `0..=k` have been charged —
    /// exactly what `k` sequential charge-then-use operator calls leave
    /// behind. On any failure no randomness has been consumed: the base is
    /// drawn only after every request succeeded.
    pub(crate) fn charge_and_snapshot_batch(
        &self,
        reqs: &[(SourceVar, f64)],
        res: Option<&BudgetReservation<'_>>,
    ) -> Result<(u64, Vec<Arc<Vec<f64>>>)> {
        let res = self.res_slot(res)?;
        // Sized before the lock so the pushes below are pointer writes.
        let mut snaps = Vec::with_capacity(reqs.len());
        let mut st = self.state.lock();
        for &(sv, eps) in reqs {
            // Mid-stripe failpoint for the charge+snapshot batch form:
            // same prefix semantics as `vector_laplace_batch`'s site.
            if failpoints::triggered("kernel::batch_stripe") {
                return Err(EktError::FaultInjected("kernel::batch_stripe"));
            }
            validate_eps(eps)?;
            st.request(sv.0, eps, None, res)?;
            // xlint: allow(lock-discipline, reason = "snaps is pre-allocated to the request count before the lock, so this push is a pointer write (refcount bump payload) that never reallocates")
            snaps.push(st.vector_arc(sv.0)?);
        }
        let base: u64 = st.rng.random();
        Ok((base, snaps))
    }
}

/// A hold on root budget granted by [`ProtectedKernel::reserve_budget`].
///
/// While held, the reserved amount is subtracted from the budget visible
/// to ordinary charges (the root case of Algorithm 2). The holder redeems
/// its hold by charging *through* the reservation — e.g.
/// [`BudgetReservation::vector_laplace`] — which consumes the hold and
/// commits the root charge atomically under one kernel state lock.
/// A charge larger than the remaining hold redeems the whole hold and
/// competes for open budget with the excess; a failed charge consumes
/// nothing. The per-reservation ledger ([`BudgetReservation::charged`])
/// is what `ExecReport::eps_charged` reports: a true per-plan figure,
/// meaningful even when concurrent sessions share the kernel.
///
/// Dropping the reservation releases its exact tracked remainder back
/// into the open budget (never a sentinel value — the remainder lives in
/// the kernel's ledger, and the release is idempotent).
pub struct BudgetReservation<'k> {
    kernel: &'k ProtectedKernel,
    /// Slot index into the kernel state's reservation slab.
    id: usize,
}

impl BudgetReservation<'_> {
    /// Budget still held by this reservation.
    pub fn remaining(&self) -> f64 {
        self.kernel.state.lock().reservation_remaining(self.id)
    }

    /// Total root budget charged through this reservation so far (the
    /// per-plan ledger).
    pub fn charged(&self) -> f64 {
        self.kernel.state.lock().reservation_charged(self.id)
    }

    /// [`ProtectedKernel::vector_laplace`] with the charge redeemed from
    /// this reservation's hold (atomically with the root charge).
    pub fn vector_laplace(&self, sv: SourceVar, m: &Matrix, eps: f64) -> Result<Vec<f64>> {
        self.kernel.vector_laplace_in(sv, m, eps, Some(self))
    }

    /// [`ProtectedKernel::vector_laplace_batch`] with every charge
    /// redeemed from this reservation's hold.
    pub fn vector_laplace_batch(
        &self,
        reqs: &[(SourceVar, &Matrix, f64)],
    ) -> Result<Vec<Vec<f64>>> {
        self.kernel.vector_laplace_batch_in(reqs, Some(self))
    }
}

impl Drop for BudgetReservation<'_> {
    fn drop(&mut self) {
        // Releases the exact tracked remainder (slot -> None, aggregate
        // decremented by the entry's held value) — no sentinel passes
        // through ledger arithmetic, and a reservation consumed to zero
        // releases exactly nothing.
        self.kernel.state.lock().release_entry(self.id);
    }
}

/// A zero-copy data snapshot paired with the query's sensitivity
/// (phase-1 output of [`ProtectedKernel::vector_laplace_batch`]).
type Snapshot = Result<(Arc<Vec<f64>>, f64)>;

/// Fills the exact (pre-noise) answer for every valid request slot:
/// `exacts[i] = reqs[i].matrix · snapshots[i].vector`. Shared by the
/// serial and per-worker parallel paths of
/// [`ProtectedKernel::vector_laplace_batch`]; one reused [`Workspace`]
/// means same-shaped strategies (every stripe of HB-Striped) plan once.
/// The workspace comes from the kernel's pool and goes back afterwards,
/// so *across* batch calls the arena and plan fast path stay warm too —
/// a second call with the same strategies allocates no scratch at all.
fn fill_exact_answers(
    reqs: &[(SourceVar, &Matrix, f64)],
    snapshots: &[Snapshot],
    exacts: &mut [Option<Vec<f64>>],
    pool: &WorkspacePool,
) {
    let mut ws = pool.checkout();
    for (e, (&(_, m, _), snap)) in exacts.iter_mut().zip(reqs.iter().zip(snapshots)) {
        if let (Some(slot), Ok((x, _))) = (e.as_mut(), snap.as_ref()) {
            // Injected crash in the exact-answer phase: under `parallel`
            // this runs inside a pool job (the panic is deferred until
            // sibling jobs finish), serially it unwinds directly — either
            // way the batch dies before any charge is issued.
            failpoints::panic_if("kernel::batch_exact");
            let mut out = vec![0.0; m.rows()];
            m.matvec_into(x, &mut out, &mut ws);
            *slot = out;
        }
    }
    pool.restore(ws);
}

/// Extracts per-group cell lists from a partition matrix: group g holds the
/// columns j with `P[g, j] = 1`.
pub(crate) fn partition_groups(p: &Matrix) -> Vec<Vec<usize>> {
    let sp = p.to_sparse();
    let mut groups = vec![Vec::new(); sp.rows()];
    for (g, group) in groups.iter_mut().enumerate() {
        for (c, v) in sp.row_entries(g) {
            debug_assert_eq!(v, 1.0);
            group.push(c);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::partition_from_labels;

    fn simple_kernel(eps: f64) -> ProtectedKernel {
        let schema = Schema::from_sizes(&[("v", 8)]);
        let rows: Vec<Vec<u32>> = (0..16).map(|i| vec![i % 8]).collect();
        ProtectedKernel::init(Table::from_rows(schema, &rows), eps, 11)
    }

    #[test]
    fn end_to_end_measurement_and_history() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        assert_eq!(k.vector_len(x).unwrap(), 8);
        let y = k.vector_laplace(x, &Matrix::identity(8), 0.5).unwrap();
        assert_eq!(y.len(), 8);
        let h = k.measurements();
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].noise_scale, 2.0); // sens 1 / eps 0.5
        assert!((k.budget_spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn budget_exhaustion_is_an_error_not_a_panic() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        k.vector_laplace(x, &Matrix::identity(8), 1.0).unwrap();
        let err = k.vector_laplace(x, &Matrix::identity(8), 0.2).unwrap_err();
        assert!(matches!(err, EktError::BudgetExceeded { .. }));
    }

    #[test]
    fn sensitivity_is_auto_calibrated() {
        // Prefix has sensitivity n = 8, so the noise scale must be 8/ε.
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        k.vector_laplace(x, &Matrix::prefix(8), 1.0).unwrap();
        assert_eq!(k.measurements()[0].noise_scale, 8.0);
    }

    #[test]
    fn reduce_by_partition_tracks_lineage() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        let p = partition_from_labels(2, &[0, 0, 0, 0, 1, 1, 1, 1]);
        let xr = k.reduce_by_partition(x, &p).unwrap();
        assert_eq!(k.vector_len(xr).unwrap(), 2);
        k.vector_laplace(xr, &Matrix::identity(2), 0.5).unwrap();
        let h = k.measurements();
        // Effective query over the base domain is I₂·P = P.
        assert_eq!(h[0].query.shape(), (2, 8));
        let q = h[0].query.to_dense();
        assert_eq!(q.row_slice(0), &[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn split_by_partition_gets_parallel_composition() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        let p = partition_from_labels(4, &[0, 0, 1, 1, 2, 2, 3, 3]);
        let parts = k.split_by_partition(x, &p).unwrap();
        assert_eq!(parts.len(), 4);
        for &part in &parts {
            k.vector_laplace(part, &Matrix::identity(2), 0.8).unwrap();
        }
        // Four sibling measurements at ε = 0.8 cost 0.8 total.
        assert!((k.budget_spent() - 0.8).abs() < 1e-12);
        // All four recorded measurements map back to the 8-cell base.
        for m in k.measurements() {
            assert_eq!(m.query.cols(), 8);
        }
    }

    #[test]
    fn rejects_non_partition_matrices() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        assert!(matches!(
            k.reduce_by_partition(x, &Matrix::prefix(8)),
            Err(EktError::InvalidPartition(_))
        ));
    }

    #[test]
    fn general_linear_transform_scales_stability() {
        // M = 2·P doubles the budget cost downstream.
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        let m = Matrix::scaled(2.0, Matrix::identity(8));
        let x2 = k.transform_linear(x, &m).unwrap();
        k.vector_laplace(x2, &Matrix::identity(8), 0.25).unwrap();
        assert!((k.budget_spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn where_then_vectorize() {
        let k = simple_kernel(1.0);
        let filtered = k
            .transform_where(k.root(), &Predicate::range("v", 0, 4))
            .unwrap();
        let x = k.vectorize(filtered).unwrap();
        assert_eq!(k.vector_len(x).unwrap(), 8);
        // Sum of a filtered vectorization = noisy count of matching rows.
        let y = k.vector_laplace(x, &Matrix::total(8), 1.0).unwrap();
        assert!((y[0] - 8.0).abs() < 20.0); // 8 matching rows ± noise
    }

    #[test]
    fn noisy_count_on_table_and_vector() {
        let k = simple_kernel(2.0);
        let c = k.noisy_count(k.root(), 1.0).unwrap();
        assert!((c - 16.0).abs() < 25.0);
        let x = k.vectorize(k.root()).unwrap();
        let c2 = k.noisy_count(x, 0.5).unwrap();
        assert!((c2 - 16.0).abs() < 40.0);
        assert!((k.budget_spent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_count_is_integral() {
        let k = simple_kernel(1.0);
        let c = k.noisy_count_geometric(k.root(), 0.5).unwrap();
        // i64 by construction; just verify budget accounting.
        let _ = c;
        assert!((k.budget_spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let k = simple_kernel(1.0);
            let x = k.vectorize(k.root()).unwrap();
            k.vector_laplace(x, &Matrix::identity(8), 1.0).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batch_is_bit_identical_to_sequential_loop() {
        let p = partition_from_labels(4, &[0, 0, 1, 1, 2, 2, 3, 3]);
        let strategy = Matrix::vstack(vec![Matrix::identity(2), Matrix::total(2)]);

        // Sequential reference.
        let k1 = simple_kernel(1.0);
        let x1 = k1.vectorize(k1.root()).unwrap();
        let parts1 = k1.split_by_partition(x1, &p).unwrap();
        let seq: Vec<Vec<f64>> = parts1
            .iter()
            .map(|&s| k1.vector_laplace(s, &strategy, 0.5).unwrap())
            .collect();

        // Batched run on an identically seeded kernel.
        let k2 = simple_kernel(1.0);
        let x2 = k2.vectorize(k2.root()).unwrap();
        let parts2 = k2.split_by_partition(x2, &p).unwrap();
        let reqs: Vec<(SourceVar, &Matrix, f64)> =
            parts2.iter().map(|&s| (s, &strategy, 0.5)).collect();
        let batch = k2.vector_laplace_batch(&reqs).unwrap();

        assert_eq!(seq, batch, "batch must reproduce the sequential draws");
        assert_eq!(k1.budget_spent(), k2.budget_spent());
        let h1 = k1.measurements();
        let h2 = k2.measurements();
        assert_eq!(h1.len(), h2.len());
        for (a, b) in h1.iter().zip(&h2) {
            assert_eq!(a.answers, b.answers);
            assert_eq!(a.noise_scale, b.noise_scale);
            assert_eq!(a.base, b.base);
        }
    }

    #[test]
    fn batch_failure_matches_sequential_prefix_semantics() {
        let k = simple_kernel(1.0);
        let x = k.vectorize(k.root()).unwrap();
        let p = partition_from_labels(2, &[0, 0, 0, 0, 1, 1, 1, 1]);
        let parts = k.split_by_partition(x, &p).unwrap();
        let good = Matrix::identity(4);
        let bad = Matrix::identity(7); // wrong width for a 4-cell stripe
        let reqs = vec![(parts[0], &good, 0.5), (parts[1], &bad, 0.5)];
        let err = k.vector_laplace_batch(&reqs).unwrap_err();
        assert!(matches!(err, EktError::ShapeMismatch { .. }));
        // The first request went through before the failure, like the
        // sequential loop.
        assert_eq!(k.measurements().len(), 1);
        assert!((k.budget_spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn init_from_vector_measures_directly() {
        let k = ProtectedKernel::init_from_vector(vec![5.0, 3.0, 2.0], 1.0, 3);
        let y = k.vector_laplace(k.root(), &Matrix::total(3), 1.0).unwrap();
        assert!((y[0] - 10.0).abs() < 15.0);
    }
}
