//! Kernel error type.
//!
//! Budget exhaustion is an *expected* outcome, not a panic: the paper notes
//! the decision to reject a request never depends on the private state, so
//! returning an error leaks nothing (§4.3).

use std::fmt;

/// Errors surfaced by the protected kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum EktError {
    /// A Private→Public operator asked for more budget than remains.
    /// (The amounts are in root-scaled units; both are data-independent.)
    BudgetExceeded {
        /// Budget the request would consume at the root.
        requested: f64,
        /// Budget still available at the root.
        remaining: f64,
    },
    /// A table operation was applied to a vector source (or vice versa).
    WrongSourceType {
        /// What the operator needed ("table" or "vector").
        expected: &'static str,
    },
    /// A matrix passed as a partition is not a valid partition matrix.
    InvalidPartition(String),
    /// An operator received inputs of inconsistent dimensions.
    ShapeMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension found.
        found: usize,
    },
    /// Any other invalid argument (empty workload, non-positive ε, …).
    InvalidArgument(String),
    /// A plan spec failed validation or execution-time typing (operator
    /// graph API): a node referenced a value of the wrong kind, or the
    /// spec declared an impossible configuration. Data-independent by
    /// construction — specs are public objects.
    InvalidPlan(String),
    /// A deterministic fault-injection site fired (non-default
    /// `failpoints` feature with an armed schedule; never constructed
    /// otherwise). Carries the site name. Data-independent: the schedule
    /// is operator-supplied and sites key on call counts, not data.
    FaultInjected(&'static str),
    /// Plan execution died from a panic (a worker-job crash, a solver
    /// blow-up) that the executor caught and converted after releasing
    /// the plan's budget reservation. Carries the panic payload when it
    /// was a string. The ledger is consistent: charges issued before the
    /// panic stand, nothing after it was charged, and no holds leak.
    ExecutionPanic(String),
}

impl fmt::Display for EktError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EktError::BudgetExceeded {
                requested,
                remaining,
            } => write!(
                f,
                "privacy budget exceeded: request costs {requested} at the root but only \
                 {remaining} remains"
            ),
            EktError::WrongSourceType { expected } => {
                write!(f, "operator requires a {expected} source")
            }
            EktError::InvalidPartition(msg) => write!(f, "invalid partition matrix: {msg}"),
            EktError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            EktError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            EktError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EktError::FaultInjected(site) => {
                write!(f, "injected fault at failpoint {site}")
            }
            EktError::ExecutionPanic(msg) => {
                write!(f, "plan execution panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for EktError {}

/// Kernel result alias.
pub type Result<T> = std::result::Result<T, EktError>;
