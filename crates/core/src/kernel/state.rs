//! Kernel state: the data-source environment, transformation graph,
//! stability tracker and the budget `Request` algorithm (paper §4.4 and
//! Algorithm 2).

use std::sync::Arc;

use ektelo_data::Table;
use ektelo_matrix::{failpoints, Matrix};
use rand::rngs::StdRng;

use super::error::{EktError, Result};

/// Tolerance for budget admission comparisons: guards against accumulated
/// floating-point drift when a plan spends exactly its whole budget in
/// several steps. Shared by [`KernelState::request`] (charges) and
/// [`KernelState::reserve`] (plan-graph admission) so the two chokepoints
/// can never drift apart.
const EPS_TOL: f64 = 1e-9;

/// Validates an operator-supplied privacy cost: strictly positive and
/// finite, or `InvalidArgument`. Every vetted operator in
/// [`super::ProtectedKernel`] funnels its `eps` argument through here
/// before touching any data, so NaN/∞/non-positive costs are rejected
/// up front — in particular *before* a batched call issues any of its
/// charges, instead of mid-batch when [`KernelState::request`] would
/// catch the bad entry after earlier entries already spent budget.
pub(crate) fn validate_eps(eps: f64) -> Result<()> {
    // `eps <= 0.0` alone would let NaN through (all NaN comparisons are
    // false); the finiteness check in front is what rejects it.
    if !eps.is_finite() || eps <= 0.0 {
        return Err(EktError::InvalidArgument(format!(
            "non-positive epsilon {eps}"
        )));
    }
    Ok(())
}

/// Validates a global privacy budget at kernel construction time and
/// passes it through. Construction takes a trusted curator-supplied
/// budget, so a bad value is a programming error (panic), not a runtime
/// `Result` — but the comparison still lives here in the budget
/// chokepoint module, not at the call sites.
pub(crate) fn checked_eps_total(eps_total: f64) -> f64 {
    assert!(eps_total > 0.0, "privacy budget must be positive");
    eps_total
}

/// What a transformation-graph node holds.
///
/// Vector payloads are `Arc`-shared: node data is immutable once added
/// (transformations only derive *new* nodes), so operators that need the
/// data outside the kernel lock — batched measurement, linear transforms,
/// DAWA's per-stripe stage 1 — snapshot it with a refcount bump instead of
/// a deep `clone()`, which is what moves their matvecs off the lock's
/// critical section.
#[derive(Debug)]
pub(crate) enum NodeData {
    /// A relational table.
    Table(Table),
    /// A data vector (immutable, shareable by refcount).
    Vector(Arc<Vec<f64>>),
    /// The dummy source introduced by a partition transformation
    /// (paper §4.4: "a partition transformation introduces a special dummy
    /// data source variable").
    PartitionDummy,
}

/// A node of the transformation graph.
#[derive(Debug)]
pub(crate) struct Node {
    pub data: NodeData,
    pub parent: Option<usize>,
    /// Stability factor of the transformation that derived this node from
    /// its parent (paper Def. 3.4); 1 for the root.
    pub stability: f64,
    /// Budget consumption tracker `B(sv)` (paper §4.4).
    pub budget: f64,
    /// For vector nodes: the node id of the vectorize output this vector
    /// descends from (inference maps measurements back onto that base).
    pub base: Option<usize>,
    /// For vector nodes: the linear map from the base vector to this one.
    pub lineage: Option<Matrix>,
}

/// A measurement recorded by a query operator, already mapped onto the base
/// vector's domain (paper §5.5, "Defining inference under vector
/// transformations").
#[derive(Clone, Debug)]
pub struct MeasuredQuery {
    /// The vectorize-output node this measurement refers to.
    pub base: super::SourceVar,
    /// The effective query matrix over the base domain (`M · lineage`).
    pub query: Matrix,
    /// The noisy answers.
    pub answers: Vec<f64>,
    /// The Laplace scale of the noise added to each answer.
    pub noise_scale: f64,
}

/// Ledger entry for one outstanding [`super::BudgetReservation`]: the root
/// budget it still holds, and the charges redeemed against it so far (the
/// per-plan ledger behind `ExecReport::eps_charged`). Mutated only inside
/// this module — xlint's budget-chokepoint rule pins `held`/`charged`
/// mutations to `state.rs` exactly like the root trackers.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ReservationEntry {
    /// Root budget still held (shrinks as charges redeem it).
    pub held: f64,
    /// Total root budget charged through this reservation.
    pub charged: f64,
}

/// The protected kernel's mutable state (`S_kernel` in the paper's proof).
pub(crate) struct KernelState {
    pub nodes: Vec<Node>,
    pub eps_total: f64,
    /// Root budget currently held by outstanding [`super::BudgetReservation`]s
    /// (the sum of every live entry's `held`). Reserved budget is invisible
    /// to ordinary requests: the root case of [`KernelState::request`] only
    /// admits unattributed charges into `eps_total - reserved`. A charge
    /// issued *with* a reservation redeems its own hold and the admission
    /// check credits that hold back atomically — reservation consumption
    /// and the root charge commit under one state lock, so a concurrent
    /// session can never observe (or steal) a half-released slice.
    pub reserved: f64,
    /// Slab of live reservation entries, indexed by the id stored in
    /// [`super::BudgetReservation`]. Released slots are `None` and reused.
    pub reservations: Vec<Option<ReservationEntry>>,
    pub rng: StdRng,
    pub history: Vec<MeasuredQuery>,
}

impl KernelState {
    /// Root budget consumed so far.
    pub fn spent(&self) -> f64 {
        self.nodes[0].budget
    }

    /// The budget `Request` procedure (paper Algorithm 2). `from_child`
    /// carries the child identity needed by the partition-variable case.
    /// `res` attributes the charge to a live reservation slot: the root
    /// case then *redeems* the charge from that reservation's hold — hold
    /// consumption and the root charge commit atomically under the one
    /// state lock, which is what makes an admitted plan's budget
    /// unstealable by concurrent sessions. Returns `Ok(())` and updates
    /// trackers if the request fits; returns a typed error (leaving all
    /// trackers untouched) otherwise.
    pub fn request(
        &mut self,
        sv: usize,
        sigma: f64,
        from_child: Option<usize>,
        res: Option<usize>,
    ) -> Result<()> {
        // Every charge in the kernel funnels through here, so this is the
        // last line of defense against NaN/∞ costs: all comparisons on
        // NaN are false, so a NaN sigma would sail past the admission
        // check and poison the trackers (after which every later check is
        // vacuously satisfied). The check recurses with the request, so a
        // non-finite stability product is caught at the parent level too.
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(EktError::InvalidArgument(format!(
                "budget request must be a non-negative finite number, got {sigma}"
            )));
        }
        match self.nodes[sv].parent {
            None => {
                // Case 1: sv is the root — the only place ledger trackers
                // actually move, so the charging-class failpoints live
                // here, *before* any mutation: an injected fault is a
                // clean typed rejection, indistinguishable from an
                // admission failure as far as the ledger is concerned.
                let site = if res.is_some() {
                    "state::redeem"
                } else {
                    "state::charge"
                };
                if failpoints::triggered(site) {
                    return Err(EktError::FaultInjected(site));
                }
                // A reservation-attributed charge redeems its own hold
                // first; only the part not covered by the hold competes
                // for unreserved budget.
                let take = res.map_or(0.0, |id| {
                    sigma.min(self.reservations[id].map_or(0.0, |e| e.held))
                });
                let avail = self.eps_total - (self.reserved - take);
                let b = self.nodes[sv].budget;
                if b + sigma > avail * (1.0 + EPS_TOL) + EPS_TOL {
                    Err(EktError::BudgetExceeded {
                        requested: sigma,
                        remaining: (avail - b).max(0.0),
                    })
                } else {
                    if let Some(entry) = res.and_then(|id| self.reservations[id].as_mut()) {
                        // `take ≤ held` exactly, so the hold never goes
                        // negative; the aggregate is clamped because it
                        // sums many entries and may carry last-ulp drift.
                        entry.held -= take;
                        entry.charged += sigma;
                        self.reserved = (self.reserved - take).max(0.0);
                    }
                    self.nodes[sv].budget += sigma;
                    Ok(())
                }
            }
            Some(parent) => {
                if matches!(self.nodes[sv].data, NodeData::PartitionDummy) {
                    // Case 2: sv is a partition variable; the request came
                    // from `from_child` with stability-scaled cost sigma.
                    let child =
                        // xlint: allow(panic-policy, reason = "unreachable from public API: partition-dummy SourceVars are never handed to callers, so a dummy is only reached by the recursive call which always passes Some(child)")
                        from_child.expect("partition variable reached without child context");
                    let r = (self.nodes[child].budget + sigma - self.nodes[sv].budget).max(0.0);
                    self.request(parent, r, Some(sv), res)?;
                    self.nodes[sv].budget += r;
                    Ok(())
                } else {
                    // Case 3: ordinary derived source; scale by stability.
                    let s = self.nodes[sv].stability;
                    self.request(parent, s * sigma, Some(sv), res)?;
                    self.nodes[sv].budget += sigma;
                    Ok(())
                }
            }
        }
    }

    /// Admits a budget reservation of `eps` at the root and returns its
    /// slot id, or rejects it with all trackers untouched. This is the
    /// reservation-side admission chokepoint (the charge side is
    /// [`KernelState::request`]): it owns the only mutation that grows
    /// [`KernelState::reserved`].
    ///
    /// NaN must be rejected explicitly: `eps < 0.0` and the admission
    /// comparison below are both false for NaN, so a NaN reservation
    /// would be admitted and set `reserved = NaN` — after which every
    /// root availability check (`eps_total − NaN`) is vacuously
    /// satisfied and ALL charges from every session get through. An
    /// infinite reservation can never be covered either.
    pub fn reserve(&mut self, eps: f64) -> Result<usize> {
        // Admission-class failpoint: fires before any mutation, so an
        // injected fault is a clean typed rejection.
        if failpoints::triggered("state::reserve") {
            return Err(EktError::FaultInjected("state::reserve"));
        }
        if !eps.is_finite() || eps < 0.0 {
            return Err(EktError::InvalidArgument(format!(
                "reservation must be a non-negative finite number, got {eps}"
            )));
        }
        let committed = self.spent() + self.reserved;
        if committed + eps > self.eps_total * (1.0 + EPS_TOL) + EPS_TOL {
            return Err(EktError::BudgetExceeded {
                requested: eps,
                remaining: (self.eps_total - committed).max(0.0),
            });
        }
        self.reserved += eps;
        let entry = ReservationEntry {
            held: eps,
            charged: 0.0,
        };
        // Reuse a released slot so long-lived sessions don't grow the slab.
        let id = match self.reservations.iter().position(Option::is_none) {
            Some(i) => {
                self.reservations[i] = Some(entry);
                i
            }
            None => {
                self.reservations.push(Some(entry));
                self.reservations.len() - 1
            }
        };
        Ok(id)
    }

    /// Releases reservation slot `id`: its exact tracked remainder flows
    /// back into the charge-visible budget and the slot becomes reusable.
    /// This is the only mutation (besides redemption in
    /// [`KernelState::request`]) that shrinks [`KernelState::reserved`].
    /// Idempotent — a second release of the same slot finds `None` and
    /// does nothing, so the ledger can never be credited twice.
    pub fn release_entry(&mut self, id: usize) {
        if let Some(entry) = self.reservations[id].take() {
            // The exact remainder, never a sentinel: the aggregate floor
            // only absorbs last-ulp drift between the sum-of-entries and
            // the running aggregate.
            self.reserved = (self.reserved - entry.held).max(0.0);
            // With no live holds the aggregate is zero by definition;
            // snapping here discards the last-ulp dust that concurrent
            // sessions' interleaved add/sub orderings can leave behind,
            // so `reserved == 0.0` holds exactly whenever the slab is
            // empty.
            if self.reservations.iter().all(Option::is_none) {
                self.reserved = 0.0;
            }
        }
    }

    /// Root budget still held by reservation slot `id` (0 once released).
    pub fn reservation_remaining(&self, id: usize) -> f64 {
        self.reservations
            .get(id)
            .and_then(|s| s.as_ref())
            .map_or(0.0, |e| e.held)
    }

    /// Total root budget charged through reservation slot `id` so far.
    pub fn reservation_charged(&self, id: usize) -> f64 {
        self.reservations
            .get(id)
            .and_then(|s| s.as_ref())
            .map_or(0.0, |e| e.charged)
    }

    /// Number of live (unreleased) reservation slots.
    pub fn active_reservations(&self) -> usize {
        self.reservations.iter().filter(|s| s.is_some()).count()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    pub fn table(&self, sv: usize) -> Result<&Table> {
        match &self.nodes[sv].data {
            NodeData::Table(t) => Ok(t),
            _ => Err(EktError::WrongSourceType { expected: "table" }),
        }
    }

    pub fn vector(&self, sv: usize) -> Result<&Vec<f64>> {
        match &self.nodes[sv].data {
            NodeData::Vector(v) => Ok(v),
            _ => Err(EktError::WrongSourceType { expected: "vector" }),
        }
    }

    /// A zero-copy snapshot of a vector source: a refcount bump, valid
    /// after the kernel lock is released (node data is immutable).
    pub fn vector_arc(&self, sv: usize) -> Result<Arc<Vec<f64>>> {
        match &self.nodes[sv].data {
            NodeData::Vector(v) => Ok(Arc::clone(v)),
            _ => Err(EktError::WrongSourceType { expected: "vector" }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn state(eps: f64) -> KernelState {
        let mut s = KernelState {
            nodes: Vec::new(),
            eps_total: eps,
            reserved: 0.0,
            reservations: Vec::new(),
            rng: StdRng::seed_from_u64(0),
            history: Vec::new(),
        };
        s.add_node(Node {
            data: NodeData::Vector(Arc::new(vec![0.0; 4])),
            parent: None,
            stability: 1.0,
            budget: 0.0,
            base: Some(0),
            lineage: Some(Matrix::identity(4)),
        });
        s
    }

    fn add_child(s: &mut KernelState, parent: usize, stability: f64) -> usize {
        s.add_node(Node {
            data: NodeData::Vector(Arc::new(vec![0.0; 4])),
            parent: Some(parent),
            stability,
            budget: 0.0,
            base: Some(0),
            lineage: None,
        })
    }

    fn add_partition(s: &mut KernelState, parent: usize, k: usize) -> (usize, Vec<usize>) {
        let dummy = s.add_node(Node {
            data: NodeData::PartitionDummy,
            parent: Some(parent),
            stability: 1.0,
            budget: 0.0,
            base: Some(0),
            lineage: None,
        });
        let children = (0..k).map(|_| add_child(s, dummy, 1.0)).collect();
        (dummy, children)
    }

    #[test]
    fn non_finite_or_negative_requests_rejected_with_trackers_untouched() {
        // NaN fails every comparison, so without an explicit guard a NaN
        // charge would pass the admission check and poison the root
        // tracker — making all later checks vacuously true.
        let mut s = state(1.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.1] {
            assert!(matches!(
                s.request(0, bad, None, None),
                Err(EktError::InvalidArgument(_))
            ));
        }
        assert_eq!(s.spent(), 0.0);
        // The guard also covers charges routed through derived sources
        // (the check recurses with the request).
        let c = add_child(&mut s, 0, 2.0);
        assert!(matches!(
            s.request(c, f64::NAN, None, None),
            Err(EktError::InvalidArgument(_))
        ));
        assert_eq!(s.spent(), 0.0);
        // Enforcement still works after the rejected requests.
        assert!(s.request(0, 1.0, None, None).is_ok());
        assert!(s.request(0, 0.1, None, None).is_err());
    }

    #[test]
    fn sequential_composition_adds_up() {
        let mut s = state(1.0);
        assert!(s.request(0, 0.5, None, None).is_ok());
        assert!(s.request(0, 0.5, None, None).is_ok());
        assert!(s.request(0, 0.1, None, None).is_err());
        assert_eq!(s.spent(), 1.0);
    }

    #[test]
    fn stability_scales_cost() {
        let mut s = state(1.0);
        let c = add_child(&mut s, 0, 2.0); // e.g. a GroupBy output
        assert!(s.request(c, 0.4, None, None).is_ok());
        assert_eq!(s.spent(), 0.8);
        assert!(
            s.request(c, 0.2, None, None).is_err(),
            "0.2·2 = 0.4 > remaining 0.2"
        );
    }

    #[test]
    fn parallel_composition_is_free_across_siblings() {
        let mut s = state(1.0);
        let (_, kids) = add_partition(&mut s, 0, 3);
        for &k in &kids {
            assert!(s.request(k, 0.6, None, None).is_ok());
        }
        // All three siblings asked for 0.6, but the root is charged the max.
        assert!((s.spent() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn repeated_queries_on_one_child_accumulate() {
        let mut s = state(1.0);
        let (_, kids) = add_partition(&mut s, 0, 2);
        assert!(s.request(kids[0], 0.4, None, None).is_ok());
        assert!(s.request(kids[0], 0.4, None, None).is_ok());
        assert!((s.spent() - 0.8).abs() < 1e-12);
        // The sibling can still query up to 0.8 for free…
        assert!(s.request(kids[1], 0.8, None, None).is_ok());
        assert!((s.spent() - 0.8).abs() < 1e-12);
        // …but going beyond the current max costs the difference.
        assert!(s.request(kids[1], 0.2, None, None).is_ok());
        assert!((s.spent() - 1.0).abs() < 1e-12);
        assert!(s.request(kids[0], 0.3, None, None).is_err());
    }

    #[test]
    fn nested_partitions_compose() {
        let mut s = state(1.0);
        let (_, outer) = add_partition(&mut s, 0, 2);
        let (_, inner0) = add_partition(&mut s, outer[0], 2);
        let (_, inner1) = add_partition(&mut s, outer[1], 2);
        // Query every leaf at 0.5: all shares collapse to 0.5 at the root.
        for &leaf in inner0.iter().chain(&inner1) {
            assert!(s.request(leaf, 0.5, None, None).is_ok());
        }
        assert!((s.spent() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_request_leaves_root_tracker_unchanged() {
        let mut s = state(1.0);
        let c = add_child(&mut s, 0, 1.0);
        assert!(s.request(c, 0.9, None, None).is_ok());
        let before = s.spent();
        assert!(s.request(c, 0.5, None, None).is_err());
        assert_eq!(s.spent(), before);
    }

    #[test]
    fn validate_eps_rejects_nan_and_non_positive() {
        // The NaN case is the point: `eps <= 0.0` call-site guards let
        // NaN through, so batched operators would charge earlier entries
        // before `request` caught the bad one mid-batch.
        for bad in [f64::NAN, 0.0, -0.0, -1.0] {
            assert!(matches!(
                validate_eps(bad),
                Err(EktError::InvalidArgument(_))
            ));
        }
        assert!(matches!(
            validate_eps(f64::INFINITY),
            Err(EktError::InvalidArgument(_))
        ));
        assert!(validate_eps(1e-12).is_ok());
    }

    #[test]
    fn reserve_rejects_non_finite_and_over_budget_with_trackers_untouched() {
        let mut s = state(1.0);
        for bad in [f64::NAN, f64::INFINITY, -0.1] {
            assert!(matches!(s.reserve(bad), Err(EktError::InvalidArgument(_))));
        }
        assert!(matches!(
            s.reserve(1.5),
            Err(EktError::BudgetExceeded { .. })
        ));
        assert_eq!(s.reserved, 0.0);
        assert_eq!(s.active_reservations(), 0);
        // Admitted reservations shrink what unattributed requests can see…
        let id = s.reserve(0.6).unwrap();
        assert!(s.request(0, 0.5, None, None).is_err());
        // …and releasing restores it; a double release credits nothing.
        s.release_entry(id);
        s.release_entry(id);
        assert_eq!(s.reserved, 0.0);
        assert_eq!(s.active_reservations(), 0);
        assert!(s.request(0, 0.5, None, None).is_ok());
    }

    #[test]
    fn redemption_consumes_the_callers_own_hold_atomically() {
        let mut s = state(1.0);
        let id = s.reserve(0.6).unwrap();
        // Attributed charges are admitted *through* the hold — the same
        // charge that an unattributed session is refused.
        assert!(s.request(0, 0.5, None, Some(id)).is_ok());
        assert!((s.reservation_remaining(id) - 0.1).abs() < 1e-15);
        assert!((s.reservation_charged(id) - 0.5).abs() < 1e-15);
        assert!((s.reserved - 0.1).abs() < 1e-15);
        // The hold still shields its remainder from other sessions…
        assert!(s.request(0, 0.45, None, None).is_err());
        // …while the holder can spend past its hold into open budget.
        assert!(s.request(0, 0.3, None, Some(id)).is_ok());
        assert_eq!(s.reservation_remaining(id), 0.0);
        assert!((s.reservation_charged(id) - 0.8).abs() < 1e-15);
        assert!((s.spent() - 0.8).abs() < 1e-15);
        s.release_entry(id);
        assert_eq!(s.reserved, 0.0);
    }

    #[test]
    fn failed_redemption_leaves_reservation_and_root_untouched() {
        let mut s = state(1.0);
        let id = s.reserve(0.4).unwrap();
        // Even crediting the full 0.4 hold back, 1.1 exceeds the 1.0
        // total — the rejection must leave every tracker untouched.
        assert!(matches!(
            s.request(0, 1.1, None, Some(id)),
            Err(EktError::BudgetExceeded { .. })
        ));
        assert_eq!(s.spent(), 0.0);
        assert!((s.reservation_remaining(id) - 0.4).abs() < 1e-15);
        assert_eq!(s.reservation_charged(id), 0.0);
        assert!((s.reserved - 0.4).abs() < 1e-15);
    }

    #[test]
    fn redemption_attributes_charges_through_derived_sources() {
        let mut s = state(1.0);
        let c = add_child(&mut s, 0, 2.0);
        let id = s.reserve(0.8).unwrap();
        // Stability scales the root cost; the *root* cost redeems the hold.
        assert!(s.request(c, 0.4, None, Some(id)).is_ok());
        assert_eq!(s.reservation_remaining(id), 0.0);
        assert!((s.reservation_charged(id) - 0.8).abs() < 1e-15);
        assert!((s.spent() - 0.8).abs() < 1e-15);
    }

    #[test]
    fn released_slots_are_reused() {
        let mut s = state(1.0);
        let a = s.reserve(0.2).unwrap();
        let b = s.reserve(0.2).unwrap();
        assert_ne!(a, b);
        s.release_entry(a);
        let c = s.reserve(0.2).unwrap();
        assert_eq!(c, a, "released slot is reused");
        assert_eq!(s.active_reservations(), 2);
        s.release_entry(b);
        s.release_entry(c);
        assert_eq!(s.active_reservations(), 0);
        assert_eq!(s.reserved, 0.0);
    }

    #[test]
    fn exact_full_budget_is_allowed() {
        let mut s = state(0.3);
        for _ in 0..3 {
            assert!(s.request(0, 0.1, None, None).is_ok());
        }
        assert!(s.request(0, 1e-6, None, None).is_err());
    }
}
