//! Noise primitives used by the kernel's Private→Public operators.
//!
//! All randomness used for privacy flows through these functions with an
//! explicitly seeded RNG owned by the kernel — experiments are exactly
//! reproducible given the seed.
//!
//! **Floating-point caveat** (paper §1, citing Mironov 2012): textbook
//! sampling of the Laplace distribution with `f64` arithmetic leaks
//! information through the low-order bits of the output. Production
//! deployments should prefer the discrete/snapped mechanisms; we expose
//! [`two_sided_geometric`] for integer-valued counts as the hardened
//! alternative and keep the continuous sampler for fidelity with the
//! paper's experiments.

use rand::rngs::StdRng;
use rand::RngExt;

/// A draw from the Laplace distribution with density
/// `exp(−|x|/scale) / (2·scale)` (inverse-CDF sampling).
pub fn laplace(rng: &mut StdRng, scale: f64) -> f64 {
    assert!(scale >= 0.0, "laplace scale must be non-negative");
    if scale == 0.0 {
        return 0.0;
    }
    // u uniform in (−1/2, 1/2]; guard the log's argument away from 0.
    let u: f64 = rng.random::<f64>() - 0.5;
    let a = (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE);
    -scale * u.signum() * a.ln()
}

/// A vector of independent Laplace draws.
pub fn laplace_vec(rng: &mut StdRng, scale: f64, len: usize) -> Vec<f64> {
    (0..len).map(|_| laplace(rng, scale)).collect()
}

/// A draw from the standard Gumbel distribution. Adding i.i.d. Gumbel noise
/// to scaled scores and taking the argmax implements the exponential
/// mechanism exactly (the "Gumbel-max trick").
pub fn gumbel(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -(-u.ln()).ln()
}

/// The exponential mechanism over `scores` with quality sensitivity
/// `sensitivity`, at privacy level `eps`: returns an index sampled with
/// probability ∝ `exp(eps · score / (2 · sensitivity))`.
pub fn exponential_mechanism(
    rng: &mut StdRng,
    scores: &[f64],
    sensitivity: f64,
    eps: f64,
) -> usize {
    assert!(
        !scores.is_empty(),
        "exponential mechanism over empty candidate set"
    );
    // xlint: allow(budget-chokepoint, reason = "sampler precondition on already-admitted parameters, not a budget admission decision")
    assert!(sensitivity > 0.0 && eps > 0.0);
    // A NaN score would never win the Gumbel-max scan (NaN comparisons are
    // false), silently biasing the mechanism toward index 0 — a privacy
    // *and* correctness bug. Fail loudly instead.
    assert!(
        scores.iter().all(|s| s.is_finite()),
        "exponential mechanism requires finite scores, got {:?}",
        // xlint: allow(panic-policy, reason = "only evaluated while the enclosing assert is already failing, so a non-finite element is guaranteed to exist")
        scores.iter().find(|s| !s.is_finite()).unwrap()
    );
    let mut best = 0;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &s) in scores.iter().enumerate() {
        let v = eps * s / (2.0 * sensitivity) + gumbel(rng);
        if v > best_val {
            best_val = v;
            best = i;
        }
    }
    best
}

/// A draw from the two-sided geometric distribution with parameter
/// `alpha = exp(−eps/sensitivity)`: the discrete analogue of the Laplace
/// mechanism, immune to the floating-point attack for integer counts.
///
/// Construction: the **difference of two i.i.d. one-sided geometrics**,
/// `X = G₁ − G₂` with `P(G = k) = (1 − α) αᵏ` for `k ≥ 0`. The difference
/// is symmetric with `P(X = k) ∝ α^|k|` and variance `2α / (1 − α)²`
/// (twice the one-sided variance `α / (1 − α)²`), which the distribution
/// test checks against the sample variance.
pub fn two_sided_geometric(rng: &mut StdRng, eps_over_sens: f64) -> i64 {
    // xlint: allow(budget-chokepoint, reason = "sampler precondition on already-admitted parameters, not a budget admission decision")
    assert!(eps_over_sens > 0.0);
    // Mathematically alpha = exp(−x) < 1 for x > 0, but for
    // x ≲ 1.1e-16 the f64 result rounds to exactly 1.0, making
    // ln(alpha) = 0 and the geometric draws collapse to a deterministic
    // zero — i.e. *no noise at essentially zero epsilon*. Clamp just
    // below 1 so the sampler degrades to astronomically wide (not
    // absent) noise instead.
    let alpha = (-eps_over_sens).exp().min(1.0 - f64::EPSILON);
    let g1 = one_sided_geometric(rng, alpha);
    let g2 = one_sided_geometric(rng, alpha);
    g1 - g2
}

fn one_sided_geometric(rng: &mut StdRng, alpha: f64) -> i64 {
    // P(G = k) = (1 − alpha) alpha^k for k ≥ 0.
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / alpha.ln()).floor() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn laplace_mean_and_spread() {
        let mut r = rng();
        let n = 200_000;
        let scale = 2.0;
        let samples: Vec<f64> = (0..n).map(|_| laplace(&mut r, scale)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let mad = samples.iter().map(|v| v.abs()).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // E|X| = scale for Laplace.
        assert!((mad - scale).abs() < 0.05, "mean abs dev {mad}");
    }

    #[test]
    fn laplace_zero_scale_is_deterministic() {
        let mut r = rng();
        assert_eq!(laplace(&mut r, 0.0), 0.0);
    }

    #[test]
    fn exponential_mechanism_prefers_high_scores() {
        let mut r = rng();
        let scores = [0.0, 0.0, 10.0, 0.0];
        let mut hits = 0;
        for _ in 0..200 {
            if exponential_mechanism(&mut r, &scores, 1.0, 2.0) == 2 {
                hits += 1;
            }
        }
        assert!(hits > 150, "high-score arm picked only {hits}/200 times");
    }

    #[test]
    fn exponential_mechanism_is_near_uniform_at_tiny_eps() {
        let mut r = rng();
        let scores = [0.0, 1.0];
        let mut hits = 0;
        for _ in 0..2000 {
            hits += exponential_mechanism(&mut r, &scores, 1.0, 1e-6);
        }
        let frac = hits as f64 / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "fraction {frac}");
    }

    #[test]
    fn geometric_is_integer_and_symmetric() {
        let mut r = rng();
        let n = 100_000;
        let sum: i64 = (0..n).map(|_| two_sided_geometric(&mut r, 0.5)).sum();
        let mean = sum as f64 / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_variance_matches_difference_construction() {
        // Var(G₁ − G₂) = 2α/(1−α)² for the difference-of-geometrics
        // construction; a sign-and-magnitude sampler that double-counted
        // zero (what the doc comment used to describe) would disagree.
        let mut r = rng();
        let n = 200_000usize;
        for eps_over_sens in [0.25f64, 0.5, 1.0] {
            let alpha = (-eps_over_sens).exp();
            let expect = 2.0 * alpha / ((1.0 - alpha) * (1.0 - alpha));
            let samples: Vec<f64> = (0..n)
                .map(|_| two_sided_geometric(&mut r, eps_over_sens) as f64)
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
            assert!(
                (var - expect).abs() < 0.05 * expect,
                "eps/sens {eps_over_sens}: sample variance {var} vs expected {expect}"
            );
        }
    }

    #[test]
    fn geometric_still_noisy_at_vanishing_epsilon() {
        // exp(-1e-17) rounds to 1.0 in f64; without the clamp the sampler
        // would return exactly 0 forever — zero noise at zero epsilon.
        let mut r = rng();
        let draws: Vec<i64> = (0..10)
            .map(|_| two_sided_geometric(&mut r, 1e-17))
            .collect();
        assert!(
            draws.iter().any(|&d| d != 0),
            "vanishing epsilon must give (huge) noise, not none: {draws:?}"
        );
    }

    #[test]
    #[should_panic(expected = "finite scores")]
    fn exponential_mechanism_rejects_nan_scores() {
        let mut r = rng();
        let _ = exponential_mechanism(&mut r, &[1.0, f64::NAN, 3.0], 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite scores")]
    fn exponential_mechanism_rejects_infinite_scores() {
        let mut r = rng();
        let _ = exponential_mechanism(&mut r, &[f64::INFINITY, 0.0], 1.0, 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng();
        let mut b = rng();
        for _ in 0..100 {
            assert_eq!(laplace(&mut a, 1.0), laplace(&mut b, 1.0));
        }
    }
}
