//! Failure injection: every kernel error path fires cleanly, without
//! corrupting state, and never leaks data through the error itself.

use ektelo_core::kernel::{EktError, ProtectedKernel};
use ektelo_core::ops::partition::{ahp_partition, dawa_partition, AhpOptions, DawaOptions};
use ektelo_core::ops::selection::worst_approx;
use ektelo_data::{Predicate, Schema, Table};
use ektelo_matrix::Matrix;

fn table_kernel() -> ProtectedKernel {
    let schema = Schema::from_sizes(&[("v", 4)]);
    let rows: Vec<Vec<u32>> = (0..8).map(|i| vec![i % 4]).collect();
    ProtectedKernel::init(Table::from_rows(schema, &rows), 1.0, 5)
}

#[test]
fn table_ops_on_vector_sources_fail() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    assert!(matches!(
        k.transform_where(k.root(), &Predicate::True),
        Err(EktError::WrongSourceType { expected: "table" })
    ));
    assert!(matches!(
        k.transform_select(k.root(), &["v"]),
        Err(EktError::WrongSourceType { .. })
    ));
    assert!(matches!(
        k.schema(k.root()),
        Err(EktError::WrongSourceType { .. })
    ));
}

#[test]
fn vector_ops_on_table_sources_fail() {
    let k = table_kernel();
    assert!(matches!(
        k.vector_laplace(k.root(), &Matrix::identity(4), 0.1),
        Err(EktError::WrongSourceType { expected: "vector" })
    ));
    assert!(matches!(
        k.vector_len(k.root()),
        Err(EktError::WrongSourceType { .. })
    ));
    assert!(matches!(
        k.reduce_by_partition(k.root(), &Matrix::identity(4)),
        Err(EktError::WrongSourceType { .. })
    ));
}

#[test]
fn shape_mismatches_are_reported_with_dimensions() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    match k.vector_laplace(k.root(), &Matrix::identity(5), 0.1) {
        Err(EktError::ShapeMismatch { expected, found }) => {
            assert_eq!((expected, found), (4, 5));
        }
        other => panic!("expected shape mismatch, got {other:?}"),
    }
}

#[test]
fn non_positive_epsilon_rejected_everywhere() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    for eps in [0.0, -0.5] {
        assert!(matches!(
            k.vector_laplace(k.root(), &Matrix::identity(4), eps),
            Err(EktError::InvalidArgument(_))
        ));
        assert!(matches!(
            k.noisy_count(k.root(), eps),
            Err(EktError::InvalidArgument(_))
        ));
        assert!(ahp_partition(&k, k.root(), eps, &AhpOptions::default()).is_err());
        assert!(dawa_partition(&k, k.root(), eps, &DawaOptions::new(0.1)).is_err());
    }
    // Nothing above should have consumed any budget.
    assert_eq!(k.budget_spent(), 0.0);
}

#[test]
fn zero_sensitivity_strategy_rejected() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    let zero = Matrix::sparse(ektelo_matrix::CsrMatrix::zeros(2, 4));
    assert!(matches!(
        k.vector_laplace(k.root(), &zero, 0.5),
        Err(EktError::InvalidArgument(_))
    ));
    assert_eq!(k.budget_spent(), 0.0);
}

#[test]
fn invalid_partition_rejected_by_both_partition_ops() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    // Wavelet has negative entries; prefix has overlapping support.
    for bad in [Matrix::wavelet(4), Matrix::prefix(4)] {
        assert!(matches!(
            k.reduce_by_partition(k.root(), &bad),
            Err(EktError::InvalidPartition(_))
        ));
        assert!(matches!(
            k.split_by_partition(k.root(), &bad),
            Err(EktError::InvalidPartition(_))
        ));
    }
}

#[test]
fn worst_approx_on_empty_workload_fails() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 1.0, 0);
    let empty = Matrix::sparse(ektelo_matrix::CsrMatrix::zeros(0, 4));
    assert!(worst_approx(&k, k.root(), &empty, &[0.0; 4], 1.0, 0.1, None).is_err());
}

#[test]
fn errors_are_displayable_and_stable() {
    // Error messages are part of the public API surface (plans report
    // them); keep them informative.
    let e = EktError::BudgetExceeded {
        requested: 0.5,
        remaining: 0.25,
    };
    let s = format!("{e}");
    assert!(s.contains("0.5") && s.contains("0.25"), "{s}");
    let e = EktError::ShapeMismatch {
        expected: 4,
        found: 5,
    };
    assert!(format!("{e}").contains("expected 4"));
}

#[test]
fn failed_measurement_leaves_history_clean() {
    let k = ProtectedKernel::init_from_vector(vec![1.0; 4], 0.5, 0);
    k.vector_laplace(k.root(), &Matrix::identity(4), 0.5)
        .unwrap();
    assert_eq!(k.measurement_count(), 1);
    // Over budget: must not append to the history.
    let _ = k.vector_laplace(k.root(), &Matrix::identity(4), 0.5);
    assert_eq!(k.measurement_count(), 1);
}

#[test]
fn deep_transformation_chains_stay_consistent() {
    // A chain of reductions: budgets propagate through every hop and the
    // lineage still maps back to the base.
    let k = ProtectedKernel::init_from_vector((0..32).map(|i| i as f64).collect(), 1.0, 0);
    let p1 = ektelo_matrix::partition_from_labels(16, &(0..32).map(|i| i / 2).collect::<Vec<_>>());
    let p2 = ektelo_matrix::partition_from_labels(4, &(0..16).map(|i| i / 4).collect::<Vec<_>>());
    let r1 = k.reduce_by_partition(k.root(), &p1).unwrap();
    let r2 = k.reduce_by_partition(r1, &p2).unwrap();
    k.vector_laplace(r2, &Matrix::identity(4), 0.5).unwrap();
    assert!((k.budget_spent() - 0.5).abs() < 1e-12);
    let m = &k.measurements()[0];
    assert_eq!(
        m.query.cols(),
        32,
        "lineage must map back to the 32-cell base"
    );
    // The effective query sums blocks of 8 original cells.
    let row0 = m.query.row(0);
    assert_eq!(row0.iter().sum::<f64>(), 8.0);
}

#[test]
fn split_then_reduce_composes() {
    let k = ProtectedKernel::init_from_vector(vec![2.0; 12], 1.0, 0);
    let split =
        ektelo_matrix::partition_from_labels(2, &(0..12).map(|i| i / 6).collect::<Vec<_>>());
    let parts = k.split_by_partition(k.root(), &split).unwrap();
    let inner = ektelo_matrix::partition_from_labels(2, &(0..6).map(|i| i / 3).collect::<Vec<_>>());
    for part in parts {
        let red = k.reduce_by_partition(part, &inner).unwrap();
        k.vector_laplace(red, &Matrix::identity(2), 0.8).unwrap();
    }
    // Parallel composition across the split: total cost 0.8.
    assert!((k.budget_spent() - 0.8).abs() < 1e-12);
}
