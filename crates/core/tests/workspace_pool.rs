//! Gate for kernel-owned workspace reuse (ROADMAP PR-3 open item):
//! `vector_laplace_batch` and scratch-hungry vetted operators must check
//! warm `Workspace`s out of the kernel's pool instead of building a
//! fresh one per call, so repeated batch calls pay zero arena setup.
//!
//! The observable: the pool's idle count stabilizes after the first call
//! and never grows on subsequent identical calls. A regression that
//! creates fresh workspaces (instead of popping pooled ones) keeps
//! pushing new entries on restore, so the count climbs call after call.
//!
//! Since ISSUE 5 the pool is additionally **byte-bounded**: arenas grow
//! monotonically to the largest requirement seen, so without a bound one
//! huge batch would pin up to 32 maximum-sized arenas for the kernel's
//! lifetime. Restores over the budget shrink the workspace first
//! (`Workspace::shed_to`), keeping its plan fast path; the second half of
//! this suite gates exactly that.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_matrix::{partition_from_labels, Matrix};

/// Cells per stripe — big enough that the batch's parallel path (when
/// the `parallel` feature is on) engages its worker threads.
const STRIPE: usize = 1 << 12;
const STRIPES: usize = 8;

fn striped_kernel() -> (ProtectedKernel, Vec<SourceVar>) {
    let n = STRIPE * STRIPES;
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let k = ProtectedKernel::init_from_vector(x, 1000.0, 23);
    let labels: Vec<usize> = (0..n).map(|i| i / STRIPE).collect();
    let p = partition_from_labels(STRIPES, &labels);
    let stripes = k.split_by_partition(k.root(), &p).unwrap();
    (k, stripes)
}

#[test]
fn batch_calls_reuse_kernel_owned_workspaces() {
    let (k, stripes) = striped_kernel();
    // A scratch-bearing strategy (Prefix needs a running-sum buffer), so
    // workspace reuse actually carries a warm arena between calls.
    let strategy = Matrix::prefix(STRIPE);
    let reqs: Vec<(SourceVar, &Matrix, f64)> =
        stripes.iter().map(|&s| (s, &strategy, 0.01)).collect();

    assert_eq!(k.workspace_pool_len(), 0, "pool starts empty");
    k.vector_laplace_batch(&reqs).unwrap();
    let warm = k.workspace_pool_len();
    assert!(
        warm >= 1,
        "the batch must return its workspaces to the pool"
    );

    for _ in 0..5 {
        k.vector_laplace_batch(&reqs).unwrap();
        assert_eq!(
            k.workspace_pool_len(),
            warm,
            "identical batch calls must reuse the pooled workspaces, not create more"
        );
    }
}

/// One huge batch must not pin its peak arenas forever: with a small
/// byte budget configured, the pool's idle residency stays under the
/// budget after a scratch-heavy batch — and later batches still reuse
/// the pooled (shed) workspaces rather than minting new ones.
#[test]
fn pool_residency_stays_under_the_byte_budget() {
    let (k, stripes) = striped_kernel();
    // 64 KiB budget: far below what the batch's workspaces want (a
    // product strategy over 2^12-cell stripes needs a 2^12-scalar
    // intermediate per workspace — 32 KiB each — plus worker arenas).
    let budget = 64 * 1024;
    k.set_workspace_pool_max_bytes(budget);
    let strategy = Matrix::product(Matrix::prefix(STRIPE), Matrix::wavelet(STRIPE));
    let reqs: Vec<(SourceVar, &Matrix, f64)> =
        stripes.iter().map(|&s| (s, &strategy, 0.01)).collect();

    k.vector_laplace_batch(&reqs).unwrap();
    let warm = k.workspace_pool_len();
    assert!(warm >= 1, "the batch must still pool its workspaces");
    assert!(
        k.workspace_pool_resident_bytes() <= budget,
        "idle pool holds {} bytes, budget is {budget}",
        k.workspace_pool_resident_bytes()
    );

    for _ in 0..3 {
        k.vector_laplace_batch(&reqs).unwrap();
        assert_eq!(
            k.workspace_pool_len(),
            warm,
            "shed workspaces must still be reused, not replaced"
        );
        assert!(
            k.workspace_pool_resident_bytes() <= budget,
            "budget must hold across repeated batches"
        );
    }

    // Tightening the budget re-fits the idle inventory immediately.
    k.set_workspace_pool_max_bytes(1024);
    assert!(k.workspace_pool_resident_bytes() <= 1024);
    // And the pool still serves (empty-but-warm) workspaces afterwards.
    k.vector_laplace_batch(&reqs).unwrap();
    assert!(k.workspace_pool_resident_bytes() <= 1024);
}

/// The default budget is generous: a modest batch pools its workspaces
/// at full size (no shedding), so steady-state reuse pays zero arena
/// regrowth — the original PR-4 guarantee, unchanged.
#[test]
fn default_budget_keeps_modest_arenas_resident() {
    let (k, stripes) = striped_kernel();
    let strategy = Matrix::product(Matrix::prefix(STRIPE), Matrix::wavelet(STRIPE));
    let reqs: Vec<(SourceVar, &Matrix, f64)> =
        stripes.iter().map(|&s| (s, &strategy, 0.01)).collect();
    k.vector_laplace_batch(&reqs).unwrap();
    let resident = k.workspace_pool_resident_bytes();
    assert!(
        resident > 0,
        "modest arenas must stay resident under the default budget"
    );
    for _ in 0..3 {
        k.vector_laplace_batch(&reqs).unwrap();
        assert_eq!(
            k.workspace_pool_resident_bytes(),
            resident,
            "identical batches must neither grow nor shed the inventory"
        );
    }
}

#[test]
fn worst_approx_reuses_the_pooled_workspace() {
    use ektelo_core::ops::selection::worst_approx;
    let k = ProtectedKernel::init_from_vector(vec![3.0; 256], 10.0, 5);
    let w = Matrix::prefix(256);
    let x_hat = vec![3.0; 256];
    worst_approx(&k, k.root(), &w, &x_hat, 1.0, 0.1, None).unwrap();
    assert_eq!(k.workspace_pool_len(), 1);
    for _ in 0..4 {
        worst_approx(&k, k.root(), &w, &x_hat, 1.0, 0.1, None).unwrap();
        assert_eq!(
            k.workspace_pool_len(),
            1,
            "MWEM-style repeated selection shares one warm workspace"
        );
    }
}
