//! Concurrent reservation stress: racing sessions reserve, redeem and
//! drop against one kernel, and the ledger must conserve exactly.
//!
//! The PR-4-era redemption race this guards against: with the old
//! unlock-then-charge dance, a sibling session could take an admitted
//! plan's just-unlocked budget between the unlock and the charge, making
//! the admitted plan fail with budget-exhaustion mid-run. Atomic
//! redemption makes that impossible — so these tests assert the strong
//! form: **an admitted reservation always redeems successfully**, no
//! matter what the other sessions do, at any pool size (CI runs this
//! under `EKTELO_POOL_WORKERS=1` and `4`).
//!
//! All concurrency goes through `pool::scope` — the workspace's one
//! sanctioned thread owner (xlint's determinism-thread rule).

use ektelo_core::kernel::ProtectedKernel;
use ektelo_matrix::{pool, Matrix};

const N: usize = 16;
const EPS_TOTAL: f64 = 1.0;

fn kernel() -> ProtectedKernel {
    ProtectedKernel::init_from_vector(vec![1.0; N], EPS_TOTAL, 7)
}

/// Per-session outcome, written into a dedicated slot by each racing job.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
enum Outcome {
    #[default]
    NotRun,
    Rejected,
    Redeemed,
}

/// Races `sessions` jobs, each reserving `eps_each` and then redeeming
/// `redeem` of it before dropping the remainder. Returns the outcomes.
fn race(k: &ProtectedKernel, sessions: usize, eps_each: f64, redeem: f64) -> Vec<Outcome> {
    let m = Matrix::identity(N);
    let mut outcomes = vec![Outcome::NotRun; sessions];
    pool::scope(|s| {
        for slot in outcomes.iter_mut() {
            let m = &m;
            s.spawn(move || {
                *slot = match k.reserve_budget(eps_each) {
                    Err(_) => Outcome::Rejected,
                    Ok(res) => {
                        // The regression under test: an admitted hold
                        // must be redeemable regardless of racing
                        // siblings.
                        res.vector_laplace(k.root(), m, redeem)
                            .expect("admitted reservation starved of its own budget");
                        assert_eq!(res.charged(), redeem);
                        Outcome::Redeemed
                    }
                };
            });
        }
    });
    outcomes
}

fn assert_conserved(k: &ProtectedKernel, expected_spent: f64) {
    assert_eq!(k.budget_reserved(), 0.0, "a hold leaked");
    assert_eq!(k.active_reservations(), 0, "a reservation slot leaked");
    let spent = k.budget_spent();
    assert!(
        (spent - expected_spent).abs() < 1e-12,
        "ledger drifted: spent {spent}, expected {expected_spent}"
    );
    // The exact remainder is still chargeable — nothing was destroyed.
    let remaining = EPS_TOTAL - spent;
    if remaining > 1e-6 {
        k.vector_laplace(k.root(), &Matrix::identity(N), remaining)
            .expect("conserved remainder must be chargeable");
    }
}

#[test]
fn undersubscribed_sessions_all_admit_and_redeem() {
    // 16 × 0.05 = 0.8 ≤ 1.0: every session fits, so every one must be
    // admitted and redeem in full.
    let k = kernel();
    let outcomes = race(&k, 16, 0.05, 0.05);
    assert!(
        outcomes.iter().all(|&o| o == Outcome::Redeemed),
        "all sessions fit the budget: {outcomes:?}"
    );
    assert_conserved(&k, 16.0 * 0.05);
}

#[test]
fn oversubscribed_sessions_admit_exactly_to_capacity() {
    // 16 × 0.2 = 3.2 > 1.0: exactly 5 sessions fit (5 × 0.2 = 1.0) in
    // *some* interleaving order, the rest are turned away typed — and
    // every admitted one redeems despite the contention.
    let k = kernel();
    let outcomes = race(&k, 16, 0.2, 0.2);
    let admitted = outcomes.iter().filter(|&&o| o == Outcome::Redeemed).count();
    let rejected = outcomes.iter().filter(|&&o| o == Outcome::Rejected).count();
    assert_eq!(admitted, 5, "capacity is 5 holds of 0.2: {outcomes:?}");
    assert_eq!(rejected, 11);
    assert_conserved(&k, 5.0 * 0.2);
}

#[test]
fn partial_redemption_with_drop_releases_exactly_the_remainder() {
    // Each admitted session redeems half its hold and drops the rest;
    // the drop must release exactly the unredeemed remainder, even while
    // siblings are mid-redemption.
    let k = kernel();
    let outcomes = race(&k, 10, 0.1, 0.05);
    assert!(
        outcomes.iter().all(|&o| o == Outcome::Redeemed),
        "10 × 0.1 = 1.0 all fit: {outcomes:?}"
    );
    assert_conserved(&k, 10.0 * 0.05);
}

#[test]
fn dropped_without_redeeming_releases_the_full_hold() {
    // Reservations that die before any charge (the plan failed early)
    // must return their entire hold.
    let k = kernel();
    pool::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                let res = k.reserve_budget(0.125).expect("8 × 0.125 = 1.0 fits");
                assert_eq!(res.charged(), 0.0);
                drop(res);
            });
        }
    });
    assert_conserved(&k, 0.0);
}
