//! Deterministic fault-injection sweep (robustness acceptance gate).
//!
//! For each representative plan shape (baseline identity, HB, DAWA-Striped
//! with its batched measure + pool compute, adaptive MWEM), a clean run
//! first records how often every failpoint site is passed; the sweep then
//! re-runs the plan on a fresh equally-seeded kernel with "fail at the
//! k-th hit of site S" armed, for several k per site, and asserts the
//! transactional-ledger contract after every injected failure:
//!
//! * the error is typed — [`EktError::FaultInjected`] from error-path
//!   sites, [`EktError::ExecutionPanic`] from panic sites — never a
//!   wedged lock or a poisoned kernel;
//! * **ledger conservation**: nothing stays reserved, no reservation
//!   slot leaks, spent budget is finite and within the session total,
//!   and the entire remainder is still chargeable afterwards (so no
//!   budget was silently lost to the crash);
//! * the kernel stays fully functional for subsequent sessions.
//!
//! A final gate pins the success path: with the feature compiled in and
//! every site armed at an unreachable hit count, results are bit-identical
//! to the unarmed run.
//!
//! Assertions are schedule-independent: `pool::job`'s *total* hit count
//! per region is invariant across pool sizes, but which job observes the
//! k-th hit is not, so nothing here depends on which stripe died.

#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard};

use ektelo_core::kernel::{EktError, ProtectedKernel};
use ektelo_core::ops::graph::{
    MwemLoopOp, MwemRoundInference, PlanBuilder, PlanExecutor, PlanSpec,
};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::DawaOptions;
use ektelo_matrix::{failpoints, pool, Matrix};

/// The failpoint registry is process-global; tests in this binary must
/// not interleave their schedules.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every site the engine defines, in one place so the sweep cannot
/// silently miss a class of fault.
const SITES: &[&str] = &[
    "state::reserve",
    "state::charge",
    "state::redeem",
    "kernel::batch_stripe",
    "kernel::batch_exact",
    "pool::job",
    "pool::steal",
    "solver::iteration",
];

const N: usize = 48;
const EPS_TOTAL: f64 = 1.0;
const SEED: u64 = 77;

fn identity_spec(eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = b.select_identity(x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn hb_spec(eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = b.select_hb(x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn dawa_striped_spec(eps1: f64, eps2: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(&[16, 3], 0);
    let stripes = b.transform_split(x, p);
    let parts = b.partition_dawa_each(stripes, eps1, DawaOptions::new(eps2));
    let reduced = b.transform_reduce_each(stripes, parts);
    let strats = b.select_greedy_h_each(reduced, parts, &[]);
    b.measure_laplace_batch_each(reduced, strats, eps2);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn mwem_spec(rounds: usize, eps: f64) -> PlanSpec {
    let per_round = eps / (2.0 * rounds as f64);
    let mut b = PlanBuilder::new();
    let x = b.input();
    let e = b.mwem_loop(MwemLoopOp {
        input: x,
        workload: Matrix::prefix(N),
        rounds,
        eps_select: per_round,
        eps_measure: per_round,
        augment: false,
        inference: MwemRoundInference::MultWeights,
        total: 500.0,
        mw_iterations: 15,
    });
    b.finish(e)
}

fn plans() -> Vec<(&'static str, PlanSpec)> {
    vec![
        ("identity", identity_spec(0.6)),
        ("hb", hb_spec(0.6)),
        ("dawa-striped", dawa_striped_spec(0.15, 0.45)),
        ("mwem", mwem_spec(4, 0.6)),
    ]
}

fn kernel() -> ProtectedKernel {
    let x: Vec<f64> = (0..N).map(|i| ((i * 13) % 11) as f64).collect();
    ProtectedKernel::init_from_vector(x, EPS_TOTAL, SEED)
}

/// The hit counts a clean run of `spec` accrues at every site.
fn baseline_hits(spec: &PlanSpec, checked: bool) -> Vec<(&'static str, u64)> {
    failpoints::clear();
    let k = kernel();
    let exec = if checked {
        PlanExecutor::new(&k)
    } else {
        PlanExecutor::unchecked(&k)
    };
    exec.run(spec, k.root()).expect("clean baseline run");
    SITES.iter().map(|&s| (s, failpoints::hits(s))).collect()
}

/// Post-failure contract: typed error, conserved ledger, functional
/// kernel.
fn assert_fault_contract(name: &str, site: &str, nth: u64, k: &ProtectedKernel, err: EktError) {
    let what = format!("{name}: fail at {site} hit {nth}");
    assert!(
        matches!(
            err,
            EktError::FaultInjected(_) | EktError::ExecutionPanic(_)
        ),
        "{what}: unexpected error {err:?}"
    );
    assert_eq!(k.budget_reserved(), 0.0, "{what}: a hold leaked");
    assert_eq!(
        k.active_reservations(),
        0,
        "{what}: a reservation slot leaked"
    );
    let spent = k.budget_spent();
    assert!(
        spent.is_finite() && (0.0..=EPS_TOTAL + 1e-9).contains(&spent),
        "{what}: ledger corrupted, spent = {spent}"
    );
    // Conservation: the entire remainder is still available — nothing
    // was silently destroyed by the crash. (The armed site already
    // fired, so this charge cannot re-trigger it.)
    let remaining = EPS_TOTAL - spent;
    if remaining > 1e-6 {
        k.vector_laplace(k.root(), &Matrix::identity(N), remaining)
            .unwrap_or_else(|e| panic!("{what}: remainder not chargeable: {e}"));
    }
    // And the kernel still admits fresh sessions end to end.
    failpoints::clear();
    let k2 = kernel();
    let report = PlanExecutor::new(&k2)
        .run(&identity_spec(0.25), k2.root())
        .unwrap_or_else(|e| panic!("{what}: kernel wedged for the next session: {e}"));
    assert_eq!(report.eps_charged, report.eps_pre_accounted);
}

/// Sweep "fail at hit k of site s" for k ∈ {1, 2, h/2, h} over every site
/// the plan actually passes.
fn sweep(name: &str, spec: &PlanSpec, checked: bool) {
    for (site, h) in baseline_hits(spec, checked) {
        if h == 0 {
            continue;
        }
        let mut ks = vec![1, 2, h / 2, h];
        ks.retain(|&k| k >= 1 && k <= h);
        ks.dedup();
        for nth in ks {
            failpoints::clear();
            failpoints::arm(site, nth);
            let k = kernel();
            let exec = if checked {
                PlanExecutor::new(&k)
            } else {
                PlanExecutor::unchecked(&k)
            };
            let err = exec
                .run(spec, k.root())
                .expect_err("an armed in-range site must fail the plan");
            assert_fault_contract(name, site, nth, &k, err);
        }
    }
    failpoints::clear();
}

#[test]
fn fault_sweep_over_representative_plans() {
    let _guard = serial();
    for (name, spec) in plans() {
        sweep(name, &spec, true);
    }
}

#[test]
fn fault_sweep_without_preaccounting_hits_the_unattributed_charge_path() {
    // The unchecked executor charges without a reservation, so this is
    // the only sweep that exercises the `state::charge` site (checked
    // plans always redeem via `state::redeem`).
    let _guard = serial();
    let spec = identity_spec(0.6);
    assert!(
        baseline_hits(&spec, false)
            .iter()
            .any(|&(s, h)| s == "state::charge" && h > 0),
        "unchecked runs must pass the unattributed charge site"
    );
    for (name, spec) in plans() {
        sweep(name, &spec, false);
    }
}

#[test]
fn admission_fault_leaves_zero_history() {
    // A fault at the reservation itself must reject the plan before any
    // kernel side effect — the same contract as an over-budget spec.
    let _guard = serial();
    failpoints::clear();
    failpoints::arm("state::reserve", 1);
    let k = kernel();
    let err = PlanExecutor::new(&k)
        .run(&identity_spec(0.6), k.root())
        .unwrap_err();
    assert_eq!(err, EktError::FaultInjected("state::reserve"));
    assert_eq!(k.measurement_count(), 0);
    assert_eq!(k.budget_spent(), 0.0);
    assert_eq!(k.budget_reserved(), 0.0);
    assert_eq!(k.active_reservations(), 0);
    failpoints::clear();
}

#[test]
fn batch_worker_panic_mid_stripe_leaves_ledger_consistent() {
    // A pool-job crash deferred out of `vector_laplace_batch`'s compute
    // phase (the `kernel::batch_exact` site panics inside the per-stripe
    // exact-answer fill) unwinds before the charge phase: zero charges,
    // zero history, unpoisoned state, next sessions fully functional.
    let _guard = serial();
    failpoints::clear();
    failpoints::arm("kernel::batch_exact", 2);
    let k = kernel();
    let svs = k
        .split_by_partition(
            k.root(),
            &ektelo_core::ops::partition::stripe_partition(&[16, 3], 0),
        )
        .unwrap();
    assert!(svs.len() >= 2, "need a multi-stripe batch");
    let mats: Vec<Matrix> = svs
        .iter()
        .map(|&sv| Matrix::identity(k.vector_len(sv).unwrap()))
        .collect();
    let reqs: Vec<(_, &Matrix, f64)> = svs
        .iter()
        .zip(&mats)
        .map(|(&sv, m)| (sv, m, 0.05))
        .collect();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        k.vector_laplace_batch(&reqs)
    }));
    assert!(outcome.is_err(), "the deferred worker panic must surface");
    assert_eq!(
        k.budget_spent(),
        0.0,
        "no partial charges from a dead batch"
    );
    assert_eq!(k.measurement_count(), 0, "no history from a dead batch");
    assert_eq!(k.budget_reserved(), 0.0);
    // Unpoisoned and consistent: the same batch succeeds now.
    failpoints::clear();
    let out = k.vector_laplace_batch(&reqs).unwrap();
    assert_eq!(out.len(), svs.len());
    assert!(k.budget_spent() > 0.0);
    assert_eq!(k.measurement_count(), svs.len());
}

#[test]
fn faults_in_stolen_packets_obey_the_ledger_contract() {
    // ISSUE 10: with the forced-steal hook on, every pool dispatch queues
    // on a per-worker deque and every execution goes through the thief
    // path, so `pool::steal` is passed exactly once per queued job — a
    // deterministic count, like `pool::job`. A fault fired inside a
    // *stolen* packet must satisfy the same transactional contract as one
    // fired in a slot-dispatched or inline job: typed error, conserved
    // ledger, functional kernel.
    let _guard = serial();
    pool::set_force_steal(true);
    let mut swept = 0u64;
    let mut any_pool_jobs = false;
    for (name, spec) in plans() {
        let hits = baseline_hits(&spec, true);
        let jobs = hits
            .iter()
            .find_map(|&(s, h)| (s == "pool::job").then_some(h))
            .unwrap_or(0);
        any_pool_jobs |= jobs > 0;
        let h = hits
            .iter()
            .find_map(|&(s, h)| (s == "pool::steal").then_some(h))
            .unwrap_or(0);
        if h == 0 {
            continue; // pool path not engaged in this configuration
        }
        let mut ks = vec![1, h];
        ks.dedup();
        for nth in ks {
            failpoints::clear();
            failpoints::arm("pool::steal", nth);
            let k = kernel();
            let err = PlanExecutor::new(&k)
                .run(&spec, k.root())
                .expect_err("an armed stolen-packet site must fail the plan");
            assert_fault_contract(name, "pool::steal", nth, &k, err);
            swept += 1;
        }
    }
    pool::set_force_steal(false);
    failpoints::clear();
    // Cross-check the hook itself: if plans dispatched pool jobs and live
    // workers exist, forced stealing must have routed packets through the
    // thief path (a silent 0-steal sweep would gut this test).
    if any_pool_jobs && pool::workers() > 0 {
        assert!(
            swept > 0,
            "forced-steal sweep ran no stolen-packet faults despite live workers"
        );
    }
}

#[test]
fn success_path_is_bit_identical_with_sites_compiled_in_and_unreached() {
    // Arming every site at an unreachable hit count must not perturb a
    // single bit of any plan's output or ledger relative to the unarmed
    // run — the sites' success path is side-effect-free beyond a counter.
    let _guard = serial();
    for (name, spec) in plans() {
        failpoints::clear();
        let k1 = kernel();
        let clean = PlanExecutor::new(&k1).run(&spec, k1.root()).unwrap();

        failpoints::clear();
        for site in SITES {
            failpoints::arm(site, 1_000_000);
        }
        let k2 = kernel();
        let armed = PlanExecutor::new(&k2).run(&spec, k2.root()).unwrap();

        assert_eq!(clean.x_hat, armed.x_hat, "{name}: x_hat drifted");
        assert_eq!(clean.eps_charged, armed.eps_charged, "{name}");
        assert_eq!(k1.budget_spent(), k2.budget_spent(), "{name}");
        assert_eq!(
            clean.eps_charged, clean.eps_pre_accounted,
            "{name}: per-plan ledger equals pre-account bit-for-bit"
        );
    }
    failpoints::clear();
}
