//! Round-trip and failure-path gates for the operator-graph API
//! (ISSUE 4 acceptance criteria):
//!
//! * every migrated plan shape builds through the typed builder,
//!   pre-accounts an ε that matches the ε the kernel actually charges
//!   **bit for bit**, and renders its Fig. 2 signature;
//! * an over-budget spec is rejected *before any kernel call* — zero
//!   measurement-history entries, zero budget spent, nothing reserved;
//! * when pre-accounting is bypassed (`PlanExecutor::unchecked`), budget
//!   exhaustion mid-plan surfaces as a typed [`EktError`] — never a
//!   panic — from every operator class that charges: Measure (Vector
//!   Laplace, single and batched), Partition selection (DAWA stage 1),
//!   and query Selection inside the MWEM adaptive loop; stability-scaled
//!   Transform chains are accounted and enforced too.

use ektelo_core::kernel::{EktError, ProtectedKernel};
use ektelo_core::ops::graph::{
    MwemLoopOp, MwemRoundInference, PlanBuilder, PlanExecutor, PlanSpec,
};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::DawaOptions;
use ektelo_matrix::Matrix;

fn identity_spec(eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = b.select_identity(x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn hb_spec(eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = b.select_hb(x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn dawa_striped_spec(sizes: &[usize], attr: usize, eps1: f64, eps2: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(sizes, attr);
    let stripes = b.transform_split(x, p);
    let parts = b.partition_dawa_each(stripes, eps1, DawaOptions::new(eps2));
    let reduced = b.transform_reduce_each(stripes, parts);
    let strats = b.select_greedy_h_each(reduced, parts, &[]);
    b.measure_laplace_batch_each(reduced, strats, eps2);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn mwem_spec(n: usize, rounds: usize, eps: f64) -> PlanSpec {
    let per_round = eps / (2.0 * rounds.max(1) as f64);
    let mut b = PlanBuilder::new();
    let x = b.input();
    let e = b.mwem_loop(MwemLoopOp {
        input: x,
        workload: Matrix::prefix(n),
        rounds,
        eps_select: per_round,
        eps_measure: per_round,
        augment: false,
        inference: MwemRoundInference::MultWeights,
        total: 500.0,
        mw_iterations: 15,
    });
    b.finish(e)
}

fn vector_kernel(n: usize, eps_total: f64, seed: u64) -> ProtectedKernel {
    let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 11) as f64).collect();
    ProtectedKernel::init_from_vector(x, eps_total, seed)
}

// -------------------------------------------------------------------
// Round-trips: builder → pre-account → execute, ε exact, signature
// rendered
// -------------------------------------------------------------------

#[test]
fn migrated_plan_specs_round_trip_with_exact_budgets() {
    let cases: Vec<(PlanSpec, &str)> = vec![
        (identity_spec(0.6), "SI LM LS"),
        (hb_spec(0.6), "SHB LM LS"),
        (
            dawa_striped_spec(&[16, 3], 0, 0.15, 0.45),
            "PS TP[ PD TR SG LM ] LS",
        ),
        (mwem_spec(48, 4, 0.6), "I:( SW LM MW )"),
    ];
    for (spec, signature) in cases {
        assert_eq!(spec.signature(), signature);
        let pre = spec.pre_account().unwrap().total;
        let k = vector_kernel(48, 1.0, 77);
        let report = PlanExecutor::new(&k).run(&spec, k.root()).unwrap();
        assert_eq!(report.signature, signature);
        assert_eq!(
            report.eps_pre_accounted, pre,
            "{signature}: root scaling is 1 for a root source"
        );
        assert_eq!(
            report.eps_charged, pre,
            "{signature}: pre-accounted ε must equal charged ε bit-for-bit"
        );
        assert_eq!(
            k.budget_spent(),
            pre,
            "{signature}: kernel ledger agrees with the report"
        );
        assert_eq!(k.budget_reserved(), 0.0, "{signature}: nothing left held");
    }
}

#[test]
fn over_budget_specs_rejected_with_zero_kernel_history() {
    let specs = vec![
        identity_spec(0.6),
        hb_spec(0.6),
        dawa_striped_spec(&[16, 3], 0, 0.15, 0.45),
        mwem_spec(48, 4, 0.6),
    ];
    for spec in specs {
        let k = vector_kernel(48, 0.5, 77); // every spec pre-accounts 0.6
        let err = PlanExecutor::new(&k).run(&spec, k.root()).unwrap_err();
        assert!(
            matches!(err, EktError::BudgetExceeded { .. }),
            "{}: expected BudgetExceeded, got {err:?}",
            spec.signature()
        );
        assert_eq!(k.measurement_count(), 0, "zero kernel history entries");
        assert_eq!(k.budget_spent(), 0.0, "nothing charged");
        assert_eq!(k.budget_reserved(), 0.0, "nothing left reserved");
    }
}

#[test]
fn admitted_plan_cannot_lose_its_budget_to_a_later_reservation() {
    // Admission control: once a plan's reservation is in, a second
    // session asking for more than the remainder is turned away, and an
    // ordinary (unreserved) charge cannot eat into the hold either.
    let k = vector_kernel(16, 1.0, 3);
    let reservation = k.reserve_budget(0.7).unwrap();
    assert_eq!(k.budget_reserved(), 0.7);
    assert!(matches!(
        k.reserve_budget(0.5),
        Err(EktError::BudgetExceeded { .. })
    ));
    // A direct charge can only use the unreserved 0.3.
    assert!(matches!(
        k.vector_laplace(k.root(), &Matrix::identity(16), 0.4),
        Err(EktError::BudgetExceeded { .. })
    ));
    k.vector_laplace(k.root(), &Matrix::identity(16), 0.3)
        .unwrap();
    // Releasing the hold re-opens the rest.
    drop(reservation);
    assert_eq!(k.budget_reserved(), 0.0);
    k.vector_laplace(k.root(), &Matrix::identity(16), 0.7)
        .unwrap();
}

#[test]
fn nan_epsilon_cannot_poison_budget_enforcement() {
    // Regression: a NaN declared ε used to slip through both the static
    // validation (`eps <= 0.0` is false for NaN) and the reservation
    // admission check, setting `reserved = NaN` — after which every root
    // availability check (`ε_tot − NaN`) was vacuously satisfied and ALL
    // charges from every session were admitted.
    let spec = identity_spec(f64::NAN);
    assert!(matches!(
        spec.pre_account(),
        Err(EktError::InvalidArgument(_))
    ));
    let k = vector_kernel(16, 1.0, 9);
    let err = PlanExecutor::new(&k).run(&spec, k.root()).unwrap_err();
    assert!(matches!(err, EktError::InvalidArgument(_)));
    assert_eq!(k.measurement_count(), 0);
    assert_eq!(k.budget_reserved(), 0.0);

    // Direct reservations reject NaN and ∞ outright…
    assert!(matches!(
        k.reserve_budget(f64::NAN),
        Err(EktError::InvalidArgument(_))
    ));
    assert!(matches!(
        k.reserve_budget(f64::INFINITY),
        Err(EktError::InvalidArgument(_))
    ));
    assert_eq!(k.budget_reserved(), 0.0);

    // …so enforcement stays intact: the reviewer's over-budget probe (a
    // 10.0 charge against ε_tot = 1.0) is still refused…
    assert!(matches!(
        k.vector_laplace(k.root(), &Matrix::identity(16), 10.0),
        Err(EktError::BudgetExceeded { .. })
    ));

    // …and a NaN ε fed straight to a kernel charge dies as a typed error
    // at the request chokepoint instead of corrupting the trackers.
    assert!(matches!(
        k.vector_laplace(k.root(), &Matrix::identity(16), f64::NAN),
        Err(EktError::InvalidArgument(_))
    ));
    assert_eq!(k.budget_spent(), 0.0);

    // The kernel remains fully usable for an honest charge.
    k.vector_laplace(k.root(), &Matrix::identity(16), 1.0)
        .unwrap();
}

// -------------------------------------------------------------------
// Mid-plan budget exhaustion: typed errors from every charging class
// -------------------------------------------------------------------

#[test]
fn measure_class_exhaustion_is_typed_mid_plan() {
    // Two measure nodes; the kernel can only afford the first.
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s1 = b.select_identity(x);
    b.measure_laplace(x, s1, 0.4);
    let s2 = b.select_hb(x);
    b.measure_laplace(x, s2, 0.4);
    let e = b.infer_least_squares(LsSolver::Iterative);
    let spec = b.finish(e);

    let k = vector_kernel(16, 0.5, 1);
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    // The first measurement went through before the failure.
    assert_eq!(k.measurement_count(), 1);
    assert!((k.budget_spent() - 0.4).abs() < 1e-12);
}

#[test]
fn batched_measure_exhaustion_is_typed_mid_plan() {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(&[16, 3], 0);
    let stripes = b.transform_split(x, p);
    let s = b.select_hb_shared(stripes);
    b.measure_laplace_batch_shared(stripes, s, 0.8);
    let e = b.infer_least_squares(LsSolver::Iterative);
    let spec = b.finish(e);

    let k = vector_kernel(48, 0.5, 2);
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    assert_eq!(
        k.measurement_count(),
        0,
        "the first stripe's charge already exceeds the root budget"
    );
}

#[test]
fn partition_class_exhaustion_is_typed_mid_plan() {
    let spec = dawa_striped_spec(&[16, 3], 0, 0.25, 0.75);
    let k = vector_kernel(48, 0.2, 3); // < DAWA's stage-1 share
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    assert_eq!(k.measurement_count(), 0);
}

#[test]
fn select_class_exhaustion_inside_mwem_loop_is_typed() {
    // Rounds charge 0.15 (select) + 0.15 (measure). With ε_tot = 0.4 the
    // loop survives round 1 (0.3 spent) and dies in round 2's *selection*
    // operator — the exponential mechanism's charge — with a typed error.
    let spec = mwem_spec(32, 3, 0.9);
    let k = vector_kernel(32, 0.4, 4);
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    assert_eq!(
        k.measurement_count(),
        1,
        "round 1's measurement is in, round 2's selection failed"
    );
    assert!((k.budget_spent() - 0.3).abs() < 1e-12);
}

#[test]
fn mwem_measure_exhaustion_mid_round_is_typed() {
    // ε_tot = 0.35: round 2's selection fits (0.45 > 0.35? no —
    // 0.15·3 = 0.45 exceeds; make per-round asymmetric via a direct
    // spec). Selection 0.05 / measurement 0.25: round 1 spends 0.3,
    // round 2's selection reaches 0.35, its *measurement* breaks.
    let mut b = PlanBuilder::new();
    let x = b.input();
    let e = b.mwem_loop(MwemLoopOp {
        input: x,
        workload: Matrix::prefix(32),
        rounds: 3,
        eps_select: 0.05,
        eps_measure: 0.25,
        augment: false,
        inference: MwemRoundInference::MultWeights,
        total: 500.0,
        mw_iterations: 15,
    });
    let spec = b.finish(e);
    let k = vector_kernel(32, 0.35, 5);
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    assert_eq!(k.measurement_count(), 1);
}

// -------------------------------------------------------------------
// Stability accounting through Transform nodes
// -------------------------------------------------------------------

#[test]
fn stability_scaled_transform_is_pre_accounted_and_enforced() {
    let spec = {
        let mut b = PlanBuilder::new();
        let x = b.input();
        let doubled = b.transform_linear(x, Matrix::scaled(2.0, Matrix::identity(16)));
        let s = b.select_identity(doubled);
        b.measure_laplace(doubled, s, 0.4);
        let e = b.infer_least_squares(LsSolver::Iterative);
        b.finish(e)
    };
    // Pre-accounting sees the 2-stable hop: 0.4 at the source costs 0.8
    // at the root.
    assert_eq!(spec.pre_account().unwrap().total, 0.8);

    // ε_tot = 0.5 < 0.8 → rejected up front, zero kernel effects.
    let k = vector_kernel(16, 0.5, 6);
    assert!(matches!(
        PlanExecutor::new(&k).run(&spec, k.root()),
        Err(EktError::BudgetExceeded { .. })
    ));
    assert_eq!(k.measurement_count(), 0);
    assert_eq!(k.budget_spent(), 0.0);

    // Unchecked, the same spec dies inside the measure operator with a
    // typed error — the Transform node itself is free but its stability
    // scales the downstream charge.
    let err = PlanExecutor::unchecked(&k)
        .run(&spec, k.root())
        .unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));

    // With enough budget it runs, charging exactly the pre-account.
    let k = vector_kernel(16, 1.0, 7);
    let report = PlanExecutor::new(&k).run(&spec, k.root()).unwrap();
    assert_eq!(report.eps_charged, 0.8);
    assert_eq!(k.budget_spent(), 0.8);
}

#[test]
fn executor_scales_pre_account_through_the_input_stability_path() {
    // The plan is budgeted relative to its input; when the input itself
    // sits below a 2-stable transformation, the reservation must cover
    // the root-scaled cost.
    let k = vector_kernel(16, 1.0, 8);
    let derived = k
        .transform_linear(k.root(), &Matrix::scaled(2.0, Matrix::identity(16)))
        .unwrap();
    assert_eq!(k.stability_to_root(derived), 2.0);
    let spec = identity_spec(0.3);
    let report = PlanExecutor::new(&k).run(&spec, derived).unwrap();
    assert_eq!(report.eps_pre_accounted, 0.6);
    assert_eq!(report.eps_charged, 0.6);

    // And a spec that fits input-relative but not root-scaled is
    // rejected up front.
    let spec = identity_spec(0.3);
    let err = PlanExecutor::new(&k).run(&spec, derived).unwrap_err();
    assert!(matches!(err, EktError::BudgetExceeded { .. }));
    assert_eq!(k.measurement_count(), 1, "only the first run measured");
}
