//! Counting-allocator proof that `vector_laplace_batch` snapshots data
//! vectors by refcount bump, not deep clone (ISSUE 3 tentpole: zero-copy
//! `Arc` data nodes).
//!
//! The PR 2 batch path called `to_vec()` on every source vector to move
//! the exact-answer matvecs outside the kernel lock — one full data-sized
//! allocation **per request per call**. With `NodeData::Vector` holding an
//! `Arc<Vec<f64>>`, the snapshot is free. The counter tracks allocations
//! of at least one stripe's byte size; the only such allocation a warm
//! batch call still performs is the **single** memoized `l1_sensitivity`
//! column-norm pass over the shared strategy (ISSUE 3 also dedupes that:
//! PR 2 recomputed it once per stripe), so the budget below is exactly
//! one per call — a deep-clone regression adds one per *stripe* and a
//! sensitivity-memo regression one per stripe too; either trips the
//! assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_matrix::{partition_from_labels, Matrix};

/// Cells per stripe; 8 KiB of f64 per stripe, 4 stripes.
const STRIPE: usize = 1 << 13;
const STRIPES: usize = 4;
const STRIPE_BYTES: usize = STRIPE * std::mem::size_of::<f64>();

struct CountingAllocator;

static DATA_SIZED_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed atomic counter —
// every layout/pointer contract required of a `GlobalAlloc` is upheld by
// forwarding the arguments unchanged, and the counter has no effect on
// allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() >= STRIPE_BYTES {
            DATA_SIZED_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` (alloc/realloc above
        // forward to it) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size >= STRIPE_BYTES {
            DATA_SIZED_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr` came from `System` with `layout`; `new_size` is
        // the caller's requested size, unmodified.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn batched_measurement_performs_no_data_sized_allocations() {
    let n = STRIPE * STRIPES;
    let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let k = ProtectedKernel::init_from_vector(x, 10.0, 17);
    let labels: Vec<usize> = (0..n).map(|i| i / STRIPE).collect();
    let p = partition_from_labels(STRIPES, &labels);
    let stripes = k.split_by_partition(k.root(), &p).unwrap();
    // One shared wide strategy with a single row (scratch-free, and its
    // column-norm pass is exactly one stripe-sized allocation): the
    // answers stay tiny while the matvec still reads every cell.
    let strategy = Matrix::total(STRIPE);
    let reqs: Vec<(SourceVar, &Matrix, f64)> =
        stripes.iter().map(|&s| (s, &strategy, 0.1)).collect();

    // Warm-up: plans built, any lazily initialized runtime structures out
    // of the counting window.
    k.vector_laplace_batch(&reqs).unwrap();

    const CALLS: u64 = 3;
    let before = DATA_SIZED_ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        k.vector_laplace_batch(&reqs).unwrap();
    }
    let data_sized = DATA_SIZED_ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        data_sized,
        CALLS, // exactly one memoized sensitivity pass per call
        "vector_laplace_batch must snapshot stripes by Arc (zero copies) and \
         compute the shared strategy's sensitivity once per batch"
    );

    // The zero-copy path still produces real measurements.
    assert_eq!(k.measurements().len(), (1 + CALLS as usize) * STRIPES);
    assert!((k.budget_spent() - 0.4).abs() < 1e-9);
}
