//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p xlint --                  # human-readable diagnostics, exit 1 on any
//! cargo run -p xlint -- --json           # machine-readable report
//! cargo run -p xlint -- --inventory      # also list unsafe sites, lock regions,
//!                                        # WARM roots and cfg-parity pairs
//! cargo run -p xlint -- --features simd  # evaluate #[cfg] gates with features on
//! cargo run -p xlint -- --root PATH      # lint a different tree (default: workspace root)
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — so the tool works from any subdirectory.
fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}

fn main() -> ExitCode {
    let mut json = false;
    let mut inventory = false;
    let mut root: Option<PathBuf> = None;
    let mut features: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--inventory" => inventory = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xlint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--features" => match args.next() {
                Some(list) => features.extend(
                    list.split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(String::from),
                ),
                None => {
                    eprintln!("xlint: --features requires a comma-separated list");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "xlint: offline invariant linter\n\n\
                     USAGE: cargo run -p xlint -- [--json] [--inventory] [--features a,b] \
                     [--root PATH]\n\n\
                     Rules: {}\n\
                     Allowlist: // xlint: allow(<rule>, reason = \"...\")",
                    xlint::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| find_workspace_root(&cwd));

    let analysis = match xlint::Analysis::load(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xlint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let config = xlint::Config::with_features(features);
    let report = analysis.lint(&config);

    if json {
        println!("{}", xlint::to_json(&report, inventory));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        if inventory {
            println!(
                "-- unsafe inventory ({} sites) --",
                report.unsafe_sites.len()
            );
            for s in &report.unsafe_sites {
                match &s.safety {
                    Some(t) => println!("{}:{}: {}", s.file, s.line, t),
                    None => println!("{}:{}: MISSING SAFETY COMMENT", s.file, s.line),
                }
            }
            println!("-- lock regions ({} regions) --", report.lock_regions.len());
            for r in &report.lock_regions {
                let binding = r.binding.as_deref().unwrap_or("<expr>");
                println!(
                    "{}:{}-{}: {} guard `{}` in fn {}{}",
                    r.file,
                    r.start,
                    r.end,
                    r.kind,
                    binding,
                    r.fn_name,
                    if r.events.is_empty() {
                        String::new()
                    } else {
                        format!(" [{}]", r.events.join("; "))
                    }
                );
            }
            println!("-- WARM roots ({} roots) --", report.warm_roots.len());
            for w in &report.warm_roots {
                println!(
                    "{}: {} (closure: {} fn(s), alloc sites: {})",
                    w.file, w.name, w.closure, w.alloc_sites
                );
            }
            println!("-- cfg-parity pairs ({} pairs) --", report.cfg_pairs.len());
            for p in &report.cfg_pairs {
                println!("{}: [{}] {}", p.file, p.kind, p.name);
            }
        }
        println!(
            "xlint: {} diagnostic(s), {} unsafe site(s), {} file(s) scanned",
            report.diagnostics.len(),
            report.unsafe_sites.len(),
            report.files_scanned
        );
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
