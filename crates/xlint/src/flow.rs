//! Stage 3 of the analyzer: the workspace call graph and the flow-rule
//! families built on the per-function facts from [`crate::parse`].
//!
//! # Rule families
//!
//! * **`lock-discipline`** — inside a live `KernelState` / pool-slots
//!   guard region (the hottest multi-tenant critical sections), forbid:
//!   allocation, `pool::scope` / `pool::typed_scope` dispatch, solver
//!   entry points, reentrant calls into same-lock methods (`parking_lot`
//!   mutexes are not reentrant — that is a deadlock, not a slowdown),
//!   and panics without a justification annotation.
//! * **`warm-path-alloc`** — functions tagged `// WARM:` must have an
//!   allocation-free *transitive* call closure. An
//!   `xlint: allow(warm-path-alloc, ...)` on a call line severs that
//!   edge (declaring the callee a cold/setup boundary); on an
//!   allocation line it justifies the site itself.
//! * **`determinism-transitive`** — `HashMap`/`HashSet`/`thread::spawn`
//!   /`thread::scope`/`available_parallelism` are forbidden anywhere in
//!   the call closure of the deterministic entry points
//!   (`matvec_into`/`rmatvec_into`/`rmatvec_add` and the public
//!   kernels), not just in the three hot files the line rule watches.
//!   The pool executor file is the sanctioned thread owner and is
//!   excluded from traversal.
//! * **`cfg-parity`** — every `feature = "simd"`-gated item needs a
//!   same-kind, same-name (and for fns same-signature) `not(simd)`
//!   counterpart; `scalar`/`simd` twin modules must export matching
//!   public fn surfaces; and every failpoint name used at a
//!   `triggered`/`panic_if` call site must be declared in
//!   `failpoints.rs`'s `SITES` list and vice versa.
//!
//! # Soundness of the approximations
//!
//! Call edges are resolved by *name* (plus module-path hints when the
//! call is path-qualified), because a lexer-level parser has no type
//! information. That over-approximates reachability: extra edges can
//! only produce extra diagnostics, never hide one, and the allow
//! mechanism documents each deliberate boundary. Reachability is
//! depth-limited ([`DEPTH_LIMIT`]) — the workspace's real call chains
//! are < 10 deep; a cycle cannot wedge the traversal.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parse::{CallSite, CfgAtom, FnFact};
use crate::{AnalyzedFile, Config, Diagnostic, Report};

/// Maximum call-graph depth explored from a root. Deep enough for every
/// real chain in the workspace; documented as an approximation in the
/// crate docs.
pub const DEPTH_LIMIT: usize = 16;

/// Path heads that name std/alloc types or modules: calls qualified by
/// these never resolve into workspace functions (prevents `Vec::new`
/// from aliasing every workspace `new`).
const STD_PATH_HEADS: &[&str] = &[
    "Vec", "String", "Box", "Arc", "Rc", "Cell", "RefCell", "BTreeMap", "BTreeSet", "VecDeque",
    "HashMap", "HashSet", "Option", "Result", "Some", "Ok", "Err", "Instant", "Duration", "Path",
    "PathBuf", "OnceLock", "Once", "Mutex", "RwLock", "Ordering", "std", "core", "alloc", "mem",
    "ptr", "slice", "iter", "cmp", "fmt", "f32", "f64", "u8", "u32", "u64", "usize", "i32", "i64",
    "str", "char", "thread", "env", "process", "panic", "array",
];

/// Method names so ubiquitous on std/iterator types that a `recv.name(...)`
/// call almost certainly targets std, not a workspace fn that happens to
/// share the name (`x.map(..)` is an iterator adapter, not `Matrix::map`).
/// Only applied to *method* calls — path-qualified and free calls still
/// resolve these names normally.
const METHOD_STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "fold",
    "sum",
    "product",
    "collect",
    "extend",
    "resize",
    "clear",
    "take",
    "zip",
    "rev",
    "enumerate",
    "min",
    "max",
    "abs",
    "sqrt",
    "split",
    "join",
    "sort",
    "swap",
    "fill",
    "first",
    "last",
    "chunks",
    "windows",
    "copied",
    "cloned",
    "unwrap",
    "expect",
    "to_vec",
    "to_string",
    "as_slice",
    "eq",
    "cmp",
    "lock",
];

fn active(atoms: &[CfgAtom], config: &Config) -> bool {
    atoms.iter().all(|a| a.active(&config.features))
}

fn is_lib_src(rel: &str) -> bool {
    rel.starts_with("crates/") && rel.contains("/src/")
}

fn file_stem(rel: &str) -> &str {
    rel.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("")
}

fn push_flow(
    report: &mut Report,
    af: &AnalyzedFile,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if !af.ctx.allowed(line, rule) {
        report.diagnostics.push(Diagnostic {
            file: af.ctx.rel.clone(),
            line: line + 1,
            rule,
            message,
        });
    }
}

// ---------------------------------------------------------------------------
// Call-graph index.
// ---------------------------------------------------------------------------

/// One graph node: (file index, fn index within that file's facts).
type NodeId = usize;

struct Index {
    /// cfg-active, non-test functions in library source files.
    nodes: Vec<(usize, usize)>,
    by_name: BTreeMap<String, Vec<NodeId>>,
    /// Per node: `[file stem] ++ in-file module path`, for resolving
    /// path-qualified calls.
    seqs: Vec<Vec<String>>,
    /// Public solver entry points (everything in `crates/solvers/src`
    /// except `util.rs`).
    solver_fns: BTreeSet<String>,
}

impl Index {
    fn build(files: &[AnalyzedFile], config: &Config) -> Index {
        let mut idx = Index {
            nodes: Vec::new(),
            by_name: BTreeMap::new(),
            seqs: Vec::new(),
            solver_fns: BTreeSet::new(),
        };
        for (fi, af) in files.iter().enumerate() {
            let rel = af.ctx.rel.as_str();
            if !is_lib_src(rel) {
                continue;
            }
            let solver_file = rel.starts_with("crates/solvers/src/") && !rel.ends_with("/util.rs");
            for (gi, fact) in af.facts.fns.iter().enumerate() {
                if fact.in_test || !active(&fact.cfg, config) {
                    continue;
                }
                let node = idx.nodes.len();
                idx.nodes.push((fi, gi));
                let mut seq = vec![file_stem(rel).to_string()];
                seq.extend(fact.module.iter().cloned());
                idx.seqs.push(seq);
                idx.by_name.entry(fact.name.clone()).or_default().push(node);
                if solver_file && fact.is_pub {
                    idx.solver_fns.insert(fact.name.clone());
                }
            }
        }
        idx
    }

    fn fact<'a>(&self, files: &'a [AnalyzedFile], node: NodeId) -> &'a FnFact {
        let (fi, gi) = self.nodes[node];
        &files[fi].facts.fns[gi]
    }

    fn file_of(&self, node: NodeId) -> usize {
        self.nodes[node].0
    }

    /// Resolves a call site to candidate workspace functions.
    ///
    /// Precision tiers, in order: path-qualified calls match their
    /// qualifier against module paths (std-typed qualifiers resolve to
    /// nothing); a qualifier that matches no module (a workspace *type*
    /// name — we have no type info) takes the candidate only if the name
    /// is workspace-unique, else stays in the caller's file (a type's
    /// inherent impl overwhelmingly lives beside its callers here);
    /// `self.`-method calls are same-file by the same argument;
    /// other method calls skip [`METHOD_STOPLIST`] names and otherwise
    /// fan out by name (over-approximate on purpose: an extra edge can
    /// only add a diagnostic, never hide one).
    fn resolve(&self, call: &CallSite, caller_file: usize) -> Vec<NodeId> {
        let name = call.name();
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        let same_file = |cands: &[NodeId]| -> Vec<NodeId> {
            cands
                .iter()
                .copied()
                .filter(|&n| self.nodes[n].0 == caller_file)
                .collect()
        };
        if call.path.len() >= 2 {
            let mut prefix: Vec<&str> = call.path[..call.path.len() - 1]
                .iter()
                .map(String::as_str)
                .collect();
            prefix
                .retain(|s| !matches!(*s, "crate" | "self" | "super") && !s.starts_with("ektelo"));
            if let Some(head) = prefix.first() {
                if STD_PATH_HEADS.contains(head) {
                    return Vec::new();
                }
                let matched: Vec<NodeId> = cands
                    .iter()
                    .copied()
                    .filter(|&n| contains_subseq(&self.seqs[n], &prefix))
                    .collect();
                if !matched.is_empty() {
                    return matched;
                }
                // Unknown qualifier: a workspace type name or alias.
                if cands.len() == 1 {
                    return cands.clone();
                }
                return same_file(cands);
            }
        }
        if !call.recv.is_empty() {
            if call.recv == "self" || call.recv.starts_with("self.") {
                return same_file(cands);
            }
            if METHOD_STOPLIST.contains(&name) {
                return Vec::new();
            }
        }
        cands.clone()
    }
}

/// Whether `needle` appears as a contiguous subsequence of `hay`.
fn contains_subseq(hay: &[String], needle: &[&str]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if needle.len() > hay.len() {
        return false;
    }
    hay.windows(needle.len())
        .any(|w| w.iter().zip(needle).all(|(a, b)| a == b))
}

/// Entry point: runs every flow rule over the parsed workspace.
pub(crate) fn run(files: &[AnalyzedFile], config: &Config, report: &mut Report) {
    let idx = Index::build(files, config);
    lock_discipline(files, &idx, config, report);
    warm_path(files, &idx, config, report);
    determinism_transitive(files, &idx, config, report);
    cfg_parity(files, report);
}

// ---------------------------------------------------------------------------
// lock-discipline.
// ---------------------------------------------------------------------------

fn lock_discipline(files: &[AnalyzedFile], idx: &Index, config: &Config, report: &mut Report) {
    for af in files {
        if !is_lib_src(&af.ctx.rel) {
            continue;
        }
        for fact in &af.facts.fns {
            if fact.in_test || !active(&fact.cfg, config) {
                continue;
            }
            for region in &fact.locks {
                let lock = region.kind.label();
                let in_region = |line: usize| line >= region.start && line <= region.end;
                let mut events: Vec<String> = Vec::new();
                for a in &fact.allocs {
                    if !in_region(a.line) || !active(&a.cfg, config) {
                        continue;
                    }
                    let allowed = af.ctx.allowed(a.line, "lock-discipline");
                    events.push(event("alloc", &a.what, a.line, allowed));
                    push_flow(
                        report,
                        af,
                        a.line,
                        "lock-discipline",
                        format!(
                            "allocation `{}` while the {lock} lock is held: the critical \
                             section must stay allocation-free (shrink the guard region or \
                             hoist the allocation)",
                            a.what
                        ),
                    );
                }
                for c in &fact.calls {
                    if !in_region(c.line) || !active(&c.cfg, config) {
                        continue;
                    }
                    let name = c.name();
                    let pool_dispatch = matches!(name, "scope" | "typed_scope")
                        && c.path.len() >= 2
                        && c.path[c.path.len() - 2] == "pool";
                    if pool_dispatch {
                        let allowed = af.ctx.allowed(c.line, "lock-discipline");
                        events.push(event("pool-dispatch", name, c.line, allowed));
                        push_flow(
                            report,
                            af,
                            c.line,
                            "lock-discipline",
                            format!(
                                "pool dispatch `pool::{name}` while the {lock} lock is held: \
                                 worker jobs must never wait on a held kernel lock"
                            ),
                        );
                    }
                    if c.recv.is_empty() && !c.is_macro && idx.solver_fns.contains(name) {
                        let allowed = af.ctx.allowed(c.line, "lock-discipline");
                        events.push(event("solver-call", name, c.line, allowed));
                        push_flow(
                            report,
                            af,
                            c.line,
                            "lock-discipline",
                            format!(
                                "solver entry `{name}` while the {lock} lock is held: \
                                 solvers are long-running and allocate — run them outside \
                                 the critical section"
                            ),
                        );
                    }
                    // Reentrancy: a self-method that itself takes the
                    // same lock. parking_lot mutexes are not reentrant,
                    // so this is a guaranteed deadlock, found statically.
                    if (c.recv == "self" || c.recv.starts_with("self."))
                        && name != "lock"
                        && af.facts.fns.iter().any(|g| {
                            g.name == name
                                && !g.in_test
                                && g.locks.iter().any(|r2| r2.kind == region.kind)
                        })
                    {
                        let allowed = af.ctx.allowed(c.line, "lock-discipline");
                        events.push(event("reentrant", name, c.line, allowed));
                        push_flow(
                            report,
                            af,
                            c.line,
                            "lock-discipline",
                            format!(
                                "`self.{name}(...)` while the {lock} lock is held, and \
                                 `{name}` takes the same lock: parking_lot mutexes are not \
                                 reentrant — this deadlocks"
                            ),
                        );
                    }
                }
                for p in &fact.panics {
                    if !in_region(p.line) {
                        continue;
                    }
                    // Panic sites already justified under panic-policy
                    // are annotated; don't demand a second annotation.
                    if af.ctx.allowed(p.line, "panic-policy") {
                        events.push(event("panic", &p.what, p.line, true));
                        continue;
                    }
                    let allowed = af.ctx.allowed(p.line, "lock-discipline");
                    events.push(event("panic", &p.what, p.line, allowed));
                    push_flow(
                        report,
                        af,
                        p.line,
                        "lock-discipline",
                        format!(
                            "`{}` while the {lock} lock is held: a panic here unwinds \
                             through the critical section — return a typed error or \
                             justify the invariant",
                            p.what
                        ),
                    );
                }
                report.lock_regions.push(crate::LockRegionInfo {
                    file: af.ctx.rel.clone(),
                    fn_name: fact.name.clone(),
                    kind: lock,
                    start: region.start + 1,
                    end: region.end + 1,
                    binding: region.binding.clone(),
                    events,
                });
            }
        }
    }
}

fn event(kind: &str, what: &str, line: usize, allowed: bool) -> String {
    format!(
        "{kind} `{what}` @{}{}",
        line + 1,
        if allowed { " (allowed)" } else { "" }
    )
}

// ---------------------------------------------------------------------------
// Shared reachability.
// ---------------------------------------------------------------------------

/// BFS over resolved call edges from `root`, honoring per-edge allow
/// severing for `rule` and skipping files matched by `skip_file`.
/// Returns visited nodes with their parent chain.
fn reach(
    files: &[AnalyzedFile],
    idx: &Index,
    root: NodeId,
    rule: &'static str,
    config: &Config,
    skip_file: impl Fn(&str) -> bool,
) -> BTreeMap<NodeId, Option<NodeId>> {
    let mut parent: BTreeMap<NodeId, Option<NodeId>> = BTreeMap::new();
    parent.insert(root, None);
    let mut queue = VecDeque::new();
    queue.push_back((root, 0usize));
    while let Some((node, depth)) = queue.pop_front() {
        if depth >= DEPTH_LIMIT {
            continue;
        }
        let (fi, _) = idx.nodes[node];
        let af = &files[fi];
        for call in &idx.fact(files, node).calls {
            if !active(&call.cfg, config) {
                continue;
            }
            // An allow on the call line severs this edge: the callee is
            // a declared boundary (cold path, sanctioned subsystem).
            if af.ctx.allowed(call.line, rule) {
                continue;
            }
            for target in idx.resolve(call, fi) {
                if target == node {
                    continue;
                }
                let trel = &files[idx.file_of(target)].ctx.rel;
                if skip_file(trel) {
                    continue;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(target) {
                    e.insert(Some(node));
                    queue.push_back((target, depth + 1));
                }
            }
        }
    }
    parent
}

/// Renders `root -> ... -> node` as a readable chain of fn names.
fn chain(
    files: &[AnalyzedFile],
    idx: &Index,
    parent: &BTreeMap<NodeId, Option<NodeId>>,
    node: NodeId,
) -> String {
    let mut names = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        names.push(idx.fact(files, n).name.clone());
        cur = parent.get(&n).copied().flatten();
    }
    names.reverse();
    names.join(" -> ")
}

// ---------------------------------------------------------------------------
// warm-path-alloc.
// ---------------------------------------------------------------------------

fn warm_path(files: &[AnalyzedFile], idx: &Index, config: &Config, report: &mut Report) {
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for root in 0..idx.nodes.len() {
        let root_fact = idx.fact(files, root);
        if !root_fact.warm {
            continue;
        }
        let root_name = root_fact.name.clone();
        let visited = reach(files, idx, root, "warm-path-alloc", config, |_| false);
        let mut alloc_sites = 0usize;
        for &node in visited.keys() {
            let (fi, _) = idx.nodes[node];
            let af = &files[fi];
            for a in &idx.fact(files, node).allocs {
                if !active(&a.cfg, config) {
                    continue;
                }
                alloc_sites += 1;
                if !reported.insert((fi, a.line)) {
                    continue;
                }
                let via = chain(files, idx, &visited, node);
                push_flow(
                    report,
                    af,
                    a.line,
                    "warm-path-alloc",
                    format!(
                        "allocation `{}` on the warm path (reachable from `// WARM:` root \
                         `{root_name}` via {via}): warm evaluation must be allocation-free \
                         — hoist into the workspace arena or sever the edge with a \
                         justified allow",
                        a.what
                    ),
                );
            }
        }
        report.warm_roots.push(crate::WarmRootInfo {
            file: files[idx.file_of(root)].ctx.rel.clone(),
            name: root_name,
            closure: visited.len(),
            alloc_sites,
        });
    }
}

// ---------------------------------------------------------------------------
// determinism-transitive.
// ---------------------------------------------------------------------------

fn determinism_transitive(
    files: &[AnalyzedFile],
    idx: &Index,
    config: &Config,
    report: &mut Report,
) {
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();
    for root in 0..idx.nodes.len() {
        let fact = idx.fact(files, root);
        let rel = &files[idx.file_of(root)].ctx.rel;
        let matvec_entry = rel.ends_with("matrix/src/matvec.rs")
            && matches!(
                fact.name.as_str(),
                "matvec_into" | "rmatvec_into" | "rmatvec_add"
            );
        let kernel_entry = rel.ends_with("matrix/src/kernels.rs") && fact.is_pub;
        if !matvec_entry && !kernel_entry {
            continue;
        }
        let root_name = fact.name.clone();
        // The pool executor is the sanctioned thread owner: edges into
        // it are out of scope (its own invariants are gated by the
        // pool-size bit-identity suites and the line-level rules).
        let visited = reach(files, idx, root, "determinism-transitive", config, |rel| {
            rel.contains("matrix/src/pool/")
        });
        for &node in visited.keys() {
            let (fi, _) = idx.nodes[node];
            let af = &files[fi];
            if af.ctx.rel.contains("matrix/src/pool/") {
                continue;
            }
            for b in &idx.fact(files, node).bans {
                if !active(&b.cfg, config) {
                    continue;
                }
                if !reported.insert((fi, b.line)) {
                    continue;
                }
                let via = chain(files, idx, &visited, node);
                push_flow(
                    report,
                    af,
                    b.line,
                    "determinism-transitive",
                    format!(
                        "`{}` reachable from deterministic entry point `{root_name}` (via \
                         {via}): evaluation reachable from the kernels/matvec surface must \
                         not depend on hash order or ad-hoc threads",
                        b.what
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// cfg-parity.
// ---------------------------------------------------------------------------

fn simd_atom(atoms: &[CfgAtom]) -> Option<bool> {
    atoms.iter().find(|a| a.feature == "simd").map(|a| a.on)
}

fn cfg_parity(files: &[AnalyzedFile], report: &mut Report) {
    for af in files {
        if !is_lib_src(&af.ctx.rel) {
            continue;
        }
        twin_module_parity(af, report);
        gated_item_parity(af, report);
    }
    failpoint_parity(files, report);
}

/// `scalar` / `simd` twin modules must export matching public fn
/// surfaces with identical signatures.
fn twin_module_parity(af: &AnalyzedFile, report: &mut Report) {
    let has = |m: &str| {
        af.facts
            .fns
            .iter()
            .any(|f| f.module.last().map(String::as_str) == Some(m))
    };
    if !has("scalar") || !has("simd") {
        return;
    }
    let surface = |m: &str| -> BTreeMap<&str, &FnFact> {
        af.facts
            .fns
            .iter()
            .filter(|f| f.is_pub && !f.in_test && f.module.last().map(String::as_str) == Some(m))
            .map(|f| (f.name.as_str(), f))
            .collect()
    };
    let scalar = surface("scalar");
    let simd = surface("simd");
    for (name, f) in &simd {
        match scalar.get(name) {
            None => push_flow(
                report,
                af,
                f.line,
                "cfg-parity",
                format!(
                    "`simd::{name}` has no `scalar` counterpart: every simd kernel needs a \
                     same-signature scalar twin (the scalar leg is the always-compiled \
                     reference)"
                ),
            ),
            Some(s) if s.sig != f.sig => push_flow(
                report,
                af,
                f.line,
                "cfg-parity",
                format!(
                    "`simd::{name}` and `scalar::{name}` signatures differ (`{}` vs `{}`): \
                     the legs must be drop-in interchangeable",
                    f.sig, s.sig
                ),
            ),
            Some(_) => report.cfg_pairs.push(crate::CfgPairInfo {
                file: af.ctx.rel.clone(),
                name: format!("scalar/simd fn {name}"),
                kind: "kernel-twin",
            }),
        }
    }
    for (name, f) in &scalar {
        if !simd.contains_key(name) {
            push_flow(
                report,
                af,
                f.line,
                "cfg-parity",
                format!(
                    "`scalar::{name}` has no `simd` counterpart: the simd module must \
                     cover the full scalar surface (or the kernel belongs outside the \
                     twin modules)"
                ),
            );
        }
    }
}

/// Items gated on `feature = "simd"` need a `not(simd)` counterpart of
/// the same kind and name (same-signature for fns; same re-export name
/// set for `use` groups).
fn gated_item_parity(af: &AnalyzedFile, report: &mut Report) {
    // fns, keyed by (module, name).
    let mut fns: BTreeMap<(String, &str), Vec<(&FnFact, bool)>> = BTreeMap::new();
    for f in &af.facts.fns {
        if f.in_test {
            continue;
        }
        if let Some(on) = simd_atom(&f.cfg) {
            fns.entry((f.module.join("::"), f.name.as_str()))
                .or_default()
                .push((f, on));
        }
    }
    for ((_, name), legs) in &fns {
        let on = legs.iter().find(|(_, o)| *o);
        let off = legs.iter().find(|(_, o)| !*o);
        match (on, off) {
            (Some((f, _)), None) => push_flow(
                report,
                af,
                f.line,
                "cfg-parity",
                format!(
                    "fn `{name}` is gated on `feature = \"simd\"` with no \
                     `#[cfg(not(feature = \"simd\"))]` counterpart: default builds lose \
                     the symbol"
                ),
            ),
            (None, Some((f, _))) => push_flow(
                report,
                af,
                f.line,
                "cfg-parity",
                format!(
                    "fn `{name}` is gated on `not(feature = \"simd\")` with no simd \
                     counterpart: simd builds lose the symbol"
                ),
            ),
            (Some((a, _)), Some((b, _))) => {
                if a.sig != b.sig {
                    push_flow(
                        report,
                        af,
                        a.line,
                        "cfg-parity",
                        format!(
                            "cfg-paired fn `{name}` differs between legs (`{}` vs `{}`)",
                            a.sig, b.sig
                        ),
                    );
                } else {
                    report.cfg_pairs.push(crate::CfgPairInfo {
                        file: af.ctx.rel.clone(),
                        name: format!("fn {name}"),
                        kind: "cfg-pair",
                    });
                }
            }
            (None, None) => {}
        }
    }
    // consts, keyed by (module, enclosing fn, name); value = the first
    // line seen per (simd-on, simd-off) leg.
    type ConstLegs<'a> = BTreeMap<(String, String, &'a str), (Option<usize>, Option<usize>)>;
    let mut consts: ConstLegs = BTreeMap::new();
    for c in &af.facts.consts {
        if let Some(on) = simd_atom(&c.cfg) {
            let key = (
                c.module.join("::"),
                c.in_fn.clone().unwrap_or_default(),
                c.name.as_str(),
            );
            let slot = consts.entry(key).or_default();
            if on {
                slot.0.get_or_insert(c.line);
            } else {
                slot.1.get_or_insert(c.line);
            }
        }
    }
    for ((_, _, name), (on, off)) in &consts {
        match (on, off) {
            (Some(line), None) => push_flow(
                report,
                af,
                *line,
                "cfg-parity",
                format!(
                    "const `{name}` is gated on `feature = \"simd\"` with no `not(simd)` \
                     counterpart"
                ),
            ),
            (None, Some(line)) => push_flow(
                report,
                af,
                *line,
                "cfg-parity",
                format!(
                    "const `{name}` is gated on `not(feature = \"simd\")` with no simd \
                     counterpart"
                ),
            ),
            (Some(_), Some(_)) => report.cfg_pairs.push(crate::CfgPairInfo {
                file: af.ctx.rel.clone(),
                name: format!("const {name}"),
                kind: "cfg-pair",
            }),
            (None, None) => {}
        }
    }
    // use re-exports, compared as name sets per module.
    let mut on_names: BTreeMap<String, Vec<(&str, usize)>> = BTreeMap::new();
    let mut off_names: BTreeMap<String, Vec<(&str, usize)>> = BTreeMap::new();
    for u in &af.facts.uses {
        if let Some(on) = simd_atom(&u.cfg) {
            let bucket = if on { &mut on_names } else { &mut off_names };
            let entry = bucket.entry(u.module.join("::")).or_default();
            for n in &u.names {
                if n != "*" {
                    entry.push((n.as_str(), u.line));
                }
            }
        }
    }
    let modules: BTreeSet<&String> = on_names.keys().chain(off_names.keys()).collect();
    for m in modules {
        let empty = Vec::new();
        let on = on_names.get(m.as_str()).unwrap_or(&empty);
        let off = off_names.get(m.as_str()).unwrap_or(&empty);
        let on_set: BTreeMap<&str, usize> = on.iter().copied().collect();
        let off_set: BTreeMap<&str, usize> = off.iter().copied().collect();
        for (n, line) in &on_set {
            if !off_set.contains_key(n) {
                push_flow(
                    report,
                    af,
                    *line,
                    "cfg-parity",
                    format!(
                        "re-export `{n}` is gated on `feature = \"simd\"` with no \
                         `not(simd)` counterpart: the default build loses the name"
                    ),
                );
            } else {
                report.cfg_pairs.push(crate::CfgPairInfo {
                    file: af.ctx.rel.clone(),
                    name: format!("use {n}"),
                    kind: "cfg-pair",
                });
            }
        }
        for (n, line) in &off_set {
            if !on_set.contains_key(n) {
                push_flow(
                    report,
                    af,
                    *line,
                    "cfg-parity",
                    format!(
                        "re-export `{n}` is gated on `not(feature = \"simd\")` with no \
                         simd counterpart: simd builds lose the name"
                    ),
                );
            }
        }
    }
}

/// Failpoint site names: every literal used at a `triggered`/`panic_if`
/// call site must be declared in `failpoints.rs`'s `SITES` list, and
/// every declared name must be used somewhere in the audited site
/// files (an orphaned declaration is a site that silently stopped
/// existing — chaos drills aimed at it arm nothing).
fn failpoint_parity(files: &[AnalyzedFile], report: &mut Report) {
    let Some(fp_idx) = files
        .iter()
        .position(|af| af.ctx.rel.ends_with("src/failpoints.rs"))
    else {
        return;
    };
    // Declared: string literals between `pub const SITES` and the
    // closing `]`.
    let mut declared: Vec<(String, usize)> = Vec::new();
    {
        let lines = &files[fp_idx].ctx.lines;
        let mut in_sites = false;
        for (i, line) in lines.iter().enumerate() {
            if !in_sites {
                let Some(at) = line.code.find("const SITES") else {
                    continue;
                };
                in_sites = true;
                for s in &line.strings {
                    declared.push((s.clone(), i));
                }
                // `];` after the declaration closes a single-line list;
                // the `]` inside the `&[&str]` type must not.
                if line.code[at..].contains("];") {
                    break;
                }
                continue;
            }
            for s in &line.strings {
                declared.push((s.clone(), i));
            }
            if line.code.trim_start().starts_with(']') || line.code.contains("];") {
                break;
            }
        }
    }
    if declared.is_empty() {
        return;
    }
    let declared_names: BTreeSet<&str> = declared.iter().map(|(n, _)| n.as_str()).collect();
    // Used: literals at triggered/panic_if call sites in the other
    // audited files (direction 1, precise), plus any literal match
    // anywhere in those files (direction 2 — covers names selected
    // into a variable before the call, as `state::charge`/`redeem`
    // are).
    let mut used_at_sites: Vec<(usize, usize, String)> = Vec::new();
    let mut mentioned: BTreeSet<String> = BTreeSet::new();
    for (fi, af) in files.iter().enumerate() {
        if fi == fp_idx || !is_lib_src(&af.ctx.rel) {
            continue;
        }
        for (i, line) in af.ctx.lines.iter().enumerate() {
            if af.ctx.in_test_mod[i] {
                continue;
            }
            for s in &line.strings {
                if declared_names.contains(s.as_str()) {
                    mentioned.insert(s.clone());
                }
            }
            let is_site_line = ["triggered", "panic_if"].iter().any(|t| {
                crate::find_token(&line.code, t, 0)
                    .is_some_and(|at| line.code[at + t.len()..].trim_start().starts_with('('))
            });
            if is_site_line {
                if let Some(name) = line.strings.first() {
                    used_at_sites.push((fi, i, name.clone()));
                }
            }
        }
    }
    for (fi, line, name) in &used_at_sites {
        if !declared_names.contains(name.as_str()) {
            push_flow(
                report,
                &files[*fi],
                *line,
                "cfg-parity",
                format!(
                    "failpoint site `{name}` is not declared in failpoints.rs's `SITES` \
                     list: the fault surface is an audited enumeration — declare the site \
                     or fix the name"
                ),
            );
        }
    }
    for (name, line) in &declared {
        if mentioned.contains(name) {
            report.cfg_pairs.push(crate::CfgPairInfo {
                file: files[fp_idx].ctx.rel.clone(),
                name: format!("failpoint {name}"),
                kind: "failpoint-site",
            });
        } else {
            push_flow(
                report,
                &files[fp_idx],
                *line,
                "cfg-parity",
                format!(
                    "failpoint site `{name}` is declared in `SITES` but never used at any \
                     audited call site: an orphaned declaration means chaos schedules \
                     aimed at it silently arm nothing"
                ),
            );
        }
    }
}
