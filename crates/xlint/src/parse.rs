//! Stage 2 of the analyzer: a recursive-descent item/function parser
//! over the stripped token stream from [`crate::strip_lines`].
//!
//! No `syn`, no proc-macro machinery — the workspace builds offline, so
//! this is a small hand-written tokenizer plus an item walker that
//! produces *per-function facts*: calls made (with receiver chains),
//! allocation sites, panic sites, `parking_lot`-style guard bindings
//! with their live regions, `#[cfg(feature = ...)]` gates (on items and
//! on body statements/blocks), and `// WARM:` tags. The flow rules in
//! [`crate::flow`] consume these facts; nothing here fires diagnostics.
//!
//! # Known approximations (deliberate, documented)
//!
//! * **No macro expansion.** Macro invocations are recorded as calls
//!   (`is_macro`), and their argument tokens are walked like ordinary
//!   code, but code *generated* by a macro is invisible.
//! * **Guard regions are scope-based, not borrow-based.** A guard bound
//!   by the innermost open `let` lives until that binding's block ends
//!   (or an explicit `drop(guard)`); a guard assigned *without* `let`
//!   (`held = self.state.lock();` inside a nested block) is treated as
//!   escaping — its region conservatively extends to the end of the
//!   function. `let outer = { let g = lock(); g };` re-escapes a guard
//!   through a block tail expression and is *not* tracked (a documented
//!   false negative; the workspace convention is to never do this).
//! * **Name-based call resolution.** The call graph edges are resolved
//!   by function name (plus path/module hints), not types — see
//!   [`crate::flow`] for how the rules keep that over-approximation
//!   sound.

use crate::Line;

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

/// One token of stripped code. Strings carry their *real* content
/// (recovered from [`Line::strings`]); numeric literals are folded into
/// `Ident` tokens carrying their text (the parser never interprets
/// them, but signature capture wants the original spelling).
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Punct(char),
    Str(String),
}

/// A token plus the 0-based line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
}

/// Tokenizes stripped lines. Char literals and lifetimes disappear
/// (neither can affect any fact we extract); string literals become
/// [`Tok::Str`] with their recorded content.
pub fn tokenize(lines: &[Line]) -> Vec<Token> {
    let mut out = Vec::new();
    // Inside a multi-line string literal whose closing quote is on a
    // later line (content already recorded on the opening line).
    let mut in_str = false;
    for (ln, line) in lines.iter().enumerate() {
        let chars: Vec<char> = line.code.chars().collect();
        let mut si = 0usize;
        let mut i = 0usize;
        if in_str {
            while i < chars.len() && chars[i] != '"' {
                i += 1;
            }
            if i < chars.len() {
                i += 1;
                in_str = false;
            } else {
                continue;
            }
        }
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c == '"' {
                let content = line.strings.get(si).cloned().unwrap_or_default();
                si += 1;
                out.push(Token {
                    kind: Tok::Str(content),
                    line: ln,
                });
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                if i < chars.len() {
                    i += 1;
                } else {
                    in_str = true;
                }
                continue;
            }
            if c == '\'' {
                // Blanked char literal (`''` or `' '`) vs lifetime tick.
                if chars.get(i + 1) == Some(&'\'') {
                    i += 2;
                } else if chars.get(i + 1) == Some(&' ') && chars.get(i + 2) == Some(&'\'') {
                    i += 3;
                } else {
                    i += 1; // lifetime: drop the tick, the ident follows
                }
                continue;
            }
            if c == '_' || c.is_ascii_alphabetic() || c.is_ascii_digit() {
                let s = i;
                i += 1;
                while i < chars.len()
                    && (is_ident_char(chars[i])
                        || (chars[i] == '.'
                            && c.is_ascii_digit()
                            && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 1;
                }
                out.push(Token {
                    kind: Tok::Ident(chars[s..i].iter().collect()),
                    line: ln,
                });
                continue;
            }
            out.push(Token {
                kind: Tok::Punct(c),
                line: ln,
            });
            i += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Facts.
// ---------------------------------------------------------------------------

/// One `cfg(feature = "...")` atom: `on == false` for `not(...)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgAtom {
    pub feature: String,
    pub on: bool,
}

impl CfgAtom {
    /// Whether this atom is satisfied under the given enabled-feature
    /// set.
    pub fn active(&self, features: &std::collections::BTreeSet<String>) -> bool {
        features.contains(&self.feature) == self.on
    }
}

/// A call made inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments; the last one is the callee name (`["pool",
    /// "scope"]`, or just `["carve"]` for a method call).
    pub path: Vec<String>,
    /// Receiver chain for method calls (`"self.state"`, `"ws"`); empty
    /// for path calls; `"()"` when the receiver is a non-trivial
    /// expression.
    pub recv: String,
    /// 0-based line.
    pub line: usize,
    /// Body-level cfg gates active at the site (item gates live on the
    /// enclosing [`FnFact`]).
    pub cfg: Vec<CfgAtom>,
    pub is_macro: bool,
}

impl CallSite {
    pub fn name(&self) -> &str {
        self.path.last().map(String::as_str).unwrap_or("")
    }
}

/// An allocation site (token-classified; see `classify_alloc`).
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Human label, e.g. `".push()"`, `"Box::new"`, `"format!"`.
    pub what: String,
    pub line: usize,
    pub cfg: Vec<CfgAtom>,
}

/// A possible-panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub what: String,
    pub line: usize,
}

/// Which protected lock a guard region belongs to, keyed off the
/// receiver the `.lock()` was called on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `...state.lock()` — the `KernelState` budget ledger.
    State,
    /// `...slots.lock()` — the kernel workspace-pool slots.
    PoolSlots,
}

impl LockKind {
    pub fn label(self) -> &'static str {
        match self {
            LockKind::State => "KernelState",
            LockKind::PoolSlots => "pool-slots",
        }
    }
}

/// A live guard region: from the `.lock()` call to the guard's drop.
#[derive(Debug, Clone)]
pub struct LockRegion {
    pub kind: LockKind,
    /// The `let` binding holding the guard, when recognizable.
    pub binding: Option<String>,
    /// 0-based first line (the `.lock()` call).
    pub start: usize,
    /// 0-based last line (inclusive).
    pub end: usize,
    /// Guard assigned without `let` — it escapes its lexical block, so
    /// the region conservatively runs to the end of the function.
    pub moved: bool,
}

/// A determinism-hostile token found in a body (`HashMap`, `HashSet`,
/// `thread::spawn`, `thread::scope`, `available_parallelism`).
#[derive(Debug, Clone)]
pub struct BanSite {
    pub what: String,
    pub line: usize,
    pub cfg: Vec<CfgAtom>,
}

/// Everything extracted from one `fn` item.
#[derive(Debug, Clone)]
pub struct FnFact {
    pub name: String,
    /// In-file module path (`["simd"]` for `mod simd { fn ... }`).
    pub module: Vec<String>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based line of the closing body brace (== `line` for bodyless
    /// trait-method declarations).
    pub end_line: usize,
    pub is_pub: bool,
    /// Under `#[cfg(test)]` (module or attribute) or `#[test]`.
    pub in_test: bool,
    /// Item-level cfg atoms (own attributes + enclosing modules).
    pub cfg: Vec<CfgAtom>,
    /// Tagged `// WARM:` in the doc block above.
    pub warm: bool,
    /// Normalized signature text (token-joined, `fn` through body `{`).
    pub sig: String,
    pub calls: Vec<CallSite>,
    pub allocs: Vec<AllocSite>,
    pub panics: Vec<PanicSite>,
    pub locks: Vec<LockRegion>,
    pub bans: Vec<BanSite>,
}

/// A `use` item (for cfg-parity over `pub use` re-export pairs).
#[derive(Debug, Clone)]
pub struct UseItem {
    /// Path segments before the final name / group.
    pub leading: Vec<String>,
    /// Imported visible names (`"*"` for globs).
    pub names: Vec<String>,
    pub cfg: Vec<CfgAtom>,
    pub line: usize,
    pub is_pub: bool,
    pub module: Vec<String>,
}

/// A `const` / `static` item (module-level or function-local; the
/// latter is how `plan.rs` pins cfg-paired tuning constants).
#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    pub cfg: Vec<CfgAtom>,
    pub line: usize,
    pub module: Vec<String>,
    /// Name of the enclosing function for function-local consts.
    pub in_fn: Option<String>,
}

/// Per-file parse result.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    pub fns: Vec<FnFact>,
    pub uses: Vec<UseItem>,
    pub consts: Vec<ConstItem>,
}

/// Parses one stripped file into facts. Never fails: unparseable
/// stretches are skipped with token-level recovery (a linter must not
/// die on code rustc accepts).
pub fn parse_file(lines: &[Line]) -> FileFacts {
    let toks = tokenize(lines);
    let mut p = Parser {
        toks: &toks,
        lines,
        i: 0,
        out: FileFacts::default(),
        pending_body_consts: Vec::new(),
    };
    let mut module = Vec::new();
    p.parse_items(&mut module, &[], false, false);
    p.out
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Accumulated attribute info for the next item.
#[derive(Debug, Clone, Default)]
struct AttrInfo {
    atoms: Vec<CfgAtom>,
    test: bool,
}

struct Parser<'a> {
    toks: &'a [Token],
    lines: &'a [Line],
    i: usize,
    out: FileFacts,
    /// Function-local `const` items found by the body walker; drained
    /// by `parse_fn` once the enclosing function's name is known.
    pending_body_consts: Vec<ConstItem>,
}

impl<'a> Parser<'a> {
    fn kind(&self, idx: usize) -> Option<&Tok> {
        self.toks.get(idx).map(|t| &t.kind)
    }

    fn line(&self, idx: usize) -> usize {
        self.toks
            .get(idx.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn is_punct(&self, idx: usize, c: char) -> bool {
        matches!(self.kind(idx), Some(Tok::Punct(p)) if *p == c)
    }

    fn ident_at(&self, idx: usize) -> Option<&str> {
        match self.kind(idx) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// `::` path separator starting at `idx`.
    fn path_sep(&self, idx: usize) -> bool {
        self.is_punct(idx, ':') && self.is_punct(idx + 1, ':')
    }

    /// Skips a balanced `open ... close` group starting at `self.i`
    /// (which must be at `open`). Leaves `self.i` after the close.
    fn skip_balanced(&mut self, open: char, close: char) {
        debug_assert!(self.is_punct(self.i, open));
        let mut depth = 0usize;
        while self.i < self.toks.len() {
            if self.is_punct(self.i, open) {
                depth += 1;
            } else if self.is_punct(self.i, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips a balanced generic-argument group `< ... >` starting at
    /// `self.i` (at `<`). `->` arrows inside do not close angles.
    fn skip_angles(&mut self) {
        let mut depth = 0i64;
        while self.i < self.toks.len() {
            if self.is_punct(self.i, '<') {
                depth += 1;
            } else if self.is_punct(self.i, '>') && !(self.i > 0 && self.is_punct(self.i - 1, '-'))
            {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Skips tokens until a `;` at zero brace/bracket/paren depth
    /// (consuming it) — const/static/type/use tails.
    fn skip_to_semi(&mut self) {
        let mut b = 0i64;
        while self.i < self.toks.len() {
            match self.kind(self.i) {
                Some(Tok::Punct('{')) | Some(Tok::Punct('[')) | Some(Tok::Punct('(')) => b += 1,
                Some(Tok::Punct('}')) | Some(Tok::Punct(']')) | Some(Tok::Punct(')')) => b -= 1,
                Some(Tok::Punct(';')) if b <= 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    /// Parses one `#[...]` / `#![...]` attribute at `self.i` (at `#`)
    /// into `info`. Inner (`#!`) attributes are skipped without effect.
    fn parse_attr(&mut self, info: &mut AttrInfo) {
        self.i += 1; // '#'
        let inner = self.is_punct(self.i, '!');
        if inner {
            self.i += 1;
        }
        if !self.is_punct(self.i, '[') {
            return;
        }
        let start = self.i;
        self.skip_balanced('[', ']');
        if inner {
            return;
        }
        let body = &self.toks[start + 1..self.i.saturating_sub(1)];
        let head = match body.first().map(|t| &t.kind) {
            Some(Tok::Ident(s)) => s.as_str(),
            _ => return,
        };
        match head {
            "test" => info.test = true,
            "cfg" => {
                // Collect `feature = "..."` atoms with `not(...)`
                // awareness; `#[cfg(test)]` marks the item as test code.
                let mut neg_stack: Vec<usize> = Vec::new(); // paren depths of open not(...)
                let mut depth = 0usize;
                let mut k = 0usize;
                while k < body.len() {
                    match &body[k].kind {
                        Tok::Punct('(') => depth += 1,
                        Tok::Punct(')') => {
                            if neg_stack.last() == Some(&depth) {
                                neg_stack.pop();
                            }
                            depth = depth.saturating_sub(1);
                        }
                        Tok::Ident(s) if s == "not" => {
                            if matches!(body.get(k + 1).map(|t| &t.kind), Some(Tok::Punct('('))) {
                                neg_stack.push(depth + 1);
                            }
                        }
                        Tok::Ident(s) if s == "test" => info.test = true,
                        Tok::Ident(s) if s == "feature" => {
                            if matches!(body.get(k + 1).map(|t| &t.kind), Some(Tok::Punct('='))) {
                                if let Some(Tok::Str(f)) = body.get(k + 2).map(|t| &t.kind) {
                                    info.atoms.push(CfgAtom {
                                        feature: f.clone(),
                                        on: neg_stack.len().is_multiple_of(2),
                                    });
                                }
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            _ => {}
        }
    }

    /// Item loop: parses items until the matching `}` (when
    /// `end_at_brace`) or end of input.
    fn parse_items(
        &mut self,
        module: &mut Vec<String>,
        cfg: &[CfgAtom],
        in_test: bool,
        end_at_brace: bool,
    ) {
        let mut pending = AttrInfo::default();
        while self.i < self.toks.len() {
            if self.is_punct(self.i, '}') {
                self.i += 1;
                if end_at_brace {
                    return;
                }
                continue;
            }
            if self.is_punct(self.i, '#') {
                self.parse_attr(&mut pending);
                continue;
            }
            let Some(word) = self.ident_at(self.i).map(str::to_string) else {
                // Unknown leading token: recover. Balanced-skip braces so
                // module nesting stays consistent.
                if self.is_punct(self.i, '{') {
                    self.skip_balanced('{', '}');
                } else {
                    self.i += 1;
                }
                pending = AttrInfo::default();
                continue;
            };
            match word.as_str() {
                "pub" | "unsafe" | "async" | "extern" | "default" => {
                    self.i += 1;
                    if word == "pub" && self.is_punct(self.i, '(') {
                        self.skip_balanced('(', ')');
                    }
                    if word == "extern" {
                        if matches!(self.kind(self.i), Some(Tok::Str(_))) {
                            self.i += 1;
                        }
                        if self.ident_at(self.i) == Some("crate") {
                            self.skip_to_semi();
                            pending = AttrInfo::default();
                        } else if self.is_punct(self.i, '{') {
                            // extern block: no fn bodies inside, skip.
                            self.skip_balanced('{', '}');
                            pending = AttrInfo::default();
                        }
                    }
                    // Modifier: keep `pending`, keep scanning. `is_pub`
                    // is re-derived by lookback in parse_fn/const/use.
                    continue;
                }
                "const" | "static" => {
                    if self.ident_at(self.i + 1) == Some("fn") {
                        self.i += 1; // `const fn`: treat as modifier
                        continue;
                    }
                    self.i += 1;
                    if self.ident_at(self.i) == Some("mut") {
                        self.i += 1;
                    }
                    let line = self.line(self.i);
                    if let Some(name) = self.ident_at(self.i).map(str::to_string) {
                        let mut atoms = cfg.to_vec();
                        atoms.extend(pending.atoms.iter().cloned());
                        self.out.consts.push(ConstItem {
                            name,
                            cfg: atoms,
                            line,
                            module: module.clone(),
                            in_fn: None,
                        });
                    }
                    self.skip_to_semi();
                    pending = AttrInfo::default();
                }
                "mod" => {
                    self.i += 1;
                    let name = self.ident_at(self.i).map(str::to_string);
                    self.i += 1;
                    if self.is_punct(self.i, '{') {
                        self.i += 1;
                        let mut atoms = cfg.to_vec();
                        atoms.extend(pending.atoms.iter().cloned());
                        let test = in_test || pending.test;
                        module.push(name.unwrap_or_default());
                        self.parse_items(module, &atoms, test, true);
                        module.pop();
                    } else if self.is_punct(self.i, ';') {
                        self.i += 1;
                    }
                    pending = AttrInfo::default();
                }
                "impl" | "trait" => {
                    self.i += 1;
                    if word == "trait" {
                        // skip the trait name; generics/supertraits below
                        self.i += 1;
                    }
                    // Skip generics / type path / where clause up to `{`.
                    while self.i < self.toks.len() {
                        if self.is_punct(self.i, '<') {
                            self.skip_angles();
                        } else if self.is_punct(self.i, '{') {
                            break;
                        } else if self.is_punct(self.i, ';') {
                            self.i += 1;
                            break;
                        } else {
                            self.i += 1;
                        }
                    }
                    if self.is_punct(self.i, '{') {
                        self.i += 1;
                        let mut atoms = cfg.to_vec();
                        atoms.extend(pending.atoms.iter().cloned());
                        let test = in_test || pending.test;
                        // Methods share the module namespace.
                        self.parse_items(module, &atoms, test, true);
                    }
                    pending = AttrInfo::default();
                }
                "fn" => {
                    let mut atoms = cfg.to_vec();
                    atoms.extend(pending.atoms.iter().cloned());
                    let test = in_test || pending.test;
                    self.parse_fn(module, atoms, test);
                    pending = AttrInfo::default();
                }
                "use" => {
                    let mut atoms = cfg.to_vec();
                    atoms.extend(pending.atoms.iter().cloned());
                    self.parse_use(module, atoms);
                    pending = AttrInfo::default();
                }
                "struct" | "enum" | "union" | "type" => {
                    // Skip the whole item: `{...}` body or `;` tail.
                    self.i += 1;
                    while self.i < self.toks.len() {
                        if self.is_punct(self.i, '<') {
                            self.skip_angles();
                        } else if self.is_punct(self.i, '{') {
                            self.skip_balanced('{', '}');
                            break;
                        } else if self.is_punct(self.i, ';') {
                            self.i += 1;
                            break;
                        } else {
                            self.i += 1;
                        }
                    }
                    pending = AttrInfo::default();
                }
                "macro_rules" => {
                    self.i += 1; // macro_rules
                    if self.is_punct(self.i, '!') {
                        self.i += 1;
                    }
                    self.i += 1; // name
                    if self.is_punct(self.i, '{') {
                        self.skip_balanced('{', '}');
                    }
                    pending = AttrInfo::default();
                }
                _ => {
                    self.i += 1;
                    pending = AttrInfo::default();
                }
            }
        }
    }

    /// Whether the tokens directly before `at` (same item, skipping
    /// modifier keywords) include `pub`.
    fn pub_lookback(&self, at: usize) -> bool {
        let mut j = at;
        let mut steps = 0;
        while j > 0 && steps < 8 {
            j -= 1;
            steps += 1;
            match &self.toks[j].kind {
                Tok::Ident(s)
                    if matches!(
                        s.as_str(),
                        "unsafe" | "async" | "const" | "extern" | "default"
                    ) => {}
                Tok::Ident(s) if s == "pub" => return true,
                Tok::Punct(')') => {
                    // `pub(crate)` etc: scan back over the group.
                    let mut depth = 0i64;
                    while j > 0 {
                        if self.is_punct(j, ')') {
                            depth += 1;
                        } else if self.is_punct(j, '(') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j -= 1;
                    }
                }
                Tok::Str(_) => {}
                _ => return false,
            }
        }
        false
    }

    /// Parses a `use` item; `self.i` is at the `use` keyword.
    fn parse_use(&mut self, module: &[String], cfg: Vec<CfgAtom>) {
        let is_pub = self.pub_lookback(self.i);
        let line = self.line(self.i);
        self.i += 1;
        let start = self.i;
        self.skip_to_semi();
        let body = &self.toks[start..self.i.saturating_sub(1)];
        let mut names: Vec<String> = Vec::new();
        let mut k = 0usize;
        // Leading path: idents separated by `::` until `{`, `*`, or end.
        let mut segs: Vec<String> = Vec::new();
        while k < body.len() {
            match &body[k].kind {
                Tok::Ident(s) if s != "as" => segs.push(s.clone()),
                Tok::Ident(_) => {
                    // `use a::b as c;` — the rename is the visible name.
                    if let Some(Tok::Ident(n)) = body.get(k + 1).map(|t| &t.kind) {
                        segs.push(n.clone());
                        k += 1;
                    }
                }
                Tok::Punct(':') => {}
                Tok::Punct('*') => {
                    names.push("*".to_string());
                    break;
                }
                Tok::Punct('{') => {
                    // Group: each top-level comma-separated entry's last
                    // ident is the visible name.
                    let mut depth = 0i64;
                    let mut last: Option<String> = None;
                    while k < body.len() {
                        match &body[k].kind {
                            Tok::Punct('{') => depth += 1,
                            Tok::Punct('}') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            Tok::Punct(',') if depth == 1 => {
                                if let Some(n) = last.take() {
                                    names.push(n);
                                }
                            }
                            Tok::Punct('*') => last = Some("*".to_string()),
                            Tok::Ident(s) if s != "as" => last = Some(s.clone()),
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(n) = last.take() {
                        names.push(n);
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if names.is_empty() {
            if let Some(last) = segs.pop() {
                names.push(last);
            }
        }
        let leading = segs;
        self.out.uses.push(UseItem {
            leading,
            names,
            cfg,
            line,
            is_pub,
            module: module.to_vec(),
        });
    }

    /// Collects `// WARM:` from the contiguous comment/attribute block
    /// directly above `fn_line`.
    fn warm_tag_above(&self, fn_line: usize) -> bool {
        let mut j = fn_line;
        while j > 0 {
            j -= 1;
            let above = &self.lines[j];
            let acode = above.code.trim();
            if !acode.is_empty() && !acode.starts_with("#[") {
                return false;
            }
            if acode.is_empty() && above.comment.is_empty() {
                return false;
            }
            if above.comment.contains("WARM:") {
                return true;
            }
        }
        false
    }

    /// Parses a `fn` item; `self.i` is at the `fn` keyword.
    fn parse_fn(&mut self, module: &[String], cfg: Vec<CfgAtom>, in_test: bool) {
        let is_pub = self.pub_lookback(self.i);
        let fn_line = self.line(self.i);
        let mut sig = String::from("fn");
        self.i += 1;
        let name = self
            .ident_at(self.i)
            .map(str::to_string)
            .unwrap_or_default();
        // Signature: token-joined text from the name through to the body
        // `{` or declaration `;` (generics are angle-skipped as a unit so
        // a `>` never terminates early).
        let mut body_start: Option<usize> = None;
        while self.i < self.toks.len() {
            match self.kind(self.i) {
                Some(Tok::Punct('<')) => {
                    let s = self.i;
                    self.skip_angles();
                    for t in &self.toks[s..self.i] {
                        push_sig(&mut sig, &t.kind);
                    }
                    continue;
                }
                Some(Tok::Punct('{')) => {
                    body_start = Some(self.i);
                    break;
                }
                Some(Tok::Punct(';')) => {
                    self.i += 1;
                    break;
                }
                Some(k) => {
                    push_sig(&mut sig, k);
                    self.i += 1;
                }
                None => break,
            }
        }
        let mut fact = FnFact {
            name,
            module: module.to_vec(),
            line: fn_line,
            end_line: fn_line,
            is_pub,
            in_test,
            cfg,
            warm: self.warm_tag_above(fn_line),
            sig,
            calls: Vec::new(),
            allocs: Vec::new(),
            panics: Vec::new(),
            locks: Vec::new(),
            bans: Vec::new(),
        };
        if body_start.is_some() {
            self.i += 1; // consume body '{'
            self.parse_body(&mut fact);
        }
        self.out.consts.extend(
            std::mem::take(&mut self.pending_body_consts)
                .into_iter()
                .map(|mut c| {
                    c.in_fn = Some(fact.name.clone());
                    c.module = module.to_vec();
                    // Item-level gates on the fn also gate its consts.
                    let mut cfg = fact.cfg.clone();
                    cfg.extend(c.cfg);
                    c.cfg = cfg;
                    c
                }),
        );
        self.out.fns.push(fact);
    }

    fn parse_body(&mut self, fact: &mut FnFact) {
        BodyWalker::walk(self, fact);
    }
}

/// Appends one token's text to a signature string.
fn push_sig(sig: &mut String, kind: &Tok) {
    match kind {
        Tok::Ident(s) => {
            sig.push(' ');
            sig.push_str(s);
        }
        Tok::Punct(c) => {
            sig.push(' ');
            sig.push(*c);
        }
        Tok::Str(_) => sig.push_str(" \"\""),
    }
}

// ---------------------------------------------------------------------------
// Body walker.
// ---------------------------------------------------------------------------

/// An open `let` binding (innermost-last).
struct LetCtx {
    name: Option<String>,
    depth: i64,
}

/// How an open guard region closes.
enum CloseAt {
    /// When brace depth drops below this value.
    Depth(i64),
    /// At the next `;` at this depth (chained `.lock().x()` temporary
    /// or bare-statement guard).
    Stmt(i64),
    /// At the end of the function (moved guard).
    FnEnd,
}

struct OpenRegion {
    kind: LockKind,
    binding: Option<String>,
    start: usize,
    close: CloseAt,
    moved: bool,
}

/// An active body-level cfg gate.
struct GateCtx {
    atoms: Vec<CfgAtom>,
    /// Depth at which the gate was declared.
    depth: i64,
    /// Gates a single statement (no leading `{`).
    statement: bool,
    /// The gated statement opened at least one block.
    saw_block: bool,
}

struct BodyWalker;

impl BodyWalker {
    fn walk(p: &mut Parser<'_>, fact: &mut FnFact) {
        let mut depth: i64 = 1; // body '{' already consumed
        let mut lets: Vec<LetCtx> = Vec::new();
        let mut regions: Vec<OpenRegion> = Vec::new();
        let mut gates: Vec<GateCtx> = Vec::new();
        let mut suppress_next_let = false;
        let mut last_line = fact.line;
        while p.i < p.toks.len() {
            let line = p.line(p.i);
            last_line = line;
            match p.kind(p.i).cloned() {
                Some(Tok::Punct('{')) => {
                    depth += 1;
                    if let Some(g) = gates.last_mut() {
                        if g.statement && g.depth == depth - 1 {
                            g.saw_block = true;
                        }
                    }
                    p.i += 1;
                }
                Some(Tok::Punct('}')) => {
                    depth -= 1;
                    // Close lexically-scoped things that ended here.
                    lets.retain(|l| l.depth <= depth);
                    let mut k = 0;
                    while k < regions.len() {
                        let done = match regions[k].close {
                            CloseAt::Depth(d) => depth < d,
                            CloseAt::Stmt(d) => depth < d,
                            CloseAt::FnEnd => false,
                        };
                        if done && depth > 0 {
                            let r = regions.remove(k);
                            fact.locks.push(LockRegion {
                                kind: r.kind,
                                binding: r.binding,
                                start: r.start,
                                end: line,
                                moved: r.moved,
                            });
                        } else {
                            k += 1;
                        }
                    }
                    // Close cfg gates.
                    let next_is_else = p.ident_at(p.i + 1) == Some("else");
                    gates.retain(|g| {
                        if g.statement {
                            !(g.saw_block && depth == g.depth && !next_is_else)
                        } else {
                            depth > g.depth
                        }
                    });
                    p.i += 1;
                    if depth == 0 {
                        for r in regions.drain(..) {
                            fact.locks.push(LockRegion {
                                kind: r.kind,
                                binding: r.binding,
                                start: r.start,
                                end: line,
                                moved: r.moved,
                            });
                        }
                        fact.end_line = line;
                        return;
                    }
                }
                Some(Tok::Punct(';')) => {
                    while lets.last().is_some_and(|l| l.depth >= depth) {
                        lets.pop();
                    }
                    let mut k = 0;
                    while k < regions.len() {
                        if matches!(regions[k].close, CloseAt::Stmt(d) if d >= depth) {
                            let r = regions.remove(k);
                            fact.locks.push(LockRegion {
                                kind: r.kind,
                                binding: r.binding,
                                start: r.start,
                                end: line,
                                moved: r.moved,
                            });
                        } else {
                            k += 1;
                        }
                    }
                    gates.retain(|g| !(g.statement && g.depth >= depth));
                    p.i += 1;
                }
                Some(Tok::Punct('#')) => {
                    let mut info = AttrInfo::default();
                    p.parse_attr(&mut info);
                    if !info.atoms.is_empty() {
                        let statement = !p.is_punct(p.i, '{');
                        gates.push(GateCtx {
                            atoms: info.atoms,
                            depth,
                            statement,
                            saw_block: false,
                        });
                    }
                }
                Some(Tok::Ident(word)) => {
                    Self::on_ident(
                        p,
                        fact,
                        &word,
                        line,
                        depth,
                        &mut lets,
                        &mut regions,
                        &gates,
                        &mut suppress_next_let,
                    );
                }
                Some(_) => p.i += 1,
                None => break,
            }
        }
        // Ran off the end (unbalanced braces — recovery): close regions.
        for r in regions.drain(..) {
            fact.locks.push(LockRegion {
                kind: r.kind,
                binding: r.binding,
                start: r.start,
                end: last_line,
                moved: r.moved,
            });
        }
        fact.end_line = last_line;
    }

    #[allow(clippy::too_many_arguments)]
    fn on_ident(
        p: &mut Parser<'_>,
        fact: &mut FnFact,
        word: &str,
        line: usize,
        depth: i64,
        lets: &mut Vec<LetCtx>,
        regions: &mut Vec<OpenRegion>,
        gates: &[GateCtx],
        suppress_next_let: &mut bool,
    ) {
        let active_cfg =
            || -> Vec<CfgAtom> { gates.iter().flat_map(|g| g.atoms.iter().cloned()).collect() };
        match word {
            "if" | "while" => {
                // `if let` / `while let` bind for the *body* block, which
                // brace-depth scoping already models; suppress the `let`
                // so it is not mistaken for an open statement binding.
                *suppress_next_let = true;
                p.i += 1;
                return;
            }
            "const" | "static" => {
                // Function-local item: `const PANEL: usize = 4;` (the
                // cfg-paired tuning-constant shape). `*const T` pointer
                // casts fail the `name :` check and fall through.
                p.i += 1;
                if p.ident_at(p.i) == Some("mut") {
                    p.i += 1;
                }
                if let Some(name) = p.ident_at(p.i).map(str::to_string) {
                    if p.is_punct(p.i + 1, ':') && !p.path_sep(p.i + 1) {
                        p.pending_body_consts.push(ConstItem {
                            name,
                            cfg: gates.iter().flat_map(|g| g.atoms.iter().cloned()).collect(),
                            line: p.line(p.i),
                            module: Vec::new(),
                            in_fn: None,
                        });
                    }
                }
                return;
            }
            "let" => {
                p.i += 1;
                if *suppress_next_let {
                    *suppress_next_let = false;
                    return;
                }
                let mut j = p.i;
                if p.ident_at(j) == Some("mut") {
                    j += 1;
                }
                let name = match (p.ident_at(j), p.kind(j + 1)) {
                    (Some(id), Some(Tok::Punct('=')))
                    | (Some(id), Some(Tok::Punct(':')))
                    | (Some(id), Some(Tok::Punct(';'))) => Some(id.to_string()),
                    _ => None,
                };
                lets.push(LetCtx { name, depth });
                return;
            }
            _ => {}
        }
        if !matches!(word.chars().next(), Some(c) if c == '_' || c.is_ascii_alphabetic()) {
            // Numeric literal token.
            p.i += 1;
            return;
        }
        // drop(guard): closes the named region.
        if word == "drop" && p.is_punct(p.i + 1, '(') && p.is_punct(p.i + 3, ')') {
            if let Some(arg) = p.ident_at(p.i + 2).map(str::to_string) {
                let mut k = 0;
                while k < regions.len() {
                    if regions[k].binding.as_deref() == Some(arg.as_str()) {
                        let r = regions.remove(k);
                        fact.locks.push(LockRegion {
                            kind: r.kind,
                            binding: r.binding,
                            start: r.start,
                            end: line,
                            moved: r.moved,
                        });
                    } else {
                        k += 1;
                    }
                }
                p.i += 4;
                return;
            }
        }
        // Determinism-hostile type tokens (any position, incl. types).
        if word == "HashMap" || word == "HashSet" {
            fact.bans.push(BanSite {
                what: word.to_string(),
                line,
                cfg: active_cfg(),
            });
            p.i += 1;
            return;
        }
        if word == "available_parallelism" {
            fact.bans.push(BanSite {
                what: "available_parallelism".to_string(),
                line,
                cfg: active_cfg(),
            });
            // fall through: it is also a call
        }
        // Call detection: `name(`, `name::<T>(`, `name!(`/`![`/`!{`.
        let mut after = p.i + 1;
        let is_macro = p.is_punct(after, '!')
            && (p.is_punct(after + 1, '(')
                || p.is_punct(after + 1, '[')
                || p.is_punct(after + 1, '{'));
        let mut has_turbofish = false;
        if !is_macro && p.path_sep(after) && p.is_punct(after + 2, '<') {
            // Turbofish: name::<...>(
            let save = p.i;
            p.i = after + 2;
            p.skip_angles();
            after = p.i;
            p.i = save;
            has_turbofish = true;
        }
        let is_call = is_macro || p.is_punct(after, '(');
        if !is_call {
            p.i += 1;
            return;
        }
        // Build the path backwards: `a::b::name(`.
        let mut path = vec![word.to_string()];
        let mut start = p.i;
        while start >= 3 && p.path_sep(start - 2) {
            if let Some(seg) = p.ident_at(start - 3) {
                path.insert(0, seg.to_string());
                start -= 3;
            } else {
                break;
            }
        }
        // Receiver chain for method calls: `a.b.name(`.
        let mut recv = String::new();
        if start >= 1 && p.is_punct(start - 1, '.') {
            let mut parts: Vec<String> = Vec::new();
            let mut j = start - 1;
            loop {
                if j == 0 {
                    break;
                }
                if let Some(seg) = p.ident_at(j - 1) {
                    parts.insert(0, seg.to_string());
                    if j >= 2 && p.is_punct(j - 2, '.') {
                        j -= 2;
                        continue;
                    }
                    break;
                }
                // Receiver is an expression (`foo().bar(`, `x[i].bar(`).
                parts.clear();
                parts.push("()".to_string());
                break;
            }
            recv = parts.join(".");
        }
        let cfg_here = active_cfg();
        let name = word.to_string();
        // Thread primitives are reachability bans, not just calls.
        if path.len() >= 2
            && path[path.len() - 2] == "thread"
            && (name == "spawn" || name == "scope")
        {
            fact.bans.push(BanSite {
                what: format!("thread::{name}"),
                line,
                cfg: cfg_here.clone(),
            });
        }
        // Allocation classification.
        if let Some(what) = classify_alloc(&path, &recv, is_macro) {
            fact.allocs.push(AllocSite {
                what,
                line,
                cfg: cfg_here.clone(),
            });
        }
        // Panic classification.
        if let Some(what) = classify_panic(&name, &recv, is_macro) {
            fact.panics.push(PanicSite { what, line });
        }
        // Lock-region opening: `<recv ending in state|slots>.lock()`.
        if !is_macro && name == "lock" {
            let kind = match recv.rsplit('.').next() {
                Some("state") => Some(LockKind::State),
                Some("slots") => Some(LockKind::PoolSlots),
                _ => None,
            };
            if let Some(kind) = kind {
                // `lock()` is zero-arg: the close paren is at after+1.
                let chained = p.is_punct(after + 2, '.') || p.is_punct(after + 2, '?');
                if chained {
                    regions.push(OpenRegion {
                        kind,
                        binding: None,
                        start: line,
                        close: CloseAt::Stmt(depth),
                        moved: false,
                    });
                } else if let Some(top) = lets.last() {
                    regions.push(OpenRegion {
                        kind,
                        binding: top.name.clone(),
                        start: line,
                        close: CloseAt::Depth(top.depth),
                        moved: false,
                    });
                } else if let Some(assignee) = Self::assignment_lookback(p, start) {
                    regions.push(OpenRegion {
                        kind,
                        binding: Some(assignee),
                        start: line,
                        close: CloseAt::FnEnd,
                        moved: true,
                    });
                } else {
                    regions.push(OpenRegion {
                        kind,
                        binding: None,
                        start: line,
                        close: CloseAt::Stmt(depth),
                        moved: false,
                    });
                }
            }
        }
        fact.calls.push(CallSite {
            path,
            recv,
            line,
            cfg: cfg_here,
            is_macro,
        });
        // Advance past the callee name (turbofish included); arguments
        // are walked as ordinary tokens so nested calls are seen.
        p.i = if has_turbofish { after } else { p.i + 1 };
        if is_macro {
            p.i += 1; // the '!'
        }
    }

    /// Looks back from the receiver start of a `.lock()` call for a
    /// plain `name = ...` assignment earlier in the same statement —
    /// the moved-guard shape (`held = self.state.lock();` with `held`
    /// declared in an outer scope).
    fn assignment_lookback(p: &Parser<'_>, from: usize) -> Option<String> {
        let mut j = from;
        while j > 1 {
            j -= 1;
            match p.kind(j) {
                Some(Tok::Punct(';')) | Some(Tok::Punct('{')) | Some(Tok::Punct('}')) => {
                    return None
                }
                Some(Tok::Punct('=')) => {
                    // Exclude `==`, `=>`, `<=`, `>=`, `!=`, `+=`-family.
                    if matches!(p.kind(j + 1), Some(Tok::Punct('=')) | Some(Tok::Punct('>'))) {
                        continue;
                    }
                    if let Some(Tok::Ident(name)) = p.kind(j - 1) {
                        return Some(name.clone());
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// Classifies a call as an allocation site, returning a display label.
/// `Vec::new` is deliberately absent (it does not allocate), as is
/// `.reserve(` — the budget API uses the same method name for epsilon
/// reservation and the workspace arena's `reserve` is annotated at its
/// call sites instead.
fn classify_alloc(path: &[String], recv: &str, is_macro: bool) -> Option<String> {
    let name = path.last().map(String::as_str).unwrap_or("");
    if is_macro {
        return match name {
            "format" | "vec" => Some(format!("{name}!")),
            _ => None,
        };
    }
    if path.len() >= 2 {
        let head = path[path.len() - 2].as_str();
        return match (head, name) {
            ("Box" | "Arc" | "Rc", "new") => Some(format!("{head}::new")),
            ("String", "from") => Some("String::from".to_string()),
            (_, "with_capacity") => Some(format!("{head}::with_capacity")),
            // `Arc::clone(&x)` / `Rc::clone(&x)` are refcount bumps.
            _ => None,
        };
    }
    if recv.is_empty() {
        return None;
    }
    match name {
        "push" | "to_vec" | "collect" | "clone" | "to_string" | "to_owned" | "resize"
        | "resize_with" | "extend" | "insert" | "append" | "with_capacity" => {
            Some(format!(".{name}()"))
        }
        _ => None,
    }
}

/// Classifies a call as a possible-panic site. `debug_assert*` is
/// excluded (compiled out of release, and the panic-policy rule already
/// treats it as diagnostic-only).
fn classify_panic(name: &str, recv: &str, is_macro: bool) -> Option<String> {
    if is_macro {
        return match name {
            "panic" | "assert" | "assert_eq" | "assert_ne" | "unreachable" | "todo"
            | "unimplemented" => Some(format!("{name}!")),
            _ => None,
        };
    }
    if recv.is_empty() {
        return None;
    }
    match name {
        "unwrap" => Some(".unwrap()".to_string()),
        "expect" => Some(".expect(...)".to_string()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strip_lines;

    fn parse(src: &str) -> FileFacts {
        parse_file(&strip_lines(src))
    }

    #[test]
    fn fn_facts_record_calls_allocs_and_panics() {
        let src = r#"
pub fn f(v: &mut Vec<f64>) {
    v.push(1.0);
    let b = Box::new(3);
    helper(b);
    x.unwrap();
    panic!("boom");
}
"#;
        let facts = parse(src);
        assert_eq!(facts.fns.len(), 1);
        let f = &facts.fns[0];
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        let allocs: Vec<&str> = f.allocs.iter().map(|a| a.what.as_str()).collect();
        assert!(allocs.contains(&".push()"), "{allocs:?}");
        assert!(allocs.contains(&"Box::new"), "{allocs:?}");
        assert!(f.calls.iter().any(|c| c.name() == "helper"));
        let panics: Vec<&str> = f.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(panics.contains(&".unwrap()"), "{panics:?}");
        assert!(panics.contains(&"panic!"), "{panics:?}");
    }

    #[test]
    fn lock_region_scoped_to_let_block() {
        let src = r#"
fn g(&self) -> f64 {
    let snap = {
        let st = self.state.lock();
        st.total()
    };
    finish(snap)
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.locks.len(), 1);
        let r = &f.locks[0];
        assert_eq!(r.kind, LockKind::State);
        assert_eq!(r.binding.as_deref(), Some("st"));
        // Region ends at the inner block close (line 5, 0-based), not
        // at the end of the function.
        assert_eq!(r.start, 3);
        assert_eq!(r.end, 5);
        assert!(!r.moved);
    }

    #[test]
    fn moved_guard_extends_to_fn_end() {
        let src = r#"
fn h(&self) {
    let held;
    {
        held = self.state.lock();
    }
    after();
    last();
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.locks.len(), 1);
        let r = &f.locks[0];
        assert!(r.moved);
        assert_eq!(r.binding.as_deref(), Some("held"));
        assert_eq!(r.end, 8, "moved guard must extend to the fn end");
    }

    #[test]
    fn drop_closes_region_early() {
        let src = r#"
fn k(&self) {
    let st = self.state.lock();
    st.charge(1.0);
    drop(st);
    after();
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].end, 4);
    }

    #[test]
    fn chained_guard_is_statement_scoped() {
        let src = r#"
fn m(&self) -> f64 {
    let t = self.state.lock().total();
    other(t)
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].start, 2);
        assert_eq!(f.locks[0].end, 2);
    }

    #[test]
    fn cfg_atoms_on_items_and_body_consts() {
        let src = r#"
#[cfg(feature = "simd")]
pub fn fast() {}
#[cfg(not(feature = "simd"))]
pub fn slow() {}
fn host() {
    #[cfg(feature = "simd")]
    const PANEL: usize = 4;
    #[cfg(not(feature = "simd"))]
    const PANEL: usize = 1;
    let _ = PANEL;
}
"#;
        let facts = parse(src);
        let fast = facts.fns.iter().find(|f| f.name == "fast").unwrap();
        assert_eq!(
            fast.cfg,
            vec![CfgAtom {
                feature: "simd".to_string(),
                on: true
            }]
        );
        let slow = facts.fns.iter().find(|f| f.name == "slow").unwrap();
        assert_eq!(
            slow.cfg,
            vec![CfgAtom {
                feature: "simd".to_string(),
                on: false
            }]
        );
        let panels: Vec<_> = facts.consts.iter().filter(|c| c.name == "PANEL").collect();
        assert_eq!(panels.len(), 2);
        assert!(panels.iter().all(|c| c.in_fn.as_deref() == Some("host")));
        assert_ne!(panels[0].cfg, panels[1].cfg);
    }

    #[test]
    fn warm_tag_and_modules_and_sig() {
        let src = r#"
pub mod scalar {
    /// Dot product.
    // WARM: zero-alloc entry
    pub fn dot(a: &[f64], b: &[f64]) -> f64 { 0.0 }
}
pub mod simd {
    pub fn dot(a: &[f64], b: &[f64]) -> f64 { 0.0 }
}
"#;
        let facts = parse(src);
        assert_eq!(facts.fns.len(), 2);
        let s = facts.fns.iter().find(|f| f.module == ["scalar"]).unwrap();
        let v = facts.fns.iter().find(|f| f.module == ["simd"]).unwrap();
        assert!(s.warm);
        assert!(!v.warm);
        assert_eq!(s.sig, v.sig, "{} vs {}", s.sig, v.sig);
    }

    #[test]
    fn use_groups_and_bans() {
        let src = r#"
#[cfg(feature = "simd")]
pub use simd::{dot, axpy};
#[cfg(not(feature = "simd"))]
pub use scalar::{dot, axpy};
fn bad() {
    let m: HashMap<u32, u32> = make();
    std::thread::spawn(|| {});
}
"#;
        let facts = parse(src);
        assert_eq!(facts.uses.len(), 2);
        assert_eq!(facts.uses[0].names, vec!["dot", "axpy"]);
        assert!(facts.uses.iter().all(|u| u.is_pub));
        let bad = facts.fns.iter().find(|f| f.name == "bad").unwrap();
        let bans: Vec<&str> = bad.bans.iter().map(|b| b.what.as_str()).collect();
        assert!(bans.contains(&"HashMap"), "{bans:?}");
        assert!(bans.contains(&"thread::spawn"), "{bans:?}");
    }

    #[test]
    fn test_mod_and_test_attr_mark_fns() {
        let src = r#"
fn lib_code() {}
#[cfg(test)]
mod tests {
    fn helper() {}
    #[test]
    fn case() {}
}
"#;
        let facts = parse(src);
        assert!(
            !facts
                .fns
                .iter()
                .find(|f| f.name == "lib_code")
                .unwrap()
                .in_test
        );
        assert!(
            facts
                .fns
                .iter()
                .find(|f| f.name == "helper")
                .unwrap()
                .in_test
        );
        assert!(facts.fns.iter().find(|f| f.name == "case").unwrap().in_test);
    }

    #[test]
    fn receiver_chains_and_paths() {
        let src = r#"
fn r(&self) {
    self.kernel.charge(1.0);
    pool::scope(|s| {});
    ws.carve(4);
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        let charge = f.calls.iter().find(|c| c.name() == "charge").unwrap();
        assert_eq!(charge.recv, "self.kernel");
        let scope = f.calls.iter().find(|c| c.name() == "scope").unwrap();
        assert_eq!(scope.path, vec!["pool", "scope"]);
        assert!(scope.recv.is_empty());
        let carve = f.calls.iter().find(|c| c.name() == "carve").unwrap();
        assert_eq!(carve.recv, "ws");
    }

    #[test]
    fn if_let_does_not_leak_an_open_binding() {
        let src = r#"
fn q(&self) {
    if let Some(x) = probe() {
        use_it(x);
    }
    let st = self.state.lock();
    st.total();
}
"#;
        let facts = parse(src);
        let f = &facts.fns[0];
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].binding.as_deref(), Some("st"));
        // Bound at body depth: region runs to the fn's closing brace.
        assert_eq!(f.locks[0].end, 7);
    }
}
