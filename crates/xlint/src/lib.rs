//! `xlint` — an offline, workspace-aware invariant linter.
//!
//! The engine's safety story (paper §4: privacy is decided from operator
//! *class structure*, not algorithm internals) rests on a handful of
//! structural invariants that runtime tests alone cannot defend: a test
//! can prove today's call sites are deterministic or budget-safe, but it
//! cannot see a *new* call site that bypasses the rules. This tool makes
//! those invariants mechanical. It is plain Rust over a lexer-level scan
//! (comments, strings and char literals are stripped with a real state
//! machine; no `syn`, no clippy — the workspace builds offline), so it
//! checks token structure, not semantics; each rule is written so that
//! the structural check is *sufficient* for the invariant it guards.
//!
//! # Rule catalog
//!
//! * `determinism-thread` — `std::thread::spawn` / `std::thread::scope`
//!   are forbidden everywhere except the `crates/matrix/src/pool/`
//!   module tree (the one sanctioned thread owner). Ad-hoc threads
//!   bypass the pool's fixed-geometry dispatch and its pool-size
//!   bit-identity guarantee.
//! * `determinism-parallelism` — `available_parallelism` is forbidden
//!   outside `pool::configured_parallelism`: chunk geometry must come
//!   from the process constant, never from a machine query at a call
//!   site (that is exactly how results drift across machines).
//! * `determinism-hash-iter` — `HashMap`/`HashSet` are forbidden in the
//!   hot evaluation files (`matvec.rs`, `kernels.rs`, `plan.rs`): their
//!   iteration order is randomized per process, so any use there is one
//!   refactor away from nondeterministic evaluation order.
//! * `kernel-class` — every `pub fn` in `crates/matrix/src/kernels.rs`
//!   must carry a `// CLASS: order-preserving` or `// CLASS:
//!   reassociating` tag in its doc block (the ROADMAP standing note,
//!   machine-checked) and must be exercised by name from
//!   `crates/matrix/tests/proptest_kernels.rs`.
//! * `budget-chokepoint` — inside `crates/core/src/kernel/`, raw `f64`
//!   comparisons on `eps`-named values and mutations of the `reserved` /
//!   `budget` / `held` / `charged` trackers are only legal in `state.rs`
//!   (or a future `budget.rs`) — the `KernelState::request` chokepoint.
//!   Scattered epsilon guards are how the PR-4 NaN-bypass class of bug
//!   gets reintroduced, and reservation-ledger fields mutated outside
//!   the chokepoint are how redemption atomicity silently breaks.
//! * `failpoint-sites` — the fault-injection surface is an audited
//!   list: `failpoints::triggered` / `failpoints::panic_if` sites may
//!   only appear in the enumerated site files, and schedule mutation
//!   (`failpoints::arm` / `arm_schedule` / `clear`) is forbidden in
//!   library code outside the failpoints module itself (tests arm
//!   freely). A site smuggled into an unaudited file is a covert
//!   abort channel; an arm call in library code is nondeterminism.
//! * `unsafe-safety` — every `unsafe` block / fn / impl needs an
//!   adjacent `// SAFETY:` comment (same line or within the five lines
//!   above). `--inventory` reports every site with its justification.
//! * `panic-policy` — `.unwrap()` / `.expect(...)` / `panic!` in
//!   library code of core/matrix/solvers/plans (`src/`, outside
//!   `#[cfg(test)]` modules) must be converted to typed `EktError` paths
//!   or carry an explicit justification allowlist comment.
//!
//! # Flow rules (v2)
//!
//! The rules above are line-local. v2 adds a lexer-token parser
//! ([`parse`]) that extracts per-function facts (calls, lock-guard live
//! regions, allocation and panic sites, `#[cfg(feature)]` gates) and a
//! workspace call graph ([`mod@flow`], crate-internal), enabling four
//! *flow* rule families:
//!
//! * `lock-discipline` — inside a live `KernelState` / pool-slots guard
//!   region (from `.lock()` to `drop`/end of scope), forbid allocation,
//!   `pool::scope`/`pool::typed_scope` dispatch, solver entry points,
//!   reentrant same-lock method calls (parking_lot mutexes are not
//!   reentrant: that is a deadlock), and panics without a justification.
//!   *Fix* by shrinking the guard region (bind the lock in an inner
//!   block, copy scalars out); *allow* only when the operation is
//!   inherently part of the atomic section (e.g. the redemption
//!   transaction's ledger drain).
//! * `warm-path-alloc` — functions tagged `// WARM:` in the doc block
//!   must have an allocation-free transitive call closure. This turns
//!   the counting-allocator runtime gates into lint-time file:line
//!   diagnostics. An allow on a *call* line severs that edge (declares
//!   a cold/setup boundary); an allow on an *allocation* line justifies
//!   the site itself. *Fix* by hoisting into the workspace arena;
//!   *allow* only for cold error/setup paths behind branch guards.
//! * `determinism-transitive` — the hash-order / ad-hoc-thread bans
//!   become reachability rules from the deterministic entry points
//!   (`matvec_into` / `rmatvec_into` / `rmatvec_add` and the public
//!   kernels): `HashMap`/`HashSet`/`thread::spawn`/`thread::scope`/
//!   `available_parallelism` are forbidden anywhere in their call
//!   closure, not just in the three hot files. The pool executor file
//!   is the sanctioned thread owner and is excluded from traversal.
//! * `cfg-parity` — every `feature = "simd"`-gated fn/const/re-export
//!   needs a `not(simd)` counterpart of the same kind and name (fns:
//!   same signature); `scalar`/`simd` twin modules must export matching
//!   public surfaces; and every failpoint name used at a `triggered` /
//!   `panic_if` site must be declared in `failpoints.rs`'s `SITES`
//!   list and vice versa (an orphaned declaration is a chaos schedule
//!   that silently arms nothing).
//!
//! # Known approximations
//!
//! The parser is lexer-level by design (no `syn`, offline workspace):
//!
//! * **No macro expansion** — calls and allocations inside macro bodies
//!   other than the recognized ones (`vec!`, `format!`, panic macros)
//!   are invisible; the runtime gates (counting allocator, bit-identity
//!   suites) remain the ground truth backstop.
//! * **Name-based call resolution** — edges are resolved by callee name
//!   plus module-path hints, without types. Precision tiers: std-typed
//!   qualifiers (`Vec::new`) and ubiquitous method names (`.map()`,
//!   `.push()`, `.lock()`) resolve to nothing; `self.`-method calls and
//!   type-qualified calls whose qualifier matches no module stay in the
//!   caller's file unless the name is workspace-unique; everything else
//!   fans out by name. The fan-out over-approximates: spurious edges
//!   can add diagnostics (sever them with a reasoned allow) but never
//!   hide one. The same-file tiers can *miss* a cross-file inherent
//!   method — the runtime gates below stay the ground truth backstop.
//! * **Depth-limited reachability** ([`flow::DEPTH_LIMIT`]) — call
//!   chains deeper than 16 are not explored; real chains here are < 10.
//! * **Guard regions are syntactic** — a guard stored into a struct
//!   field or returned escapes tracking; binding-`let`, statement
//!   chain, `drop()`, and moved-binding shapes are tracked.
//!
//! # Allowlist syntax
//!
//! ```text
//! // xlint: allow(rule-name, reason = "why this site is sound")
//! ```
//!
//! placed either at the end of the offending line or on its own line
//! directly above it (a contiguous run of comment/attribute lines above
//! the site is searched). The reason is mandatory and must be non-empty;
//! malformed or unknown-rule allow comments are themselves diagnostics
//! (`allow-syntax`), so a typo cannot silently disable a rule.
//!
//! # Scan scope
//!
//! Every `.rs` file under the workspace root, excluding `target/`,
//! `shims/` (vendored stand-ins for external crates — not our code),
//! and `crates/xlint/` itself (its fixtures are deliberate violations).

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub mod flow;
pub mod parse;

/// Analyzer configuration: the cargo features assumed active when
/// evaluating `#[cfg(feature = "...")]` gates in the flow rules. The
/// default is the default build (no features). CI runs the matrix
/// (default, `simd`, `failpoints`) over one shared [`Analysis`].
#[derive(Debug, Default, Clone)]
pub struct Config {
    pub features: BTreeSet<String>,
}

impl Config {
    /// Convenience constructor from feature names.
    pub fn with_features<I: IntoIterator<Item = S>, S: Into<String>>(features: I) -> Config {
        Config {
            features: features.into_iter().map(Into::into).collect(),
        }
    }
}

/// Rule names, as used in diagnostics and `allow(...)` comments.
pub const RULES: &[&str] = &[
    "determinism-thread",
    "determinism-parallelism",
    "determinism-hash-iter",
    "kernel-class",
    "budget-chokepoint",
    "failpoint-sites",
    "unsafe-safety",
    "panic-policy",
    "lock-discipline",
    "warm-path-alloc",
    "determinism-transitive",
    "cfg-parity",
];

/// Synthetic rule name for malformed allowlist comments (not allowable
/// itself, by construction).
pub const ALLOW_SYNTAX: &str = "allow-syntax";

/// One finding: a file:line location, the rule that fired, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the linted root, with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// One `unsafe` site, for the `--inventory` report.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub line: usize,
    /// The adjacent `SAFETY:` justification, if present.
    pub safety: Option<String>,
}

/// One lock-guard live region observed by the parser, with the
/// forbidden-operation events inside it (annotated ones carry an
/// `(allowed)` mark) — the `--inventory` view of `lock-discipline`.
#[derive(Debug, Clone)]
pub struct LockRegionInfo {
    pub file: String,
    pub fn_name: String,
    /// `"KernelState"` or `"pool-slots"`.
    pub kind: &'static str,
    /// 1-based line span of the live region.
    pub start: usize,
    pub end: usize,
    /// The guard binding name, if the region came from a `let`.
    pub binding: Option<String>,
    pub events: Vec<String>,
}

/// One `// WARM:` root with its transitive call closure — the
/// `--inventory` view of `warm-path-alloc`.
#[derive(Debug, Clone)]
pub struct WarmRootInfo {
    pub file: String,
    pub name: String,
    /// Functions in the transitive call closure (including the root).
    pub closure: usize,
    /// cfg-active allocation sites inside the closure (allowed or not).
    pub alloc_sites: usize,
}

/// One satisfied cfg-parity pairing — the `--inventory` view of
/// `cfg-parity` (what the analyzer believes is properly twinned).
#[derive(Debug, Clone)]
pub struct CfgPairInfo {
    pub file: String,
    pub name: String,
    /// `"kernel-twin"`, `"cfg-pair"` or `"failpoint-site"`.
    pub kind: &'static str,
}

/// The result of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub lock_regions: Vec<LockRegionInfo>,
    pub warm_roots: Vec<WarmRootInfo>,
    pub cfg_pairs: Vec<CfgPairInfo>,
    pub files_scanned: usize,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Lexer: strip comments / string / char literals while keeping line structure.
// ---------------------------------------------------------------------------

/// One source line after lexing: `code` has comments removed and literal
/// *contents* blanked (delimiters kept, so token boundaries survive);
/// `comment` holds the raw comment text that appeared on the line, and
/// `strings` the contents of every string literal that *starts* on the
/// line (in order) — the parser stage needs the real text of `#[cfg]`
/// feature names and failpoint site names, which the blanking erases
/// from `code`.
#[derive(Debug, Default, Clone)]
pub struct Line {
    pub code: String,
    pub comment: String,
    pub strings: Vec<String>,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The lexer's cross-line state (block comments and string literals can
/// span lines; everything else is line-local).
enum LexState {
    Code,
    /// Inside a (possibly nested) block comment, with nesting depth.
    Block(usize),
    /// Inside a normal (escaped) string literal.
    Str,
    /// Inside a raw string literal closed by `"` + this many `#`s.
    RawStr(usize),
}

/// Splits `src` into [`Line`]s with comments and literal contents
/// stripped. Handles line/doc comments, nested block comments, string /
/// raw-string / byte-string literals, char literals and lifetimes.
pub fn strip_lines(src: &str) -> Vec<Line> {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut lines: Vec<Line> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut strings: Vec<String> = Vec::new();
    // Accumulates the raw content of the string literal currently being
    // lexed; committed to the line the literal *started* on when it
    // closes.
    let mut lit = String::new();
    let mut lit_line = 0usize;
    let mut state = LexState::Code;
    let mut i = 0;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                strings: std::mem::take(&mut strings),
            });
            i += 1;
            continue;
        }
        match state {
            LexState::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    comment.push_str("*/");
                    i += 2;
                    state = if depth == 1 {
                        LexState::Code
                    } else {
                        LexState::Block(depth - 1)
                    };
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    comment.push_str("/*");
                    i += 2;
                    state = LexState::Block(depth + 1);
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            LexState::Str => {
                if c == '\\' {
                    if chars.get(i + 1) == Some(&'\n') {
                        // Escaped newline: consume the backslash, let the
                        // top of the loop handle the line break.
                        i += 1;
                    } else {
                        lit.push('\\');
                        if let Some(&e) = chars.get(i + 1) {
                            lit.push(e);
                        }
                        code.push(' ');
                        i += 2;
                    }
                } else if c == '"' {
                    code.push('"');
                    i += 1;
                    state = LexState::Code;
                    commit_literal(&mut lines, &mut strings, &mut lit, lit_line);
                } else {
                    lit.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                let closes = c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    code.push('"');
                    i += 1 + hashes;
                    state = LexState::Code;
                    commit_literal(&mut lines, &mut strings, &mut lit, lit_line);
                } else {
                    lit.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            LexState::Code => match c {
                '/' if chars.get(i + 1) == Some(&'/') => {
                    while i < n && chars[i] != '\n' {
                        comment.push(chars[i]);
                        i += 1;
                    }
                }
                '/' if chars.get(i + 1) == Some(&'*') => {
                    comment.push_str("/*");
                    i += 2;
                    state = LexState::Block(1);
                }
                '"' => {
                    code.push('"');
                    i += 1;
                    lit.clear();
                    lit_line = lines.len();
                    state = LexState::Str;
                }
                'r' | 'b' if i == 0 || !is_ident_char(chars[i - 1]) => {
                    // Candidate raw / byte string (r", r#", b", br#") or
                    // byte char (b'x'). Raw identifiers (r#foo) fall
                    // through to plain code.
                    let mut j = i;
                    if chars[j] == 'b' {
                        j += 1;
                    }
                    let has_r = chars.get(j) == Some(&'r');
                    if has_r {
                        j += 1;
                    }
                    let mut hashes = 0;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if has_r && chars.get(j) == Some(&'"') {
                        code.extend(&chars[i..=j]);
                        i = j + 1;
                        lit.clear();
                        lit_line = lines.len();
                        state = LexState::RawStr(hashes);
                    } else if c == 'b' && !has_r && hashes == 0 && chars.get(j) == Some(&'"') {
                        code.push_str("b\"");
                        i = j + 1;
                        lit.clear();
                        lit_line = lines.len();
                        state = LexState::Str;
                    } else if c == 'b' && !has_r && hashes == 0 && chars.get(j) == Some(&'\'') {
                        // Byte char literal: blank until the closing quote.
                        code.push_str("b'");
                        i = j + 1;
                        if chars.get(i) == Some(&'\\') {
                            i += 2;
                        }
                        while i < n && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: '\n', '\'', '\u{..}', ...
                        code.push('\'');
                        i += 3;
                        while i < n && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        if chars.get(i) == Some(&'\'') {
                            code.push('\'');
                            i += 1;
                        }
                    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        // Plain char literal 'x'.
                        code.push_str("' '");
                        i += 3;
                    } else {
                        // Lifetime or loop label: keep the tick as code.
                        code.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code.push(c);
                    i += 1;
                }
            },
        }
    }
    if !code.is_empty() || !comment.is_empty() || !strings.is_empty() {
        lines.push(Line {
            code,
            comment,
            strings,
        });
    }
    lines
}

/// Commits a finished string literal to the line it started on: the
/// current (pending) line's list if it started there, otherwise the
/// already-pushed line's (multi-line literal).
fn commit_literal(
    lines: &mut [Line],
    pending: &mut Vec<String>,
    lit: &mut String,
    lit_line: usize,
) {
    let text = std::mem::take(lit);
    if lit_line == lines.len() {
        pending.push(text);
    } else if let Some(line) = lines.get_mut(lit_line) {
        line.strings.push(text);
    }
}

// ---------------------------------------------------------------------------
// Token helpers over stripped code.
// ---------------------------------------------------------------------------

/// Whether `code` contains `tok` with identifier boundaries on both ends
/// (the token itself may contain `::`).
fn contains_token(code: &str, tok: &str) -> bool {
    find_token(code, tok, 0).is_some()
}

fn find_token(code: &str, tok: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    // Boundary checks only apply where the token itself is word-like.
    let first_is_word = tok.chars().next().map(is_ident_char).unwrap_or(false);
    let last_is_word = tok.chars().next_back().map(is_ident_char).unwrap_or(false);
    let mut start = from;
    while let Some(pos) = code[start..].find(tok) {
        let at = start + pos;
        let before_ok = !first_is_word || at == 0 || !is_ident_char(bytes[at - 1] as char);
        let end = at + tok.len();
        let after_ok = !last_is_word || end >= bytes.len() || !is_ident_char(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Whether an identifier names an epsilon-like quantity. Deliberately
/// word-shaped (`eps`, `epsilon`, `eps_*`, `*_eps`, `*_eps_*`) so that
/// identifiers like `steps` do not match.
fn is_eps_ident(id: &str) -> bool {
    let l = id.to_ascii_lowercase();
    l == "eps"
        || l == "epsilon"
        || l.starts_with("eps_")
        || l.starts_with("epsilon_")
        || l.ends_with("_eps")
        || l.ends_with("_epsilon")
        || l.contains("_eps_")
}

/// Reads the identifier ending at byte position `end` (exclusive).
fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut s = end;
    while s > 0 && is_ident_char(bytes[s - 1] as char) {
        s -= 1;
    }
    if s < end {
        Some(&code[s..end])
    } else {
        None
    }
}

/// Reads the identifier starting at byte position `start`.
fn ident_starting_at(code: &str, start: usize) -> Option<&str> {
    let bytes = code.as_bytes();
    let mut e = start;
    while e < bytes.len() && is_ident_char(bytes[e] as char) {
        e += 1;
    }
    if e > start {
        Some(&code[start..e])
    } else {
        None
    }
}

/// Finds raw `f64` comparisons (`<`, `<=`, `>`, `>=`) where either
/// operand is an epsilon-named identifier.
fn has_eps_comparison(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c != '<' && c != '>' {
            i += 1;
            continue;
        }
        // Skip shifts, arrows and fat arrows.
        let prev = if i > 0 { bytes[i - 1] as char } else { ' ' };
        let next = if i + 1 < bytes.len() {
            bytes[i + 1] as char
        } else {
            ' '
        };
        if prev == c || next == c || prev == '-' || prev == '=' {
            i += 1;
            continue;
        }
        let op_end = if next == '=' { i + 2 } else { i + 1 };
        // Left operand: identifier directly before the operator (modulo
        // whitespace). `x.abs() < eps`-style left sides are caught via
        // the right operand instead.
        let mut l = i;
        while l > 0 && bytes[l - 1] == b' ' {
            l -= 1;
        }
        if let Some(id) = ident_ending_at(code, l) {
            if is_eps_ident(id) {
                return true;
            }
        }
        // Right operand.
        let mut r = op_end;
        while r < bytes.len() && bytes[r] == b' ' {
            r += 1;
        }
        if let Some(id) = ident_starting_at(code, r) {
            if is_eps_ident(id) {
                return true;
            }
        }
        i = op_end;
    }
    false
}

/// Finds a mutation of field `.{field}` (direct or through one index
/// expression): `.field =`, `.field +=`, `.field[..] -=`, ...
fn has_field_mutation(code: &str, field: &str) -> bool {
    let dotted = format!(".{field}");
    let mut from = 0;
    while let Some(at) = find_token(code, &dotted, from) {
        let mut i = at + dotted.len();
        let bytes = code.as_bytes();
        // Optionally skip one balanced [...] index.
        if bytes.get(i) == Some(&b'[') {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        while bytes.get(i) == Some(&b' ') {
            i += 1;
        }
        let rest = &code[i.min(code.len())..];
        if (rest.starts_with('=') && !rest.starts_with("=="))
            || rest.starts_with("+=")
            || rest.starts_with("-=")
            || rest.starts_with("*=")
            || rest.starts_with("/=")
        {
            return true;
        }
        from = at + 1;
    }
    false
}

/// Whether `code` calls `.unwrap()`, `.expect(...)` or invokes `panic!`.
fn panic_policy_hits(code: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for (needle, label) in [(".unwrap", ".unwrap()"), (".expect", ".expect(...)")] {
        let mut from = 0;
        while let Some(at) = find_token(code, needle, from) {
            let after = code[at + needle.len()..].trim_start();
            if after.starts_with('(') {
                hits.push(label);
                break;
            }
            from = at + 1;
        }
    }
    let mut from = 0;
    while let Some(at) = find_token(code, "panic", from) {
        if code[at + "panic".len()..].trim_start().starts_with('!') {
            hits.push("panic!");
            break;
        }
        from = at + 1;
    }
    hits
}

// ---------------------------------------------------------------------------
// Allowlist comments.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// Present and non-empty reason; `None` means malformed.
    ok: bool,
}

/// Parses every `xlint:` directive in a comment. Returns the parsed
/// allows; malformed ones come back with `ok == false`.
fn parse_allows(comment: &str) -> Vec<Allow> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("xlint:") {
        rest = &rest[pos + "xlint:".len()..];
        let body = rest.trim_start();
        let Some(args) = body
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix('('))
        else {
            out.push(Allow {
                rule: String::new(),
                ok: false,
            });
            continue;
        };
        // Parse structurally rather than scanning for the first `)`:
        // the quoted reason may itself contain parentheses or commas, so
        // the closing paren is only recognized *after* the closing quote.
        let (rule_part, after_comma) = match args.find(',') {
            Some(i) => (&args[..i], &args[i + 1..]),
            None => (args.split(')').next().unwrap_or(args), ""),
        };
        let rule = rule_part.trim().trim_end_matches(')').trim().to_string();
        let reason_ok = (|| {
            let r = after_comma.trim_start();
            let r = r.strip_prefix("reason")?.trim_start();
            let r = r.strip_prefix('=')?.trim_start();
            let r = r.strip_prefix('"')?;
            let end = r.find('"')?;
            let closed = r[end + 1..].trim_start().starts_with(')');
            Some(closed && !r[..end].trim().is_empty())
        })()
        .unwrap_or(false);
        let known = RULES.contains(&rule.as_str());
        out.push(Allow {
            rule,
            ok: reason_ok && known,
        });
        rest = args;
    }
    out
}

// ---------------------------------------------------------------------------
// Per-file analysis.
// ---------------------------------------------------------------------------

/// Everything the rules need to know about one file.
struct FileCtx {
    rel: String,
    lines: Vec<Line>,
    /// Per line: inside a `#[cfg(test)] mod { ... }` region.
    in_test_mod: Vec<bool>,
    /// Per line: parsed allow directives.
    allows: Vec<Vec<Allow>>,
}

impl FileCtx {
    fn new(rel: String, src: &str) -> Self {
        let lines = strip_lines(src);
        let in_test_mod = test_mod_regions(&lines);
        let allows = lines.iter().map(|l| parse_allows(&l.comment)).collect();
        FileCtx {
            rel,
            lines,
            in_test_mod,
            allows,
        }
    }

    /// Whether a diagnostic of `rule` on `line` (0-based) is allowlisted:
    /// a trailing allow on the line itself, or one in the contiguous run
    /// of comment / attribute / blank-with-comment lines directly above.
    fn allowed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: usize| self.allows[l].iter().any(|a| a.ok && a.rule == rule);
        if hit(line) {
            return true;
        }
        let mut j = line;
        while j > 0 {
            j -= 1;
            let code = self.lines[j].code.trim();
            let passthrough = code.is_empty() || code.starts_with("#[");
            if !passthrough {
                return false;
            }
            if hit(j) {
                return true;
            }
            if code.is_empty() && self.lines[j].comment.is_empty() {
                return false; // fully blank line ends the attachment run
            }
        }
        false
    }

    /// `SAFETY:` justification adjacent to `line` (same line, else up to
    /// five lines above), if any.
    fn safety_comment(&self, line: usize) -> Option<String> {
        let probe = |l: usize| {
            let c = &self.lines[l].comment;
            c.contains("SAFETY:").then(|| {
                c.trim_start_matches(['/', '!', '*', ' '])
                    .trim_end()
                    .to_string()
            })
        };
        if let Some(s) = probe(line) {
            return Some(s);
        }
        for back in 1..=5 {
            let Some(j) = line.checked_sub(back) else {
                break;
            };
            if let Some(s) = probe(j) {
                return Some(s);
            }
        }
        None
    }
}

/// Marks lines inside `#[cfg(test)] mod ... { ... }` regions, by brace
/// depth. Only the plain `#[cfg(test)]` attribute directly above a
/// braced `mod` is recognized — which is the convention this workspace
/// uses everywhere.
fn test_mod_regions(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg = false;
    let mut region_entry: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if let Some(entry) = region_entry {
            flags[idx] = true;
            // (depth updated below; region closes when we return to entry)
            let _ = entry;
        }
        if region_entry.is_none() {
            if contains_token(code, "cfg") && code.contains("#[") && code.contains("test") {
                pending_cfg = true;
            } else if pending_cfg && contains_token(code, "mod") && code.contains('{') {
                region_entry = Some(depth);
                pending_cfg = false;
                flags[idx] = true;
            } else if !code.is_empty() && !code.starts_with("#[") {
                pending_cfg = false;
            }
        }
        for ch in code.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(entry) = region_entry {
            if depth <= entry {
                region_entry = None;
            }
        }
    }
    flags
}

fn push(report: &mut Report, ctx: &FileCtx, line: usize, rule: &'static str, message: String) {
    if !ctx.allowed(line, rule) {
        report.diagnostics.push(Diagnostic {
            file: ctx.rel.clone(),
            line: line + 1,
            rule,
            message,
        });
    }
}

/// Runs every line-local rule over one file.
fn lint_file(ctx: &FileCtx, report: &mut Report) {
    let is_pool = ctx.rel.starts_with("crates/matrix/src/pool/");
    let hot_hash_file = matches!(
        ctx.rel.as_str(),
        "crates/matrix/src/matvec.rs"
            | "crates/matrix/src/kernels.rs"
            | "crates/matrix/src/plan.rs"
    );
    let budget_scoped = ctx.rel.starts_with("crates/core/src/kernel/")
        && !ctx.rel.ends_with("/state.rs")
        && !ctx.rel.ends_with("/budget.rs");
    let panic_scoped = ["core", "matrix", "solvers", "plans"]
        .iter()
        .any(|c| ctx.rel.starts_with(&format!("crates/{c}/src/")));
    // The audited fault-injection surface: every file allowed to host a
    // `triggered`/`panic_if` site. Extending the surface means editing
    // this list — a deliberate, reviewable act.
    let failpoint_site_file = matches!(
        ctx.rel.as_str(),
        "crates/matrix/src/failpoints.rs"
            | "crates/matrix/src/pool/mod.rs"
            | "crates/core/src/kernel/state.rs"
            | "crates/core/src/kernel/mod.rs"
            | "crates/solvers/src/cgls.rs"
            | "crates/solvers/src/lsqr.rs"
    );
    let failpoints_module = ctx.rel == "crates/matrix/src/failpoints.rs";
    let lib_src = ctx.rel.starts_with("crates/") && ctx.rel.contains("/src/");

    for (i, line) in ctx.lines.iter().enumerate() {
        let code = line.code.as_str();

        // Malformed / unknown-rule allow comments are diagnostics in
        // their own right, so typos cannot silently disable a rule.
        for a in &ctx.allows[i] {
            if !a.ok {
                report.diagnostics.push(Diagnostic {
                    file: ctx.rel.clone(),
                    line: i + 1,
                    rule: ALLOW_SYNTAX,
                    message: format!(
                        "malformed xlint directive (expected `xlint: allow(<rule>, reason = \
                         \"...\")` with a known rule and non-empty reason){}",
                        if a.rule.is_empty() {
                            String::new()
                        } else {
                            format!(": rule `{}`", a.rule)
                        }
                    ),
                });
            }
        }

        if !is_pool {
            for tok in ["thread::spawn", "thread::scope"] {
                if contains_token(code, tok) {
                    push(
                        report,
                        ctx,
                        i,
                        "determinism-thread",
                        format!(
                            "`{tok}` outside crates/matrix/src/pool/: all threading must go \
                             through the pool executor (fixed chunk geometry, pool-size \
                             bit-identity)"
                        ),
                    );
                }
            }
            if contains_token(code, "available_parallelism") {
                push(
                    report,
                    ctx,
                    i,
                    "determinism-parallelism",
                    "`available_parallelism` outside `pool::configured_parallelism`: chunk \
                     geometry must come from the process constant, not a machine query"
                        .to_string(),
                );
            }
        }

        if hot_hash_file {
            for tok in ["HashMap", "HashSet"] {
                if contains_token(code, tok) {
                    push(
                        report,
                        ctx,
                        i,
                        "determinism-hash-iter",
                        format!(
                            "`{tok}` in a hot evaluation file: iteration order is randomized \
                             per process — use a BTree/Vec structure or justify explicitly"
                        ),
                    );
                }
            }
        }

        if budget_scoped {
            if has_eps_comparison(code) {
                push(
                    report,
                    ctx,
                    i,
                    "budget-chokepoint",
                    "raw f64 comparison on an epsilon value outside state.rs: admission \
                     decisions must funnel through the KernelState chokepoint (NaN passes \
                     every raw </<= guard)"
                        .to_string(),
                );
            }
            for field in ["reserved", "budget", "held", "charged"] {
                if has_field_mutation(code, field) {
                    push(
                        report,
                        ctx,
                        i,
                        "budget-chokepoint",
                        format!(
                            "mutation of `.{field}` outside state.rs: budget trackers may \
                             only move inside the KernelState chokepoint"
                        ),
                    );
                }
            }
        }

        if lib_src && !ctx.in_test_mod[i] {
            if !failpoints_module {
                for tok in [
                    "failpoints::arm",
                    "failpoints::arm_schedule",
                    "failpoints::clear",
                ] {
                    if contains_token(code, tok) {
                        push(
                            report,
                            ctx,
                            i,
                            "failpoint-sites",
                            format!(
                                "`{tok}` in library code: fault schedules may only be armed \
                                 from tests or the failpoints module — an arm call here is a \
                                 hidden nondeterminism channel"
                            ),
                        );
                    }
                }
            }
            if !failpoint_site_file {
                for tok in ["failpoints::triggered", "failpoints::panic_if"] {
                    if contains_token(code, tok) {
                        push(
                            report,
                            ctx,
                            i,
                            "failpoint-sites",
                            format!(
                                "`{tok}` outside the audited site list: fault-injection sites \
                                 are part of the reviewed failure surface — add the file to \
                                 xlint's site list deliberately or move the site"
                            ),
                        );
                    }
                }
            }
        }

        // unsafe-safety: every `unsafe` keyword (except fn-pointer types
        // like `unsafe fn(*mut T)`) needs an adjacent SAFETY: comment.
        let mut from = 0;
        let mut unsafe_here = false;
        while let Some(at) = find_token(code, "unsafe", from) {
            let rest = code[at + "unsafe".len()..].trim_start();
            let fn_pointer_type = rest
                .strip_prefix("fn")
                .map(|r| r.trim_start().starts_with('('))
                .unwrap_or(false);
            if !fn_pointer_type {
                unsafe_here = true;
            }
            from = at + 1;
        }
        if unsafe_here {
            let safety = ctx.safety_comment(i);
            if safety.is_none() {
                push(
                    report,
                    ctx,
                    i,
                    "unsafe-safety",
                    "`unsafe` without an adjacent `// SAFETY:` comment (same line or within \
                     the five lines above)"
                        .to_string(),
                );
            }
            report.unsafe_sites.push(UnsafeSite {
                file: ctx.rel.clone(),
                line: i + 1,
                safety,
            });
        }

        if panic_scoped && !ctx.in_test_mod[i] {
            for hit in panic_policy_hits(code) {
                push(
                    report,
                    ctx,
                    i,
                    "panic-policy",
                    format!(
                        "`{hit}` in library code: convert to a typed EktError path or \
                         justify with an allowlist comment"
                    ),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// kernel-class: cross-file rule over kernels.rs + proptest_kernels.rs.
// ---------------------------------------------------------------------------

const KERNELS_FILE: &str = "crates/matrix/src/kernels.rs";
const KERNELS_TESTS: &str = "crates/matrix/tests/proptest_kernels.rs";

/// Checks that every `pub fn` in `kernels.rs` carries a class tag in its
/// doc block and is referenced by name from `proptest_kernels.rs`.
fn lint_kernel_classes(ctx: &FileCtx, proptest_src: Option<&str>, report: &mut Report) {
    let proptest = proptest_src.map(strip_lines);
    for (i, line) in ctx.lines.iter().enumerate() {
        if ctx.in_test_mod[i] {
            continue;
        }
        let code = line.code.trim();
        let Some(rest) = code.strip_prefix("pub fn ") else {
            continue;
        };
        let Some(name) = ident_starting_at(rest, 0) else {
            continue;
        };
        // Collect the contiguous comment/attribute block directly above.
        let mut tag = None;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let above = &ctx.lines[j];
            let acode = above.code.trim();
            if !acode.is_empty() && !acode.starts_with("#[") {
                break;
            }
            if acode.is_empty() && above.comment.is_empty() {
                break;
            }
            if let Some(pos) = above.comment.find("CLASS:") {
                tag = Some(above.comment[pos + "CLASS:".len()..].trim().to_string());
            }
        }
        match tag.as_deref() {
            Some(t) if t.starts_with("order-preserving") || t.starts_with("reassociating") => {}
            Some(t) => push(
                report,
                ctx,
                i,
                "kernel-class",
                format!(
                    "kernel `{name}` has unknown class `{t}` (expected `order-preserving` \
                     or `reassociating`)"
                ),
            ),
            None => push(
                report,
                ctx,
                i,
                "kernel-class",
                format!(
                    "public kernel `{name}` is missing a `// CLASS: order-preserving | \
                     reassociating` tag in its doc block"
                ),
            ),
        }
        let referenced = proptest
            .as_ref()
            .map(|lines| lines.iter().any(|l| contains_token(&l.code, name)))
            .unwrap_or(false);
        if !referenced {
            push(
                report,
                ctx,
                i,
                "kernel-class",
                format!(
                    "public kernel `{name}` is not exercised from {KERNELS_TESTS} (every \
                     kernel must be covered by the bit-identity / tolerance proptests)"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tree walk.
// ---------------------------------------------------------------------------

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "shims", "xlint", "related"];

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One file, lexed and parsed once; shared by every rule and every cfg
/// configuration (the <5 s CI budget depends on parsing each file
/// exactly once).
pub(crate) struct AnalyzedFile {
    pub(crate) ctx: FileCtx,
    pub(crate) facts: parse::FileFacts,
}

/// A fully loaded workspace: every `.rs` file lexed and parsed exactly
/// once. [`Analysis::lint`] can then be run repeatedly with different
/// [`Config`]s (the CI cfg matrix) without re-reading or re-parsing.
pub struct Analysis {
    files: Vec<AnalyzedFile>,
    proptest_src: Option<String>,
}

impl Analysis {
    /// Loads every `.rs` file under `root` (the workspace root, or a
    /// fixture tree shaped like one), in sorted order.
    pub fn load(root: &Path) -> io::Result<Analysis> {
        let mut paths = Vec::new();
        collect_rs_files(root, &mut paths)?;
        let mut files = Vec::new();
        for path in &paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = fs::read_to_string(path)?;
            let ctx = FileCtx::new(rel, &src);
            let facts = parse::parse_file(&ctx.lines);
            files.push(AnalyzedFile { ctx, facts });
        }
        let proptest_src = fs::read_to_string(root.join(KERNELS_TESTS)).ok();
        Ok(Analysis {
            files,
            proptest_src,
        })
    }

    /// Runs every rule (line-local and flow) under `config`.
    /// Deterministic: files are visited in sorted order and every
    /// report section is sorted.
    pub fn lint(&self, config: &Config) -> Report {
        let mut report = Report::default();
        for af in &self.files {
            lint_file(&af.ctx, &mut report);
            if af.ctx.rel == KERNELS_FILE {
                lint_kernel_classes(&af.ctx, self.proptest_src.as_deref(), &mut report);
            }
            report.files_scanned += 1;
        }
        flow::run(&self.files, config, &mut report);
        report
            .diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        report
            .unsafe_sites
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        report
            .lock_regions
            .sort_by(|a, b| (&a.file, a.start).cmp(&(&b.file, b.start)));
        report
            .warm_roots
            .sort_by(|a, b| (&a.file, &a.name).cmp(&(&b.file, &b.name)));
        report
            .cfg_pairs
            .sort_by(|a, b| (&a.file, a.kind, &a.name).cmp(&(&b.file, b.kind, &b.name)));
        report
    }
}

/// Lints every `.rs` file under `root` with the default configuration
/// (no cargo features active). The one-shot entry point; for the cfg
/// matrix, [`Analysis::load`] once and [`Analysis::lint`] per config.
pub fn lint_root(root: &Path) -> io::Result<Report> {
    Ok(Analysis::load(root)?.lint(&Config::default()))
}

// ---------------------------------------------------------------------------
// JSON rendering (machine-readable mode; no external deps).
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as a single JSON object:
/// `{"files_scanned":N,"diagnostics":[...],"unsafe_inventory":[...]}`
/// (the inventory is included only when `inventory` is set).
pub fn to_json(report: &Report, inventory: bool) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str("\"diagnostics\":[");
    for (k, d) in report.diagnostics.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&d.file),
            d.line,
            json_escape(d.rule),
            json_escape(&d.message)
        ));
    }
    out.push(']');
    if inventory {
        out.push_str(",\"unsafe_inventory\":[");
        for (k, s) in report.unsafe_sites.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let safety = match &s.safety {
                Some(t) => format!("\"{}\"", json_escape(t)),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"safety\":{}}}",
                json_escape(&s.file),
                s.line,
                safety
            ));
        }
        out.push_str("],\"lock_regions\":[");
        for (k, r) in report.lock_regions.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            let binding = match &r.binding {
                Some(b) => format!("\"{}\"", json_escape(b)),
                None => "null".to_string(),
            };
            let events = r
                .events
                .iter()
                .map(|e| format!("\"{}\"", json_escape(e)))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"fn\":\"{}\",\"kind\":\"{}\",\"start\":{},\"end\":{},\
                 \"binding\":{},\"events\":[{}]}}",
                json_escape(&r.file),
                json_escape(&r.fn_name),
                json_escape(r.kind),
                r.start,
                r.end,
                binding,
                events
            ));
        }
        out.push_str("],\"warm_roots\":[");
        for (k, w) in report.warm_roots.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"name\":\"{}\",\"closure\":{},\"alloc_sites\":{}}}",
                json_escape(&w.file),
                json_escape(&w.name),
                w.closure,
                w.alloc_sites
            ));
        }
        out.push_str("],\"cfg_pairs\":[");
        for (k, p) in report.cfg_pairs.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":\"{}\",\"name\":\"{}\",\"kind\":\"{}\"}}",
                json_escape(&p.file),
                json_escape(&p.name),
                json_escape(p.kind)
            ));
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_strings_and_chars() {
        let src = r#"let x = "thread::spawn"; // thread::spawn in comment
let c = 'a'; let lt: &'static str = s;
/* block
   thread::spawn */ let y = 1;"#;
        let lines = strip_lines(src);
        assert_eq!(lines.len(), 4);
        assert!(!lines[0].code.contains("thread::spawn"));
        assert!(lines[0].comment.contains("thread::spawn"));
        assert!(lines[1].code.contains("'static"));
        assert!(!lines[3].code.contains("thread::spawn"));
        assert!(lines[3].code.contains("let y = 1;"));
        assert!(lines[3].comment.contains("thread::spawn"));
    }

    #[test]
    fn lexer_handles_raw_strings_and_nested_blocks() {
        let src =
            "let r = r#\"panic! \"quoted\" here\"#;\n/* a /* nested */ still comment */ code();";
        let lines = strip_lines(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[1].code.contains("code();"));
        assert!(!lines[1].code.contains("nested"));
    }

    #[test]
    fn eps_ident_shapes() {
        for yes in [
            "eps",
            "EPS_TOL",
            "eps_total",
            "epsilon",
            "root_eps",
            "per_round_eps_cost",
        ] {
            assert!(is_eps_ident(yes), "{yes}");
        }
        for no in ["steps", "n_steps", "pepsin", "epsord"] {
            assert!(!is_eps_ident(no), "{no}");
        }
    }

    #[test]
    fn eps_comparisons_detected() {
        assert!(has_eps_comparison("if eps <= 0.0 {"));
        assert!(has_eps_comparison("if x.abs() < eps {"));
        assert!(has_eps_comparison("if total > eps_total {"));
        assert!(!has_eps_comparison("let v: Vec<f64> = vec![];"));
        assert!(!has_eps_comparison("for i in 0..n_steps {"));
        assert!(!has_eps_comparison("let f = |x| -> f64 { x };"));
    }

    #[test]
    fn field_mutations_detected() {
        assert!(has_field_mutation("st.reserved += eps;", "reserved"));
        assert!(has_field_mutation("self.nodes[sv].budget -= x;", "budget"));
        assert!(has_field_mutation("s.budget[sv] = 0.0;", "budget"));
        assert!(!has_field_mutation("if st.reserved == 0.0 {", "reserved"));
        assert!(!has_field_mutation(
            "let b = self.nodes[sv].budget;",
            "budget"
        ));
        assert!(!has_field_mutation("self.budget.push(0.0);", "budget"));
    }

    #[test]
    fn allow_parsing_accepts_well_formed_and_rejects_malformed() {
        let ok = parse_allows("// xlint: allow(panic-policy, reason = \"invariant: guarded\")");
        assert_eq!(ok.len(), 1);
        assert!(ok[0].ok && ok[0].rule == "panic-policy");
        let missing_reason = parse_allows("// xlint: allow(panic-policy)");
        assert!(!missing_reason[0].ok);
        let empty_reason = parse_allows("// xlint: allow(panic-policy, reason = \"\")");
        assert!(!empty_reason[0].ok);
        let unknown = parse_allows("// xlint: allow(no-such-rule, reason = \"x\")");
        assert!(!unknown[0].ok);
        // Reasons are prose: parentheses and commas inside the quotes must
        // not be mistaken for the directive's own delimiters.
        let nested = parse_allows(
            "// xlint: allow(panic-policy, reason = \"guarded by len() == 1 (see above, really)\")",
        );
        assert!(nested[0].ok && nested[0].rule == "panic-policy");
        let unclosed = parse_allows("// xlint: allow(panic-policy, reason = \"no closing paren\"");
        assert!(!unclosed[0].ok);
    }

    #[test]
    fn panic_hits_do_not_match_neighbors() {
        assert_eq!(panic_policy_hits("x.unwrap();"), vec![".unwrap()"]);
        assert!(panic_policy_hits("x.unwrap_or_else(|| 0)").is_empty());
        assert!(panic_policy_hits("std::panic::catch_unwind(f)").is_empty());
        assert_eq!(panic_policy_hits("panic!(\"boom\")"), vec!["panic!"]);
        assert_eq!(panic_policy_hits("x.expect(\"msg\")"), vec![".expect(...)"]);
        assert!(panic_policy_hits("x.expected_len()").is_empty());
    }
}
