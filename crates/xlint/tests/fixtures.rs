//! Fixture self-tests: each fixture is a miniature workspace tree, so the
//! path-scoped rules (pool/ exemption, state.rs chokepoint, hot-file
//! hash ban, kernels/proptest cross-reference) and the flow rules
//! (lock-discipline, warm-path-alloc, determinism-transitive,
//! cfg-parity) are exercised exactly as they run against the real tree.
//!
//! * `violations/` seeds one violation per rule at a known line and
//!   pairs each with the path-exempt twin (same code in `pool/mod.rs`,
//!   `pool/deque.rs` — the relocated pool module tree — `state.rs`, or
//!   a `#[cfg(test)]` module must stay silent);
//! * `allowed/` carries the same violations under well-formed
//!   `xlint: allow(...)` directives and must lint clean;
//! * `badallow/` holds malformed directives, which must surface as
//!   `allow-syntax` diagnostics rather than silently disabling rules.

use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The (file, line, rule) triple of every diagnostic, in report order.
fn keys(report: &xlint::Report) -> Vec<(String, usize, &'static str)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

#[test]
fn violations_are_detected_at_exact_lines() {
    let report = xlint::lint_root(&fixture("violations")).expect("fixture tree scans");
    let expected: Vec<(String, usize, &str)> = [
        // mod.rs: raw eps comparison + reserved mutation outside state.rs,
        // then the reservation-ledger fields (held/charged) likewise.
        ("crates/core/src/kernel/mod.rs", 6, "budget-chokepoint"),
        ("crates/core/src/kernel/mod.rs", 9, "budget-chokepoint"),
        ("crates/core/src/kernel/mod.rs", 14, "budget-chokepoint"),
        ("crates/core/src/kernel/mod.rs", 15, "budget-chokepoint"),
        // locked_work: allocation, pool dispatch, solver entry and
        // reentrant self-call inside a live KernelState guard, then a
        // panic that fires under both the flow and the line rule.
        ("crates/core/src/kernel/mod.rs", 25, "lock-discipline"),
        ("crates/core/src/kernel/mod.rs", 26, "lock-discipline"),
        ("crates/core/src/kernel/mod.rs", 27, "lock-discipline"),
        ("crates/core/src/kernel/mod.rs", 28, "lock-discipline"),
        ("crates/core/src/kernel/mod.rs", 29, "lock-discipline"),
        ("crates/core/src/kernel/mod.rs", 29, "panic-policy"),
        // moved_guard: the guard is assigned in a nested block but the
        // binding outlives it — the alloc after the block close is still
        // inside the region.
        ("crates/core/src/kernel/mod.rs", 46, "lock-discipline"),
        // lib.rs: bare unsafe block, library unwrap, then an arm call in
        // library code and a failpoint site outside the audited list
        // (the undeclared name also trips the SITES parity check).
        ("crates/core/src/lib.rs", 3, "unsafe-safety"),
        ("crates/core/src/lib.rs", 7, "panic-policy"),
        ("crates/core/src/lib.rs", 19, "failpoint-sites"),
        ("crates/core/src/lib.rs", 20, "cfg-parity"),
        ("crates/core/src/lib.rs", 20, "failpoint-sites"),
        // failpoints.rs: `ghost::site` is declared but used nowhere.
        ("crates/matrix/src/failpoints.rs", 6, "cfg-parity"),
        // graph.rs: hash use visible only transitively from matvec_into.
        ("crates/matrix/src/graph.rs", 5, "determinism-transitive"),
        // kernels.rs: untagged fires twice (missing tag + unreferenced),
        // tagged_untested once (unreferenced), mistagged once (bad tag).
        ("crates/matrix/src/kernels.rs", 6, "kernel-class"),
        ("crates/matrix/src/kernels.rs", 6, "kernel-class"),
        ("crates/matrix/src/kernels.rs", 11, "kernel-class"),
        ("crates/matrix/src/kernels.rs", 16, "kernel-class"),
        // matvec.rs: hash import, machine query, hash use, ad-hoc thread.
        ("crates/matrix/src/matvec.rs", 1, "determinism-hash-iter"),
        ("crates/matrix/src/matvec.rs", 4, "determinism-parallelism"),
        ("crates/matrix/src/matvec.rs", 5, "determinism-hash-iter"),
        ("crates/matrix/src/matvec.rs", 7, "determinism-thread"),
        // simdkern.rs: simd-gated fn without a scalar leg; twin modules
        // with a scalar-only export.
        ("crates/matrix/src/simdkern.rs", 4, "cfg-parity"),
        ("crates/matrix/src/simdkern.rs", 12, "cfg-parity"),
        // warm.rs: allocation in the transitive closure of a WARM root.
        ("crates/matrix/src/warm.rs", 10, "warm-path-alloc"),
    ]
    .into_iter()
    .map(|(f, l, r)| (f.to_string(), l, r))
    .collect();
    assert_eq!(
        keys(&report),
        expected,
        "full diagnostics: {:#?}",
        report.diagnostics
    );
    // The path-exempt twins stayed silent: pool/mod.rs and pool/deque.rs
    // (the threading-owner module tree), state.rs (budget chokepoint,
    // incl. held/charged), the #[cfg(test)] unwrap, the site in
    // kernel/mod.rs (audited site file), and the arm call inside a
    // #[cfg(test)] module.
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.rule == "failpoint-sites" && d.line > 20));
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.file.contains("pool/") || d.file.contains("state.rs")));
    // The bare unsafe site is inventoried without a justification.
    assert_eq!(report.unsafe_sites.len(), 1);
    assert_eq!(report.unsafe_sites[0].file, "crates/core/src/lib.rs");
    assert_eq!(report.unsafe_sites[0].line, 3);
    assert!(report.unsafe_sites[0].safety.is_none());
    // The warm diagnostic names its reaching chain.
    let warm = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "warm-path-alloc")
        .expect("warm diagnostic present");
    assert!(
        warm.message.contains("accumulate -> stage"),
        "chain missing: {}",
        warm.message
    );
    // Flow inventory: the guard regions, WARM roots and verified
    // cfg pairs all surface.
    assert!(
        report
            .lock_regions
            .iter()
            .any(|r| r.fn_name == "moved_guard" && r.kind == "KernelState"),
        "moved_guard region missing: {:?}",
        report.lock_regions
    );
    let root = report
        .warm_roots
        .iter()
        .find(|w| w.name == "accumulate")
        .expect("WARM root inventoried");
    assert!(root.closure >= 2 && root.alloc_sites >= 1);
    assert!(report
        .cfg_pairs
        .iter()
        .any(|p| p.kind == "kernel-twin" && p.name.contains("dot")));
    assert!(report
        .cfg_pairs
        .iter()
        .any(|p| p.kind == "failpoint-site" && p.name.contains("state::charge")));
}

#[test]
fn allowlisted_violations_are_honored() {
    let report = xlint::lint_root(&fixture("allowed")).expect("fixture tree scans");
    assert!(
        report.clean(),
        "allowed tree must lint clean, got: {:#?}",
        report.diagnostics
    );
    // The justified unsafe site is inventoried with its SAFETY text.
    assert_eq!(report.unsafe_sites.len(), 1);
    let safety = report.unsafe_sites[0].safety.as_deref().unwrap_or("");
    assert!(safety.contains("SAFETY:"), "inventory text: {safety:?}");
}

#[test]
fn malformed_allow_directives_are_diagnostics() {
    let report = xlint::lint_root(&fixture("badallow")).expect("fixture tree scans");
    let got = keys(&report);
    assert_eq!(
        got,
        vec![
            ("crates/core/src/lib.rs".to_string(), 1, "allow-syntax"),
            ("crates/core/src/lib.rs".to_string(), 4, "allow-syntax"),
            // A reason-less allow on a warm-path allocation surfaces as
            // a syntax diagnostic AND does not suppress the flow rule.
            ("crates/matrix/src/warm.rs".to_string(), 7, "allow-syntax"),
            (
                "crates/matrix/src/warm.rs".to_string(),
                8,
                "warm-path-alloc"
            ),
        ],
        "full diagnostics: {:#?}",
        report.diagnostics
    );
    // The unknown-rule case names the bad rule so the typo is findable.
    assert!(report.diagnostics[1].message.contains("made-up-rule"));
}

#[test]
fn json_output_is_well_formed_and_complete() {
    let report = xlint::lint_root(&fixture("violations")).expect("fixture tree scans");
    let json = xlint::to_json(&report, true);
    // Hand-rolled writer: check the load-bearing structure.
    assert!(json.contains("\"diagnostics\":["));
    assert!(json.contains("\"unsafe_inventory\":["));
    assert!(json.contains("\"files_scanned\":"));
    assert!(json.contains("\"rule\":\"determinism-thread\""));
    assert!(json.contains("\"file\":\"crates/matrix/src/matvec.rs\""));
    // Every diagnostic is present, and the bare unsafe site reads null.
    assert_eq!(json.matches("\"rule\":").count(), report.diagnostics.len());
    assert!(json.contains("\"safety\":null"));
}
