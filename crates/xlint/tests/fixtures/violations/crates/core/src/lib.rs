pub fn first(v: &[u32]) -> u32 {
    let p = v.as_ptr();
    unsafe { *p }
}

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_in_test_modules_are_exempt() {
        assert_eq!("4".parse::<u32>().unwrap(), 4);
    }
}

pub fn poke() -> bool {
    failpoints::arm("pool::job", 1);
    failpoints::triggered("covert::site")
}

#[cfg(test)]
mod fault_tests {
    fn arms_are_test_only() {
        failpoints::arm("pool::job", 1);
    }
}
