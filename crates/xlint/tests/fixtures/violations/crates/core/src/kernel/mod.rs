pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    if eps <= 0.0 {
        return false;
    }
    st.reserved += eps;
    true
}
