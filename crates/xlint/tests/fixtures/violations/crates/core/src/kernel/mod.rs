pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    if eps <= 0.0 {
        return false;
    }
    st.reserved += eps;
    true
}

pub fn redeem(e: &mut Entry, take: f64) {
    e.held -= take;
    e.charged += take;
}

pub fn site_file_twin() -> bool {
    // kernel/mod.rs is on the audited site list: a site here is legal.
    failpoints::triggered("state::charge")
}
