pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    if eps <= 0.0 {
        return false;
    }
    st.reserved += eps;
    true
}

pub fn redeem(e: &mut Entry, take: f64) {
    e.held -= take;
    e.charged += take;
}

pub fn site_file_twin() -> bool {
    // kernel/mod.rs is on the audited site list: a site here is legal.
    failpoints::triggered("state::charge")
}

pub fn locked_work(&self) {
    let st = self.state.lock();
    let scratch = vec![0.0; 4];
    pool::scope(|s| s.run(&scratch));
    let r = solve(&st);
    self.audit(r);
    st.entries.first().unwrap();
}

pub fn audit(&self, r: f64) {
    let st = self.state.lock();
    drop(st);
    let _ = r;
}

// The guard is assigned inside a nested block but the binding outlives
// it: the region must follow the move, so the allocation after the
// block close is still inside the critical section.
pub fn moved_guard(&self) {
    let held;
    {
        held = self.state.lock();
    }
    let tail = vec![0.0; 4];
    drop(held);
    let _ = tail;
}
