// state.rs is the budget chokepoint: the same comparison and mutation
// that are violations in mod.rs are legal here.
pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    if eps <= 0.0 {
        return false;
    }
    st.reserved += eps;
    true
}

// Reservation-ledger mutations are likewise chokepoint-only — and legal
// here.
pub fn redeem(e: &mut Entry, take: f64) {
    e.held -= take;
    e.charged += take;
}
