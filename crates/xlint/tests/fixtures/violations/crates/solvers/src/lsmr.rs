// A public solver entry point: calling it while a kernel lock is held
// is a lock-discipline violation (solvers are long-running and
// allocate).
pub fn solve(stats: &Stats) -> f64 {
    stats.residual
}
