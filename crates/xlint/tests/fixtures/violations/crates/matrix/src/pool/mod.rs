// The pool/ module tree is the sanctioned thread owner: neither the
// spawn nor the machine query below may be reported, and the same
// exemption covers submodules (this fixture adds pool/deque.rs as the
// relocated-layout twin).
pub fn spawn_workers() {
    std::thread::spawn(|| {});
    let _ = std::thread::available_parallelism();
}
