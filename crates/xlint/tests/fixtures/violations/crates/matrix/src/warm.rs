/// Streams the accumulator tail.
///
/// WARM: steady-state fixture entry point — the transitive closure
/// must be allocation-free.
pub fn accumulate(out: &mut [f64]) {
    stage(out);
}

fn stage(out: &mut [f64]) {
    let tmp = vec![0.0; out.len()];
    out[0] = tmp[0];
}
