// pool.rs is the sanctioned thread owner: neither the spawn nor the
// machine query below may be reported.
pub fn spawn_workers() {
    std::thread::spawn(|| {});
    let _ = std::thread::available_parallelism();
}
