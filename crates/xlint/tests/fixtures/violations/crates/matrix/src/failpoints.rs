// `ghost::site` is deliberately orphaned: declared here, used nowhere
// in the tree — the parity rule must flag its entry line.
pub const SITES: &[&str] = &[
    "state::charge",
    "pool::job",
    "ghost::site",
];
