/// CLASS: order-preserving
pub fn tagged_and_tested(x: &mut [f64]) {
    x[0] = 0.0;
}

pub fn untagged(x: &mut [f64]) {
    x[0] = 1.0;
}

/// CLASS: reassociating
pub fn tagged_untested(x: &[f64]) -> f64 {
    x.iter().sum()
}

/// CLASS: commutative-diagonal
pub fn mistagged(x: &mut [f64]) {
    x[0] = 2.0;
}
