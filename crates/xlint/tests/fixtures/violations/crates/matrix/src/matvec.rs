use std::collections::HashMap;

pub fn chunks() -> usize {
    let n = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut m = HashMap::new();
    m.insert(0usize, n);
    std::thread::spawn(move || m.len());
    n
}

// A deterministic entry point whose callee (graph.rs, not a hot file)
// uses a hash container: only the transitive rule can see it.
pub fn matvec_into(x: &[f64], out: &mut [f64]) {
    shard(x, out);
}
