use std::collections::HashMap;

pub fn chunks() -> usize {
    let n = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut m = HashMap::new();
    m.insert(0usize, n);
    std::thread::spawn(move || m.len());
    n
}
