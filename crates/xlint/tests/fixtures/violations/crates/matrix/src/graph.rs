// Not one of the hot files the determinism *line* rules watch — the
// hash use below is only reportable transitively, from the matvec.rs
// entry point that calls into it.
pub fn shard(x: &[f64], out: &mut [f64]) {
    let mut seen = std::collections::HashSet::new();
    seen.insert(x.len());
    out[0] = x[0];
}
