// cfg-parity fixtures: a simd-gated fn with no scalar leg, and twin
// scalar/simd modules whose public surfaces diverge.
#[cfg(feature = "simd")]
pub fn accel(x: &mut [f64]) {
    x[0] *= 2.0;
}

pub mod scalar {
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a[0] * b[0]
    }
    pub fn only_scalar(a: &[f64]) -> f64 {
        a[0]
    }
}

pub mod simd {
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a[0] * b[0]
    }
}
