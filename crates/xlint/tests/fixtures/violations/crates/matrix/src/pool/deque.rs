// Submodule of the sanctioned thread owner: exempt like pool/mod.rs.
pub fn steal_loop() {
    std::thread::scope(|_| {});
}
