#[test]
fn kernels_cover() {
    let mut x = [1.0, 2.0];
    tagged_and_tested(&mut x);
    mistagged(&mut x);
}
