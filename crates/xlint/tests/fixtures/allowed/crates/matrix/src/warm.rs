/// WARM: steady-state fixture entry point.
pub fn accumulate(out: &mut [f64]) {
    // xlint: allow(warm-path-alloc, reason = "fixture: setup boundary — stage runs once per plan build, severed edge")
    stage(out);
    refill(out);
}

fn stage(out: &mut [f64]) {
    let tmp = vec![0.0; out.len()];
    out[0] = tmp[0];
}

fn refill(out: &mut [f64]) {
    // xlint: allow(warm-path-alloc, reason = "fixture: grow-once branch, steady state never reallocates")
    let tmp = vec![0.0; 1];
    out[0] += tmp[0];
}
