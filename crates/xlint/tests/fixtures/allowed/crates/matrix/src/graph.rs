// Reached from matvec.rs's deterministic entry point only through a
// severed (allowed) edge — the hash use below must stay unreported.
pub fn shard(x: &[f64], out: &mut [f64]) {
    let mut seen = std::collections::HashSet::new();
    seen.insert(x.len());
    out[0] = x[0];
}
