// xlint: allow(cfg-parity, reason = "fixture: the scalar leg lives in another crate during a migration window")
#[cfg(feature = "simd")]
pub fn accel(x: &mut [f64]) {
    x[0] *= 2.0;
}
