/// Writes zero into the head slot.
///
/// CLASS: order-preserving
pub fn tagged_and_tested(x: &mut [f64]) {
    x[0] = 0.0;
}
