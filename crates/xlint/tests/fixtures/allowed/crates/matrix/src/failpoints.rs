pub const SITES: &[&str] = &[
    "covert::site",
    // xlint: allow(cfg-parity, reason = "fixture: site parked during a migration window")
    "parked::site",
];
