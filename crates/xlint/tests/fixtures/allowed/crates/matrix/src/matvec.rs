// xlint: allow(determinism-hash-iter, reason = "fixture: allowlisted import (u64 keys, sorted before iteration)")
use std::collections::HashMap;

pub fn chunks() -> usize {
    // xlint: allow(determinism-parallelism, reason = "fixture: diagnostic print only, never feeds chunk geometry")
    let n = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    let mut m = HashMap::new(); // xlint: allow(determinism-hash-iter, reason = "fixture: trailing allow form")
    m.insert(0usize, n);
    // xlint: allow(determinism-thread, reason = "fixture: baseline comparison arm, results discarded")
    std::thread::spawn(move || m.len());
    n
}

pub fn matvec_into(x: &[f64], out: &mut [f64]) {
    // xlint: allow(determinism-transitive, reason = "fixture: shard's hash keys are u64, sorted before iteration")
    shard(x, out);
}
