pub fn first(v: &[u32]) -> u32 {
    let p = v.as_ptr();
    // SAFETY: fixture — p points at v's first element and v is non-empty
    // by the caller's contract.
    unsafe { *p }
}

pub fn parse(s: &str) -> u32 {
    // xlint: allow(panic-policy, reason = "fixture: input is a compile-time constant")
    s.parse().unwrap()
}

pub fn poke() -> bool {
    // xlint: allow(failpoint-sites, reason = "fixture: site under migration to the audited list")
    failpoints::triggered("covert::site")
}
