pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    // xlint: allow(budget-chokepoint, reason = "fixture: pre-chokepoint fast path, re-validated by state.rs")
    if eps <= 0.0 {
        return false;
    }
    // xlint: allow(budget-chokepoint, reason = "fixture: mutation mirrored from the chokepoint for a test double")
    st.reserved += eps;
    true
}

pub fn locked_work(&self) {
    let st = self.state.lock();
    // xlint: allow(lock-discipline, reason = "fixture: bounded one-shot allocation while holding the ledger")
    let scratch = vec![0.0; 4];
    // xlint: allow(lock-discipline, reason = "fixture: the dispatch is a no-op double in this tree")
    pool::scope(|s| s.run(&scratch));
    drop(st);
}
