pub struct St {
    pub reserved: f64,
}

pub fn admit(st: &mut St, eps: f64) -> bool {
    // xlint: allow(budget-chokepoint, reason = "fixture: pre-chokepoint fast path, re-validated by state.rs")
    if eps <= 0.0 {
        return false;
    }
    // xlint: allow(budget-chokepoint, reason = "fixture: mutation mirrored from the chokepoint for a test double")
    st.reserved += eps;
    true
}
