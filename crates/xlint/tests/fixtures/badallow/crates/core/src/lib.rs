// xlint: allow(panic-policy)
pub fn f() {}

// xlint: allow(made-up-rule, reason = "x")
pub fn g() {}
