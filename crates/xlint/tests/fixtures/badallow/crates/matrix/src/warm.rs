/// WARM: fixture root.
pub fn accumulate(out: &mut [f64]) {
    hydrate(out);
}

fn hydrate(out: &mut [f64]) {
    // xlint: allow(warm-path-alloc)
    let tmp = vec![0.0; 1];
    out[0] = tmp[0];
}
