//! The linter's own gate on the real tree: `cargo test -p xlint` (and so
//! the root `cargo test`) fails if any workspace file violates a rule —
//! under every cfg leg the CI matrix builds — or any `unsafe` site loses
//! its `SAFETY:` justification. The tree is parsed once
//! ([`xlint::Analysis::load`]) and re-linted per feature set, which is
//! what keeps the full matrix under the CI time budget.

use std::path::PathBuf;

fn analysis() -> xlint::Analysis {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    xlint::Analysis::load(&root).expect("workspace scans")
}

fn assert_clean(report: &xlint::Report, leg: &str) {
    assert!(
        report.clean(),
        "xlint found violations in the real tree (features: {leg}):\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_lints_clean_across_cfg_matrix() {
    let analysis = analysis();
    let legs: &[&[&str]] = &[
        &[],
        &["simd"],
        &["parallel"],
        &["failpoints"],
        &["simd", "parallel", "failpoints"],
    ];
    for leg in legs {
        let config = xlint::Config::with_features(leg.iter().copied());
        let report = analysis.lint(&config);
        assert_clean(&report, &leg.join(","));
    }
}

#[test]
fn workspace_inventory_is_sound() {
    let report = analysis().lint(&xlint::Config::default());
    assert_clean(&report, "<default>");
    // Sanity: the walk actually covered the workspace (guards against a
    // silently-wrong root making this test vacuous).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Unsafe hygiene is a hard gate, not just an inventory: every site
    // must carry its justification.
    let unjustified: Vec<_> = report
        .unsafe_sites
        .iter()
        .filter(|s| s.safety.is_none())
        .map(|s| format!("{}:{}", s.file, s.line))
        .collect();
    assert!(
        unjustified.is_empty(),
        "unsafe sites without SAFETY comments: {unjustified:?}"
    );
    // The flow analysis actually saw the tree: the kernel's guard
    // regions, the matvec/kernels WARM roots and the failpoint SITES
    // parity pairs must all be inventoried — an empty section here
    // means a rule went vacuous, not that the tree is pristine.
    assert!(
        report
            .lock_regions
            .iter()
            .any(|r| r.file.ends_with("core/src/kernel/mod.rs") && r.kind == "KernelState"),
        "no KernelState guard regions found in the kernel"
    );
    let warm: Vec<&str> = report.warm_roots.iter().map(|w| w.name.as_str()).collect();
    for root in ["matvec_into", "rmatvec_into", "rmatvec_add", "par_dot"] {
        assert!(warm.contains(&root), "WARM root `{root}` missing: {warm:?}");
    }
    assert!(
        report.warm_roots.iter().all(|w| w.closure >= 1),
        "degenerate WARM closure: {:?}",
        report.warm_roots
    );
    let fp_pairs = report
        .cfg_pairs
        .iter()
        .filter(|p| p.kind == "failpoint-site")
        .count();
    assert!(
        fp_pairs >= 7,
        "expected every declared failpoint verified, got {fp_pairs}"
    );
}
