//! The linter's own gate on the real tree: `cargo test -p xlint` (and so
//! the root `cargo test`) fails if any workspace file violates a rule or
//! any `unsafe` site loses its `SAFETY:` justification — CI enforcement
//! without depending on the separate `cargo run -p xlint` step.

use std::path::PathBuf;

#[test]
fn workspace_lints_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = xlint::lint_root(&root).expect("workspace scans");
    assert!(
        report.clean(),
        "xlint found violations in the real tree:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually covered the workspace (guards against a
    // silently-wrong root making this test vacuous).
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );
    // Unsafe hygiene is a hard gate, not just an inventory: every site
    // must carry its justification.
    let unjustified: Vec<_> = report
        .unsafe_sites
        .iter()
        .filter(|s| s.safety.is_none())
        .map(|s| format!("{}:{}", s.file, s.line))
        .collect();
    assert!(
        unjustified.is_empty(),
        "unsafe sites without SAFETY comments: {unjustified:?}"
    );
}
