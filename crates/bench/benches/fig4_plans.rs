//! Criterion version of the Fig. 4 plan-runtime comparison at fixed,
//! bench-friendly sizes: the same logical plan under dense / sparse /
//! implicit measurement matrices. (The full domain sweep lives in the
//! `fig4` binary; criterion gives statistically robust per-point numbers.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ektelo_core::ops::inference::{least_squares, LsSolver};
use ektelo_core::ops::selection::{h2, hb, stripe_select};
use ektelo_data::generators::{shape_1d, Shape1D};
use ektelo_matrix::{Matrix, Repr};
use ektelo_plans::util::kernel_for_histogram;
use std::hint::black_box;

fn run_plan(x: &[f64], strategy: &Matrix, eps: f64) -> Vec<f64> {
    let (k, root) = kernel_for_histogram(x, eps, 5);
    let start = k.measurement_count();
    k.vector_laplace(root, strategy, eps).expect("measure");
    least_squares(&k.measurements_since(start), LsSolver::Iterative)
}

fn bench_h2_representations(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_h2_plan");
    group.sample_size(10);
    let n = 4096;
    let x = shape_1d(Shape1D::Bimodal, n, 1e6, 2);
    let implicit = h2(n);
    for (name, repr) in [
        ("dense", Repr::Dense),
        ("sparse", Repr::Sparse),
        ("implicit", Repr::Implicit),
    ] {
        let strategy = implicit.with_repr(repr);
        group.bench_with_input(BenchmarkId::new("repr", name), &strategy, |b, s| {
            b.iter(|| black_box(run_plan(&x, s, 0.1)))
        });
    }
    group.finish();
}

fn bench_striped_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_striped_kron");
    group.sample_size(10);
    // Small census-like domain: 357 × 5 × 7 × 4 × 2 = 99,960 cells.
    let sizes = [357usize, 5, 7, 4, 2];
    let n: usize = sizes.iter().product();
    let x = shape_1d(Shape1D::IncomeLike, n, 49_436.0, 3);
    let implicit = stripe_select(&sizes, 0, hb);
    let factor_sparse = stripe_select(&sizes, 0, |m| Matrix::sparse(hb(m).to_sparse()));
    let basic_sparse = implicit.with_repr(Repr::Sparse);
    for (name, strategy) in [
        ("implicit", &implicit),
        ("kron_sparse_factor", &factor_sparse),
        ("basic_sparse", &basic_sparse),
    ] {
        group.bench_with_input(BenchmarkId::new("form", name), strategy, |b, s| {
            b.iter(|| black_box(run_plan(&x, s, 0.1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_h2_representations, bench_striped_kron);
criterion_main!(benches);
