//! Criterion micro-benchmarks validating the complexity claims of paper
//! Tables 2 and 3: matrix–vector products of the core implicit matrices
//! against their sparse and dense materializations, and of composed
//! (Kronecker) matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ektelo_matrix::{Matrix, Repr};
use std::hint::black_box;

fn bench_core_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_core");
    group.sample_size(20);

    for &n in &[1usize << 10, 1 << 14] {
        let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        for (name, m) in [
            ("identity", Matrix::identity(n)),
            ("prefix", Matrix::prefix(n)),
            ("wavelet", Matrix::wavelet(n)),
            (
                "range_dyadic",
                Matrix::range_queries(
                    n,
                    (0..n / 2).map(|i| (2 * i, 2 * i + 2)).collect::<Vec<_>>(),
                ),
            ),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("{name}/implicit"), n), &m, |b, m| {
                b.iter(|| black_box(m.matvec(&x)))
            });
            // Sparse comparison (Table 2's right columns). Dense is only
            // feasible at the small size.
            let sparse = m.with_repr(Repr::Sparse);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/sparse"), n),
                &sparse,
                |b, m| b.iter(|| black_box(m.matvec(&x))),
            );
            if n <= 1 << 10 {
                let dense = m.with_repr(Repr::Dense);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/dense"), n),
                    &dense,
                    |b, m| b.iter(|| black_box(m.matvec(&x))),
                );
            }
        }
    }
    group.finish();
}

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_kron");
    group.sample_size(20);
    // A census-like marginal strategy: I ⊗ Total ⊗ I (Table 3 composition).
    for &side in &[32usize, 128] {
        let m = Matrix::kron_list(vec![
            Matrix::identity(side),
            Matrix::total(8),
            Matrix::identity(side),
        ]);
        let n = m.cols();
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::new("marginal/implicit", n), &m, |b, m| {
            b.iter(|| black_box(m.matvec(&x)))
        });
        let sparse = m.with_repr(Repr::Sparse);
        group.bench_with_input(BenchmarkId::new("marginal/sparse", n), &sparse, |b, m| {
            b.iter(|| black_box(m.matvec(&x)))
        });
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(20);
    let n = 1 << 14;
    for (name, m) in [
        ("wavelet", Matrix::wavelet(n)),
        ("h2_union", Matrix::vstack(vec![Matrix::identity(n), Matrix::wavelet(n)])),
        (
            "kron",
            Matrix::kron(Matrix::prefix(128), Matrix::wavelet(128)),
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(m.l1_sensitivity())));
    }
    group.finish();
}

criterion_group!(benches, bench_core_matrices, bench_kron, bench_sensitivity);
criterion_main!(benches);
