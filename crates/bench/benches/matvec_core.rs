//! Criterion micro-benchmarks validating the complexity claims of paper
//! Tables 2 and 3: matrix–vector products of the core implicit matrices
//! against their sparse and dense materializations, and of composed
//! (Kronecker) matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ektelo_matrix::{pool, Matrix, Repr, Workspace};
use std::hint::black_box;

fn bench_core_matrices(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_core");
    group.sample_size(20);

    for &n in &[1usize << 10, 1 << 14] {
        let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        for (name, m) in [
            ("identity", Matrix::identity(n)),
            ("prefix", Matrix::prefix(n)),
            ("wavelet", Matrix::wavelet(n)),
            (
                "range_dyadic",
                Matrix::range_queries(
                    n,
                    (0..n / 2).map(|i| (2 * i, 2 * i + 2)).collect::<Vec<_>>(),
                ),
            ),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/implicit"), n),
                &m,
                |b, m| b.iter(|| black_box(m.matvec(&x))),
            );
            // Sparse comparison (Table 2's right columns). Dense is only
            // feasible at the small size.
            let sparse = m.with_repr(Repr::Sparse);
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/sparse"), n),
                &sparse,
                |b, m| b.iter(|| black_box(m.matvec(&x))),
            );
            if n <= 1 << 10 {
                let dense = m.with_repr(Repr::Dense);
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}/dense"), n),
                    &dense,
                    |b, m| b.iter(|| black_box(m.matvec(&x))),
                );
            }
        }
    }
    group.finish();
}

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("matvec_kron");
    group.sample_size(20);
    // A census-like marginal strategy: I ⊗ Total ⊗ I (Table 3 composition).
    for &side in &[32usize, 128] {
        let m = Matrix::kron_list(vec![
            Matrix::identity(side),
            Matrix::total(8),
            Matrix::identity(side),
        ]);
        let n = m.cols();
        let x: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        group.bench_with_input(BenchmarkId::new("marginal/implicit", n), &m, |b, m| {
            b.iter(|| black_box(m.matvec(&x)))
        });
        let sparse = m.with_repr(Repr::Sparse);
        group.bench_with_input(BenchmarkId::new("marginal/sparse", n), &sparse, |b, m| {
            b.iter(|| black_box(m.matvec(&x)))
        });
    }
    group.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(20);
    let n = 1 << 14;
    for (name, m) in [
        ("wavelet", Matrix::wavelet(n)),
        (
            "h2_union",
            Matrix::vstack(vec![Matrix::identity(n), Matrix::wavelet(n)]),
        ),
        (
            "kron",
            Matrix::kron(Matrix::prefix(128), Matrix::wavelet(128)),
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(m.l1_sensitivity())));
    }
    group.finish();
}

/// The seed repository's evaluation strategy, reconstructed as a reference
/// "before": every combinator node allocates a fresh `Vec` per call
/// (`Product` its intermediate, `Range` its prefix array, the wrapper its
/// output), exactly as the pre-workspace engine did. Leaves evaluate
/// through the current kernels (leaves need no scratch, so this isolates
/// the per-node allocation cost being benchmarked).
fn seed_engine_matvec(m: &Matrix, x: &[f64]) -> Vec<f64> {
    let mut out = vec![0.0; m.rows()];
    seed_engine_matvec_into(m, x, &mut out);
    out
}

fn seed_engine_matvec_into(m: &Matrix, x: &[f64], out: &mut [f64]) {
    match m {
        Matrix::Union(blocks) => {
            let mut offset = 0;
            for b in blocks {
                let rows = b.rows();
                seed_engine_matvec_into(b, x, &mut out[offset..offset + rows]);
                offset += rows;
            }
        }
        Matrix::Product(a, b) => {
            let t = seed_engine_matvec(b, x);
            seed_engine_matvec_into(a, &t, out);
        }
        Matrix::Scaled(c, a) => {
            seed_engine_matvec_into(a, x, out);
            for o in out.iter_mut() {
                *o *= c;
            }
        }
        Matrix::Range(r) => r.matvec_into(x, out), // allocates its prefix array
        other => other.matvec_into(x, out, &mut Workspace::new()),
    }
}

/// PR 1's workspace engine, reconstructed for product-chain shapes: the
/// nested recursion carved **one intermediate per `Product`** off a
/// pre-sized arena (`matvec_scratch`), so a k-product lineage dragged k
/// live n-buffers through every call. PR 2's chain plan ping-pongs two.
/// Leaf kernels are identical to the library's, so the delta isolates the
/// buffer-assignment change.
fn pr1_engine_matvec(m: &Matrix, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
    match m {
        Matrix::Product(a, b) => {
            let (t, rest) = scratch.split_at_mut(b.rows());
            pr1_engine_matvec(b, x, t, rest);
            pr1_engine_matvec(a, t, out, rest);
        }
        Matrix::Diagonal(d) => {
            for ((o, &di), &xi) in out.iter_mut().zip(d.iter()).zip(x) {
                *o = di * xi;
            }
        }
        Matrix::Prefix { .. } => {
            let mut acc = 0.0;
            for (o, &xi) in out.iter_mut().zip(x) {
                acc += xi;
                *o = acc;
            }
        }
        Matrix::Suffix { .. } => {
            let mut acc = 0.0;
            for (o, &xi) in out.iter_mut().rev().zip(x.iter().rev()) {
                acc += xi;
                *o = acc;
            }
        }
        other => panic!("pr1 engine reconstruction covers lineage shapes only, got {other:?}"),
    }
}

/// The allocation-free engine claim (paper §7 / ISSUE 1 acceptance): a
/// combinator tree at n = 2^16 evaluated three ways — the seed engine
/// (fresh `Vec` at every combinator node), the current allocating wrapper
/// (one fresh arena per call), and `matvec_into` with a pre-planned
/// reusable [`Workspace`].
fn bench_workspace_reuse(c: &mut Criterion) {
    let n = 1usize << 16;
    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();

    // Shape 1 — "striped": the union-of-narrow-product-blocks shape the
    // striped and marginal plans produce (hundreds of blocks, little work
    // per block). This is where the seed engine's per-node allocations
    // dominated the actual arithmetic.
    let stripes = 1024;
    let width = n / stripes;
    let striped = Matrix::vstack(
        (0..stripes)
            .map(|s| {
                let idx: Vec<usize> = (s * width..(s + 1) * width).collect();
                Matrix::product(Matrix::wavelet(width), Matrix::select_rows(n, &idx))
            })
            .collect(),
    );

    // Shape 2 — "lineage": a transformation-lineage product chain
    // (alternating reweightings and hierarchical transforms), the shape
    // every kernel-transformed source drags through inference. Each node
    // is cheap relative to the O(n) buffer the seed engine allocated and
    // zeroed for it, so this is where the workspace engine pays off most
    // (≥2x is the ISSUE 1 acceptance bar).
    let mut lineage = Matrix::diagonal((0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect());
    for k in 0..8 {
        let next = match k % 3 {
            0 => Matrix::prefix(n),
            1 => Matrix::diagonal((0..n).map(|i| 1.0 - (i % 5) as f64 * 0.1).collect()),
            _ => Matrix::suffix(n),
        };
        lineage = Matrix::Product(Box::new(next), Box::new(lineage));
    }

    // Shape 3 — "deep_chain": few large combinator nodes over hierarchical
    // strategies; compute-bound, so the gain here is modest by design.
    let chain = Matrix::vstack(vec![
        Matrix::product(
            Matrix::prefix(n),
            Matrix::product(Matrix::wavelet(n), Matrix::suffix(n)),
        ),
        Matrix::scaled(0.5, Matrix::wavelet(n)),
        Matrix::range_queries(n, (0..n / 2).map(|i| (2 * i, 2 * i + 2)).collect()),
    ]);

    let mut group = c.benchmark_group("matvec_tree_workspace");
    group.sample_size(30);
    for (shape, tree) in [
        ("striped", &striped),
        ("lineage", &lineage),
        ("deep_chain", &chain),
    ] {
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/seed_engine"), n),
            tree,
            |b, m| b.iter(|| black_box(seed_engine_matvec(m, &x))),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/allocating"), n),
            tree,
            |b, m| b.iter(|| black_box(m.matvec(&x))),
        );
        let mut ws = Workspace::for_matrix(tree);
        let mut out = vec![0.0; tree.rows()];
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/workspace"), n),
            tree,
            |b, m| {
                b.iter(|| {
                    m.matvec_into(&x, &mut out, &mut ws);
                    black_box(out[0])
                })
            },
        );
        // PR 1 engine reference on the lineage shape (same run, same
        // machine — the honest before/after for the ISSUE 2 acceptance:
        // cached-plan matvec vs the one-intermediate-per-product engine).
        if shape == "lineage" {
            let mut pr1_scratch = vec![0.0; tree.matvec_scratch()];
            group.bench_with_input(
                BenchmarkId::new(format!("{shape}/pr1_workspace_engine"), n),
                tree,
                |b, m| {
                    b.iter(|| {
                        pr1_engine_matvec(m, &x, &mut out, &mut pr1_scratch);
                        black_box(out[0])
                    })
                },
            );
        }
        // Explicit cached-plan entry (ISSUE 2): identical to `workspace`
        // now that plans are memoized, named separately so the cross-PR
        // trajectory can track the planned engine from this PR onward.
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/cached_plan"), n),
            tree,
            |b, m| {
                b.iter(|| {
                    m.matvec_into(&x, &mut out, &mut ws);
                    black_box(out[0])
                })
            },
        );
        // The anti-benchmark: force a planning pass on every call to
        // price what the cache removes from solver inner loops. Since
        // ISSUE 3 the plans live in a process-wide cache, so pricing a
        // replan takes clearing both the global cache and the workspace
        // fast path.
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/replan_every_call"), n),
            tree,
            |b, m| {
                b.iter(|| {
                    ektelo_matrix::plan_cache_clear();
                    ws.invalidate_plans();
                    m.matvec_into(&x, &mut out, &mut ws);
                    black_box(out[0])
                })
            },
        );
        // Transpose direction exercises the scatter-add path.
        let y: Vec<f64> = (0..tree.rows()).map(|i| (i % 5) as f64).collect();
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/allocating_t"), n),
            tree,
            |b, m| b.iter(|| black_box(m.rmatvec(&y))),
        );
        let mut back = vec![0.0; n];
        group.bench_with_input(
            BenchmarkId::new(format!("{shape}/workspace_t"), n),
            tree,
            |b, m| {
                b.iter(|| {
                    m.rmatvec_into(&y, &mut back, &mut ws);
                    black_box(back[0])
                })
            },
        );
    }
    group.finish();
}

/// Transpose/scatter-direction benches for the `parallel` feature (ISSUE
/// 2): a striped union (per-worker accumulators with deterministic merge)
/// and a large Kronecker (row- then column-chunked stages). Built without
/// the feature these measure the serial planned engine — the committed
/// `BENCH_matvec_core.json` is produced with `--features parallel`, and
/// the `serial_blocks` reference is computed per block (below the work
/// threshold) so it stays single-threaded in both configurations.
fn bench_parallel_rmatvec(c: &mut Criterion) {
    let n = 1usize << 16;
    let stripes = 64;
    let width = n / stripes;
    let blocks: Vec<Matrix> = (0..stripes)
        .map(|s| {
            let idx: Vec<usize> = (s * width..(s + 1) * width).collect();
            Matrix::product(Matrix::wavelet(width), Matrix::select_rows(n, &idx))
        })
        .collect();
    let union = Matrix::vstack(blocks.clone());
    let y: Vec<f64> = (0..union.rows()).map(|i| (i % 7) as f64 - 3.0).collect();

    let mut group = c.benchmark_group("parallel_rmatvec");
    group.sample_size(30);

    let mut ws = Workspace::for_matrix(&union);
    let mut back = vec![0.0; n];
    group.bench_with_input(
        BenchmarkId::new("union_striped/rmatvec_into", n),
        &union,
        |b, m| {
            b.iter(|| {
                m.rmatvec_into(&y, &mut back, &mut ws);
                black_box(back[0])
            })
        },
    );
    // Serial reference: scatter block by block through the same planned
    // engine (each block is below the parallel threshold).
    let mut block_ws: Vec<Workspace> = blocks.iter().map(Workspace::for_matrix).collect();
    group.bench_function(BenchmarkId::new("union_striped/serial_blocks", n), |b| {
        b.iter(|| {
            back.fill(0.0);
            let mut offset = 0;
            for (blk, ws) in blocks.iter().zip(block_ws.iter_mut()) {
                let rows = blk.rows();
                blk.rmatvec_add(&y[offset..offset + rows], &mut back, ws);
                offset += rows;
            }
            black_box(back[0])
        })
    });

    let kron = Matrix::kron(Matrix::prefix(256), Matrix::wavelet(256));
    let ky: Vec<f64> = (0..kron.rows()).map(|i| (i % 11) as f64 - 5.0).collect();
    let mut kws = Workspace::for_matrix(&kron);
    let mut kback = vec![0.0; kron.cols()];
    group.bench_with_input(
        BenchmarkId::new("kron_256x256/rmatvec_into", kron.cols()),
        &kron,
        |b, m| {
            b.iter(|| {
                m.rmatvec_into(&ky, &mut kback, &mut kws);
                black_box(kback[0])
            })
        },
    );
    group.finish();
}

/// ISSUE 3 headline benches: the process-wide plan cache on MWEM-shaped
/// loops. `mwem_round_loop` rebuilds a growing stacked union every round
/// (each round's spine is a brand-new shape sharing all-but-one block
/// with the previous round) and runs a few solver-ish product iterations;
/// `round_robin_9_shapes` rotates one more strategy shape than the old
/// per-workspace cap-8 LRU could hold — the eviction pathology that used
/// to rebuild plans on every single call. Each gets a `replan_baseline`
/// twin that clears the plan cache where the PR 2 engine would have
/// missed, pricing exactly what the global cache removes.
fn bench_plan_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_cache");
    group.sample_size(30);
    let n = 1usize << 12;
    let rounds = 16;
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();

    // One measurement block per round, shaped like what MWEM inference
    // actually stacks: the selected query row composed with the source's
    // transformation lineage — a product chain whose factors (not just
    // the block) the cache shares across rounds. Payloads differ per
    // round, shapes don't.
    let lineage = Matrix::diagonal((0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect());
    let rows: Vec<Matrix> = (0..rounds)
        .map(|r| {
            let triplets: Vec<(usize, usize, f64)> =
                (r * 32..r * 32 + 24).map(|j| (0, j, 1.0)).collect();
            Matrix::product(
                Matrix::sparse(ektelo_matrix::CsrMatrix::from_triplets(1, n, &triplets)),
                lineage.clone(),
            )
        })
        .collect();

    let run_round_loop = |replan: bool| {
        let mut ws = Workspace::new();
        let mut blocks: Vec<Matrix> = Vec::new();
        let mut acc = 0.0;
        for row in &rows {
            if replan {
                ektelo_matrix::plan_cache_clear();
                ws.invalidate_plans();
            }
            blocks.push(row.clone());
            let system = Matrix::vstack(blocks.clone());
            let mut out = vec![0.0; system.rows()];
            let mut back = vec![0.0; system.cols()];
            for _ in 0..2 {
                system.matvec_into(&x, &mut out, &mut ws);
                system.rmatvec_into(&out, &mut back, &mut ws);
            }
            acc += back[0];
        }
        acc
    };
    group.bench_function(BenchmarkId::new("mwem_round_loop/global_cache", n), |b| {
        b.iter(|| black_box(run_round_loop(false)))
    });
    group.bench_function(
        BenchmarkId::new("mwem_round_loop/replan_baseline", n),
        |b| b.iter(|| black_box(run_round_loop(true))),
    );

    // 9 shapes through one workspace: the old cap-8 LRU rebuilt on every
    // call once the rotation wrapped.
    let shapes: Vec<Matrix> = (1..=9)
        .map(|k| {
            Matrix::vstack(vec![
                Matrix::wavelet(n),
                Matrix::range_queries(n, (0..k * 32).map(|i| (i, i + 2)).collect::<Vec<_>>()),
            ])
        })
        .collect();
    let mut outs: Vec<Vec<f64>> = shapes.iter().map(|m| vec![0.0; m.rows()]).collect();
    let mut run_rotation = |replan: bool| {
        let mut ws = Workspace::new();
        let mut acc = 0.0;
        for _ in 0..3 {
            for (m, out) in shapes.iter().zip(&mut outs) {
                if replan {
                    ektelo_matrix::plan_cache_clear();
                    ws.invalidate_plans();
                }
                m.matvec_into(&x, out, &mut ws);
                acc += out[0];
            }
        }
        acc
    };
    group.bench_function(
        BenchmarkId::new("round_robin_9_shapes/global_cache", n),
        |b| b.iter(|| black_box(run_rotation(false))),
    );
    group.bench_function(
        BenchmarkId::new("round_robin_9_shapes/replan_baseline", n),
        |b| b.iter(|| black_box(run_rotation(true))),
    );
    group.finish();
}

/// ISSUE 3 arena-pool benches: warm threaded evaluation drawing worker
/// scratch/accumulators/panels from the workspace pool. Committed numbers
/// are produced with `--features parallel` (serial builds measure the
/// serial planned engine — still pool-free by construction). Tracked
/// cross-PR against the PR 2 `parallel_rmatvec` entries, whose workers
/// allocated per call.
fn bench_arena_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_pool");
    group.sample_size(30);

    let n = 1usize << 16;
    let stripes = 64;
    let width = n / stripes;
    let union = Matrix::vstack(
        (0..stripes)
            .map(|s| {
                let idx: Vec<usize> = (s * width..(s + 1) * width).collect();
                Matrix::product(Matrix::wavelet(width), Matrix::select_rows(n, &idx))
            })
            .collect(),
    );
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
    let y: Vec<f64> = (0..union.rows()).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut ws = Workspace::for_matrix(&union);
    let mut out = vec![0.0; union.rows()];
    let mut back = vec![0.0; union.cols()];
    group.bench_function(BenchmarkId::new("union_striped_fwd/pooled", n), |b| {
        b.iter(|| {
            union.matvec_into(&x, &mut out, &mut ws);
            black_box(out[0])
        })
    });
    group.bench_function(BenchmarkId::new("union_striped_scatter/pooled", n), |b| {
        b.iter(|| {
            union.rmatvec_into(&y, &mut back, &mut ws);
            black_box(back[0])
        })
    });

    let kron = Matrix::kron(Matrix::prefix(256), Matrix::wavelet(256));
    let ky: Vec<f64> = (0..kron.rows()).map(|i| (i % 11) as f64 - 5.0).collect();
    let mut kws = Workspace::for_matrix(&kron);
    let mut kback = vec![0.0; kron.cols()];
    group.bench_function(
        BenchmarkId::new("kron_256x256_scatter/pooled", kron.cols()),
        |b| {
            b.iter(|| {
                kron.rmatvec_into(&ky, &mut kback, &mut kws);
                black_box(kback[0])
            })
        },
    );
    group.finish();
}

/// ISSUE 5 headline benches: the persistent pool executor vs per-region
/// `std::thread::scope` on **identical chunked work**. Both arms run the
/// same fixed chunk partition with the same pre-built per-chunk
/// workspaces; the only difference is the dispatch harness — fresh OS
/// threads per region (what every threaded path paid before this PR)
/// versus parked pool workers with preallocated job slots (what they pay
/// now). `small_union` (n = 4096) is the regime the spawn tax dominated;
/// `large_union` (n = 65536) pins that pooling costs nothing when
/// compute dominates. `dispatch_only` isolates the raw per-region
/// harness cost on near-empty jobs.
fn bench_pool_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_executor");
    group.sample_size(30);
    const NCHUNKS: usize = 4;

    // Raw dispatch cost: NCHUNKS jobs of ~256 flops each.
    let data: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
    let mut sums = [0.0f64; NCHUNKS];
    group.bench_function("dispatch_only/scoped_spawn", |b| {
        b.iter(|| {
            // xlint: allow(determinism-thread, reason = "intentional baseline arm: measures OS thread spawn/join cost against the pool executor; never computes engine results")
            std::thread::scope(|s| {
                for slot in sums.iter_mut() {
                    let d = &data;
                    s.spawn(move || *slot = d.iter().sum());
                }
            });
            black_box(sums[0])
        })
    });
    group.bench_function("dispatch_only/pooled", |b| {
        b.iter(|| {
            ektelo_matrix::pool::scope(|s| {
                for slot in sums.iter_mut() {
                    let d = &data;
                    s.spawn(move || *slot = d.iter().sum());
                }
            });
            black_box(sums[0])
        })
    });

    for (label, n, blocks) in [
        // 8 wavelet blocks over a small domain: per-call compute is tens
        // of µs, so ~40µs of thread spawn/join is the dominant cost.
        ("small_union", 1usize << 12, {
            let n = 1usize << 12;
            (0..8).map(|_| Matrix::wavelet(n)).collect::<Vec<_>>()
        }),
        // The arena_pool striped shape at n = 2^16: compute-bound.
        ("large_union", 1usize << 16, {
            let n = 1usize << 16;
            let stripes = 64;
            let width = n / stripes;
            (0..stripes)
                .map(|s| {
                    let idx: Vec<usize> = (s * width..(s + 1) * width).collect();
                    Matrix::product(Matrix::wavelet(width), Matrix::select_rows(n, &idx))
                })
                .collect::<Vec<_>>()
        }),
    ] {
        let rows_per_block = blocks[0].rows();
        let bpc = blocks.len().div_ceil(NCHUNKS);
        let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 - 6.0).collect();
        let mut out = vec![0.0; blocks.len() * rows_per_block];
        let mut chunk_ws: Vec<Workspace> = (0..NCHUNKS)
            .map(|_| Workspace::for_matrix(&blocks[0]))
            .collect();
        // Warm plans and arenas in every chunk workspace.
        for (bchunk, ws) in blocks.chunks(bpc).zip(chunk_ws.iter_mut()) {
            let mut tmp = vec![0.0; rows_per_block];
            for blk in bchunk {
                blk.matvec_into(&x, &mut tmp, ws);
            }
        }
        group.bench_function(BenchmarkId::new(format!("{label}/scoped_spawn"), n), |b| {
            b.iter(|| {
                // xlint: allow(determinism-thread, reason = "intentional baseline arm: same chunk geometry as the pool path, timed on fresh OS threads for comparison; results are discarded")
                std::thread::scope(|s| {
                    for ((bchunk, ochunk), ws) in blocks
                        .chunks(bpc)
                        .zip(out.chunks_mut(bpc * rows_per_block))
                        .zip(chunk_ws.iter_mut())
                    {
                        let x = &x;
                        s.spawn(move || {
                            for (blk, ospan) in bchunk.iter().zip(ochunk.chunks_mut(rows_per_block))
                            {
                                blk.matvec_into(x, ospan, ws);
                            }
                        });
                    }
                });
                black_box(out[0])
            })
        });
        group.bench_function(BenchmarkId::new(format!("{label}/pooled"), n), |b| {
            b.iter(|| {
                ektelo_matrix::pool::scope(|s| {
                    for ((bchunk, ochunk), ws) in blocks
                        .chunks(bpc)
                        .zip(out.chunks_mut(bpc * rows_per_block))
                        .zip(chunk_ws.iter_mut())
                    {
                        let x = &x;
                        s.spawn(move || {
                            for (blk, ospan) in bchunk.iter().zip(ochunk.chunks_mut(rows_per_block))
                            {
                                blk.matvec_into(x, ospan, ws);
                            }
                        });
                    }
                });
                black_box(out[0])
            })
        });
    }
    group.finish();
}

/// ISSUE 6 kernel micro-benches: scalar-vs-simd pairs measured in the same
/// run (same-run reference entries, following the `pr1_workspace_engine`
/// precedent). Both kernel modules are always compiled, so the pairs are
/// honest in every build — the `simd` feature only selects which leg the
/// engine paths call.
fn bench_simd_kernels(c: &mut Criterion) {
    use ektelo_matrix::kernels;
    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(40);
    let n = 1usize << 16;
    let a: Vec<f64> = (0..n)
        .map(|i| ((i * 37) % 19) as f64 * 0.31 - 2.7)
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 53) % 23) as f64 * 0.17 - 1.9)
        .collect();

    // dot: the scalar sum is a sequential dependency chain the optimizer
    // must not reassociate, so this pair shows the full lane-width win.
    group.bench_function(BenchmarkId::new("dot_scalar", n), |bch| {
        bch.iter(|| black_box(kernels::scalar::dot(black_box(&a), black_box(&b))))
    });
    group.bench_function(BenchmarkId::new("dot_simd", n), |bch| {
        bch.iter(|| black_box(kernels::simd::dot(black_box(&a), black_box(&b))))
    });

    let mut y = vec![0.0; n];
    group.bench_function(BenchmarkId::new("axpy_scalar", n), |bch| {
        bch.iter(|| {
            kernels::scalar::axpy(&mut y, 1.0009, black_box(&a));
            black_box(y[0])
        })
    });
    y.fill(0.0);
    group.bench_function(BenchmarkId::new("axpy_simd", n), |bch| {
        bch.iter(|| {
            kernels::simd::axpy(&mut y, 1.0009, black_box(&a));
            black_box(y[0])
        })
    });

    // scatter_add = the Union transpose merge (`add_assign`).
    y.fill(0.0);
    group.bench_function(BenchmarkId::new("scatter_add_scalar", n), |bch| {
        bch.iter(|| {
            kernels::scalar::add_assign(&mut y, black_box(&b));
            black_box(y[0])
        })
    });
    y.fill(0.0);
    group.bench_function(BenchmarkId::new("scatter_add_simd", n), |bch| {
        bch.iter(|| {
            kernels::simd::add_assign(&mut y, black_box(&b));
            black_box(y[0])
        })
    });

    // Kron stage-2 data movement: KRON_PANEL-wide gather/scatter panels
    // vs the column-at-a-time walk the scalar leg performs.
    let rows = 256usize;
    let stride = 256usize;
    let t: Vec<f64> = (0..rows * stride).map(|i| (i % 17) as f64).collect();
    let mut panel = vec![0.0; kernels::KRON_PANEL * rows];
    let mut outm = vec![0.0; rows * stride];
    group.bench_function(BenchmarkId::new("kron_panel_scalar", rows), |bch| {
        bch.iter(|| {
            for q in 0..stride {
                let j = q % kernels::KRON_PANEL;
                for i in 0..rows {
                    panel[j * rows + i] = t[i * stride + q];
                }
                for i in 0..rows {
                    outm[i * stride + q] = panel[j * rows + i];
                }
            }
            black_box(outm[0])
        })
    });
    group.bench_function(BenchmarkId::new("kron_panel_simd", rows), |bch| {
        bch.iter(|| {
            let mut q = 0;
            while q + kernels::KRON_PANEL <= stride {
                kernels::gather_panel(&t, stride, q, rows, &mut panel);
                kernels::scatter_panel(&panel, rows, &mut outm, stride, q);
                q += kernels::KRON_PANEL;
            }
            black_box(outm[0])
        })
    });
    group.finish();
}

/// ISSUE 10 service-concurrency bench: N independent sessions, each
/// executing a mixed plan sequence (HB-Striped, DAWA-Striped, MWEM) on
/// its own equally-sized kernel, all contending for the one shared
/// process pool. Measured before the scheduler was built (the ISSUE's
/// "measure first" gate) and kept as the standing baseline arm:
///
/// * `linear_scan` — what a naive service does today: one OS thread per
///   session, every session's parallel regions hammering the pool's
///   linear slot scan with inline fallback. At N sessions this pays N
///   thread spawns per batch plus scheduler thrash, and a long session
///   can monopolize the workers it wins.
/// * `bucketed` — sessions become typed work packets on the two-tier
///   scheduler (`pool::bucket`): per-worker deques absorb the burst,
///   idle workers steal, and round-robin release keeps sessions fair.
///   No OS threads are created per batch.
///
/// The acceptance bar: `bucketed` no worse at N=1, measurably faster at
/// N ≥ 16.
fn bench_many_sessions_contention(c: &mut Criterion) {
    use ektelo_plans::mwem::{plan_mwem, MwemOptions};
    use ektelo_plans::striped::{plan_dawa_striped, plan_hb_striped};
    use ektelo_plans::util::kernel_for_histogram;

    let mut group = c.benchmark_group("many_sessions_contention");
    group.sample_size(10);

    let sizes = [32usize, 3, 2];
    let n: usize = sizes.iter().product();
    let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64 + 1.0).collect();
    let eps = 0.8;
    let workload = Matrix::prefix(n);
    let opts = MwemOptions {
        rounds: 2,
        total: x.iter().sum(),
        mw_iterations: 8,
    };

    // One session's plan mix. Fresh kernels per run (seeded per session)
    // so sessions are independent; the checksum keeps the work honest.
    let run_session = |session: u64| -> f64 {
        let (k, root) = kernel_for_histogram(&x, eps, 100 + session);
        let mut acc: f64 = plan_hb_striped(&k, root, &sizes, 0, eps)
            .unwrap()
            .x_hat
            .iter()
            .sum();
        let (k, root) = kernel_for_histogram(&x, eps, 200 + session);
        acc += plan_dawa_striped(&k, root, &sizes, 0, &[(0, 16)], eps, 0.25)
            .unwrap()
            .x_hat
            .iter()
            .sum::<f64>();
        let (k, root) = kernel_for_histogram(&x, eps, 300 + session);
        acc += plan_mwem(&k, root, &workload, eps, &opts)
            .unwrap()
            .x_hat
            .iter()
            .sum::<f64>();
        acc
    };

    for &nsessions in &[1usize, 4, 16, 64] {
        let mut acc = vec![0.0f64; nsessions];
        group.bench_function(BenchmarkId::new("linear_scan", nsessions), |b| {
            b.iter(|| {
                // xlint: allow(determinism-thread, reason = "intentional baseline arm: one OS thread per session is what a service without the bucketed scheduler pays; results are checksummed and discarded")
                std::thread::scope(|s| {
                    for (i, slot) in acc.iter_mut().enumerate() {
                        let run_session = &run_session;
                        s.spawn(move || *slot = run_session(i as u64));
                    }
                });
                black_box(acc[0])
            })
        });

        // The bucketed arm: each session's HB and DAWA plans are Measure
        // packets (independent kernels, free to run concurrently), its
        // MWEM plan an Infer packet the open condition holds back until
        // the session's measurements finish. No OS threads per batch —
        // packets ride the persistent pool's per-worker deques, and the
        // round-robin release keeps N sessions fair.
        let mut out = vec![0.0f64; nsessions * 3];
        group.bench_function(BenchmarkId::new("bucketed", nsessions), |b| {
            b.iter(|| {
                let mut set = pool::bucket::SessionSet::new();
                {
                    let mut slots = out.iter_mut();
                    let (x, sizes, workload, opts) = (&x, &sizes, &workload, &opts);
                    for i in 0..nsessions {
                        let session = i as u64;
                        let sid = set.session();
                        let hb = slots.next().unwrap();
                        set.submit(sid, pool::bucket::Stage::Measure, move || {
                            let (k, root) = kernel_for_histogram(x, eps, 100 + session);
                            *hb = plan_hb_striped(&k, root, sizes, 0, eps)
                                .unwrap()
                                .x_hat
                                .iter()
                                .sum();
                        });
                        let dawa = slots.next().unwrap();
                        set.submit(sid, pool::bucket::Stage::Measure, move || {
                            let (k, root) = kernel_for_histogram(x, eps, 200 + session);
                            *dawa = plan_dawa_striped(&k, root, sizes, 0, &[(0, 16)], eps, 0.25)
                                .unwrap()
                                .x_hat
                                .iter()
                                .sum();
                        });
                        let mwem = slots.next().unwrap();
                        set.submit(sid, pool::bucket::Stage::Infer, move || {
                            let (k, root) = kernel_for_histogram(x, eps, 300 + session);
                            *mwem = plan_mwem(&k, root, workload, eps, opts)
                                .unwrap()
                                .x_hat
                                .iter()
                                .sum();
                        });
                    }
                }
                set.run();
                black_box(out[0])
            })
        });
    }
    group.finish();
}

// `bench_workspace_reuse` must run first: the seed engine's dominant cost
// is mmap/munmap churn on its large per-node temporaries (glibc unmaps
// >128 KiB frees while the dynamic mmap threshold is cold — exactly the
// state a fresh solver process is in). Benches that run earlier warm the
// threshold and mask that cost.
criterion_group!(
    benches,
    bench_workspace_reuse,
    bench_parallel_rmatvec,
    bench_plan_cache,
    bench_arena_pool,
    bench_pool_executor,
    bench_many_sessions_contention,
    bench_core_matrices,
    bench_kron,
    bench_sensitivity,
    bench_simd_kernels
);
criterion_main!(benches);
