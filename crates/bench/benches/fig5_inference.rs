//! Criterion version of the Fig. 5 inference-scalability comparison at
//! fixed sizes: least-squares engines (direct vs iterative) across matrix
//! representations, plus tree-based inference and NNLS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ektelo_core::ops::inference::{
    least_squares, non_negative_least_squares, tree_based_h2, LsSolver,
};
use ektelo_core::ops::selection::h2;
use ektelo_core::{MeasuredQuery, ProtectedKernel};
use ektelo_data::generators::{shape_1d, Shape1D};
use ektelo_matrix::{Repr, Workspace};
use std::hint::black_box;

fn h2_measurement(n: usize, repr: Repr) -> MeasuredQuery {
    let x = shape_1d(Shape1D::Gaussian, n, 1e6, 3);
    let k = ProtectedKernel::init_from_vector(x, 1.0, 9);
    k.vector_laplace(k.root(), &h2(n).with_repr(repr), 1.0)
        .expect("measure");
    k.measurements().remove(0)
}

fn bench_ls_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_ls");
    group.sample_size(10);

    // Direct dense is the small-domain baseline.
    let m_dense_small = h2_measurement(1024, Repr::Dense);
    group.bench_function(BenchmarkId::new("dense_direct", 1024), |b| {
        b.iter(|| {
            black_box(least_squares(
                std::slice::from_ref(&m_dense_small),
                LsSolver::Direct,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("dense_iterative", 1024), |b| {
        b.iter(|| {
            black_box(least_squares(
                std::slice::from_ref(&m_dense_small),
                LsSolver::Iterative,
            ))
        })
    });

    // Iterative at a larger domain: sparse vs implicit.
    let n = 1 << 16;
    let m_sparse = h2_measurement(n, Repr::Sparse);
    let m_implicit = h2_measurement(n, Repr::Implicit);
    group.bench_function(BenchmarkId::new("sparse_iterative", n), |b| {
        b.iter(|| {
            black_box(least_squares(
                std::slice::from_ref(&m_sparse),
                LsSolver::Iterative,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("implicit_iterative", n), |b| {
        b.iter(|| {
            black_box(least_squares(
                std::slice::from_ref(&m_implicit),
                LsSolver::Iterative,
            ))
        })
    });
    group.bench_function(BenchmarkId::new("implicit_cgls", n), |b| {
        b.iter(|| {
            black_box(least_squares(
                std::slice::from_ref(&m_implicit),
                LsSolver::IterativeCgls,
            ))
        })
    });
    group.finish();
}

fn bench_nnls_and_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_nnls_tree");
    group.sample_size(10);
    let n = 1 << 14;
    let m_implicit = h2_measurement(n, Repr::Implicit);
    group.bench_function(BenchmarkId::new("nnls_implicit", n), |b| {
        b.iter(|| {
            black_box(non_negative_least_squares(std::slice::from_ref(
                &m_implicit,
            )))
        })
    });
    let answers = m_implicit.answers.clone();
    group.bench_function(BenchmarkId::new("tree_based", n), |b| {
        b.iter(|| black_box(tree_based_h2(n, &answers)))
    });
    group.finish();
}

/// The engine-level before/after underlying Fig. 5's iterative numbers:
/// one solver-iteration worth of H2-strategy products (`A·v` then `Aᵀ·u`)
/// through the allocating wrappers versus a reused [`Workspace`].
fn bench_solver_iteration_products(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_iteration_products");
    group.sample_size(30);
    let n = 1usize << 16;
    let strategy = h2(n);
    let (rows, cols) = strategy.shape();
    let v: Vec<f64> = (0..cols).map(|i| (i % 11) as f64).collect();
    let u: Vec<f64> = (0..rows).map(|i| (i % 7) as f64).collect();

    group.bench_function(BenchmarkId::new("allocating", n), |b| {
        b.iter(|| {
            let av = strategy.matvec(&v);
            let atu = strategy.rmatvec(&u);
            black_box((av[0], atu[0]))
        })
    });

    let mut ws = Workspace::for_matrix(&strategy);
    let mut av = vec![0.0; rows];
    let mut atu = vec![0.0; cols];
    group.bench_function(BenchmarkId::new("workspace", n), |b| {
        b.iter(|| {
            strategy.matvec_into(&v, &mut av, &mut ws);
            strategy.rmatvec_into(&u, &mut atu, &mut ws);
            black_box((av[0], atu[0]))
        })
    });

    // Cached-plan entries (ISSUE 2): the workspace path above is now
    // plan-cached; price the cache by forcing a planning pass per
    // iteration pair, and measure a lineage-shaped system (a measurement
    // query composed with an 8-deep transformation lineage — the shape
    // `stack_measurements` hands the solvers) where the chain plan's
    // ping-pong buffers shrink the working set.
    group.bench_function(BenchmarkId::new("workspace_replan", n), |b| {
        b.iter(|| {
            // Clearing only the workspace fast path would still hit the
            // process-wide cache (ISSUE 3); clear both to price a replan.
            ektelo_matrix::plan_cache_clear();
            ws.invalidate_plans();
            strategy.matvec_into(&v, &mut av, &mut ws);
            strategy.rmatvec_into(&u, &mut atu, &mut ws);
            black_box((av[0], atu[0]))
        })
    });

    let mut lineage =
        ektelo_matrix::Matrix::diagonal((0..n).map(|i| 1.0 + (i % 3) as f64 * 0.25).collect());
    for k in 0..8 {
        let next = match k % 3 {
            0 => ektelo_matrix::Matrix::prefix(n),
            1 => ektelo_matrix::Matrix::diagonal(
                (0..n).map(|i| 1.0 - (i % 5) as f64 * 0.1).collect(),
            ),
            _ => ektelo_matrix::Matrix::suffix(n),
        };
        lineage = ektelo_matrix::Matrix::Product(Box::new(next), Box::new(lineage));
    }
    let system = ektelo_matrix::Matrix::product(h2(n), lineage);
    let mut lws = Workspace::for_matrix(&system);
    let su: Vec<f64> = (0..system.rows()).map(|i| (i % 13) as f64).collect();
    let mut sav = vec![0.0; system.rows()];
    let mut satu = vec![0.0; system.cols()];
    // NOT a regression signal relative to `workspace` above, and NOT a
    // cold cache: `lws` is warm and reused, so every iteration runs the
    // cached chain plan with zero planning work (ISSUE 6 investigated the
    // ~3× gap). The entry measures a genuinely larger system — H2
    // composed with a 9-factor lineage, so each iteration pair evaluates
    // ten O(n) factors in each direction versus `workspace`'s bare H2.
    // Intended behavior: prices a realistic `stack_measurements` lineage,
    // not the cache. Compare against `workspace_replan` for cache cost.
    group.bench_function(BenchmarkId::new("lineage_cached_plan", n), |b| {
        b.iter(|| {
            system.matvec_into(&v, &mut sav, &mut lws);
            system.rmatvec_into(&su, &mut satu, &mut lws);
            black_box((sav[0], satu[0]))
        })
    });
    group.finish();
}

/// ISSUE 3 zero-copy measurement benches. `vector_laplace_batch` now
/// snapshots source vectors by `Arc` refcount bump (PR 2 deep-cloned each
/// one to escape the kernel lock) and memoizes the shared strategy's
/// sensitivity per batch. `exact_answers/*` isolates the snapshot policy
/// itself: the same per-stripe matvecs with and without a data-sized copy
/// in front, which is precisely the allocation the `Arc` node
/// representation removed from the measurement path.
fn bench_batched_measurement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_batched_measurement");
    group.sample_size(20);

    let stripes = 64usize;
    let width = 1usize << 10;
    let n = stripes * width;

    // End-to-end: one batched call measuring every stripe of a striped
    // kernel (counts budget, draws noise, records history — the real
    // measurement path). A huge budget keeps thousands of timed calls
    // valid.
    let x = shape_1d(Shape1D::Gaussian, n, 1e6, 5);
    let k = ProtectedKernel::init_from_vector(x, 1e9, 11);
    let labels: Vec<usize> = (0..n).map(|i| i / width).collect();
    let p = ektelo_matrix::partition_from_labels(stripes, &labels);
    let parts = k.split_by_partition(k.root(), &p).expect("split");
    let strategy = h2(width);
    let reqs: Vec<(ektelo_core::SourceVar, &ektelo_matrix::Matrix, f64)> =
        parts.iter().map(|&s| (s, &strategy, 1e-4)).collect();
    group.bench_function(
        BenchmarkId::new("vector_laplace_batch/arc_snapshot", n),
        |b| b.iter(|| black_box(k.vector_laplace_batch(&reqs).expect("batch").len())),
    );

    // Isolated snapshot policy: per-stripe exact answers with a deep copy
    // in front (the PR 2 behavior) vs straight off the shared slice.
    let data: Vec<Vec<f64>> = (0..stripes)
        .map(|s| (0..width).map(|i| ((s * width + i) % 17) as f64).collect())
        .collect();
    let mut ws = Workspace::for_matrix(&strategy);
    let mut out = vec![0.0; strategy.rows()];
    group.bench_function(BenchmarkId::new("exact_answers/deep_clone", n), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for stripe in &data {
                let snapshot = stripe.to_vec(); // what Arc nodes removed
                strategy.matvec_into(&snapshot, &mut out, &mut ws);
                acc += out[0];
            }
            black_box(acc)
        })
    });
    group.bench_function(BenchmarkId::new("exact_answers/zero_copy", n), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for stripe in &data {
                strategy.matvec_into(stripe, &mut out, &mut ws);
                acc += out[0];
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ls_engines,
    bench_nnls_and_tree,
    bench_solver_iteration_products,
    bench_batched_measurement
);
criterion_main!(benches);
