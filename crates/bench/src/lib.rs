//! Shared harness utilities for the experiment binaries and criterion
//! benches that regenerate the paper's tables and figures (DESIGN.md §4).

use std::time::{Duration, Instant};

use ektelo_matrix::Matrix;

/// Times a closure, returning `(result, seconds)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Root-mean-square error between two equally long vectors.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Scaled per-query L2 error of workload answers (Table 5 metric): the
/// RMSE of `W x` vs `W x̂`, divided by the dataset size.
pub fn workload_scaled_error(w: &Matrix, x_true: &[f64], x_hat: &[f64]) -> f64 {
    let n_records: f64 = x_true.iter().sum::<f64>().max(1.0);
    let t = w.matvec(x_true);
    let e = w.matvec(x_hat);
    (t.iter()
        .zip(&e)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / t.len() as f64)
        .sqrt()
        / n_records
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len().max(1) as f64
}

/// Min / mean / max triple, as Table 4 reports.
pub fn min_mean_max(xs: &[f64]) -> (f64, f64, f64) {
    let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (min, mean(xs), max)
}

/// Percentile (0–100) of a slice (nearest-rank).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Formats seconds compactly for table cells.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// A soft wall-clock guard for sweeps: runs `f` unless the previous run at
/// a smaller size already exceeded the budget (the paper stops runs at
/// 1000 s; our default budget is far smaller so `cargo bench` stays
/// pleasant).
pub struct SweepGuard {
    budget: Duration,
    tripped: bool,
}

impl SweepGuard {
    /// A guard with the given per-point budget.
    pub fn new(budget: Duration) -> Self {
        SweepGuard {
            budget,
            tripped: false,
        }
    }

    /// Runs `f` and returns its duration, or `None` once a previous call
    /// went over budget (monotone workloads only get slower).
    pub fn run(&mut self, f: impl FnOnce()) -> Option<f64> {
        if self.tripped {
            return None;
        }
        let ((), secs) = time_it(f);
        if secs > self.budget.as_secs_f64() {
            self.tripped = true;
        }
        Some(secs)
    }
}

/// Parses a `--full` flag (experiment binaries run reduced sweeps by
/// default so the whole suite finishes in minutes).
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Rebins the census income attribute to `bins`, shrinking the vectorized
/// domain (shared by the Table 5 reduced mode and the Fig. 4b sweep).
pub fn rebin_census_income(t: &ektelo_data::Table, bins: usize) -> ektelo_data::Table {
    use ektelo_data::{Schema, Table};
    let sizes = t.schema().sizes();
    let factor = sizes[0].div_ceil(bins);
    let schema = Schema::from_sizes(&[
        ("income", bins),
        ("age", sizes[1]),
        ("marital", sizes[2]),
        ("race", sizes[3]),
        ("gender", sizes[4]),
    ]);
    let mut out = Table::empty(schema);
    for i in 0..t.num_rows() {
        let mut row = t.row(i);
        row[0] = (row[0] as usize / factor).min(bins - 1) as u32;
        out.push_row(&row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let (lo, m, hi) = min_mean_max(&[1.0, 2.0, 6.0]);
        assert_eq!((lo, m, hi), (1.0, 3.0, 6.0));
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 50.0), 3.0);
        assert_eq!(percentile(&[5.0, 1.0], 100.0), 5.0);
    }

    #[test]
    fn guard_trips_once_over_budget() {
        let mut g = SweepGuard::new(Duration::from_millis(1));
        assert!(g
            .run(|| std::thread::sleep(Duration::from_millis(5)))
            .is_some());
        assert!(g.run(|| ()).is_none());
    }

    #[test]
    fn scaled_error_is_zero_for_exact_estimates() {
        let w = Matrix::prefix(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(workload_scaled_error(&w, &x, &x), 0.0);
    }
}
