//! Regenerates **Fig. 4**: end-to-end plan runtime under dense / sparse /
//! implicit measurement-matrix representations, as domain size grows
//! (paper §10.2.1).
//!
//! Fig. 4a sweeps 1-D and 2-D plans over square domains; Fig. 4b sweeps
//! the multi-dimensional census plans. Representations are *lossless*
//! conversions of the same logical strategy (`Matrix::with_repr`), so
//! accuracy is identical and only time/space change — the paper's point.
//! Cells print `-` when a representation is skipped (its materialization
//! alone would exhaust memory or the time budget, mirroring the paper's
//! truncated curves).
//!
//! Run: `cargo run --release -p ektelo-bench --bin fig4 [--full]`

use std::time::Duration;

use ektelo_bench::{fmt_secs, full_mode, rebin_census_income, time_it, SweepGuard};
use ektelo_core::kernel::ProtectedKernel;
use ektelo_core::ops::inference::{least_squares, LsSolver};
use ektelo_core::ops::partition::{ahp_partition, dawa_partition, AhpOptions, DawaOptions};
use ektelo_core::ops::selection::{
    greedy_h, h2, hb, hdmm_1d, quad_tree, stripe_select, uniform_grid, uniform_grid_size,
    HdmmOptions,
};
use ektelo_data::generators::{census_cps_sized, gauss_blobs_2d, shape_1d, Shape1D};
use ektelo_data::workloads::random_range;
use ektelo_matrix::{Matrix, Repr};
use ektelo_plans::privbayes::{plan_privbayes_ls, PrivBayesOptions};
use ektelo_plans::striped::{plan_dawa_striped, plan_hb_striped};
use ektelo_plans::util::kernel_for_histogram;

const REPRS: [(Repr, &str); 3] = [
    (Repr::Dense, "dense"),
    (Repr::Sparse, "sparse"),
    (Repr::Implicit, "implicit"),
];

/// Whether materializing an `m×n` strategy in this representation is
/// feasible on a laptop-class budget.
fn feasible(repr: Repr, rows: usize, cols: usize, nnz_estimate: usize) -> bool {
    match repr {
        Repr::Dense => rows.saturating_mul(cols) <= 64_000_000, // ~512 MB
        Repr::Sparse => nnz_estimate <= 50_000_000,
        Repr::Implicit => true,
    }
}

/// Generic select→measure→infer plan under a forced representation.
fn run_select_measure_infer(x: &[f64], strategy: &Matrix, repr: Repr, eps: f64) -> Option<f64> {
    let nnz = strategy.to_sparse_nnz_estimate();
    if !feasible(repr, strategy.rows(), strategy.cols(), nnz) {
        return None;
    }
    let (k, root) = kernel_for_histogram(x, eps, 1);
    let (_, secs) = time_it(|| {
        let forced = strategy.with_repr(repr);
        let start = k.measurement_count();
        k.vector_laplace(root, &forced, eps).expect("measure");
        least_squares(&k.measurements_since(start), LsSolver::Iterative)
    });
    Some(secs)
}

trait NnzEstimate {
    fn to_sparse_nnz_estimate(&self) -> usize;
}

impl NnzEstimate for Matrix {
    fn to_sparse_nnz_estimate(&self) -> usize {
        // Cheap overestimate from row L1 structure: sum of row supports.
        self.abs_row_sums()
            .iter()
            .map(|&r| r.max(1.0) as usize)
            .sum()
    }
}

fn main() {
    let full = full_mode();
    let eps = 0.1;
    // 4^5 .. 4^9 cells by default (paper: 4^7 .. 4^13).
    let exps: Vec<u32> = if full {
        vec![5, 6, 7, 8, 9, 10, 11]
    } else {
        vec![5, 6, 7, 8]
    };

    println!("\nFig. 4a: plan runtime by measurement-matrix representation");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "plan", "domain", "dense", "sparse", "implicit"
    );

    type StrategyBuilder = Box<dyn Fn(usize, (usize, usize), &[f64]) -> Matrix>;
    let static_plans: Vec<(&str, bool, StrategyBuilder)> = vec![
        ("Identity", false, Box::new(|n, _, _| Matrix::identity(n))),
        ("Uniform", false, Box::new(|n, _, _| Matrix::total(n))),
        ("Privelet", false, Box::new(|n, _, _| Matrix::wavelet(n))),
        ("H2", false, Box::new(|n, _, _| h2(n))),
        ("HB", false, Box::new(|n, _, _| hb(n))),
        ("QuadTree", true, Box::new(|_, (r, c), _| quad_tree(r, c))),
        (
            "UniformGrid",
            true,
            Box::new(move |_, (r, c), x| {
                let total: f64 = x.iter().sum();
                uniform_grid(r, c, uniform_grid_size(r, c, total, 0.1))
            }),
        ),
        (
            "Greedy-H",
            false,
            Box::new(|n, _, _| {
                let w = random_range(n, 128, 3);
                let ranges: Vec<(usize, usize)> = match &w {
                    Matrix::Range(r) => r.ranges().collect(),
                    _ => vec![],
                };
                greedy_h(n, &ranges)
            }),
        ),
        (
            "HDMM",
            false,
            Box::new(|n, _, _| hdmm_1d(&Matrix::prefix(n), &HdmmOptions::default())),
        ),
    ];

    for (name, is_2d, builder) in &static_plans {
        for &e in &exps {
            let n = 4usize.pow(e);
            let side = (n as f64).sqrt() as usize;
            let shape = (side, side);
            let x = if *is_2d {
                gauss_blobs_2d(side, side, 4, 1e6, 2)
            } else {
                shape_1d(Shape1D::Bimodal, n, 1e6, 2)
            };
            let strategy = builder(n, shape, &x);
            print!("{name:<14} {n:>10}");
            for (repr, _) in REPRS {
                match run_select_measure_infer(&x, &strategy, repr, eps) {
                    Some(secs) => print!(" {:>12}", fmt_secs(secs)),
                    None => print!(" {:>12}", "-"),
                }
            }
            println!();
        }
    }

    // Data-dependent plans: the partition stage is untouched (it has no
    // big matrices); the measurement stage representation is forced.
    println!("\nFig. 4a (data-dependent plans)");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "plan", "domain", "dense", "sparse", "implicit"
    );
    for &e in &exps {
        let n = 4usize.pow(e);
        let x = shape_1d(Shape1D::Clustered, n, 1e6, 4);
        // AHP
        print!("{:<14} {n:>10}", "AHP");
        for (repr, _) in REPRS {
            let (k, root) = kernel_for_histogram(&x, eps, 5);
            let p = ahp_partition(&k, root, eps / 2.0, &AhpOptions::default()).expect("ahp");
            let groups = p.rows();
            if !feasible(repr, groups, groups, groups) {
                print!(" {:>12}", "-");
                continue;
            }
            let (_, secs) = time_it(|| {
                let red = k.reduce_by_partition(root, &p).expect("reduce");
                let start = k.measurement_count();
                let strat = Matrix::identity(groups).with_repr(repr);
                k.vector_laplace(red, &strat, eps / 2.0).expect("measure");
                least_squares(&k.measurements_since(start), LsSolver::Iterative)
            });
            print!(" {:>12}", fmt_secs(secs));
        }
        println!();
        // DAWA
        print!("{:<14} {n:>10}", "DAWA");
        for (repr, _) in REPRS {
            let (k, root) = kernel_for_histogram(&x, eps, 6);
            let p =
                dawa_partition(&k, root, eps / 4.0, &DawaOptions::new(eps * 0.75)).expect("dawa");
            let groups = p.rows();
            let strat = greedy_h(groups, &[]);
            if !feasible(repr, strat.rows(), groups, strat.to_sparse_nnz_estimate()) {
                print!(" {:>12}", "-");
                continue;
            }
            let (_, secs) = time_it(|| {
                let red = k.reduce_by_partition(root, &p).expect("reduce");
                let start = k.measurement_count();
                k.vector_laplace(red, &strat.with_repr(repr), eps * 0.75)
                    .expect("measure");
                least_squares(&k.measurements_since(start), LsSolver::Iterative)
            });
            print!(" {:>12}", fmt_secs(secs));
        }
        println!();
    }

    // ------------------------------------------------------------------
    // Fig. 4b: multi-dimensional census plans.
    // ------------------------------------------------------------------
    println!("\nFig. 4b: multi-dimensional plan runtime (census-like domains)");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "plan", "domain", "basic-sparse", "sparse", "implicit"
    );
    let income_bins: Vec<usize> = if full {
        vec![36, 357, 3_571, 35_714, 357_142]
    } else {
        vec![36, 357, 3_571]
    };
    let base_table = census_cps_sized(49_436, 7);
    let mut guard = SweepGuard::new(Duration::from_secs(if full { 600 } else { 60 }));
    for &bins in &income_bins {
        let table = rebin_census_income(&base_table, bins);
        let sizes = table.schema().sizes();
        let domain: usize = sizes.iter().product();

        // HB-Striped (kernel-split) and DAWA-Striped: implicit only (their
        // per-stripe matrices are small; representation forcing is not the
        // bottleneck — included for the runtime curve).
        for (name, run) in [
            ("HB-Striped", 0usize),
            ("DAWA-Striped", 1usize),
            ("PrivBayesLS", 2usize),
        ] {
            let k = ProtectedKernel::init(table.clone(), eps, 11);
            let secs = guard.run(|| match run {
                0 => {
                    let x = k.vectorize(k.root()).unwrap();
                    plan_hb_striped(&k, x, &sizes, 0, eps).map(|_| ()).unwrap();
                }
                1 => {
                    let x = k.vectorize(k.root()).unwrap();
                    plan_dawa_striped(&k, x, &sizes, 0, &[], eps, 0.25)
                        .map(|_| ())
                        .unwrap();
                }
                _ => {
                    plan_privbayes_ls(&k, k.root(), eps, &PrivBayesOptions::default())
                        .map(|_| ())
                        .unwrap();
                }
            });
            match secs {
                Some(s) => {
                    println!(
                        "{name:<18} {domain:>10} {:>12} {:>12} {:>12}",
                        "-",
                        "-",
                        fmt_secs(s)
                    )
                }
                None => println!(
                    "{name:<18} {domain:>10} {:>12} {:>12} {:>12}",
                    "-", "-", "-"
                ),
            }
        }

        // HB-Striped_kron under three physical forms of the same logical
        // matrix: "basic sparse" = the whole Kronecker product materialized
        // over the full domain (the paper's comparison point); "sparse" =
        // Kronecker structure kept, HB factor materialized to CSR;
        // "implicit" = fully implicit.
        let x_vec = ektelo_data::vectorize(&table);
        let implicit = stripe_select(&sizes, 0, hb);
        let factor_sparse = stripe_select(&sizes, 0, |n| Matrix::sparse(hb(n).to_sparse()));
        let nnz = implicit.to_sparse_nnz_estimate();
        print!("{:<18} {domain:>10}", "HB-Striped_kron");
        // basic sparse
        if nnz <= 50_000_000 {
            match run_select_measure_infer(&x_vec, &implicit, Repr::Sparse, eps) {
                Some(s) => print!(" {:>12}", fmt_secs(s)),
                None => print!(" {:>12}", "-"),
            }
        } else {
            print!(" {:>12}", "-");
        }
        // kron with sparse factors
        match run_select_measure_infer(&x_vec, &factor_sparse, Repr::Implicit, eps) {
            Some(s) => print!(" {:>12}", fmt_secs(s)),
            None => print!(" {:>12}", "-"),
        }
        // fully implicit
        match run_select_measure_infer(&x_vec, &implicit, Repr::Implicit, eps) {
            Some(s) => print!(" {:>12}", fmt_secs(s)),
            None => print!(" {:>12}", "-"),
        }
        println!();
    }
    println!(
        "\n(Paper shape: implicit scales ~1000x beyond dense for hierarchical/grid plans; \
              kron-structured plans reach 10x larger domains than split-based ones.)"
    );
}
