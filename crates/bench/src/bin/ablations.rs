//! Ablation benches for the design choices DESIGN.md §5 calls out:
//!
//! 1. **DAWA cost debiasing** — subtracting the stage-1 noise variance
//!    from bucket deviation costs vs the naive biased cost;
//!
//! 2. **Known-total conditioning** — a measurement-relative pseudo-noise
//!    scale vs an absolutely tiny one (the 10⁶× row-weight trap);
//!
//! 3. **Greedy-H workload weighting** — level weights from the workload's
//!    greedy decomposition vs a plain H2;
//!
//! 4. **LS solver choice** — LSQR vs CGLS vs direct on a mid-size system.
//!
//! Run: `cargo run --release -p ektelo-bench --bin ablations`

use ektelo_bench::{mean, time_it};
use ektelo_core::kernel::ProtectedKernel;
use ektelo_core::ops::inference::{
    least_squares, non_negative_least_squares, stack_measurements, LsSolver,
};
use ektelo_core::ops::partition::{dawa_partition, DawaOptions};
use ektelo_core::ops::selection::{greedy_h, h2};
use ektelo_core::MeasuredQuery;
use ektelo_data::generators::{shape_1d, Shape1D};
use ektelo_data::workloads::random_range;
use ektelo_matrix::Matrix;
use ektelo_plans::util::kernel_for_histogram;

fn rmse(a: &[f64], b: &[f64]) -> f64 {
    (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
}

fn main() {
    ablation_dawa_debias();
    ablation_known_total_scale();
    ablation_greedy_weights();
    ablation_solver_choice();
}

/// DAWA debiasing: without it, noisy uniform regions look heterogeneous
/// and the DP splits everything; buckets ≈ cells and the partition buys
/// nothing.
fn ablation_dawa_debias() {
    println!("\n[1] DAWA bucket-cost debiasing (n=512, sparse data, eps=0.02)");
    let x = shape_1d(Shape1D::DenseRegion, 512, 500_000.0, 6);
    let eps = 0.02;
    for (label, debias) in [("debiased (default)", true), ("naive (ablation)", false)] {
        let mut buckets = Vec::new();
        let mut errs = Vec::new();
        for seed in 0..5 {
            let (k, root) = kernel_for_histogram(&x, eps, seed);
            let p = dawa_partition(
                &k,
                root,
                eps / 4.0,
                &DawaOptions {
                    eps_stage2: 0.75 * eps,
                    debias,
                },
            )
            .unwrap();
            buckets.push(p.rows() as f64);
            let red = k.reduce_by_partition(root, &p).unwrap();
            let g = k.vector_len(red).unwrap();
            k.vector_laplace(red, &Matrix::identity(g), 0.75 * eps)
                .unwrap();
            let xh = least_squares(&k.measurements(), LsSolver::Iterative);
            errs.push(rmse(&x, &xh));
        }
        println!(
            "  {label:<22} buckets {:>7.1}   rmse {:>9.1}",
            mean(&buckets),
            mean(&errs)
        );
    }
}

/// Known-total pseudo-measurement: a 1e-6 noise scale gives the total
/// row a million-fold weight and stalls FISTA; the relative scale keeps
/// the system well-conditioned.
fn ablation_known_total_scale() {
    println!("\n[2] known-total conditioning for NNLS (n=1024, 30 range measurements)");
    let n = 1024;
    let x = shape_1d(Shape1D::Clustered, n, 100_000.0, 3);
    let total: f64 = x.iter().sum();
    let k = ProtectedKernel::init_from_vector(x.clone(), 1.0, 5);
    let w = random_range(n, 30, 7);
    k.vector_laplace(k.root(), &w, 1.0).unwrap();
    let base = k.measurements();
    for (label, scale) in [
        ("relative scale (default)", base[0].noise_scale / 10.0),
        ("absolute 1e-6 (ablation)", 1e-6),
    ] {
        let mut ms = base.clone();
        ms.push(MeasuredQuery {
            base: k.root(),
            query: Matrix::total(n),
            answers: vec![total],
            noise_scale: scale,
        });
        let (xh, secs) = time_it(|| non_negative_least_squares(&ms));
        let est_total: f64 = xh.iter().sum();
        let wq = w.matvec(&x);
        let we = w.matvec(&xh);
        println!(
            "  {label:<26} workload rmse {:>9.1}   |total err| {:>9.1}   ({:.2}s)",
            rmse(&wq, &we),
            (est_total - total).abs(),
            secs
        );
    }
}

/// Greedy-H level weighting vs uniform H2, on a workload concentrated
/// at one scale (all queries of width ~32).
fn ablation_greedy_weights() {
    println!("\n[3] Greedy-H workload weighting vs plain H2 (n=1024, width-32 ranges)");
    let n = 1024;
    let x = shape_1d(Shape1D::Bimodal, n, 200_000.0, 4);
    let ranges: Vec<(usize, usize)> = (0..200)
        .map(|i| ((i * 5) % (n - 32), (i * 5) % (n - 32) + 32))
        .collect();
    let w = Matrix::range_queries(n, ranges.clone());
    let truth = w.matvec(&x);
    let eps = 0.1;
    for (label, strategy) in [
        ("greedy-h (workload)", greedy_h(n, &ranges)),
        ("h2 (uniform)", h2(n)),
    ] {
        let mut errs = Vec::new();
        for seed in 0..5 {
            let (k, root) = kernel_for_histogram(&x, eps, seed);
            k.vector_laplace(root, &strategy, eps).unwrap();
            let xh = least_squares(&k.measurements(), LsSolver::Iterative);
            errs.push(rmse(&truth, &w.matvec(&xh)));
        }
        println!("  {label:<22} workload rmse {:>9.1}", mean(&errs));
    }
}

/// Solver choice on one mid-size hierarchical system.
fn ablation_solver_choice() {
    println!("\n[4] LS solver choice (H2 over n=2048)");
    let n = 2048;
    let x = shape_1d(Shape1D::Gaussian, n, 1e6, 2);
    let (k, root) = kernel_for_histogram(&x, 1.0, 3);
    k.vector_laplace(root, &h2(n), 1.0).unwrap();
    let ms = k.measurements();
    let (m, y) = stack_measurements(&ms);
    let _ = (m, y);
    for (label, solver) in [
        ("LSQR (default)", LsSolver::Iterative),
        ("CGLS", LsSolver::IterativeCgls),
        ("direct Cholesky", LsSolver::Direct),
    ] {
        let (xh, secs) = time_it(|| least_squares(&ms, solver));
        println!(
            "  {label:<18} rmse {:>8.2}   time {:>8.3}s",
            rmse(&x, &xh),
            secs
        );
    }
}
