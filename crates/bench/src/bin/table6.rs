//! Regenerates **Table 6**: error and runtime improvements from
//! workload-based domain reduction (paper §10.3, Algorithm 4 / §8).
//!
//! For AHP (128×128), DAWA (4096), Identity (256×256) and HB (4096) with a
//! small-range RandomRange workload, each algorithm runs on the original
//! domain and on the losslessly reduced domain; we report error and
//! runtime factors (original / reduced — > 1 means reduction helped).
//!
//! The reduced variants are straightforward operator recombinations: the
//! data-adaptive partition selectors run on a group-size-normalized *view*
//! of the reduced vector (so "similar counts" means similar per-cell
//! densities), while measurements take the raw reduced counts — exactly
//! the kind of re-plumbing EKTELO plans are built for.
//!
//! Run: `cargo run --release -p ektelo-bench --bin table6 [--full]`

use ektelo_bench::{full_mode, mean, time_it};
use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::{least_squares, LsSolver};
use ektelo_core::ops::partition::{
    ahp_partition, dawa_partition, workload_reduction, AhpOptions, DawaOptions,
};
use ektelo_core::ops::selection::{greedy_h, hb};
use ektelo_data::generators::{gauss_blobs_2d, shape_1d, Shape1D};
use ektelo_data::workloads::{random_range_2d, random_range_small};
use ektelo_matrix::Matrix;
use ektelo_plans::baseline::{plan_hb, plan_identity};
use ektelo_plans::data_aware::{plan_ahp, plan_dawa};
use ektelo_plans::util::kernel_for_histogram;

/// Workload RMSE of the estimate.
fn werr(w: &Matrix, x: &[f64], xh: &[f64]) -> f64 {
    let t = w.matvec(x);
    let e = w.matvec(xh);
    (t.iter()
        .zip(&e)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        / t.len() as f64)
        .sqrt()
}

#[derive(Clone, Copy, PartialEq)]
enum Algo {
    Ahp,
    Dawa,
    Identity,
    Hb,
}

/// The plan on the reduced source: partition selectors look at the
/// size-normalized view, measurements use raw reduced counts, and the
/// final least squares maps everything back to the full domain via the
/// kernel's lineage.
fn run_reduced(k: &ProtectedKernel, red: SourceVar, algo: Algo, p: &Matrix, eps: f64) -> Vec<f64> {
    let start = k.measurement_count();
    let groups = p.rows();
    match algo {
        Algo::Identity => {
            k.vector_laplace(red, &Matrix::identity(groups), eps)
                .expect("measure");
        }
        Algo::Hb => {
            k.vector_laplace(red, &hb(groups), eps).expect("measure");
        }
        Algo::Ahp | Algo::Dawa => {
            let sizes = p.abs_row_sums();
            let norm = Matrix::diagonal(sizes.iter().map(|&s| 1.0 / s).collect());
            let norm_view = k.transform_linear(red, &norm).expect("normalize");
            if algo == Algo::Ahp {
                let p2 = ahp_partition(k, norm_view, eps / 2.0, &AhpOptions::default())
                    .expect("ahp partition");
                let red2 = k.reduce_by_partition(red, &p2).expect("reduce2");
                k.vector_laplace(red2, &Matrix::identity(p2.rows()), eps / 2.0)
                    .expect("measure");
            } else {
                let p2 = dawa_partition(k, norm_view, eps / 4.0, &DawaOptions::new(0.75 * eps))
                    .expect("dawa partition");
                let red2 = k.reduce_by_partition(red, &p2).expect("reduce2");
                k.vector_laplace(red2, &greedy_h(p2.rows(), &[]), 0.75 * eps)
                    .expect("measure");
            }
        }
    }
    least_squares(&k.measurements_since(start), LsSolver::Iterative)
}

fn main() {
    let full = full_mode();
    let trials = if full { 5 } else { 3 };
    let eps = 0.1;

    struct Case {
        name: &'static str,
        algo: Algo,
        x: Vec<f64>,
        w: Matrix,
    }
    let cases: Vec<Case> = vec![
        Case {
            name: "AHP (128,128)",
            algo: Algo::Ahp,
            x: gauss_blobs_2d(128, 128, 4, 500_000.0, 1),
            w: random_range_2d(128, 128, 200, 2),
        },
        Case {
            // Dense query set: the workload distinguishes nearly every
            // cell, so the reduction is mild — matching the paper's
            // near-neutral DAWA factors.
            name: "DAWA 4096",
            algo: Algo::Dawa,
            x: shape_1d(Shape1D::Clustered, 4096, 500_000.0, 3),
            w: random_range_small(4096, 1000, 64, 4),
        },
        Case {
            name: "Identity (256,256)",
            algo: Algo::Identity,
            x: gauss_blobs_2d(256, 256, 4, 500_000.0, 5),
            w: random_range_2d(256, 256, 200, 6),
        },
        Case {
            name: "HB 4096",
            algo: Algo::Hb,
            x: shape_1d(Shape1D::Bimodal, 4096, 500_000.0, 7),
            w: random_range_small(4096, 200, 64, 8),
        },
    ];

    println!(
        "\nTable 6: workload-based domain reduction (W = RandomRange, small ranges, eps={eps})"
    );
    println!(
        "{:<20} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "Algorithm", "n -> p", "err(orig)", "t(orig)", "err(red)", "t(red)", "errX", "timeX"
    );

    for case in &cases {
        let n = case.x.len();
        let (p, w_reduced) = workload_reduction(&case.w, 99);
        let reduced_n = p.rows();

        let mut e_orig = Vec::new();
        let mut t_orig = Vec::new();
        let mut e_red = Vec::new();
        let mut t_red = Vec::new();
        for seed in 0..trials {
            // Original domain.
            let (k, root) = kernel_for_histogram(&case.x, eps, 300 + seed);
            let (out, secs) = time_it(|| {
                match case.algo {
                    Algo::Ahp => plan_ahp(&k, root, eps, 0.5),
                    Algo::Dawa => plan_dawa(&k, root, &case.w, eps, 0.25),
                    Algo::Identity => plan_identity(&k, root, eps),
                    Algo::Hb => plan_hb(&k, root, eps),
                }
                .expect("plan")
            });
            e_orig.push(werr(&case.w, &case.x, &out.x_hat));
            t_orig.push(secs);

            // Reduced domain.
            let (k, root) = kernel_for_histogram(&case.x, eps, 300 + seed);
            let (x_hat, secs) = time_it(|| {
                let red = k.reduce_by_partition(root, &p).expect("reduce");
                run_reduced(&k, red, case.algo, &p, eps)
            });
            e_red.push(werr(&case.w, &case.x, &x_hat));
            t_red.push(secs);
        }
        let (eo, to, er, tr) = (mean(&e_orig), mean(&t_orig), mean(&e_red), mean(&t_red));
        let _ = &w_reduced;
        println!(
            "{:<20} {:>5}->{:<6} {:>12.2} {:>11.3}s {:>12.2} {:>11.3}s {:>8.2} {:>8.2}",
            case.name,
            n,
            reduced_n,
            eo,
            to,
            er,
            tr,
            eo / er,
            to / tr
        );
    }
    println!(
        "\n(Paper factors — error/runtime: AHP 1.29/5.36, DAWA 0.99/0.92, \
              Identity 2.89/0.73, HB 1.34/0.62. Shape: reduction helps error almost \
              universally; the paper's AHP runtime gain comes from its quadratic \
              clustering step, which our sort-based AHP implementation does not have.)"
    );
}
