//! Regenerates **Fig. 3**: Naive-Bayes classifier AUC vs privacy budget on
//! Credit-Default data (paper §10.1.3).
//!
//! For ε ∈ {10⁻³, 10⁻², 10⁻¹} and each plan — Unperturbed, Majority,
//! Identity, Workload (Cormode), WorkloadLS, SelectLS — we run repeated
//! cross-validation and report the {25, 50, 75} percentiles of the average
//! AUC, exactly the error bars of the paper's figure.
//!
//! Run: `cargo run --release -p ektelo-bench --bin fig3 [--full]`

use ektelo_bench::{full_mode, mean, percentile};
use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_data::generators::credit_default;
use ektelo_plans::naive_bayes::{
    auc, fold_indices, nb_unperturbed, plan_nb_identity, plan_nb_select_ls, plan_nb_workload,
    plan_nb_workload_ls, score_table, NaiveBayesModel, NbHistograms,
};

type NbPlan = fn(&ProtectedKernel, SourceVar, f64) -> Result<NbHistograms>;

fn main() {
    let full = full_mode();
    let data = credit_default(42);
    let sizes = data.schema().sizes();
    let folds = if full { 10 } else { 4 };
    let reps = if full { 10 } else { 3 };
    let eps_grid = [1e-3, 1e-2, 1e-1];

    let plans: Vec<(&str, NbPlan)> = vec![
        ("Identity", plan_nb_identity),
        ("Workload (Cormode)", plan_nb_workload),
        ("WorkloadLS", plan_nb_workload_ls),
        ("SelectLS", plan_nb_select_ls),
    ];

    // Non-private references, averaged over folds once.
    let fold_sets = fold_indices(data.num_rows(), folds, 7);
    let mut unpert = Vec::new();
    for f in &fold_sets {
        let (train, test) = ektelo_plans::naive_bayes::train_test_split(&data, f);
        let h = nb_unperturbed(&train);
        let m = NaiveBayesModel::fit(&h, &sizes[1..]);
        unpert.push(auc(&score_table(&m, &test)));
    }
    println!("\nFig. 3: NB classifier AUC on Credit Default ({folds}-fold CV x {reps} reps)");
    println!(
        "Unperturbed: {:.4}   Majority: 0.5000 (by construction)",
        mean(&unpert)
    );
    println!(
        "{:<20} {:>8} {:>24} {:>24} {:>24}",
        "Plan", "", "eps=1e-3", "eps=1e-2", "eps=1e-1"
    );

    for (name, plan) in &plans {
        print!("{name:<20} {:>8}", "p25/50/75");
        for &eps in &eps_grid {
            // Average AUC across folds per repetition; percentiles across
            // repetitions (matching the paper's procedure).
            let mut avg_aucs = Vec::new();
            for rep in 0..reps {
                let mut fold_aucs = Vec::new();
                for (fi, f) in fold_sets.iter().enumerate() {
                    let (train, test) = ektelo_plans::naive_bayes::train_test_split(&data, f);
                    let seed = (rep * 100 + fi) as u64;
                    let k = ProtectedKernel::init(train, eps, seed);
                    let h = plan(&k, k.root(), eps).expect("plan");
                    let m = NaiveBayesModel::fit(&h, &sizes[1..]);
                    fold_aucs.push(auc(&score_table(&m, &test)));
                }
                avg_aucs.push(mean(&fold_aucs));
            }
            print!(
                " {:>7.3}/{:.3}/{:.3}",
                percentile(&avg_aucs, 25.0),
                percentile(&avg_aucs, 50.0),
                percentile(&avg_aucs, 75.0)
            );
        }
        println!();
    }
    println!(
        "\n(Paper shape: at eps=1e-1 the new plans approach the unperturbed AUC and beat \
              Identity/Cormode; at eps=1e-3 all DP classifiers collapse to ~0.5.)"
    );
}
