//! Regenerates **Table 5**: census-workload error of Identity, PrivBayes,
//! PrivBayesLS, HB-Striped and DAWA-Striped (paper §10.1.2).
//!
//! Domain: income(5000) × age(5) × marital(7) × race(4) × gender(2)
//! = 1.4M cells; workloads: Identity, all 2-way marginals, Prefix(Income).
//! Reduced mode shrinks the income domain (500 bins → 140k cells) so the
//! binary finishes in a couple of minutes; `--full` runs the paper's
//! 1.4M-cell domain.
//!
//! Run: `cargo run --release -p ektelo-bench --bin table5 [--full]`

use ektelo_bench::{full_mode, time_it, workload_scaled_error};
use ektelo_core::ProtectedKernel;
use ektelo_data::generators::census_cps_sized;
use ektelo_data::workloads::{all_k_way_marginals, census_prefix_income};
use ektelo_data::{Schema, Table};
use ektelo_matrix::Matrix;
use ektelo_plans::baseline::plan_identity;
use ektelo_plans::privbayes::{plan_privbayes, plan_privbayes_ls, PrivBayesOptions};
use ektelo_plans::striped::{plan_dawa_striped, plan_hb_striped};

/// Rebins the income attribute so reduced mode stays fast.
fn rebin_income(t: &Table, bins: usize) -> Table {
    let old = t.schema();
    let sizes = old.sizes();
    let factor = sizes[0].div_ceil(bins);
    let schema = Schema::from_sizes(&[
        ("income", bins),
        ("age", sizes[1]),
        ("marital", sizes[2]),
        ("race", sizes[3]),
        ("gender", sizes[4]),
    ]);
    let mut out = Table::empty(schema);
    for i in 0..t.num_rows() {
        let mut row = t.row(i);
        row[0] = (row[0] as usize / factor).min(bins - 1) as u32;
        out.push_row(&row);
    }
    out
}

fn main() {
    let full = full_mode();
    let (income_bins, rows) = if full { (5000, 49_436) } else { (500, 49_436) };
    let eps = 0.1;
    let table = {
        let t = census_cps_sized(rows, 7);
        if full {
            t
        } else {
            rebin_income(&t, income_bins)
        }
    };
    let sizes = table.schema().sizes();
    let domain: usize = sizes.iter().product();
    let x_true = ektelo_data::vectorize(&table);
    eprintln!("census domain: {domain} cells, {rows} records");

    let workloads: Vec<(&str, Matrix)> = vec![
        ("Identity", Matrix::identity(domain)),
        ("2-way Marg.", all_k_way_marginals(&sizes, 2)),
        ("Prefix(Income)", census_prefix_income(&sizes)),
    ];

    // Each algorithm runs once per seed; errors are averaged.
    let trials = if full { 3 } else { 2 };
    let algos: Vec<&str> = vec![
        "Identity",
        "PrivBayes",
        "PrivBayesLS",
        "Hb-Striped",
        "Dawa-Striped",
    ];
    let mut results: Vec<Vec<f64>> = vec![vec![0.0; workloads.len()]; algos.len()];
    let mut times: Vec<f64> = vec![0.0; algos.len()];

    for seed in 0..trials {
        for (a, name) in algos.iter().enumerate() {
            let k = ProtectedKernel::init(table.clone(), eps, 100 + seed);
            let (x_hat, secs) = time_it(|| match *name {
                "Identity" => {
                    let x = k.vectorize(k.root()).unwrap();
                    plan_identity(&k, x, eps).unwrap().x_hat
                }
                "PrivBayes" => {
                    plan_privbayes(&k, k.root(), eps, &PrivBayesOptions::default())
                        .unwrap()
                        .x_hat
                }
                "PrivBayesLS" => {
                    plan_privbayes_ls(&k, k.root(), eps, &PrivBayesOptions::default())
                        .unwrap()
                        .x_hat
                }
                "Hb-Striped" => {
                    let x = k.vectorize(k.root()).unwrap();
                    plan_hb_striped(&k, x, &sizes, 0, eps).unwrap().x_hat
                }
                "Dawa-Striped" => {
                    let x = k.vectorize(k.root()).unwrap();
                    plan_dawa_striped(&k, x, &sizes, 0, &[], eps, 0.25)
                        .unwrap()
                        .x_hat
                }
                _ => unreachable!(),
            });
            times[a] += secs;
            for (wi, (_, w)) in workloads.iter().enumerate() {
                results[a][wi] += workload_scaled_error(w, &x_true, &x_hat) / trials as f64;
            }
            eprintln!("  seed {seed}: {name} done ({secs:.1}s)");
        }
    }

    println!("\nTable 5: Census workload error (domain {domain}, eps={eps}, x1e-7 scale)");
    print!("{:<14}", "Algorithm");
    for (wn, _) in &workloads {
        print!(" {wn:>16}");
    }
    println!("  {:>9}", "runtime");
    for (a, name) in algos.iter().enumerate() {
        print!("{name:<14}");
        for r in &results[a] {
            print!(" {:>16.2}", r * 1e7);
        }
        println!("  {:>8.1}s", times[a] / trials as f64);
    }
    println!("\n(Paper, x1e-7, 1.4M domain: Identity 241.8/12.04/18.97, PrivBayes 769.3/65.31/28.70, \
              PrivbayesLS 58.6/13.29/36.81, Hb-Striped 703.1/21.91/4.13, Dawa-Striped 34.3/1.96/2.50. \
              Shape to check: Dawa-Striped best overall; PrivBayesLS improves PrivBayes on the \
              first two workloads; striped plans dominate Prefix(Income).)");
}
