//! Regenerates **Fig. 5**: scalability of inference (paper §10.2.2).
//!
//! For binary hierarchical (H2) measurements over growing domains, times
//! least-squares and NNLS inference across solver (direct vs iterative) ×
//! representation (dense vs sparse vs implicit), plus the specialized
//! tree-based LS of Hay et al. Cells print `-` where a configuration is
//! infeasible (the paper's curves stop at the same walls: dense ~10³·⁵,
//! sparse ~10⁶·⁵).
//!
//! Run: `cargo run --release -p ektelo-bench --bin fig5 [--full]`

use ektelo_bench::{fmt_secs, full_mode, time_it};
use ektelo_core::ops::inference::{
    least_squares, non_negative_least_squares, tree_based_h2, LsSolver,
};
use ektelo_core::ops::selection::h2;
use ektelo_core::MeasuredQuery;
use ektelo_core::{ProtectedKernel, SourceVar};
use ektelo_data::generators::{shape_1d, Shape1D};
use ektelo_matrix::{Matrix, Repr};

fn h2_measurement(n: usize, repr: Repr) -> (MeasuredQuery, Vec<f64>) {
    let x = shape_1d(Shape1D::Gaussian, n, 1e6, 3);
    let k = ProtectedKernel::init_from_vector(x, 1.0, 9);
    let strategy = h2(n).with_repr(repr);
    k.vector_laplace(k.root(), &strategy, 1.0).expect("measure");
    let m = k.measurements().remove(0);
    let answers = m.answers.clone();
    (m, answers)
}

fn measured(base: SourceVar, query: Matrix, answers: Vec<f64>, scale: f64) -> MeasuredQuery {
    MeasuredQuery {
        base,
        query,
        answers,
        noise_scale: scale,
    }
}

fn main() {
    let full = full_mode();
    let domains: Vec<usize> = if full {
        vec![1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22, 1 << 24]
    } else {
        vec![1 << 10, 1 << 13, 1 << 16, 1 << 18]
    };

    println!("\nFig. 5: inference runtime for H2 measurements");
    println!(
        "{:<24} {}",
        "method",
        domains
            .iter()
            .map(|n| format!("{n:>12}"))
            .collect::<String>()
    );

    type Method = (&'static str, Box<dyn Fn(usize) -> Option<f64>>);
    let methods: Vec<Method> = vec![
        (
            "LS  dense + direct",
            Box::new(|n| {
                if n > 2048 {
                    return None;
                }
                let (m, _) = h2_measurement(n, Repr::Dense);
                Some(time_it(|| least_squares(std::slice::from_ref(&m), LsSolver::Direct)).1)
            }),
        ),
        (
            "LS  dense + iterative",
            Box::new(|n| {
                if n > 8192 {
                    return None;
                }
                let (m, _) = h2_measurement(n, Repr::Dense);
                Some(time_it(|| least_squares(std::slice::from_ref(&m), LsSolver::Iterative)).1)
            }),
        ),
        (
            "LS  sparse + iterative",
            Box::new(|n| {
                if n > 4_000_000 {
                    return None;
                }
                let (m, _) = h2_measurement(n, Repr::Sparse);
                Some(time_it(|| least_squares(std::slice::from_ref(&m), LsSolver::Iterative)).1)
            }),
        ),
        (
            "LS  implicit + iterative",
            Box::new(|n| {
                let (m, _) = h2_measurement(n, Repr::Implicit);
                Some(time_it(|| least_squares(std::slice::from_ref(&m), LsSolver::Iterative)).1)
            }),
        ),
        (
            "NNLS dense + iterative",
            Box::new(|n| {
                if n > 4096 {
                    return None;
                }
                let (m, _) = h2_measurement(n, Repr::Dense);
                Some(time_it(|| non_negative_least_squares(std::slice::from_ref(&m))).1)
            }),
        ),
        (
            "NNLS sparse + iterative",
            Box::new(|n| {
                if n > 2_000_000 {
                    return None;
                }
                let (m, _) = h2_measurement(n, Repr::Sparse);
                Some(time_it(|| non_negative_least_squares(std::slice::from_ref(&m))).1)
            }),
        ),
        (
            "NNLS implicit + iterative",
            Box::new(|n| {
                let (m, _) = h2_measurement(n, Repr::Implicit);
                Some(time_it(|| non_negative_least_squares(std::slice::from_ref(&m))).1)
            }),
        ),
        (
            "LS  tree-based (custom)",
            Box::new(|n| {
                let (_, answers) = h2_measurement(n, Repr::Implicit);
                Some(time_it(|| tree_based_h2(n, &answers)).1)
            }),
        ),
    ];
    // Silence the unused helper warning in case method sets change.
    let _ = measured;

    for (name, run) in &methods {
        print!("{name:<24}");
        for &n in &domains {
            match run(n) {
                Some(secs) => print!(" {:>11}", fmt_secs(secs)),
                None => print!(" {:>11}", "-"),
            }
        }
        println!();
    }
    println!(
        "\n(Timings exclude data generation/measurement where possible; matrix \
              materialization is part of the representation cost and is included.\n \
              Paper shape: iterative+sparse reaches ~1000x larger domains than direct+dense; \
              implicit extends another ~100x; tree-based is fastest but single-purpose.)"
    );
}
