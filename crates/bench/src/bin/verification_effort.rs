//! Reproduces the *methodology* of the paper's §6.3 verification-effort
//! comparison: how many lines of code must be vetted to trust the privacy
//! guarantee?
//!
//! In EKTELO's trust model only the privacy-critical surface needs review:
//! the kernel (budget accounting, stability, noise) and the
//! Private→Public operators. Plans, inference, workloads, generators and
//! the matrix engine are untrusted client-space code — bugs there cost
//! accuracy, never privacy. This binary walks the workspace sources and
//! prints the split (the paper's analogous numbers: 517 privacy-critical
//! lines vs 1837 for vetting the monolithic DPBench implementations).
//!
//! Run: `cargo run --release -p ektelo-bench --bin verification_effort`

use std::fs;
use std::path::{Path, PathBuf};

/// Modules whose correctness the privacy proof depends on.
const PRIVACY_CRITICAL: &[&str] = &[
    "crates/core/src/kernel/mod.rs",
    "crates/core/src/kernel/state.rs",
    "crates/core/src/kernel/noise.rs",
    "crates/core/src/kernel/error.rs",
    "crates/core/src/ops/partition/ahp.rs",
    "crates/core/src/ops/partition/dawa.rs",
    "crates/core/src/ops/selection/worst_approx.rs",
    "crates/core/src/ops/selection/privbayes.rs",
    // Stability bookkeeping depends on exact sensitivity computation:
    "crates/matrix/src/sensitivity.rs",
];

fn code_lines(path: &Path) -> usize {
    let Ok(src) = fs::read_to_string(path) else {
        return 0;
    };
    let mut in_tests = false;
    let mut count = 0;
    for line in src.lines() {
        let t = line.trim();
        if t.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue; // tests don't need privacy vetting
        }
        if t.is_empty() || t.starts_with("//") {
            continue;
        }
        count += 1;
    }
    count
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files);
    walk(&root.join("src"), &mut files);

    let mut critical = 0usize;
    let mut total = 0usize;
    println!("\nPrivacy-critical modules (must be vetted once):");
    for f in &files {
        let lines = code_lines(f);
        total += lines;
        let rel = f.strip_prefix(&root).unwrap_or(f);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if PRIVACY_CRITICAL
            .iter()
            .any(|c| rel_str.ends_with(c) || rel_str.contains(c))
        {
            critical += lines;
            println!("  {rel_str:<55} {lines:>6}");
        }
    }
    println!("\n{:<57} {critical:>6}", "privacy-critical lines");
    println!("{:<57} {total:>6}", "total library lines (excl. tests)");
    println!(
        "{:<57} {:>5.1}%",
        "fraction needing privacy review",
        100.0 * critical as f64 / total as f64
    );
    println!(
        "\n(Paper §6.3: vetting all privacy-critical EKTELO operators took 517 lines \
         vs 1837 lines to vet the equivalent DPBench algorithms — and one vetted \
         operator, Vector Laplace, covers 10 of the 18 plans. The same leverage \
         holds here: every plan in ektelo-plans is untrusted client code.)"
    );
}
