//! Regenerates **Table 4**: error-improvement factors and normalized
//! runtime of the MWEM variants (paper §10.1.1).
//!
//! Setting (from the table caption): 1-D, n = 4096,
//! W = RandomRange(1000), ε = 0.1, over the (synthetic) DPBench dataset
//! collection. For each variant we report the multiplicative factor by
//! which workload error improves over plain MWEM, as (min, mean, max)
//! across datasets, plus mean runtime normalized to plain MWEM.
//!
//! Run: `cargo run --release -p ektelo-bench --bin table4 [--full]`

use ektelo_bench::{full_mode, mean, min_mean_max, time_it};
use ektelo_data::generators::dpbench_suite;
use ektelo_data::workloads::random_range;
use ektelo_matrix::Matrix;
use ektelo_plans::mwem::{
    plan_mwem, plan_mwem_variant_b, plan_mwem_variant_c, plan_mwem_variant_d, MwemOptions,
};
use ektelo_plans::util::kernel_for_histogram;

fn workload_l2(w: &Matrix, x: &[f64], xh: &[f64]) -> f64 {
    let t = w.matvec(x);
    let e = w.matvec(xh);
    t.iter()
        .zip(&e)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    let full = full_mode();
    let n = 4096;
    let eps = 0.1;
    let num_queries = if full { 1000 } else { 300 };
    let trials = if full { 5 } else { 2 };
    let scale = 1_000_000.0;
    let datasets = dpbench_suite(n, scale, 20_18);
    let w = random_range(n, num_queries, 4);

    type Plan = fn(
        &ektelo_core::ProtectedKernel,
        ektelo_core::SourceVar,
        &Matrix,
        f64,
        &MwemOptions,
    ) -> ektelo_plans::util::PlanResult;
    let variants: [(&str, &str, &str, Plan); 4] = [
        ("(a)", "worst-approx", "MW", plan_mwem),
        ("(b)", "worst-approx + H2", "MW", plan_mwem_variant_b),
        (
            "(c)",
            "worst-approx",
            "NNLS, known total",
            plan_mwem_variant_c,
        ),
        (
            "(d)",
            "worst-approx + H2",
            "NNLS, known total",
            plan_mwem_variant_d,
        ),
    ];

    // errors[v][dataset] = mean error over trials; runtimes likewise.
    let mut errors = vec![Vec::new(); variants.len()];
    let mut runtimes = vec![Vec::new(); variants.len()];
    for (name, x) in &datasets {
        let total: f64 = x.iter().sum();
        let opts = MwemOptions {
            rounds: 10,
            total,
            mw_iterations: 40,
        };
        for (v, (_, _, _, plan)) in variants.iter().enumerate() {
            let mut errs = Vec::new();
            let mut secs = Vec::new();
            for seed in 0..trials {
                let (k, root) = kernel_for_histogram(x, eps, 1000 + seed);
                let (out, s) = time_it(|| plan(&k, root, &w, eps, &opts).expect("plan"));
                errs.push(workload_l2(&w, x, &out.x_hat));
                secs.push(s);
            }
            errors[v].push(mean(&errs));
            runtimes[v].push(mean(&secs));
        }
        eprintln!("  dataset {name} done");
    }

    println!("\nTable 4: MWEM variants (1D, n={n}, W=RandomRange({num_queries}), eps={eps})");
    println!(
        "{:<6} {:<22} {:<20} {:>7} {:>7} {:>7} {:>9}",
        "", "Query Selection", "Inference", "min", "mean", "max", "runtime"
    );
    let base_runtime = mean(&runtimes[0]);
    for (v, (id, sel, inf, _)) in variants.iter().enumerate() {
        let improvements: Vec<f64> = errors[0]
            .iter()
            .zip(&errors[v])
            .map(|(base, e)| base / e)
            .collect();
        let (lo, m, hi) = min_mean_max(&improvements);
        let rt = mean(&runtimes[v]) / base_runtime;
        println!("{id:<6} {sel:<22} {inf:<20} {lo:>7.2} {m:>7.2} {hi:>7.2} {rt:>9.1}");
    }
    println!(
        "\n(ERROR IMPROVEMENT = plain-MWEM error / variant error, over {} datasets; \
              runtime normalized to plain MWEM. Paper: (b) 1.03/2.80/7.93 at 354.9x runtime, \
              (c) 0.78/1.08/1.54 at 1.0x, (d) 0.89/2.64/8.13 at 9.0x.)",
        datasets.len()
    );
}
