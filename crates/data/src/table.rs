//! Columnar tables and the PINQ-style table transformations (paper §5.1).
//!
//! Stabilities (paper §5.1): `Where` and `Select` are 1-stable,
//! `SplitByPartition` is 1-stable (rows land in exactly one part),
//! `GroupBy` is 2-stable. The kernel in `ektelo-core` tracks these; the
//! operations themselves are ordinary relational code and live here so
//! they can be tested without any privacy machinery.

use crate::predicate::Predicate;
use crate::schema::Schema;

/// A single-relation table in columnar form. Values are attribute codes
/// (`0..attribute.size()`).
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    /// One `Vec<u32>` per attribute, all of equal length.
    columns: Vec<Vec<u32>>,
}

impl Table {
    /// An empty table over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Table { schema, columns }
    }

    /// Builds a table from rows; validates every value against the schema.
    pub fn from_rows(schema: Schema, rows: &[Vec<u32>]) -> Self {
        let mut t = Table::empty(schema);
        for row in rows {
            t.push_row(row);
        }
        t
    }

    /// Appends one row.
    pub fn push_row(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.schema.arity(), "row arity mismatch");
        for ((col, &v), attr) in self
            .columns
            .iter_mut()
            .zip(row)
            .zip(self.schema.attributes())
        {
            assert!(
                (v as usize) < attr.size(),
                "value {v} out of domain for attribute '{}'",
                attr.name()
            );
            col.push(v);
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Row `i` as an owned vector.
    pub fn row(&self, i: usize) -> Vec<u32> {
        self.columns.iter().map(|c| c[i]).collect()
    }

    /// Column for attribute `name`.
    pub fn column(&self, name: &str) -> &[u32] {
        &self.columns[self.schema.require(name)]
    }

    /// `Where`: keeps rows satisfying `pred`. 1-stable.
    pub fn filter(&self, pred: &Predicate) -> Table {
        let mut out = Table::empty(self.schema.clone());
        let mut row = vec![0u32; self.schema.arity()];
        for i in 0..self.num_rows() {
            for (slot, col) in row.iter_mut().zip(&self.columns) {
                *slot = col[i];
            }
            if pred.eval(&self.schema, &row) {
                out.push_row(&row);
            }
        }
        out
    }

    /// `Select`: projects onto the named attributes (in the given order).
    /// 1-stable.
    pub fn select(&self, names: &[&str]) -> Table {
        let schema = self.schema.project(names);
        let columns = names
            .iter()
            .map(|n| self.columns[self.schema.require(n)].clone())
            .collect();
        Table { schema, columns }
    }

    /// `SplitByPartition`: splits rows into disjoint tables by the group
    /// label `labels[attr value]` of attribute `attr`. Rows whose value maps
    /// to `None` are dropped. 1-stable per output (each row lands in at most
    /// one part).
    pub fn split_by_partition(&self, attr: &str, labels: &[Option<usize>]) -> Vec<Table> {
        let col = self.schema.require(attr);
        let attr_size = self.schema.attributes()[col].size();
        assert_eq!(
            labels.len(),
            attr_size,
            "label table must cover the attribute domain"
        );
        let parts = labels.iter().flatten().copied().max().map_or(0, |m| m + 1);
        let mut out: Vec<Table> = (0..parts)
            .map(|_| Table::empty(self.schema.clone()))
            .collect();
        let mut row = vec![0u32; self.schema.arity()];
        for i in 0..self.num_rows() {
            for (slot, c) in row.iter_mut().zip(&self.columns) {
                *slot = c[i];
            }
            if let Some(g) = labels[row[col] as usize] {
                out[g].push_row(&row);
            }
        }
        out
    }

    /// `GroupBy`: one output row per distinct combination of the named
    /// attributes. 2-stable (adding/removing one input row changes at most
    /// one group's presence plus one group's contents — see PINQ).
    pub fn group_by(&self, names: &[&str]) -> Table {
        let projected = self.select(names);
        let mut seen = std::collections::HashSet::new();
        let mut out = Table::empty(projected.schema.clone());
        for i in 0..projected.num_rows() {
            let row = projected.row(i);
            if seen.insert(row.clone()) {
                out.push_row(&row);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let schema = Schema::from_sizes(&[("age", 5), ("sex", 2), ("salary", 4)]);
        Table::from_rows(
            schema,
            &[
                vec![0, 0, 1],
                vec![1, 1, 2],
                vec![2, 1, 3],
                vec![2, 0, 0],
                vec![4, 1, 2],
            ],
        )
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let t = sample();
        let f = t.filter(&Predicate::eq("sex", 1));
        assert_eq!(f.num_rows(), 3);
        assert!(f.column("sex").iter().all(|&v| v == 1));
    }

    #[test]
    fn select_projects_and_reorders() {
        let t = sample();
        let s = t.select(&["salary", "age"]);
        assert_eq!(s.schema().arity(), 2);
        assert_eq!(s.row(1), vec![2, 1]);
    }

    #[test]
    fn split_by_partition_is_disjoint_and_complete() {
        let t = sample();
        // ages {0,1} → part 0, {2,3,4} → part 1
        let labels = vec![Some(0), Some(0), Some(1), Some(1), Some(1)];
        let parts = t.split_by_partition("age", &labels);
        assert_eq!(parts.len(), 2);
        let total: usize = parts.iter().map(Table::num_rows).sum();
        assert_eq!(total, t.num_rows());
        assert_eq!(parts[0].num_rows(), 2);
    }

    #[test]
    fn split_drops_unlabeled_values() {
        let t = sample();
        let labels = vec![Some(0), None, None, None, None];
        let parts = t.split_by_partition("age", &labels);
        assert_eq!(parts[0].num_rows(), 1);
    }

    #[test]
    fn group_by_distinct() {
        let t = sample();
        let g = t.group_by(&["sex"]);
        assert_eq!(g.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn out_of_domain_value_rejected() {
        let schema = Schema::from_sizes(&[("a", 2)]);
        Table::from_rows(schema, &[vec![2]]);
    }
}
