//! `T-Vectorize`: table → count vector (paper §5.1).
//!
//! The output has one cell per element of the schema's domain product;
//! cell `i` holds the number of rows whose attribute combination encodes to
//! `i`. This is a 1-stable transformation: adding or removing one row
//! changes the vector's L1 norm by exactly one.

use crate::table::Table;

/// Hard cap on materialized vector size (cells): vectors are dense `f64`,
/// so 2³⁰ cells ≈ 8 GiB. Plans reduce the domain (via `Select` or
/// partition reductions) before vectorizing when the raw product is larger.
pub const MAX_VECTOR_CELLS: usize = 1 << 30;

/// Vectorizes `table` over its full schema domain.
pub fn vectorize(table: &Table) -> Vec<f64> {
    let schema = table.schema();
    let n = schema.domain_size();
    assert!(
        n <= MAX_VECTOR_CELLS,
        "domain of {n} cells exceeds the vectorization cap; Select fewer attributes first"
    );
    let mut x = vec![0.0; n];
    for i in 0..table.num_rows() {
        let row = table.row(i);
        x[schema.cell_index(&row)] += 1.0;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    #[test]
    fn counts_rows_per_cell() {
        let schema = Schema::from_sizes(&[("a", 2), ("b", 2)]);
        let t = Table::from_rows(schema, &[vec![0, 0], vec![0, 0], vec![1, 1], vec![0, 1]]);
        assert_eq!(vectorize(&t), vec![2.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn l1_norm_equals_row_count() {
        let schema = Schema::from_sizes(&[("a", 3)]);
        let t = Table::from_rows(schema, &[vec![0], vec![2], vec![2]]);
        let x = vectorize(&t);
        assert_eq!(x.iter().sum::<f64>(), 3.0);
    }

    #[test]
    fn empty_table_gives_zero_vector() {
        let schema = Schema::from_sizes(&[("a", 4)]);
        let t = Table::empty(schema);
        assert_eq!(vectorize(&t), vec![0.0; 4]);
    }
}
