//! Condition formulas `ϕ` over table rows (paper Definition 3.1).
//!
//! A predicate evaluates on one tuple; `Where` keeps tuples where it holds.
//! Predicates also evaluate on *domain cells*, which is how linear-query
//! coefficient vectors are derived from declarative conditions
//! (paper Def. 3.2: `qᵢ = c₁ϕ₁(i) + … + c_kϕ_k(i)`).

use crate::schema::Schema;

/// A boolean condition over a single row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `attr == value`.
    Eq(String, u32),
    /// `attr ∈ values`.
    In(String, Vec<u32>),
    /// `lo ≤ attr < hi` (half-open, mirroring range queries).
    Range(String, u32, u32),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attr == value`.
    pub fn eq(attr: impl Into<String>, value: u32) -> Self {
        Predicate::Eq(attr.into(), value)
    }

    /// `lo ≤ attr < hi`.
    pub fn range(attr: impl Into<String>, lo: u32, hi: u32) -> Self {
        assert!(lo < hi, "empty predicate range [{lo}, {hi})");
        Predicate::Range(attr.into(), lo, hi)
    }

    /// `attr ∈ values`.
    pub fn is_in(attr: impl Into<String>, values: Vec<u32>) -> Self {
        Predicate::In(attr.into(), values)
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluates on a row laid out according to `schema`.
    pub fn eval(&self, schema: &Schema, row: &[u32]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(attr, v) => row[schema.require(attr)] == *v,
            Predicate::In(attr, vs) => vs.contains(&row[schema.require(attr)]),
            Predicate::Range(attr, lo, hi) => {
                let v = row[schema.require(attr)];
                *lo <= v && v < *hi
            }
            Predicate::And(a, b) => a.eval(schema, row) && b.eval(schema, row),
            Predicate::Or(a, b) => a.eval(schema, row) || b.eval(schema, row),
            Predicate::Not(a) => !a.eval(schema, row),
        }
    }

    /// The 0/1 coefficient vector of this condition over the vectorized
    /// domain of `schema` (paper Def. 3.2). `O(domain)` — intended for
    /// moderate domains or testing; large-domain plans use the implicit
    /// workload constructors instead.
    pub fn indicator(&self, schema: &Schema) -> Vec<f64> {
        let n = schema.domain_size();
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            if self.eval(schema, &schema.cell_coords(i)) {
                *o = 1.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_sizes(&[("age", 10), ("sex", 2)])
    }

    #[test]
    fn eq_and_range() {
        let s = schema();
        let p = Predicate::eq("sex", 1).and(Predicate::range("age", 3, 7));
        assert!(p.eval(&s, &[3, 1]));
        assert!(p.eval(&s, &[6, 1]));
        assert!(!p.eval(&s, &[7, 1]));
        assert!(!p.eval(&s, &[4, 0]));
    }

    #[test]
    fn or_not_in() {
        let s = schema();
        let p = Predicate::is_in("age", vec![1, 5]).or(Predicate::eq("sex", 0).not());
        assert!(p.eval(&s, &[1, 0]));
        assert!(p.eval(&s, &[2, 1]));
        assert!(!p.eval(&s, &[2, 0]));
    }

    #[test]
    fn indicator_counts_match() {
        let s = schema();
        let p = Predicate::range("age", 0, 5);
        let ind = p.indicator(&s);
        let total: f64 = ind.iter().sum();
        assert_eq!(total, 10.0); // 5 ages × 2 sexes
    }

    #[test]
    fn true_matches_everything() {
        let s = schema();
        assert_eq!(Predicate::True.indicator(&s).iter().sum::<f64>(), 20.0);
    }

    #[test]
    #[should_panic(expected = "empty predicate range")]
    fn empty_range_rejected() {
        Predicate::range("age", 4, 4);
    }
}
