#![deny(missing_docs)]
//! # ektelo-data
//!
//! The relational substrate under EKTELO (paper §3 and §5.1).
//!
//! EKTELO's input is a single-relation table `T(A₁, …, A_ℓ)` with discrete
//! (or discretized) attributes. Plans apply *table transformations*
//! (`Where`, `Select`, `SplitByPartition`, `GroupBy`) and then vectorize
//! the result into the count vector `x` on which every later operator
//! works. This crate provides:
//!
//! * [`schema`] — attributes, schemas and the row-major cell encoding;
//! * [`table`] — a columnar table with the PINQ-style transformations;
//! * [`predicate`] — condition formulas `ϕ` for `Where` (paper Def. 3.1);
//! * [`vectorize()`] — `T-Vectorize`: table → data vector (paper §5.1);
//! * [`generators`] — synthetic datasets standing in for the paper's
//!   evaluation data (DPBench 1-D suite, CPS Census, Credit Default —
//!   see DESIGN.md §2 for the substitution rationale);
//! * [`workloads`] — the workload matrices used across the evaluation.

pub mod generators;
pub mod predicate;
pub mod schema;
pub mod table;
pub mod vectorize;
pub mod workloads;

pub use predicate::Predicate;
pub use schema::{Attribute, Schema};
pub use table::Table;
pub use vectorize::vectorize;
