//! CPS-Census-like synthetic data (paper §9.2 / Table 5 substitution).
//!
//! The paper uses a March-2000 Current Population Survey extract:
//! 49,436 heads-of-household with income (5000 uniform bins over
//! (0, 750 000)), age (5 uniform bins over (0, 100)), marital status (7),
//! race (4) and gender (2) — a 1.4M-cell domain. We generate the same
//! schema and cardinality with a correlated joint distribution: log-normal
//! income whose location shifts with age and gender, marital status
//! dependent on age, and mild race/income interaction. Data-dependent
//! plans (DAWA-Striped, AHP) exploit exactly this kind of
//! correlation/sparsity structure.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::schema::Schema;
use crate::table::Table;

/// Number of rows, matching the paper's CPS extract.
pub const CENSUS_ROWS: usize = 49_436;

/// Full vectorized domain: 5000 × 5 × 7 × 4 × 2 = 1,400,000 cells.
pub const CENSUS_DOMAIN: usize = 5000 * 5 * 7 * 4 * 2;

/// The census schema: `[income, age, marital, race, gender]`.
pub fn census_schema() -> Schema {
    Schema::from_sizes(&[
        ("income", 5000),
        ("age", 5),
        ("marital", 7),
        ("race", 4),
        ("gender", 2),
    ])
}

/// Generates the synthetic CPS table (deterministic in `seed`).
pub fn census_cps(seed: u64) -> Table {
    census_cps_sized(CENSUS_ROWS, seed)
}

/// Like [`census_cps`] but with a custom row count (used by scalability
/// sweeps that shrink the data to keep bench times reasonable).
pub fn census_cps_sized(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xce9505);
    let schema = census_schema();
    let mut table = Table::empty(schema);

    for _ in 0..rows {
        let gender = rng.random_range(0..2u32);
        // Age buckets of 20 years; working-age skew.
        let age = sample_categorical(&mut rng, &[0.08, 0.27, 0.30, 0.22, 0.13]);
        // Marital status depends on age bucket.
        let marital = match age {
            0 => sample_categorical(&mut rng, &[0.75, 0.15, 0.02, 0.02, 0.02, 0.02, 0.02]),
            1 => sample_categorical(&mut rng, &[0.35, 0.45, 0.08, 0.05, 0.03, 0.02, 0.02]),
            2 => sample_categorical(&mut rng, &[0.15, 0.55, 0.12, 0.08, 0.05, 0.03, 0.02]),
            3 => sample_categorical(&mut rng, &[0.08, 0.55, 0.12, 0.10, 0.08, 0.04, 0.03]),
            _ => sample_categorical(&mut rng, &[0.05, 0.45, 0.08, 0.08, 0.28, 0.03, 0.03]),
        };
        let race = sample_categorical(&mut rng, &[0.72, 0.13, 0.10, 0.05]);

        // Log-normal income; location rises with age (experience), shifts
        // with gender, small race interaction. Units: dollars, capped at
        // 750k then binned into 5000 uniform bins of $150.
        let base = 10.1
            + 0.18 * age as f64
            + if gender == 0 { 0.12 } else { 0.0 }
            + match race {
                0 => 0.05,
                1 => -0.05,
                _ => 0.0,
            };
        let sigma = 0.75;
        let z = gaussian(&mut rng);
        let income_dollars = (base + sigma * z).exp().min(749_999.0);
        let income_bin = (income_dollars / 150.0) as u32;

        table.push_row(&[income_bin.min(4999), age, marital, race, gender]);
    }
    table
}

fn sample_categorical(rng: &mut StdRng, probs: &[f64]) -> u32 {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectorize::vectorize;

    #[test]
    fn matches_paper_cardinality_and_domain() {
        let t = census_cps_sized(2000, 0);
        assert_eq!(t.schema().domain_size(), CENSUS_DOMAIN);
        assert_eq!(t.num_rows(), 2000);
    }

    #[test]
    fn is_deterministic() {
        let a = census_cps_sized(500, 9);
        let b = census_cps_sized(500, 9);
        for i in 0..a.num_rows() {
            assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    fn income_correlates_with_age() {
        let t = census_cps_sized(20_000, 1);
        let income = t.column("income");
        let age = t.column("age");
        let mean_income = |bucket: u32| {
            let vals: Vec<f64> = income
                .iter()
                .zip(age)
                .filter(|&(_, &a)| a == bucket)
                .map(|(&i, _)| i as f64)
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean_income(4) > mean_income(0) * 1.3,
            "older cohort should earn visibly more"
        );
    }

    #[test]
    fn projection_vectorizes_small_domains() {
        let t = census_cps_sized(1000, 2);
        let small = t.select(&["age", "gender"]);
        let x = vectorize(&small);
        assert_eq!(x.len(), 10);
        assert_eq!(x.iter().sum::<f64>(), 1000.0);
    }

    #[test]
    fn marital_depends_on_age() {
        let t = census_cps_sized(20_000, 3);
        let age = t.column("age");
        let marital = t.column("marital");
        let never_married_rate = |bucket: u32| {
            let (mut num, mut den) = (0.0, 0.0);
            for (&a, &m) in age.iter().zip(marital) {
                if a == bucket {
                    den += 1.0;
                    if m == 0 {
                        num += 1.0;
                    }
                }
            }
            num / den
        };
        assert!(never_married_rate(0) > never_married_rate(3) + 0.2);
    }
}
