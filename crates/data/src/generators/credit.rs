//! Credit-Default-like synthetic data (paper §9.3 / Fig. 3 substitution).
//!
//! The paper's Naive-Bayes case study uses the UCI "default of credit card
//! clients" data (Yeh & Lien 2009): 30k tuples, a binary `default` label,
//! and predictive variables X3–X6 with a combined domain of 17,248 =
//! 7 × 4 × 56 × 11. We synthesize the same shape with a logistic
//! ground-truth model: the label depends on the predictors through a
//! linear score, so an unperturbed Naive-Bayes classifier achieves
//! AUC well above chance and DP noise degrades it smoothly as ε falls —
//! the ordering Fig. 3 measures.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::schema::Schema;
use crate::table::Table;

/// Number of rows, matching the UCI dataset.
pub const CREDIT_ROWS: usize = 30_000;

/// Combined domain of the four predictors: 7 × 4 × 56 × 11 = 17,248.
pub const CREDIT_PREDICTOR_DOMAIN: usize = 7 * 4 * 56 * 11;

/// Schema: binary label `default` plus predictors
/// `x3` (education, 7), `x4` (marriage, 4), `x5` (age bins, 56),
/// `x6` (repayment status, 11).
pub fn credit_schema() -> Schema {
    Schema::from_sizes(&[("default", 2), ("x3", 7), ("x4", 4), ("x5", 56), ("x6", 11)])
}

/// Generates the synthetic credit table (deterministic in `seed`).
pub fn credit_default(seed: u64) -> Table {
    credit_default_sized(CREDIT_ROWS, seed)
}

/// Like [`credit_default`] but with a custom row count.
pub fn credit_default_sized(rows: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4ed17);
    let schema = credit_schema();
    let mut table = Table::empty(schema);

    for _ in 0..rows {
        let x3 = sample_categorical(&mut rng, &[0.35, 0.30, 0.20, 0.08, 0.04, 0.02, 0.01]);
        let x4 = sample_categorical(&mut rng, &[0.45, 0.45, 0.08, 0.02]);
        // Age 21..77 → 56 bins, triangular-ish.
        let x5 = {
            let a: f64 = rng.random();
            let b: f64 = rng.random();
            (((a + b) / 2.0) * 56.0) as u32
        };
        // Repayment status −2..8 coded as 0..11; most clients pay on time.
        let x6 = sample_categorical(
            &mut rng,
            &[
                0.12, 0.10, 0.45, 0.18, 0.07, 0.04, 0.02, 0.01, 0.005, 0.003, 0.002,
            ],
        );

        // Logistic ground truth: repayment delays dominate, education and
        // marriage contribute mildly, age has a weak quadratic effect.
        let delay = x6 as f64 - 2.0; // 0 ≈ "paid duly"
        let score = -1.9 + 0.85 * delay.max(0.0) + 0.12 * (x3 as f64 - 1.0)
            - 0.10 * ((x4 == 1) as u32 as f64)
            + 0.0006 * (x5 as f64 - 28.0).powi(2);
        let p = 1.0 / (1.0 + (-score).exp());
        let default = u32::from(rng.random::<f64>() < p);

        table.push_row(&[default, x3.min(6), x4, x5.min(55), x6.min(10)]);
    }
    table
}

fn sample_categorical(rng: &mut StdRng, probs: &[f64]) -> u32 {
    let u: f64 = rng.random();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i as u32;
        }
    }
    (probs.len() - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_shape() {
        let t = credit_default_sized(5000, 0);
        assert_eq!(t.num_rows(), 5000);
        let predictors = t.schema().project(&["x3", "x4", "x5", "x6"]);
        assert_eq!(predictors.domain_size(), CREDIT_PREDICTOR_DOMAIN);
    }

    #[test]
    fn label_rate_is_plausible() {
        let t = credit_default_sized(30_000, 1);
        let rate = t.column("default").iter().map(|&v| v as f64).sum::<f64>() / t.num_rows() as f64;
        // UCI data has ~22% default rate; accept a broad band.
        assert!(rate > 0.10 && rate < 0.40, "default rate {rate}");
    }

    #[test]
    fn label_is_predictable_from_x6() {
        let t = credit_default_sized(30_000, 2);
        let label = t.column("default");
        let x6 = t.column("x6");
        let rate_given = |delayed: bool| {
            let (mut num, mut den) = (0.0, 0.0);
            for (&l, &v) in label.iter().zip(x6) {
                if (v >= 4) == delayed {
                    den += 1.0;
                    num += l as f64;
                }
            }
            num / den
        };
        assert!(
            rate_given(true) > rate_given(false) + 0.2,
            "delayed payers must default more: {} vs {}",
            rate_given(true),
            rate_given(false)
        );
    }

    #[test]
    fn deterministic() {
        let a = credit_default_sized(100, 5);
        let b = credit_default_sized(100, 5);
        for i in 0..100 {
            assert_eq!(a.row(i), b.row(i));
        }
    }
}
