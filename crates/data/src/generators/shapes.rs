//! 1-D and 2-D histogram shape generators (DPBench stand-ins).
//!
//! DPBench (Hay et al. 2016) evaluates on ~10 one-dimensional datasets
//! whose *shapes* — smooth, skewed, spiky, clustered, flat — are what
//! separates data-dependent from data-independent algorithms. Table 4 of
//! the EKTELO paper reports min/mean/max error improvements *across* that
//! collection, so shape diversity is the property we reproduce.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The shape families in the synthetic DPBench suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape1D {
    /// Flat histogram: the friendliest case for Uniform.
    Uniform,
    /// Single Gaussian bump.
    Gaussian,
    /// Two well-separated Gaussian bumps.
    Bimodal,
    /// Power-law (Zipf-like) decay: heavy head, long sparse tail.
    Zipf,
    /// A handful of tall spikes on an empty domain.
    SparseSpikes,
    /// Piecewise-constant steps: ideal for partition-based algorithms.
    Step,
    /// Exponential decay.
    Exponential,
    /// Log-normal-ish income-style distribution.
    IncomeLike,
    /// Many small clusters of mass.
    Clustered,
    /// Mostly empty with one dense region.
    DenseRegion,
}

/// The ten shapes used by [`dpbench_suite`], in order.
pub const DPBENCH_SHAPES: [Shape1D; 10] = [
    Shape1D::Uniform,
    Shape1D::Gaussian,
    Shape1D::Bimodal,
    Shape1D::Zipf,
    Shape1D::SparseSpikes,
    Shape1D::Step,
    Shape1D::Exponential,
    Shape1D::IncomeLike,
    Shape1D::Clustered,
    Shape1D::DenseRegion,
];

/// Generates a 1-D count histogram of `n` cells with total mass ≈ `scale`.
pub fn shape_1d(shape: Shape1D, n: usize, scale: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let mut weights = vec![0.0f64; n];
    match shape {
        Shape1D::Uniform => {
            weights.fill(1.0);
        }
        Shape1D::Gaussian => {
            let mu = n as f64 * 0.5;
            let sigma = n as f64 * 0.08;
            for (i, w) in weights.iter_mut().enumerate() {
                let z = (i as f64 - mu) / sigma;
                *w = (-0.5 * z * z).exp();
            }
        }
        Shape1D::Bimodal => {
            let (m1, m2) = (n as f64 * 0.25, n as f64 * 0.75);
            let sigma = n as f64 * 0.05;
            for (i, w) in weights.iter_mut().enumerate() {
                let z1 = (i as f64 - m1) / sigma;
                let z2 = (i as f64 - m2) / sigma;
                *w = (-0.5 * z1 * z1).exp() + 0.6 * (-0.5 * z2 * z2).exp();
            }
        }
        Shape1D::Zipf => {
            for (i, w) in weights.iter_mut().enumerate() {
                *w = 1.0 / (i + 1) as f64;
            }
        }
        Shape1D::SparseSpikes => {
            let spikes = 12.min(n);
            for _ in 0..spikes {
                let pos = rng.random_range(0..n);
                weights[pos] += 1.0 + rng.random::<f64>() * 4.0;
            }
        }
        Shape1D::Step => {
            let steps = 8.min(n);
            let width = n.div_ceil(steps);
            let mut level = 1.0;
            for (i, w) in weights.iter_mut().enumerate() {
                if i % width == 0 {
                    level = rng.random_range(0.0..4.0f64);
                    // Some steps are exactly empty — partition-friendly.
                    if rng.random_bool(0.3) {
                        level = 0.0;
                    }
                }
                *w = level;
            }
        }
        Shape1D::Exponential => {
            let rate = 8.0 / n as f64;
            for (i, w) in weights.iter_mut().enumerate() {
                *w = (-rate * i as f64).exp();
            }
        }
        Shape1D::IncomeLike => {
            // Log-normal density over bin midpoints.
            let mu = (n as f64 * 0.12).ln();
            let sigma = 0.8;
            for (i, w) in weights.iter_mut().enumerate() {
                let v = (i + 1) as f64;
                let z = (v.ln() - mu) / sigma;
                *w = (-0.5 * z * z).exp() / v;
            }
        }
        Shape1D::Clustered => {
            let clusters = 20.min(n);
            for _ in 0..clusters {
                let center = rng.random_range(0..n);
                let width = 1 + rng.random_range(0..(n / 64).max(1));
                let lo = center.saturating_sub(width);
                let hi = (center + width).min(n);
                for w in weights.iter_mut().take(hi).skip(lo) {
                    *w += 1.0;
                }
            }
        }
        Shape1D::DenseRegion => {
            let lo = n / 3;
            let hi = lo + n / 8 + 1;
            for w in weights.iter_mut().take(hi.min(n)).skip(lo) {
                *w = 1.0;
            }
        }
    }
    weights_to_counts(&weights, scale, &mut rng)
}

/// The full 10-dataset synthetic DPBench suite at domain size `n`.
pub fn dpbench_suite(n: usize, scale: f64, seed: u64) -> Vec<(&'static str, Vec<f64>)> {
    DPBENCH_SHAPES
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            (
                shape_name(s),
                shape_1d(s, n, scale, seed.wrapping_add(i as u64)),
            )
        })
        .collect()
}

fn shape_name(s: Shape1D) -> &'static str {
    match s {
        Shape1D::Uniform => "uniform",
        Shape1D::Gaussian => "gaussian",
        Shape1D::Bimodal => "bimodal",
        Shape1D::Zipf => "zipf",
        Shape1D::SparseSpikes => "sparse-spikes",
        Shape1D::Step => "step",
        Shape1D::Exponential => "exponential",
        Shape1D::IncomeLike => "income-like",
        Shape1D::Clustered => "clustered",
        Shape1D::DenseRegion => "dense-region",
    }
}

/// A 2-D histogram (`rows×cols`, flattened row-major) made of Gaussian
/// blobs — the stand-in for DPBench's 2-D spatial datasets used by the
/// grid/quadtree plans.
pub fn gauss_blobs_2d(rows: usize, cols: usize, blobs: usize, scale: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xb10b);
    let mut weights = vec![0.0f64; rows * cols];
    for _ in 0..blobs {
        let cy = rng.random_range(0.0..rows as f64);
        let cx = rng.random_range(0.0..cols as f64);
        let sy = rows as f64 * (0.02 + rng.random::<f64>() * 0.08);
        let sx = cols as f64 * (0.02 + rng.random::<f64>() * 0.08);
        let mass = 0.2 + rng.random::<f64>();
        for r in 0..rows {
            let zy = (r as f64 - cy) / sy;
            if zy.abs() > 4.0 {
                continue;
            }
            for c in 0..cols {
                let zx = (c as f64 - cx) / sx;
                if zx.abs() > 4.0 {
                    continue;
                }
                weights[r * cols + c] += mass * (-0.5 * (zy * zy + zx * zx)).exp();
            }
        }
    }
    weights_to_counts(&weights, scale, &mut rng)
}

/// Converts non-negative weights to integer-valued counts with total mass
/// ≈ `scale` by multinomial-style rounding (largest remainders get the
/// leftover units, so the total is exact when the weights are not all 0).
fn weights_to_counts(weights: &[f64], scale: f64, _rng: &mut StdRng) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return vec![0.0; weights.len()];
    }
    let mut counts: Vec<f64> = weights
        .iter()
        .map(|w| (w / total * scale).floor())
        .collect();
    let assigned: f64 = counts.iter().sum();
    let mut leftover = (scale - assigned) as usize;
    // Distribute remaining units to the largest fractional parts.
    let mut fracs: Vec<(usize, f64)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| (i, w / total * scale - counts[i]))
        .collect();
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, _) in fracs {
        if leftover == 0 {
            break;
        }
        counts[i] += 1.0;
        leftover -= 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_mass_is_exact() {
        for &shape in &DPBENCH_SHAPES {
            let x = shape_1d(shape, 256, 10_000.0, 7);
            let total: f64 = x.iter().sum();
            assert_eq!(total, 10_000.0, "shape {shape:?} has total {total}");
            assert!(x.iter().all(|&v| v >= 0.0 && v == v.floor()));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = shape_1d(Shape1D::SparseSpikes, 128, 1000.0, 42);
        let b = shape_1d(Shape1D::SparseSpikes, 128, 1000.0, 42);
        assert_eq!(a, b);
        let c = shape_1d(Shape1D::SparseSpikes, 128, 1000.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn suite_has_ten_distinct_shapes() {
        let suite = dpbench_suite(512, 5000.0, 1);
        assert_eq!(suite.len(), 10);
        // Shape diversity: sparse-spikes should have far fewer nonzero
        // cells than uniform.
        let nnz = |x: &[f64]| x.iter().filter(|&&v| v > 0.0).count();
        let uniform = &suite[0].1;
        let spikes = &suite[4].1;
        assert!(nnz(spikes) * 10 < nnz(uniform));
    }

    #[test]
    fn blobs_2d_mass_and_shape() {
        let x = gauss_blobs_2d(32, 32, 5, 2000.0, 3);
        assert_eq!(x.len(), 1024);
        assert_eq!(x.iter().sum::<f64>(), 2000.0);
    }
}
