//! Synthetic dataset generators.
//!
//! The paper evaluates on datasets we cannot redistribute (DPBench's
//! collection, a March-2000 CPS Census extract, and the UCI Credit-Default
//! data). Each generator here produces a synthetic stand-in matching the
//! schema, scale, and the *distributional features that drive
//! data-dependent algorithms* — sparsity, skew, clustering, and attribute
//! correlation. DESIGN.md §2 documents why each substitution preserves the
//! behaviour the experiments measure.
//!
//! All generators are deterministic given a seed.

mod census;
mod credit;
mod shapes;

pub use census::{census_cps, census_cps_sized, census_schema, CENSUS_DOMAIN, CENSUS_ROWS};
pub use credit::{
    credit_default, credit_default_sized, credit_schema, CREDIT_PREDICTOR_DOMAIN, CREDIT_ROWS,
};
pub use shapes::{dpbench_suite, gauss_blobs_2d, shape_1d, Shape1D, DPBENCH_SHAPES};
