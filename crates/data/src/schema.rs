//! Schemas: attribute metadata and the row-major cell encoding.
//!
//! Every attribute is discrete with values coded `0..size`. The vectorized
//! domain is the cartesian product of attribute domains; cell indices use
//! row-major order with the *first* attribute most significant, matching
//! the Kronecker conventions of `ektelo-matrix` (`A ⊗ B` pairs attribute
//! order with index order).

use std::sync::Arc;

/// A discrete attribute: a name plus domain size (values are `0..size`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    size: usize,
}

impl Attribute {
    /// Creates an attribute with `size` possible values.
    pub fn new(name: impl Into<String>, size: usize) -> Self {
        let name = name.into();
        assert!(size > 0, "attribute '{name}' must have a positive domain");
        Attribute { name, size }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of distinct values.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// An ordered list of attributes defining a relation's shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    attrs: Arc<Vec<Attribute>>,
}

impl Schema {
    /// Builds a schema; attribute names must be unique.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        for i in 0..attrs.len() {
            for j in (i + 1)..attrs.len() {
                assert_ne!(
                    attrs[i].name(),
                    attrs[j].name(),
                    "duplicate attribute name '{}'",
                    attrs[i].name()
                );
            }
        }
        Schema {
            attrs: Arc::new(attrs),
        }
    }

    /// Convenience constructor from `(name, size)` pairs.
    pub fn from_sizes(pairs: &[(&str, usize)]) -> Self {
        Schema::new(pairs.iter().map(|&(n, s)| Attribute::new(n, s)).collect())
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Per-attribute domain sizes.
    pub fn sizes(&self) -> Vec<usize> {
        self.attrs.iter().map(Attribute::size).collect()
    }

    /// The full vectorized domain size (product of attribute domains).
    /// Panics on overflow — such a domain cannot be vectorized anyway.
    pub fn domain_size(&self) -> usize {
        self.attrs.iter().fold(1usize, |acc, a| {
            acc.checked_mul(a.size()).expect("domain size overflow")
        })
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name() == name)
    }

    /// Like [`Schema::index_of`] but panics with a clear message.
    pub fn require(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("schema has no attribute named '{name}'"))
    }

    /// Maps an attribute-value row to its row-major cell index.
    pub fn cell_index(&self, row: &[u32]) -> usize {
        assert_eq!(row.len(), self.arity(), "row arity mismatch");
        let mut idx = 0usize;
        for (a, &v) in self.attrs.iter().zip(row) {
            debug_assert!(
                (v as usize) < a.size(),
                "value {v} out of domain for attribute '{}'",
                a.name()
            );
            idx = idx * a.size() + v as usize;
        }
        idx
    }

    /// Inverse of [`Schema::cell_index`].
    pub fn cell_coords(&self, mut idx: usize) -> Vec<u32> {
        let mut coords = vec![0u32; self.arity()];
        for (slot, a) in coords.iter_mut().zip(self.attrs.iter()).rev() {
            *slot = (idx % a.size()) as u32;
            idx /= a.size();
        }
        debug_assert_eq!(idx, 0, "cell index out of range");
        coords
    }

    /// The schema restricted to the named attributes (in the given order).
    pub fn project(&self, names: &[&str]) -> Schema {
        let attrs = names
            .iter()
            .map(|n| self.attrs[self.require(n)].clone())
            .collect();
        Schema::new(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_sizes(&[("a", 2), ("b", 3), ("c", 4)])
    }

    #[test]
    fn domain_size_is_product() {
        assert_eq!(abc().domain_size(), 24);
    }

    #[test]
    fn cell_index_roundtrip() {
        let s = abc();
        for idx in 0..s.domain_size() {
            let coords = s.cell_coords(idx);
            assert_eq!(s.cell_index(&coords), idx);
        }
    }

    #[test]
    fn first_attribute_is_most_significant() {
        let s = abc();
        assert_eq!(s.cell_index(&[0, 0, 0]), 0);
        assert_eq!(s.cell_index(&[0, 0, 1]), 1);
        assert_eq!(s.cell_index(&[0, 1, 0]), 4);
        assert_eq!(s.cell_index(&[1, 0, 0]), 12);
    }

    #[test]
    fn projection_keeps_order_given() {
        let s = abc().project(&["c", "a"]);
        assert_eq!(s.arity(), 2);
        assert_eq!(s.attributes()[0].name(), "c");
        assert_eq!(s.domain_size(), 8);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_names_rejected() {
        Schema::from_sizes(&[("a", 2), ("a", 3)]);
    }

    #[test]
    #[should_panic(expected = "no attribute named")]
    fn missing_attribute_panics() {
        abc().require("zzz");
    }
}
