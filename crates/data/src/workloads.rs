//! Workload constructors used across the paper's evaluation.
//!
//! A workload is a set of linear counting queries the analyst ultimately
//! wants answered, in matrix form (one row per query). Everything here
//! builds *implicit* `Matrix` values so workloads over 10⁶+-cell domains
//! stay cheap (paper Example 7.3: a census workload that would take 8 GB
//! sparse is a few combinator nodes here).

use ektelo_matrix::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The n×n prefix (empirical CDF) workload.
pub fn prefix_1d(n: usize) -> Matrix {
    Matrix::prefix(n)
}

/// The identity workload: every cell count individually.
pub fn identity_workload(n: usize) -> Matrix {
    Matrix::identity(n)
}

/// All `n(n+1)/2` interval range queries over `n` cells. Stored implicitly
/// as index pairs; fine up to a few thousand cells.
pub fn all_ranges(n: usize) -> Matrix {
    let mut ranges = Vec::with_capacity(n * (n + 1) / 2);
    for lo in 0..n {
        for hi in (lo + 1)..=n {
            ranges.push((lo, hi));
        }
    }
    Matrix::range_queries(n, ranges)
}

/// `m` uniformly random interval queries over `n` cells — the paper's
/// `RandomRange(m)` workload (Table 4). Widths are drawn log-uniformly so
/// short and long ranges are both represented.
pub fn random_range(n: usize, m: usize, seed: u64) -> Matrix {
    Matrix::range_queries(n, random_range_pairs(n, m, seed, 1, n))
}

/// `RandomRange` restricted to *small* ranges (width ≤ `max_width`) —
/// the workload used in the domain-reduction experiment (Table 6).
pub fn random_range_small(n: usize, m: usize, max_width: usize, seed: u64) -> Matrix {
    Matrix::range_queries(n, random_range_pairs(n, m, seed, 1, max_width.max(1)))
}

fn random_range_pairs(
    n: usize,
    m: usize,
    seed: u64,
    min_width: usize,
    max_width: usize,
) -> Vec<(usize, usize)> {
    assert!(n > 0 && min_width >= 1 && max_width <= n);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4a4d5e);
    let mut out = Vec::with_capacity(m);
    let lo_w = (min_width as f64).ln();
    let hi_w = (max_width as f64).ln();
    for _ in 0..m {
        let w = if max_width == min_width {
            min_width
        } else {
            let lw: f64 = rng.random_range(lo_w..=hi_w);
            (lw.exp().round() as usize).clamp(min_width, max_width)
        };
        let lo = rng.random_range(0..=(n - w));
        out.push((lo, lo + w));
    }
    out
}

/// `m` random axis-aligned rectangle queries over a 2-D `rows×cols` grid,
/// built with the paper's Example 7.4 construction: a ±1 sparse
/// corner matrix times `Prefix ⊗ Prefix`.
pub fn random_range_2d(rows: usize, cols: usize, m: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x2d2d);
    let n = rows * cols;
    let mut triplets = Vec::with_capacity(4 * m);
    for q in 0..m {
        let r1 = rng.random_range(0..rows);
        let r2 = rng.random_range(r1..rows);
        let c1 = rng.random_range(0..cols);
        let c2 = rng.random_range(c1..cols);
        // Inclusion–exclusion over prefix corners P(r, c) = sum over
        // [0..=r]×[0..=c]; corner index = r*cols + c in the kron layout.
        triplets.push((q, r2 * cols + c2, 1.0));
        if r1 > 0 {
            triplets.push((q, (r1 - 1) * cols + c2, -1.0));
        }
        if c1 > 0 {
            triplets.push((q, r2 * cols + (c1 - 1), -1.0));
        }
        if r1 > 0 && c1 > 0 {
            triplets.push((q, (r1 - 1) * cols + (c1 - 1), 1.0));
        }
    }
    let corners = Matrix::sparse(ektelo_matrix::CsrMatrix::from_triplets(m, n, &triplets));
    Matrix::product(
        corners,
        Matrix::kron(Matrix::prefix(rows), Matrix::prefix(cols)),
    )
}

/// A single marginal over the attributes flagged `true` in `keep`
/// (paper Example 7.5): `⊗ᵢ (keep[i] ? Identity : Total)`.
///
/// ```
/// use ektelo_data::workloads::marginal;
/// // Over a 2×3 domain, keep only the first attribute: sums over the
/// // second.
/// let w = marginal(&[2, 3], &[true, false]);
/// assert_eq!(w.shape(), (2, 6));
/// let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// assert_eq!(w.matvec(&x), vec![6.0, 15.0]);
/// ```
pub fn marginal(sizes: &[usize], keep: &[bool]) -> Matrix {
    assert_eq!(sizes.len(), keep.len(), "marginal mask length mismatch");
    let factors = sizes
        .iter()
        .zip(keep)
        .map(|(&n, &k)| {
            if k {
                Matrix::identity(n)
            } else {
                Matrix::total(n)
            }
        })
        .collect();
    Matrix::kron_list(factors)
}

/// The union of all k-way marginals over the given attribute sizes
/// (paper Example 7.5 shows the 2-way case).
pub fn all_k_way_marginals(sizes: &[usize], k: usize) -> Matrix {
    let d = sizes.len();
    assert!(k <= d, "k-way marginals need k ≤ arity");
    let mut blocks = Vec::new();
    // Enumerate all bitmasks with exactly k bits set.
    for mask in 0u32..(1 << d) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let keep: Vec<bool> = (0..d).map(|i| mask & (1 << i) != 0).collect();
        blocks.push(marginal(sizes, &keep));
    }
    Matrix::vstack(blocks)
}

/// The paper's Census `Prefix(Income)` workload (§9.2): all queries
/// `(income ∈ (0, i_high), age = a?, marital = m?, race = r?, gender = g?)`
/// where each non-income attribute is either a fixed value or `<any>`.
/// Expressed as `Prefix ⊗ (I+Total) ⊗ (I+Total) ⊗ (I+Total) ⊗ (I+Total)`.
pub fn census_prefix_income(sizes: &[usize]) -> Matrix {
    assert!(!sizes.is_empty());
    let mut factors = vec![Matrix::prefix(sizes[0])];
    for &s in &sizes[1..] {
        factors.push(Matrix::vstack(vec![Matrix::total(s), Matrix::identity(s)]));
    }
    Matrix::kron_list(factors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ranges_count() {
        let w = all_ranges(5);
        assert_eq!(w.rows(), 15);
        assert_eq!(w.cols(), 5);
    }

    #[test]
    fn random_range_respects_width_cap() {
        let w = random_range_small(100, 50, 5, 3);
        if let Matrix::Range(r) = &w {
            for (lo, hi) in r.ranges() {
                assert!(hi - lo <= 5 && hi - lo >= 1);
            }
        } else {
            panic!("expected Range matrix");
        }
    }

    #[test]
    fn random_range_2d_matches_bruteforce() {
        let (rows, cols, m) = (6, 5, 20);
        let w = random_range_2d(rows, cols, m, 11);
        assert_eq!(w.shape(), (m, rows * cols));
        // Every query must be a 0/1 rectangle indicator: check via dense.
        let d = w.to_dense();
        for q in 0..m {
            let row = d.row_slice(q);
            assert!(
                row.iter().all(|&v| v == 0.0 || v == 1.0),
                "row {q}: {row:?}"
            );
            // The support must be a full rectangle: check the bounding box
            // has exactly as many ones as its area.
            let mut rmin = rows;
            let mut rmax = 0;
            let mut cmin = cols;
            let mut cmax = 0;
            let mut count = 0;
            for r in 0..rows {
                for c in 0..cols {
                    if row[r * cols + c] == 1.0 {
                        rmin = rmin.min(r);
                        rmax = rmax.max(r);
                        cmin = cmin.min(c);
                        cmax = cmax.max(c);
                        count += 1;
                    }
                }
            }
            assert_eq!(
                count,
                (rmax - rmin + 1) * (cmax - cmin + 1),
                "row {q} not a rectangle"
            );
        }
    }

    #[test]
    fn marginal_shapes() {
        let sizes = [3, 4, 5];
        let w = marginal(&sizes, &[true, false, true]);
        assert_eq!(w.shape(), (15, 60));
        let w2 = all_k_way_marginals(&sizes, 2);
        // (3·4) + (3·5) + (4·5) = 47 queries
        assert_eq!(w2.rows(), 47);
    }

    #[test]
    fn marginals_sum_to_total() {
        // Any marginal's answers must sum to the dataset total.
        let sizes = [3, 4];
        let w = marginal(&sizes, &[true, false]);
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let total: f64 = x.iter().sum();
        assert_eq!(w.matvec(&x).iter().sum::<f64>(), total);
    }

    #[test]
    fn census_workload_is_fully_implicit() {
        let w = census_prefix_income(&[5000, 5, 7, 4, 2]);
        assert_eq!(w.cols(), 1_400_000);
        assert_eq!(w.rows(), 5000 * 6 * 8 * 5 * 3);
        // The paper's point: this would be ~8 GB sparse; implicitly it
        // stores nothing.
        assert_eq!(w.stored_scalars(), 0);
    }
}
