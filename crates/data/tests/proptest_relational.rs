//! Property tests for the relational substrate: the dualities between
//! predicates, tables, vectorization, and linear queries (paper §3's
//! declarative-vs-vector equivalence, Def. 3.1/3.2).

use ektelo_data::{vectorize, Predicate, Schema, Table};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

fn arb_schema() -> impl Strategy<Value = Schema> {
    (2usize..5, 2usize..5, 1usize..4)
        .prop_map(|(a, b, c)| Schema::from_sizes(&[("a", a), ("b", b), ("c", c)]))
}

fn arb_table(schema: Schema, max_rows: usize) -> impl Strategy<Value = Table> {
    let sizes = schema.sizes();
    prop::collection::vec(prop::collection::vec(0u32..16, sizes.len()), 0..max_rows).prop_map(
        move |raw| {
            let mut t = Table::empty(schema.clone());
            for mut row in raw {
                for (v, &s) in row.iter_mut().zip(&sizes) {
                    *v %= s as u32;
                }
                t.push_row(&row);
            }
            t
        },
    )
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![
        Just(Predicate::True),
        (0u32..4).prop_map(|v| Predicate::eq("a", v % 2)),
        (0u32..3, 1u32..3).prop_map(|(lo, w)| Predicate::range("b", lo.min(1), lo.min(1) + w)),
        prop::collection::vec(0u32..3, 1..3).prop_map(|vs| Predicate::is_in("c", vs)),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.and(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            inner.prop_map(|x| x.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Paper Def. 3.1 ≡ Def. 3.2: counting rows matching φ equals the dot
    /// product of φ's indicator vector with the vectorized table.
    #[test]
    fn declarative_equals_vector_form(
        schema in arb_schema(),
        pred in arb_predicate(),
    ) {
        let table = {
            // Deterministic table derived from the schema (keeps the
            // proptest space on predicates).
            let mut t = Table::empty(schema.clone());
            let sizes = schema.sizes();
            for i in 0..60u32 {
                let row: Vec<u32> = sizes
                    .iter()
                    .enumerate()
                    .map(|(k, &s)| ((i as usize * (k + 3)) % s) as u32)
                    .collect();
                t.push_row(&row);
            }
            t
        };
        // Clamp predicate values into the schema's domains by evaluation —
        // eval panics never; out-of-range constants simply never match.
        let declarative = table.filter(&pred).num_rows() as f64;
        let x = vectorize(&table);
        let q = pred.indicator(&schema);
        let vectorized: f64 = q.iter().zip(&x).map(|(a, b)| a * b).sum();
        prop_assert_eq!(declarative, vectorized);
    }

    /// Filtering preserves schema and never grows the table.
    #[test]
    fn filter_monotone(
        schema in arb_schema(),
        pred in arb_predicate(),
    ) {
        let table_strategy = arb_table(schema.clone(), 40);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let table = table_strategy.new_tree(&mut runner).unwrap().current();
        let f = table.filter(&pred);
        prop_assert!(f.num_rows() <= table.num_rows());
        prop_assert_eq!(f.schema(), table.schema());
        // Filter is idempotent.
        prop_assert_eq!(f.filter(&pred).num_rows(), f.num_rows());
    }

    /// select keeps row counts and reorders columns consistently.
    #[test]
    fn select_preserves_rows(schema in arb_schema()) {
        let table_strategy = arb_table(schema, 30);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let table = table_strategy.new_tree(&mut runner).unwrap().current();
        let s = table.select(&["c", "a"]);
        prop_assert_eq!(s.num_rows(), table.num_rows());
        for i in 0..table.num_rows() {
            let orig = table.row(i);
            let proj = s.row(i);
            prop_assert_eq!(proj[0], orig[2]);
            prop_assert_eq!(proj[1], orig[0]);
        }
    }

    /// Vectorize: L1 mass equals cardinality; filter + vectorize equals
    /// masking the vectorized table.
    #[test]
    fn vectorize_mass_and_masking(
        schema in arb_schema(),
        pred in arb_predicate(),
    ) {
        let table_strategy = arb_table(schema.clone(), 50);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let table = table_strategy.new_tree(&mut runner).unwrap().current();
        let x = vectorize(&table);
        prop_assert_eq!(x.iter().sum::<f64>(), table.num_rows() as f64);
        let filtered = vectorize(&table.filter(&pred));
        let mask = pred.indicator(&schema);
        for ((f, m), v) in filtered.iter().zip(&mask).zip(&x) {
            prop_assert_eq!(*f, m * v, "filtered vectorization must equal masked vectorization");
        }
    }

    /// split_by_partition is a partition of the rows: disjoint and
    /// complete over labeled values.
    #[test]
    fn split_partitions_rows(groups in 1usize..4) {
        let schema = Schema::from_sizes(&[("a", 6), ("b", 3)]);
        let table_strategy = arb_table(schema, 40);
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let table = table_strategy.new_tree(&mut runner).unwrap().current();
        let labels: Vec<Option<usize>> = (0..6).map(|v| Some(v % groups)).collect();
        let parts = table.split_by_partition("a", &labels);
        let total: usize = parts.iter().map(Table::num_rows).sum();
        prop_assert_eq!(total, table.num_rows());
    }

    /// cell_index/cell_coords are inverse bijections over the domain.
    #[test]
    fn cell_encoding_bijective(schema in arb_schema()) {
        for idx in 0..schema.domain_size() {
            let coords = schema.cell_coords(idx);
            prop_assert_eq!(schema.cell_index(&coords), idx);
        }
    }
}
