//! 2-D plans: QuadTree (Plan #10), UniformGrid (#11), AdaptiveGrid (#12).
//!
//! All operate on a flattened `rows×cols` data vector.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::selection::{
    adaptive_grid_round2, quad_tree, uniform_grid, uniform_grid_size,
};
use ektelo_matrix::Matrix;

use crate::util::{infer_ls, split_budget, PlanOutcome, PlanResult};

/// Plan #10 — QuadTree (Cormode et al. 2012): `SQ LM LS`.
pub fn plan_quad_tree(
    kernel: &ProtectedKernel,
    x: SourceVar,
    shape: (usize, usize),
    eps: f64,
) -> PlanResult {
    let start = kernel.measurement_count();
    kernel.vector_laplace(x, &quad_tree(shape.0, shape.1), eps)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #11 — UniformGrid (Qardaji et al. 2013): `SU LM LS`.
/// `expected_total` feeds Qardaji's grid-sizing rule.
pub fn plan_uniform_grid(
    kernel: &ProtectedKernel,
    x: SourceVar,
    shape: (usize, usize),
    expected_total: f64,
    eps: f64,
) -> PlanResult {
    let g = uniform_grid_size(shape.0, shape.1, expected_total, eps);
    let start = kernel.measurement_count();
    kernel.vector_laplace(x, &uniform_grid(shape.0, shape.1, g), eps)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #12 — AdaptiveGrid (Qardaji et al. 2013):
/// `SU LM LS PU TP[ SA LM ]`.
///
/// Round 1 measures a coarse grid with `eps₁`; round 2 subdivides each
/// block adaptively based on its noisy count and measures the finer
/// rectangles with `eps₂`. All round-2 rectangles are mutually disjoint,
/// so issuing them as one `Rect2D` measurement is *exactly* the parallel
/// composition the plan signature's `TP[…]` expresses (the kernel-split
/// path is exercised by the striped plans instead).
pub fn plan_adaptive_grid(
    kernel: &ProtectedKernel,
    x: SourceVar,
    shape: (usize, usize),
    expected_total: f64,
    eps: f64,
) -> PlanResult {
    let (rows, cols) = shape;
    let shares = split_budget(eps, &[1.0, 1.0]);
    let start = kernel.measurement_count();

    // Round 1: coarse uniform grid (half Qardaji's size constant, as in
    // the AG paper's first stage).
    let g1 = uniform_grid_size(rows, cols, expected_total, shares[0])
        .div_ceil(2)
        .max(1);
    let coarse = uniform_grid(rows, cols, g1);
    let y1 = kernel.vector_laplace(x, &coarse, shares[0])?;

    // Round 2: per-block adaptive refinement.
    let blocks: Vec<(usize, usize, usize, usize)> = match &coarse {
        Matrix::Rect2D(r) => r.rects().collect(),
        _ => unreachable!("uniform_grid returns Rect2D"),
    };
    let mut rects = Vec::new();
    for (block, &count) in blocks.iter().zip(&y1) {
        rects.extend(adaptive_grid_round2(*block, count, shares[1]));
    }
    let fine = Matrix::rect_queries(rows, cols, rects);
    debug_assert!((fine.l1_sensitivity() - 1.0).abs() < 1e-9);
    kernel.vector_laplace(x, &fine, shares[1])?;

    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #12, literal form: AdaptiveGrid with an explicit
/// `V-SplitByPartition` — each coarse block becomes its own kernel source
/// and runs its round-2 subplan under parallel composition, exactly as the
/// signature `TP[ SA LM ]` reads. Statistically identical to
/// [`plan_adaptive_grid`]; kept as a faithful rendering of the paper's
/// plan and as an exercise of the kernel's split machinery on 2-D domains.
pub fn plan_adaptive_grid_split(
    kernel: &ProtectedKernel,
    x: SourceVar,
    shape: (usize, usize),
    expected_total: f64,
    eps: f64,
) -> PlanResult {
    use ektelo_core::ops::partition::grid_partition;

    let (rows, cols) = shape;
    let shares = split_budget(eps, &[1.0, 1.0]);
    let start = kernel.measurement_count();

    // Round 1: coarse grid measurement (as in the one-shot variant).
    let g1 = uniform_grid_size(rows, cols, expected_total, shares[0])
        .div_ceil(2)
        .max(1);
    let coarse = uniform_grid(rows, cols, g1);
    let y1 = kernel.vector_laplace(x, &coarse, shares[0])?;

    // PU + TP: partition the vector by the same grid and split.
    let (p, blocks) = grid_partition(rows, cols, g1);
    let parts = kernel.split_by_partition(x, &p)?;

    // SA + LM per block: adaptive granularity from the round-1 count.
    for ((part, block), &count) in parts.iter().zip(&blocks).zip(&y1) {
        let (r1, r2, c1, c2) = *block;
        let (h, w) = (r2 - r1, c2 - c1);
        // Local rectangles relative to the block's own (row-major) cells.
        let local = adaptive_grid_round2((0, h, 0, w), count, shares[1]);
        let strategy = Matrix::rect_queries(h, w, local);
        kernel.vector_laplace(*part, &strategy, shares[1])?;
    }
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::gauss_blobs_2d;

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn quad_tree_reconstructs() {
        let x = gauss_blobs_2d(16, 16, 3, 50_000.0, 1);
        let (k, root) = kernel_for_histogram(&x, 1.0, 2);
        let out = plan_quad_tree(&k, root, (16, 16), 1.0).unwrap();
        assert_eq!(out.x_hat.len(), 256);
        assert!(rmse(&x, &out.x_hat) < 50.0);
    }

    #[test]
    fn uniform_grid_total_is_right() {
        let x = gauss_blobs_2d(32, 32, 4, 100_000.0, 2);
        let (k, root) = kernel_for_histogram(&x, 0.1, 3);
        let out = plan_uniform_grid(&k, root, (32, 32), 100_000.0, 0.1).unwrap();
        let t: f64 = out.x_hat.iter().sum();
        assert!((t - 100_000.0).abs() / 100_000.0 < 0.05, "total {t}");
    }

    #[test]
    fn split_variant_matches_one_shot_statistically() {
        // Same measurements, different plumbing: budget identical, errors
        // within noise of each other.
        let x = gauss_blobs_2d(32, 32, 3, 200_000.0, 7);
        let eps = 0.2;
        let mut err_one = 0.0;
        let mut err_split = 0.0;
        for seed in 0..3 {
            let (k, root) = kernel_for_histogram(&x, eps, seed);
            let a = plan_adaptive_grid(&k, root, (32, 32), 2e5, eps).unwrap();
            assert!((k.budget_spent() - eps).abs() < 1e-9);
            err_one += rmse(&x, &a.x_hat);

            let (k, root) = kernel_for_histogram(&x, eps, seed + 20);
            let b = plan_adaptive_grid_split(&k, root, (32, 32), 2e5, eps).unwrap();
            assert!(
                (k.budget_spent() - eps).abs() < 1e-9,
                "split variant must also cost exactly eps (parallel composition)"
            );
            assert_eq!(b.x_hat.len(), 1024);
            err_split += rmse(&x, &b.x_hat);
        }
        let ratio = err_split / err_one;
        assert!(
            (0.5..2.0).contains(&ratio),
            "variants diverge: {err_split} vs {err_one}"
        );
    }

    #[test]
    fn adaptive_grid_spends_exactly_eps() {
        let x = gauss_blobs_2d(32, 32, 4, 100_000.0, 3);
        let (k, root) = kernel_for_histogram(&x, 0.5, 4);
        plan_adaptive_grid(&k, root, (32, 32), 100_000.0, 0.5).unwrap();
        assert!((k.budget_spent() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn adaptive_beats_uniform_on_sparse_skewed_data() {
        // One dense blob on a large mostly-empty domain at small eps: the
        // uniform grid wastes resolution on emptiness while AG refines only
        // where the round-1 counts are large (the regime where Qardaji's AG
        // wins, and the shape DPBench/Fig. 4 report).
        let x = gauss_blobs_2d(128, 128, 1, 100_000.0, 5);
        let truth_w = ektelo_data::workloads::random_range_2d(128, 128, 100, 7);
        let tw = truth_w.matvec(&x);
        let eps = 0.02;
        let mut err_ug = 0.0;
        let mut err_ag = 0.0;
        for seed in 0..4 {
            let (k, root) = kernel_for_histogram(&x, eps, seed);
            let ug = plan_uniform_grid(&k, root, (128, 128), 1e5, eps)
                .unwrap()
                .x_hat;
            let (k, root) = kernel_for_histogram(&x, eps, seed + 10);
            let ag = plan_adaptive_grid(&k, root, (128, 128), 1e5, eps)
                .unwrap()
                .x_hat;
            let e = |xh: &[f64]| {
                let est = truth_w.matvec(xh);
                rmse(&tw, &est)
            };
            err_ug += e(&ug);
            err_ag += e(&ag);
        }
        assert!(
            err_ag < 0.8 * err_ug,
            "AG ({err_ag}) should clearly beat UG ({err_ug}) on sparse skewed data"
        );
    }
}
