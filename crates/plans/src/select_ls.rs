//! SelectLS (Algorithm 8): per-histogram algorithm selection with global
//! least-squares inference (§9.3).
//!
//! For each requested marginal the plan reduces the domain, then picks a
//! subplan by (public) domain size: small marginals are measured directly
//! with Identity; large ones first run DAWA's partition selection and
//! measure the buckets with Greedy-H. All measurements from all branches
//! feed one joint least-squares at the end — the "use inference
//! consistently" guidance of §5.5.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::{dawa_partition, marginal_partition, DawaOptions};
use ektelo_core::ops::selection::greedy_h;
use ektelo_matrix::Matrix;

use crate::util::{infer_ls, split_budget, PlanOutcome, PlanResult};

/// Options for [`plan_select_ls`].
#[derive(Clone, Debug)]
pub struct SelectLsOptions {
    /// Domain-size threshold between the Identity and DAWA branches
    /// (80 in Algorithm 8).
    pub small_domain: usize,
    /// DAWA stage-1 share inside the large-domain branch.
    pub dawa_rho: f64,
}

impl Default for SelectLsOptions {
    fn default() -> Self {
        SelectLsOptions {
            small_domain: 80,
            dawa_rho: 0.25,
        }
    }
}

/// Runs Algorithm 8 over the marginal masks in `specs` (one bool per
/// attribute; `true` = kept). Each spec gets an `eps / specs.len()` share
/// (sequential composition across overlapping marginals). Returns the
/// estimate over the full domain.
pub fn plan_select_ls(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    specs: &[Vec<bool>],
    eps: f64,
    opts: &SelectLsOptions,
) -> PlanResult {
    assert!(
        !specs.is_empty(),
        "SelectLS needs at least one marginal spec"
    );
    let per_spec = eps / specs.len() as f64;
    let start = kernel.measurement_count();
    for keep in specs {
        let p = marginal_partition(sizes, keep);
        let reduced = kernel.reduce_by_partition(x, &p)?;
        let m = kernel.vector_len(reduced)?;
        if m > opts.small_domain {
            // DAWA branch: partition the marginal, measure buckets.
            let shares = split_budget(per_spec, &[opts.dawa_rho, 1.0 - opts.dawa_rho]);
            let bucket_p =
                dawa_partition(kernel, reduced, shares[0], &DawaOptions::new(shares[1]))?;
            let buckets = kernel.reduce_by_partition(reduced, &bucket_p)?;
            let groups = kernel.vector_len(buckets)?;
            kernel.vector_laplace(buckets, &greedy_h(groups, &[]), shares[1])?;
        } else {
            kernel.vector_laplace(reduced, &Matrix::identity(m), per_spec)?;
        }
    }
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_core::kernel::ProtectedKernel;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn setup(rows: usize, seed: u64) -> (ProtectedKernel, SourceVar, Vec<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("y", 2), ("a", 6), ("b", 200)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let y = rng.random_range(0..2u32);
            let a = rng.random_range(0..6u32);
            let b = (rng.random_range(0..100u32) + y * 50).min(199);
            t.push_row(&[y, a, b]);
        }
        let truth = ektelo_data::vectorize(&t);
        let k = ProtectedKernel::init(t, 10.0, seed);
        let x = k.vectorize(k.root()).unwrap();
        (k, x, truth, vec![2, 6, 200])
    }

    #[test]
    fn mixes_identity_and_dawa_branches() {
        let (k, x, _, sizes) = setup(5000, 1);
        // (y,a) = 12 cells → identity; (y,b) = 400 cells → DAWA branch.
        let specs = vec![vec![true, true, false], vec![true, false, true]];
        let out = plan_select_ls(&k, x, &sizes, &specs, 1.0, &SelectLsOptions::default()).unwrap();
        assert_eq!(out.x_hat.len(), 2 * 6 * 200);
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
        // The DAWA branch produces ≥ 2 measurements (buckets), identity 1.
        assert!(k.measurements().len() >= 2);
    }

    #[test]
    fn marginal_estimates_are_consistent_with_truth_at_high_eps() {
        let (k, x, truth, sizes) = setup(20_000, 2);
        let specs = vec![vec![true, true, false], vec![true, false, true]];
        let out = plan_select_ls(&k, x, &sizes, &specs, 8.0, &SelectLsOptions::default()).unwrap();
        let w = ektelo_data::workloads::marginal(&sizes, &[true, true, false]);
        let e: f64 = w
            .matvec(&truth)
            .iter()
            .zip(&w.matvec(&out.x_hat))
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 12.0;
        assert!(e < 100.0, "mean marginal error {e}");
    }
}
