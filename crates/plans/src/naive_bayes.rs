//! The Naive-Bayes case study (§9.3, Fig. 3).
//!
//! Learning a Naive-Bayes classifier for a binary label Y from predictors
//! X₁…X_k requires the 2k+1 histograms {Y} ∪ {(Y, Xᵢ)}. Four DP plans
//! estimate them:
//!
//! * [`plan_nb_workload`] — measure the histogram workload directly
//!   (the Cormode 2011 baseline of Fig. 3);
//! * [`plan_nb_workload_ls`] — the same plus least-squares inference
//!   (the paper's *WorkloadLS*);
//! * [`plan_nb_identity`] — noisy full contingency table, marginalized
//!   (Plan #1 applied to the task);
//! * [`plan_nb_select_ls`] — Algorithm 8 (*SelectLS*).
//!
//! Plus the non-private references: [`nb_unperturbed`] and the majority
//! classifier (an AUC of 0.5 by construction — it ranks everything
//! equally).

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_data::workloads::marginal;
use ektelo_data::Table;
use ektelo_matrix::Matrix;

use crate::select_ls::{plan_select_ls, SelectLsOptions};
use crate::util::infer_ls;

/// The sufficient statistics of a binary-label Naive-Bayes model:
/// the label histogram and one `(label × value)` joint histogram per
/// predictor (label-major layout).
#[derive(Clone, Debug)]
pub struct NbHistograms {
    /// `P(Y)` counts, length 2.
    pub label: Vec<f64>,
    /// Per predictor: counts over `(y, v)` at index `y * size + v`.
    pub joint: Vec<Vec<f64>>,
}

/// The marginal masks for the NB task over `[label, X₁ … X_k]`.
pub fn nb_specs(arity: usize) -> Vec<Vec<bool>> {
    let mut specs = Vec::with_capacity(arity);
    let mut label_only = vec![false; arity];
    label_only[0] = true;
    specs.push(label_only);
    for i in 1..arity {
        let mut keep = vec![false; arity];
        keep[0] = true;
        keep[i] = true;
        specs.push(keep);
    }
    specs
}

/// The NB workload matrix: the union of the 2k+1 histogram marginals.
pub fn nb_workload(sizes: &[usize]) -> Matrix {
    Matrix::vstack(
        nb_specs(sizes.len())
            .iter()
            .map(|k| marginal(sizes, k))
            .collect(),
    )
}

/// Extracts [`NbHistograms`] from a full-domain estimate.
pub fn histograms_from_vector(x_hat: &[f64], sizes: &[usize]) -> NbHistograms {
    let specs = nb_specs(sizes.len());
    let label = marginal(sizes, &specs[0]).matvec(x_hat);
    let joint = specs[1..]
        .iter()
        .map(|keep| marginal(sizes, keep).matvec(x_hat))
        .collect();
    NbHistograms { label, joint }
}

/// Ground-truth histograms straight from a table (non-private reference).
pub fn nb_unperturbed(table: &Table) -> NbHistograms {
    let x = ektelo_data::vectorize(table);
    histograms_from_vector(&x, &table.schema().sizes())
}

/// Fig. 3's *Workload* baseline (Cormode): one `Vector Laplace` call on the
/// union of histogram queries, no inference.
pub fn plan_nb_workload(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
) -> Result<NbHistograms> {
    let sizes = kernel.schema(table)?.sizes();
    let x = kernel.vectorize(table)?;
    let w = nb_workload(&sizes);
    let y = kernel.vector_laplace(x, &w, eps)?;
    // Split the stacked answers back into histograms.
    let mut offset = 0;
    let mut take = |len: usize| {
        let v = y[offset..offset + len].to_vec();
        offset += len;
        v
    };
    let label = take(sizes[0]);
    let joint = sizes[1..].iter().map(|&s| take(sizes[0] * s)).collect();
    Ok(NbHistograms { label, joint })
}

/// *WorkloadLS*: the same measurement followed by least squares — the one
/// extra operator that Fig. 3 shows "significantly increases performance".
pub fn plan_nb_workload_ls(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
) -> Result<NbHistograms> {
    let sizes = kernel.schema(table)?.sizes();
    let x = kernel.vectorize(table)?;
    let start = kernel.measurement_count();
    kernel.vector_laplace(x, &nb_workload(&sizes), eps)?;
    let x_hat = infer_ls(kernel, start, LsSolver::Iterative);
    Ok(histograms_from_vector(&x_hat, &sizes))
}

/// Fig. 3's *Identity* baseline: noisy contingency table, marginalized.
pub fn plan_nb_identity(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
) -> Result<NbHistograms> {
    let sizes = kernel.schema(table)?.sizes();
    let x = kernel.vectorize(table)?;
    let n = kernel.vector_len(x)?;
    let x_hat = kernel.vector_laplace(x, &Matrix::identity(n), eps)?;
    Ok(histograms_from_vector(&x_hat, &sizes))
}

/// *SelectLS* (Algorithm 8) applied to the NB histogram task.
pub fn plan_nb_select_ls(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
) -> Result<NbHistograms> {
    let sizes = kernel.schema(table)?.sizes();
    let x = kernel.vectorize(table)?;
    let specs = nb_specs(sizes.len());
    let out = plan_select_ls(kernel, x, &sizes, &specs, eps, &SelectLsOptions::default())?;
    Ok(histograms_from_vector(&out.x_hat, &sizes))
}

// ---------------------------------------------------------------------
// The classifier itself (multinomial model, paper §9.3)
// ---------------------------------------------------------------------

/// A fitted binary Naive-Bayes classifier.
#[derive(Clone, Debug)]
pub struct NaiveBayesModel {
    log_prior: [f64; 2],
    /// Per predictor: `log P(v | y)` at `y * size + v`.
    log_cond: Vec<Vec<f64>>,
    sizes: Vec<usize>,
}

impl NaiveBayesModel {
    /// Fits from (possibly noisy) histograms with Laplace smoothing;
    /// negative counts are clamped to zero first.
    pub fn fit(h: &NbHistograms, predictor_sizes: &[usize]) -> Self {
        const ALPHA: f64 = 1.0;
        let c0 = h.label[0].max(0.0) + ALPHA;
        let c1 = h.label[1].max(0.0) + ALPHA;
        let total = c0 + c1;
        let log_prior = [(c0 / total).ln(), (c1 / total).ln()];
        let log_cond = h
            .joint
            .iter()
            .zip(predictor_sizes)
            .map(|(counts, &size)| {
                let mut out = vec![0.0; 2 * size];
                for y in 0..2 {
                    let denom: f64 = counts[y * size..(y + 1) * size]
                        .iter()
                        .map(|&c| c.max(0.0))
                        .sum::<f64>()
                        + ALPHA * size as f64;
                    for v in 0..size {
                        let c = counts[y * size + v].max(0.0) + ALPHA;
                        out[y * size + v] = (c / denom).ln();
                    }
                }
                out
            })
            .collect();
        NaiveBayesModel {
            log_prior,
            log_cond,
            sizes: predictor_sizes.to_vec(),
        }
    }

    /// The log-odds `log P(y=1 | x) − log P(y=0 | x)`.
    pub fn score(&self, predictors: &[u32]) -> f64 {
        assert_eq!(
            predictors.len(),
            self.sizes.len(),
            "predictor arity mismatch"
        );
        let mut s = self.log_prior[1] - self.log_prior[0];
        for ((lc, &size), &v) in self.log_cond.iter().zip(&self.sizes).zip(predictors) {
            let v = (v as usize).min(size - 1);
            s += lc[size + v] - lc[v];
        }
        s
    }
}

/// Area under the ROC curve from `(score, is_positive)` pairs
/// (Mann–Whitney with average ranks for ties).
pub fn auc(scored: &[(f64, bool)]) -> f64 {
    let pos = scored.iter().filter(|&&(_, y)| y).count();
    let neg = scored.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    // total_cmp: scores come from callers (ratios of noisy counts can be
    // NaN); a total order degrades gracefully instead of panicking.
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for item in &sorted[i..j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    (rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

/// Scores a test table with a fitted model, returning `(score, label)`
/// pairs for [`auc`]. The label is attribute 0.
pub fn score_table(model: &NaiveBayesModel, test: &Table) -> Vec<(f64, bool)> {
    let mut out = Vec::with_capacity(test.num_rows());
    for i in 0..test.num_rows() {
        let row = test.row(i);
        out.push((model.score(&row[1..]), row[0] == 1));
    }
    out
}

/// Deterministic k-fold split of row indices.
pub fn fold_indices(rows: usize, folds: usize, seed: u64) -> Vec<Vec<usize>> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut idx: Vec<usize> = (0..rows).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut out = vec![Vec::new(); folds];
    for (i, r) in idx.into_iter().enumerate() {
        out[i % folds].push(r);
    }
    out
}

/// Builds train/test tables for one fold.
pub fn train_test_split(table: &Table, test_rows: &[usize]) -> (Table, Table) {
    let mut train = Table::empty(table.schema().clone());
    let mut test = Table::empty(table.schema().clone());
    let test_set: std::collections::HashSet<usize> = test_rows.iter().copied().collect();
    for i in 0..table.num_rows() {
        let row = table.row(i);
        if test_set.contains(&i) {
            test.push_row(&row);
        } else {
            train.push_row(&row);
        }
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_data::generators::credit_default_sized;

    #[test]
    fn auc_of_perfect_and_random_rankings() {
        let perfect: Vec<(f64, bool)> = (0..100).map(|i| (i as f64, i >= 50)).collect();
        assert_eq!(auc(&perfect), 1.0);
        let inverted: Vec<(f64, bool)> = (0..100).map(|i| (-(i as f64), i >= 50)).collect();
        assert_eq!(auc(&inverted), 0.0);
        let constant: Vec<(f64, bool)> = (0..100).map(|i| (0.0, i % 2 == 0)).collect();
        assert_eq!(auc(&constant), 0.5);
    }

    #[test]
    fn unperturbed_classifier_beats_chance() {
        let data = credit_default_sized(8000, 1);
        let folds = fold_indices(data.num_rows(), 4, 2);
        let (train, test) = train_test_split(&data, &folds[0]);
        let h = nb_unperturbed(&train);
        let sizes = train.schema().sizes();
        let model = NaiveBayesModel::fit(&h, &sizes[1..]);
        let a = auc(&score_table(&model, &test));
        assert!(a > 0.65, "unperturbed AUC {a}");
    }

    #[test]
    fn dp_plans_degrade_gracefully_with_eps() {
        let data = credit_default_sized(8000, 3);
        let folds = fold_indices(data.num_rows(), 4, 4);
        let (train, test) = train_test_split(&data, &folds[0]);
        let sizes = train.schema().sizes();
        let run = |eps: f64, seed: u64| {
            let k = ProtectedKernel::init(train.clone(), eps, seed);
            let h = plan_nb_workload_ls(&k, k.root(), eps).unwrap();
            let model = NaiveBayesModel::fit(&h, &sizes[1..]);
            auc(&score_table(&model, &test))
        };
        let high = (0..3).map(|s| run(1.0, s)).sum::<f64>() / 3.0;
        let low = (0..3).map(|s| run(0.001, s)).sum::<f64>() / 3.0;
        assert!(high > 0.65, "high-eps AUC {high}");
        assert!(
            low < high,
            "low-eps ({low}) must not beat high-eps ({high})"
        );
    }

    #[test]
    fn all_nb_plans_produce_valid_histograms() {
        let data = credit_default_sized(3000, 5);
        let sizes = data.schema().sizes();
        type NbPlan = fn(&ProtectedKernel, SourceVar, f64) -> Result<NbHistograms>;
        let plans: Vec<(&str, NbPlan)> = vec![
            ("workload", plan_nb_workload),
            ("workload_ls", plan_nb_workload_ls),
            ("identity", plan_nb_identity),
            ("select_ls", plan_nb_select_ls),
        ];
        for (name, plan) in plans {
            let k = ProtectedKernel::init(data.clone(), 1.0, 6);
            let h = plan(&k, k.root(), 1.0).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(h.label.len(), 2, "{name}");
            assert_eq!(h.joint.len(), sizes.len() - 1, "{name}");
            for (j, &s) in h.joint.iter().zip(&sizes[1..]) {
                assert_eq!(j.len(), 2 * s, "{name}");
            }
            assert!((k.budget_spent() - 1.0).abs() < 1e-9, "{name} budget");
        }
    }

    #[test]
    fn fig3_ordering_select_ls_beats_identity_and_ls_does_not_hurt() {
        // The Fig. 3 ordering at moderate eps: the new plans (SelectLS,
        // WorkloadLS) outperform the Identity baseline, and adding LS never
        // hurts the plain Workload plan beyond noise.
        let data = credit_default_sized(10_000, 7);
        let folds = fold_indices(data.num_rows(), 4, 8);
        let (train, test) = train_test_split(&data, &folds[0]);
        let sizes = train.schema().sizes();
        let eps = 0.2;
        let reps = 6;
        let mut a_w = 0.0;
        let mut a_wls = 0.0;
        let mut a_sel = 0.0;
        let mut a_id = 0.0;
        for seed in 0..reps {
            let run = |plan: fn(&ProtectedKernel, SourceVar, f64) -> Result<NbHistograms>,
                       s: u64| {
                let k = ProtectedKernel::init(train.clone(), eps, s);
                let h = plan(&k, k.root(), eps).unwrap();
                auc(&score_table(&NaiveBayesModel::fit(&h, &sizes[1..]), &test))
            };
            a_w += run(plan_nb_workload, seed);
            a_wls += run(plan_nb_workload_ls, seed + 40);
            a_sel += run(plan_nb_select_ls, seed + 80);
            a_id += run(plan_nb_identity, seed + 120);
        }
        let r = reps as f64;
        let (a_w, a_wls, a_sel, a_id) = (a_w / r, a_wls / r, a_sel / r, a_id / r);
        assert!(
            a_sel > a_id + 0.04,
            "SelectLS ({a_sel}) should clearly beat Identity ({a_id})"
        );
        assert!(
            a_wls >= a_w - 0.03,
            "WorkloadLS ({a_wls}) should not trail Workload ({a_w}) beyond noise"
        );
    }
}
