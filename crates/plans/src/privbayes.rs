//! PrivBayes (baseline of Table 5) and PrivBayesLS (Fig. 2, Plan #17;
//! Algorithm 7).
//!
//! Both plans share the first two steps — private structure learning
//! ([`ektelo_core::ops::selection::privbayes_select`]) and Laplace
//! measurement of the clique marginals. They differ only in inference:
//! original PrivBayes fits conditional distributions and multiplies them
//! out (a maximum-likelihood model estimate), while PrivBayesLS runs the
//! generic least-squares operator over the same measurements — the paper's
//! §10.1.2 shows this simple swap improves two of three census workloads.

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::selection::{privbayes_select, BayesNet};
use ektelo_data::workloads::marginal;
use ektelo_matrix::Matrix;

use crate::util::{infer_ls, split_budget, PlanOutcome, PlanResult};

/// Options for the PrivBayes plans.
#[derive(Clone, Debug)]
pub struct PrivBayesOptions {
    /// Maximum parents per node (the network's degree bound).
    pub max_parents: usize,
    /// Budget share for structure selection (the PrivBayes paper uses
    /// 0.3–0.5; we default to 0.3 so most budget goes to measurement).
    pub select_share: f64,
}

impl Default for PrivBayesOptions {
    fn default() -> Self {
        PrivBayesOptions {
            max_parents: 2,
            select_share: 0.3,
        }
    }
}

/// The shared front half: select the network, vectorize, and measure the
/// clique marginals. Returns the net, the vector source, and the history
/// start index.
fn select_and_measure(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
    opts: &PrivBayesOptions,
) -> Result<(BayesNet, SourceVar, usize, Vec<usize>)> {
    let schema = kernel.schema(table)?;
    let sizes = schema.sizes();
    let shares = split_budget(eps, &[opts.select_share, 1.0 - opts.select_share]);
    let net = privbayes_select(kernel, table, opts.max_parents, shares[0])?;
    let x = kernel.vectorize(table)?;
    let start = kernel.measurement_count();
    let blocks: Vec<Matrix> = net
        .measured_attribute_sets()
        .iter()
        .map(|set| {
            let keep: Vec<bool> = (0..sizes.len()).map(|i| set.contains(&i)).collect();
            marginal(&sizes, &keep)
        })
        .collect();
    // One union measurement: sensitivity = number of cliques (every record
    // appears once per clique marginal) — auto-calibrated by the kernel.
    kernel.vector_laplace(x, &Matrix::vstack(blocks), shares[1])?;
    Ok((net, x, start, sizes))
}

/// Original PrivBayes (Zhang et al. 2017): model-based inference.
/// Returns the estimated full-domain vector.
pub fn plan_privbayes(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
    opts: &PrivBayesOptions,
) -> PlanResult {
    let (net, _x, start, sizes) = select_and_measure(kernel, table, eps, opts)?;
    let measurements = kernel.measurements_since(start);
    // Split the single union answer back into per-clique marginals.
    let answers = &measurements[0].answers;
    let sets = net.measured_attribute_sets();
    let mut offset = 0usize;
    let mut clique_marginals = Vec::with_capacity(sets.len());
    for set in &sets {
        let len: usize = set.iter().map(|&a| sizes[a]).product();
        clique_marginals.push(answers[offset..offset + len].to_vec());
        offset += len;
    }
    let x_hat = bn_joint_estimate(&net, &sizes, &sets, &clique_marginals);
    Ok(PlanOutcome { x_hat })
}

/// Plan #17 — PrivBayesLS (Algorithm 7): same measurements, generic
/// least-squares inference.
pub fn plan_privbayes_ls(
    kernel: &ProtectedKernel,
    table: SourceVar,
    eps: f64,
    opts: &PrivBayesOptions,
) -> PlanResult {
    let (_net, _x, start, _sizes) = select_and_measure(kernel, table, eps, opts)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Fits the Bayesian-network model from noisy clique marginals and
/// materializes the implied joint estimate over the full domain.
fn bn_joint_estimate(
    net: &BayesNet,
    sizes: &[usize],
    sets: &[Vec<usize>],
    marginals: &[Vec<f64>],
) -> Vec<f64> {
    let d = sizes.len();
    let n_total: f64 = marginals[0]
        .iter()
        .map(|&v| v.max(0.0))
        .sum::<f64>()
        .max(1.0);

    // CPDs per clique: P(child = v | parents = u), Laplace-smoothed.
    // Stored as lookup over the clique's joint assignment.
    let smoothed: Vec<Vec<f64>> = marginals
        .iter()
        .map(|m| m.iter().map(|&v| v.max(0.0) + 1e-3).collect())
        .collect();

    let n: usize = sizes.iter().product();
    let mut x_hat = vec![0.0; n];
    let mut coords = vec![0usize; d];
    for (cell, out) in x_hat.iter_mut().enumerate() {
        // Decode mixed-radix coordinates.
        let mut rest = cell;
        for i in (0..d).rev() {
            coords[i] = rest % sizes[i];
            rest /= sizes[i];
        }
        let mut log_p = 0.0;
        for (clique, set) in net.cliques.iter().zip(sets) {
            let m = &smoothed[net
                .cliques
                .iter()
                .position(|c| c.child == clique.child)
                // xlint: allow(panic-policy, reason = "the position scan runs over the same clique list the loop iterates, so at minimum the current clique matches itself")
                .expect("clique indexes itself")];
            // Index of the full-clique assignment and of the parents-only
            // slice (sum over the child's values).
            let mut joint_idx = 0usize;
            for &a in set {
                joint_idx = joint_idx * sizes[a] + coords[a];
            }
            let joint = m[joint_idx];
            let parent_sum: f64 = if clique.parents.is_empty() {
                m.iter().sum()
            } else {
                // Sum over the child's values with parents fixed.
                sum_over_child(m, set, clique.child, sizes, &coords)
            };
            log_p += (joint / parent_sum.max(f64::MIN_POSITIVE)).max(1e-12).ln();
        }
        *out = n_total * log_p.exp();
    }
    // Renormalize to the estimated total (noise makes the product drift).
    let s: f64 = x_hat.iter().sum();
    if s > 0.0 {
        let scale = n_total / s;
        for v in x_hat.iter_mut() {
            *v *= scale;
        }
    }
    x_hat
}

/// Sums a clique marginal over the child's values, holding the parents at
/// the assignment in `coords`.
fn sum_over_child(
    m: &[f64],
    set: &[usize],
    child: usize,
    sizes: &[usize],
    coords: &[usize],
) -> f64 {
    let child_pos = set
        .iter()
        .position(|&a| a == child)
        // xlint: allow(panic-policy, reason = "construction invariant: a clique's attribute set always contains its child (parents + child)")
        .expect("child in its own clique");
    let mut total = 0.0;
    for v in 0..sizes[child] {
        let mut idx = 0usize;
        for (pos, &a) in set.iter().enumerate() {
            let c = if pos == child_pos { v } else { coords[a] };
            idx = idx * sizes[a] + c;
        }
        total += m[idx];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn correlated_table(rows: usize, seed: u64) -> (Table, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("a", 4), ("b", 4), ("c", 3)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let a = rng.random_range(0..4u32);
            let b = if rng.random_bool(0.8) {
                a
            } else {
                rng.random_range(0..4u32)
            };
            let c = rng.random_range(0..3u32);
            t.push_row(&[a, b, c]);
        }
        let x = ektelo_data::vectorize(&t);
        (t, x)
    }

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn privbayes_estimates_have_right_total_and_domain() {
        let (t, x_true) = correlated_table(5000, 1);
        let k = ProtectedKernel::init(t, 2.0, 1);
        let out = plan_privbayes(&k, k.root(), 2.0, &PrivBayesOptions::default()).unwrap();
        assert_eq!(out.x_hat.len(), x_true.len());
        let total: f64 = out.x_hat.iter().sum();
        assert!((total - 5000.0).abs() / 5000.0 < 0.2, "total {total}");
        assert!(out.x_hat.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn privbayes_ls_runs_and_spends_eps() {
        let (t, _) = correlated_table(2000, 2);
        let k = ProtectedKernel::init(t, 1.0, 2);
        plan_privbayes_ls(&k, k.root(), 1.0, &PrivBayesOptions::default()).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn model_captures_the_correlation() {
        // P(a=b) is ~0.85 in the data; the PrivBayes estimate should put
        // clearly more mass on the diagonal than independence would (~0.25).
        let (t, _) = correlated_table(20_000, 3);
        let k = ProtectedKernel::init(t, 5.0, 3);
        let out = plan_privbayes(&k, k.root(), 5.0, &PrivBayesOptions::default()).unwrap();
        let total: f64 = out.x_hat.iter().sum();
        let mut diag = 0.0;
        // cell = (a*4 + b)*3 + c
        for a in 0..4usize {
            for c in 0..3usize {
                diag += out.x_hat[(a * 4 + a) * 3 + c];
            }
        }
        assert!(diag / total > 0.5, "diagonal mass {}", diag / total);
    }

    #[test]
    fn ls_variant_is_consistent_with_truth_at_high_eps() {
        let (t, x_true) = correlated_table(20_000, 4);
        let k = ProtectedKernel::init(t, 50.0, 4);
        let out = plan_privbayes_ls(&k, k.root(), 50.0, &PrivBayesOptions::default()).unwrap();
        // Marginal errors should be small even though the joint is
        // underdetermined: check the (a,b) marginal.
        let w = marginal(&[4, 4, 3], &[true, true, false]);
        let e = rmse(&w.matvec(&x_true), &w.matvec(&out.x_hat));
        assert!(e < 30.0, "marginal rmse {e}");
    }
}
