//! The paper's running example: the CDF estimator of Algorithm 1 (§2.1).
//!
//! Filter → Select → Vectorize → AHPpartition(ε/2) → Reduce →
//! Identity/Laplace(ε/2) → NNLS → Prefix·x̂.

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::partition::{ahp_partition, AhpOptions};
use ektelo_data::Predicate;
use ektelo_matrix::Matrix;

use crate::util::infer_nnls;

/// Runs Algorithm 1: the differentially-private empirical CDF of
/// `attr` over the rows matching `filter`. Returns the cumulative counts
/// (one per attribute value).
pub fn cdf_estimator(
    kernel: &ProtectedKernel,
    table: SourceVar,
    filter: &Predicate,
    attr: &str,
    eps: f64,
) -> Result<Vec<f64>> {
    // Lines 2–4: Where, Select, T-Vectorize.
    let filtered = kernel.transform_where(table, filter)?;
    let projected = kernel.transform_select(filtered, &[attr])?;
    let x = kernel.vectorize(projected)?;
    let n = kernel.vector_len(x)?;
    let start = kernel.measurement_count();

    // Line 5: AHPpartition with ε/2.
    let p = ahp_partition(kernel, x, eps / 2.0, &AhpOptions::default())?;
    // Line 6: V-ReduceByPartition.
    let reduced = kernel.reduce_by_partition(x, &p)?;
    // Lines 7–8: Identity selection + Vector Laplace with ε/2.
    let groups = kernel.vector_len(reduced)?;
    kernel.vector_laplace(reduced, &Matrix::identity(groups), eps / 2.0)?;
    // Line 9: NNLS maps the reduced answers back to the full domain.
    let x_hat = infer_nnls(kernel, start);
    // Lines 10–11: W_pre · x̂.
    Ok(Matrix::prefix(n).matvec(&x_hat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// The paper's example schema: [age, gender, salary].
    fn census_like(rows: usize, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("age", 80), ("sex", 2), ("salary", 64)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let age = rng.random_range(0..80u32);
            let sex = rng.random_range(0..2u32);
            let salary = rng.random_range(0..40u32) + if sex == 0 { 8 } else { 0 };
            t.push_row(&[age, sex, salary.min(63)]);
        }
        t
    }

    #[test]
    fn cdf_is_monotone_and_ends_near_group_count() {
        let t = census_like(20_000, 1);
        // Count the true group size first (males in their 30s).
        let pred = Predicate::eq("sex", 0).and(Predicate::range("age", 30, 40));
        let truth = t.filter(&pred).num_rows() as f64;
        let k = ProtectedKernel::init(t, 1.0, 2);
        let cdf = cdf_estimator(&k, k.root(), &pred, "salary", 1.0).unwrap();
        assert_eq!(cdf.len(), 64);
        // Monotone (NNLS guarantees non-negative increments).
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        let last = *cdf.last().unwrap();
        assert!(
            (last - truth).abs() / truth < 0.25,
            "CDF endpoint {last} vs true group size {truth}"
        );
    }

    #[test]
    fn spends_exactly_eps() {
        let t = census_like(2000, 3);
        let k = ProtectedKernel::init(t, 0.8, 4);
        let pred = Predicate::eq("sex", 1);
        cdf_estimator(&k, k.root(), &pred, "salary", 0.8).unwrap();
        assert!((k.budget_spent() - 0.8).abs() < 1e-9);
    }
}
