//! A plan advisor: data-independent algorithm selection (extension).
//!
//! The paper's related work (§11) discusses Pythia (Kotsogiannis et al.
//! 2017), a meta-algorithm that picks the best DP algorithm for a given
//! task, and notes that "Pythia could be implemented as an EKTELO plan".
//! This module is that idea in miniature: a small decision procedure over
//! *public* task features — domain size, workload class, privacy budget,
//! and a (public or separately-estimated) scale — encoding the empirical
//! regimes established by DPBench and this crate's own experiments:
//!
//! * data-independent hierarchical strategies win when ε·scale/domain is
//!   large (noise small relative to per-cell counts);
//! * partition-based data-dependent plans (DAWA, AHP) win on sparse data
//!   at small ε·scale/domain;
//! * workloads of point queries prefer Identity; range-style workloads
//!   prefer hierarchies; marginal-style workloads prefer HDMM.
//!
//! Because the features are public, using the advisor costs no budget.

use ektelo_matrix::Matrix;

/// Public description of the analyst's task.
#[derive(Clone, Debug)]
pub struct TaskProfile {
    /// Vectorized domain size.
    pub domain: usize,
    /// Global privacy budget for the plan.
    pub eps: f64,
    /// Expected number of records (public side information or a separate
    /// noisy estimate; the advisor only needs its order of magnitude).
    pub expected_scale: f64,
    /// Workload class.
    pub workload: WorkloadClass,
}

/// Coarse workload classes the advisor distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadClass {
    /// Individual cell counts (identity-like).
    PointQueries,
    /// Interval / prefix queries over an ordered domain.
    RangeQueries,
    /// Marginals / grouped aggregations over a multi-dim domain.
    Marginals,
}

/// The advisor's recommendation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recommendation {
    /// Plan #1: measure every cell.
    Identity,
    /// Plan #4: optimized-branching hierarchy.
    Hb,
    /// Plan #9: data-adaptive partition + weighted hierarchy.
    Dawa,
    /// Plan #8: threshold-cluster partition + identity.
    Ahp,
    /// Plan #13: workload-optimized strategy.
    Hdmm,
    /// Plan #6: a single total (only sensible at extreme noise).
    Uniform,
}

/// Classifies a workload matrix into a [`WorkloadClass`] from its
/// structure (public information).
pub fn classify_workload(w: &Matrix) -> WorkloadClass {
    match w {
        Matrix::Identity { .. } => WorkloadClass::PointQueries,
        Matrix::Range(_) | Matrix::Prefix { .. } | Matrix::Suffix { .. } | Matrix::Rect2D(_) => {
            WorkloadClass::RangeQueries
        }
        Matrix::Kronecker(..) | Matrix::Ones { .. } => WorkloadClass::Marginals,
        Matrix::Union(blocks) => {
            // Majority vote over the blocks.
            let mut counts = [0usize; 3];
            for b in blocks {
                match classify_workload(b) {
                    WorkloadClass::PointQueries => counts[0] += 1,
                    WorkloadClass::RangeQueries => counts[1] += 1,
                    WorkloadClass::Marginals => counts[2] += 1,
                }
            }
            if counts[2] >= counts[1] && counts[2] >= counts[0] {
                WorkloadClass::Marginals
            } else if counts[1] >= counts[0] {
                WorkloadClass::RangeQueries
            } else {
                WorkloadClass::PointQueries
            }
        }
        Matrix::Scaled(_, inner) | Matrix::Transpose(inner) => classify_workload(inner),
        Matrix::Product(a, _) => classify_workload(a),
        _ => WorkloadClass::PointQueries,
    }
}

/// Recommends a plan for the task. The key statistic is the
/// signal-to-noise proxy `snr = ε · scale / domain` — the expected
/// per-cell count divided by the per-cell Laplace scale.
pub fn recommend(task: &TaskProfile) -> Recommendation {
    let snr = task.eps * task.expected_scale / task.domain.max(1) as f64;
    match task.workload {
        WorkloadClass::PointQueries => {
            if snr < 0.3 {
                // Noise dominates individual cells: exploit sparsity.
                Recommendation::Ahp
            } else {
                Recommendation::Identity
            }
        }
        WorkloadClass::RangeQueries => {
            if snr < 0.1 {
                Recommendation::Uniform
            } else if snr < 3.0 {
                Recommendation::Dawa
            } else {
                Recommendation::Hb
            }
        }
        WorkloadClass::Marginals => {
            if snr < 0.1 {
                Recommendation::Uniform
            } else {
                Recommendation::Hdmm
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{plan_hb, plan_identity};
    use crate::data_aware::plan_ahp;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::{shape_1d, Shape1D};

    fn profile(domain: usize, eps: f64, scale: f64, w: WorkloadClass) -> TaskProfile {
        TaskProfile {
            domain,
            eps,
            expected_scale: scale,
            workload: w,
        }
    }

    #[test]
    fn classification_of_common_workloads() {
        assert_eq!(
            classify_workload(&Matrix::identity(8)),
            WorkloadClass::PointQueries
        );
        assert_eq!(
            classify_workload(&Matrix::prefix(8)),
            WorkloadClass::RangeQueries
        );
        assert_eq!(
            classify_workload(&ektelo_data::workloads::random_range(64, 10, 1)),
            WorkloadClass::RangeQueries
        );
        assert_eq!(
            classify_workload(&ektelo_data::workloads::all_k_way_marginals(&[3, 4, 5], 2)),
            WorkloadClass::Marginals
        );
    }

    #[test]
    fn regimes_switch_with_snr() {
        // High-signal point queries → Identity; low-signal → AHP.
        assert_eq!(
            recommend(&profile(1000, 1.0, 1e6, WorkloadClass::PointQueries)),
            Recommendation::Identity
        );
        assert_eq!(
            recommend(&profile(1_000_000, 0.01, 1e5, WorkloadClass::PointQueries)),
            Recommendation::Ahp
        );
        // Ranges: high snr → HB, mid → DAWA, floor → Uniform.
        assert_eq!(
            recommend(&profile(1000, 1.0, 1e6, WorkloadClass::RangeQueries)),
            Recommendation::Hb
        );
        assert_eq!(
            recommend(&profile(4096, 0.1, 5e4, WorkloadClass::RangeQueries)),
            Recommendation::Dawa
        );
        assert_eq!(
            recommend(&profile(1_000_000, 0.001, 1e4, WorkloadClass::RangeQueries)),
            Recommendation::Uniform
        );
    }

    #[test]
    fn advisor_choice_beats_the_alternative_in_its_regime() {
        // In the sparse low-snr regime the advisor says AHP; verify AHP
        // really beats Identity there (and vice versa in the dense
        // regime) — the advisor encodes real crossovers, not folklore.
        let n = 512;
        let sparse = shape_1d(Shape1D::DenseRegion, n, 1_000_000.0, 6);
        let eps_low = 0.005;
        assert_eq!(
            recommend(&profile(n, eps_low, 1e3, WorkloadClass::PointQueries)),
            Recommendation::Ahp
        );
        let rmse = |a: &[f64], b: &[f64]| -> f64 {
            (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
        };
        let (mut e_ahp, mut e_id) = (0.0, 0.0);
        for seed in 0..4 {
            let (k, r) = kernel_for_histogram(&sparse, eps_low, seed);
            e_ahp += rmse(&sparse, &plan_ahp(&k, r, eps_low, 0.5).unwrap().x_hat);
            let (k, r) = kernel_for_histogram(&sparse, eps_low, seed + 10);
            e_id += rmse(&sparse, &plan_identity(&k, r, eps_low).unwrap().x_hat);
        }
        assert!(
            e_ahp < e_id,
            "AHP ({e_ahp}) must beat Identity ({e_id}) in its regime"
        );

        // Dense high-snr range regime → HB beats Uniform trivially; check
        // HB runs and is recommended.
        assert_eq!(
            recommend(&profile(n, 2.0, 1e6, WorkloadClass::RangeQueries)),
            Recommendation::Hb
        );
        let dense = shape_1d(Shape1D::Gaussian, n, 1_000_000.0, 3);
        let (k, r) = kernel_for_histogram(&dense, 2.0, 1);
        assert!(plan_hb(&k, r, 2.0).is_ok());
    }
}
