//! Data-dependent 1-D plans: AHP (Plan #8) and DAWA (Plan #9).
//!
//! Both follow the same signature — *Partition selection → Reduce → Query
//! selection → LM → LS* — and differ only in the two selection operators,
//! which is exactly the transparency point the paper makes about them
//! (§6.3).

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::{ahp_partition, dawa_partition, AhpOptions, DawaOptions};
use ektelo_core::ops::selection;
use ektelo_matrix::Matrix;

use crate::util::{
    infer_ls, interval_partition_bounds, map_ranges_to_buckets, split_budget, workload_ranges,
    PlanOutcome, PlanResult,
};

/// Plan #8 — AHP (Zhang et al. 2014): `PA TR SI LM LS`.
/// `rho` is the budget share spent on partition selection (0.5 default in
/// the AHP paper).
pub fn plan_ahp(kernel: &ProtectedKernel, x: SourceVar, eps: f64, rho: f64) -> PlanResult {
    let shares = split_budget(eps, &[rho, 1.0 - rho]);
    let start = kernel.measurement_count();
    let p = ahp_partition(kernel, x, shares[0], &AhpOptions::default())?;
    let reduced = kernel.reduce_by_partition(x, &p)?;
    let groups = kernel.vector_len(reduced)?;
    kernel.vector_laplace(reduced, &selection::identity(groups), shares[1])?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #9 — DAWA (Li et al. 2014): `PD TR SG LM LS`.
/// `rho` is the stage-1 (partition) budget share; the DAWA paper uses 0.25.
/// The workload (range queries) steers both the partition penalty and the
/// Greedy-H weights on the reduced domain.
pub fn plan_dawa(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    rho: f64,
) -> PlanResult {
    let shares = split_budget(eps, &[rho, 1.0 - rho]);
    let start = kernel.measurement_count();
    let p = dawa_partition(kernel, x, shares[0], &DawaOptions::new(shares[1]))?;
    let reduced = kernel.reduce_by_partition(x, &p)?;
    let groups = kernel.vector_len(reduced)?;
    // Map the workload's ranges onto bucket indices for Greedy-H.
    let bounds = interval_partition_bounds(&p);
    let bucket_ranges = workload_ranges(workload)
        .map(|r| map_ranges_to_buckets(&r, &bounds))
        .unwrap_or_default();
    let strategy = selection::greedy_h(groups, &bucket_ranges);
    kernel.vector_laplace(reduced, &strategy, shares[1])?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::plan_identity;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::{shape_1d, Shape1D};
    use ektelo_data::workloads::random_range;

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn ahp_spends_exactly_eps_and_estimates() {
        let x = shape_1d(Shape1D::Step, 128, 20_000.0, 4);
        let (k, root) = kernel_for_histogram(&x, 1.0, 9);
        let out = plan_ahp(&k, root, 1.0, 0.5).unwrap();
        assert_eq!(out.x_hat.len(), 128);
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dawa_spends_exactly_eps_and_estimates() {
        let x = shape_1d(Shape1D::Step, 128, 20_000.0, 4);
        let w = random_range(128, 64, 5);
        let (k, root) = kernel_for_histogram(&x, 1.0, 9);
        let out = plan_dawa(&k, root, &w, 1.0, 0.25).unwrap();
        assert_eq!(out.x_hat.len(), 128);
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn data_dependent_plans_beat_identity_on_sparse_data() {
        // Mostly-empty data at low eps is where partition-based plans shine
        // (DPBench's core finding, which Table 4-style experiments rely
        // on): AHP's thresholding collapses the empty region into one
        // group, DAWA's segmentation merges it into a handful of buckets.
        // Averaged over seeds to damp randomness.
        let x = shape_1d(Shape1D::DenseRegion, 512, 1_000_000.0, 6);
        let eps = 0.01;
        let trials = 6;
        let mut err_id = 0.0;
        let mut err_ahp = 0.0;
        let mut err_dawa = 0.0;
        let w = random_range(512, 128, 3);
        for seed in 0..trials {
            let (k, root) = kernel_for_histogram(&x, eps, seed);
            err_id += rmse(&x, &plan_identity(&k, root, eps).unwrap().x_hat);
            let (k, root) = kernel_for_histogram(&x, eps, seed + 100);
            err_ahp += rmse(&x, &plan_ahp(&k, root, eps, 0.5).unwrap().x_hat);
            let (k, root) = kernel_for_histogram(&x, eps, seed + 200);
            err_dawa += rmse(&x, &plan_dawa(&k, root, &w, eps, 0.25).unwrap().x_hat);
        }
        assert!(
            err_ahp < 0.7 * err_id,
            "AHP ({err_ahp}) should clearly beat identity ({err_id}) on sparse data at low eps"
        );
        assert!(
            err_dawa < 0.9 * err_id,
            "DAWA ({err_dawa}) should beat identity ({err_id}) on sparse data at low eps"
        );
    }

    #[test]
    fn reduced_measurements_map_back_to_base_domain() {
        let x = shape_1d(Shape1D::DenseRegion, 64, 5_000.0, 1);
        let (k, root) = kernel_for_histogram(&x, 1.0, 2);
        plan_dawa(&k, root, &random_range(64, 16, 1), 1.0, 0.25).unwrap();
        for m in k.measurements() {
            assert_eq!(m.query.cols(), 64, "measurement not mapped to base");
        }
    }
}
