//! Shared plan plumbing: plan-scoped inference and partition helpers.

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::inference::{self, LsSolver};
use ektelo_matrix::Matrix;

/// Runs least squares over the measurements a plan recorded after
/// `history_start`, returning the estimate on the base domain.
pub fn infer_ls(kernel: &ProtectedKernel, history_start: usize, solver: LsSolver) -> Vec<f64> {
    inference::least_squares(&kernel.measurements_since(history_start), solver)
}

/// Like [`infer_ls`] with a non-negativity constraint.
pub fn infer_nnls(kernel: &ProtectedKernel, history_start: usize) -> Vec<f64> {
    inference::non_negative_least_squares(&kernel.measurements_since(history_start))
}

/// Extracts contiguous bucket boundaries from a 1-D interval partition
/// matrix (as produced by DAWA): returns `buckets + 1` cut positions.
/// Panics if the partition is not contiguous.
pub fn interval_partition_bounds(p: &Matrix) -> Vec<usize> {
    let sp = p.to_sparse();
    let n = sp.cols();
    let mut label_of = vec![usize::MAX; n];
    for g in 0..sp.rows() {
        for (c, _) in sp.row_entries(g) {
            label_of[c] = g;
        }
    }
    let mut bounds = vec![0usize];
    for j in 1..n {
        if label_of[j] != label_of[j - 1] {
            bounds.push(j);
        }
    }
    bounds.push(n);
    // Verify contiguity: number of cuts must equal number of groups + 1.
    assert_eq!(
        bounds.len(),
        sp.rows() + 1,
        "partition is not a contiguous interval partition"
    );
    bounds
}

/// Maps 1-D range queries on the original domain onto bucket indices of a
/// contiguous partition (for running Greedy-H on DAWA's reduced domain).
pub fn map_ranges_to_buckets(ranges: &[(usize, usize)], bounds: &[usize]) -> Vec<(usize, usize)> {
    let bucket_of = |cell: usize| -> usize {
        // bounds is sorted; find the bucket containing `cell`.
        match bounds.binary_search(&cell) {
            Ok(i) => i.min(bounds.len() - 2),
            Err(i) => i - 1,
        }
    };
    ranges
        .iter()
        .map(|&(lo, hi)| {
            let b_lo = bucket_of(lo);
            let b_hi = bucket_of(hi - 1) + 1;
            (b_lo, b_hi)
        })
        .collect()
}

/// Extracts the interval list of a range-query workload, if it is one.
pub fn workload_ranges(w: &Matrix) -> Option<Vec<(usize, usize)>> {
    match w {
        Matrix::Range(r) => Some(r.ranges().collect()),
        _ => None,
    }
}

/// Appends a high-confidence "known total" pseudo-measurement (paper §5.5:
/// public facts enter inference as near-noiseless answers).
///
/// `noise_scale` should be small *relative to the real measurements* (one
/// to two orders of magnitude below their noise scales), not absolutely
/// tiny: inference weights rows by inverse noise scale, and an extreme
/// ratio destroys the conditioning of the iterative solvers. Use
/// [`relative_total_scale`] to derive a safe value.
pub fn known_total_measurement(
    n: usize,
    total: f64,
    base: SourceVar,
    noise_scale: f64,
) -> ektelo_core::MeasuredQuery {
    ektelo_core::MeasuredQuery {
        base,
        query: Matrix::total(n),
        answers: vec![total],
        noise_scale: noise_scale.max(f64::MIN_POSITIVE),
    }
}

/// A known-total noise scale 10× more precise than the most precise real
/// measurement — enough to pin the total without wrecking conditioning.
pub fn relative_total_scale(measurements: &[ektelo_core::MeasuredQuery]) -> f64 {
    measurements
        .iter()
        .map(|m| m.noise_scale)
        .fold(f64::INFINITY, f64::min)
        .min(1e6)
        / 10.0
}

/// Splits a privacy budget into labelled shares that sum to the original
/// (guards against silent over/under-spending in multi-stage plans).
pub fn split_budget(eps: f64, shares: &[f64]) -> Vec<f64> {
    let total: f64 = shares.iter().sum();
    assert!(
        total > 0.0 && shares.iter().all(|&s| s > 0.0),
        "invalid budget shares"
    );
    shares.iter().map(|&s| eps * s / total).collect()
}

/// Convenience used by every 1-D experiment: build a kernel around a raw
/// histogram.
pub fn kernel_for_histogram(x: &[f64], eps: f64, seed: u64) -> (ProtectedKernel, SourceVar) {
    let k = ProtectedKernel::init_from_vector(x.to_vec(), eps, seed);
    let root = k.root();
    (k, root)
}

/// L2 error between a workload's answers on the true and estimated vector,
/// scaled per query (paper Table 5 metric).
pub fn workload_error(w: &Matrix, x_true: &[f64], x_hat: &[f64]) -> f64 {
    inference::scaled_per_query_l2_error(w, x_true, x_hat, 1.0)
}

/// Absolute-error helper for tests.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A plan outcome: the estimate plus the measurements' history span
/// (handy for composing plans and for debugging budget use).
pub struct PlanOutcome {
    /// Estimated data vector over the base domain of the plan's source.
    pub x_hat: Vec<f64>,
}

/// Result alias re-exported for plan signatures.
pub type PlanResult = Result<PlanOutcome>;

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::partition_from_labels;

    #[test]
    fn bounds_of_contiguous_partition() {
        let p = partition_from_labels(3, &[0, 0, 1, 1, 1, 2]);
        assert_eq!(interval_partition_bounds(&p), vec![0, 2, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "not a contiguous")]
    fn non_contiguous_partition_rejected() {
        let p = partition_from_labels(2, &[0, 1, 0, 1]);
        interval_partition_bounds(&p);
    }

    #[test]
    fn range_mapping_covers_buckets() {
        let bounds = vec![0, 2, 5, 6];
        let mapped = map_ranges_to_buckets(&[(0, 2), (1, 6), (5, 6)], &bounds);
        assert_eq!(mapped, vec![(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn budget_split_sums_to_eps() {
        let parts = split_budget(1.0, &[1.0, 3.0]);
        assert!((parts[0] - 0.25).abs() < 1e-12);
        assert!((parts.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
