//! Shared plan plumbing: plan-scoped inference and partition helpers.

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::inference::{self, LsSolver};
use ektelo_matrix::Matrix;

/// Runs least squares over the measurements a plan recorded after
/// `history_start`, returning the estimate on the base domain.
pub fn infer_ls(kernel: &ProtectedKernel, history_start: usize, solver: LsSolver) -> Vec<f64> {
    inference::least_squares(&kernel.measurements_since(history_start), solver)
}

/// Like [`infer_ls`] with a non-negativity constraint.
pub fn infer_nnls(kernel: &ProtectedKernel, history_start: usize) -> Vec<f64> {
    inference::non_negative_least_squares(&kernel.measurements_since(history_start))
}

// Partition-bucket helpers moved into the trusted operator library so
// the plan-graph executor (ektelo-core) can share them; re-exported here
// for the imperative plans and downstream users.
pub use ektelo_core::ops::partition::{interval_partition_bounds, map_ranges_to_buckets};

/// Extracts the interval list of a range-query workload, if it is one.
pub fn workload_ranges(w: &Matrix) -> Option<Vec<(usize, usize)>> {
    match w {
        Matrix::Range(r) => Some(r.ranges().collect()),
        _ => None,
    }
}

// Known-total helpers moved into `ektelo_core::ops::inference` (the
// plan-graph MWEM loop needs them); re-exported for compatibility.
pub use ektelo_core::ops::inference::{known_total_measurement, relative_total_scale};

/// Splits a privacy budget into labelled shares that sum to the original
/// (guards against silent over/under-spending in multi-stage plans).
pub fn split_budget(eps: f64, shares: &[f64]) -> Vec<f64> {
    let total: f64 = shares.iter().sum();
    assert!(
        total > 0.0 && shares.iter().all(|&s| s > 0.0),
        "invalid budget shares"
    );
    shares.iter().map(|&s| eps * s / total).collect()
}

/// Convenience used by every 1-D experiment: build a kernel around a raw
/// histogram.
pub fn kernel_for_histogram(x: &[f64], eps: f64, seed: u64) -> (ProtectedKernel, SourceVar) {
    let k = ProtectedKernel::init_from_vector(x.to_vec(), eps, seed);
    let root = k.root();
    (k, root)
}

/// L2 error between a workload's answers on the true and estimated vector,
/// scaled per query (paper Table 5 metric).
pub fn workload_error(w: &Matrix, x_true: &[f64], x_hat: &[f64]) -> f64 {
    inference::scaled_per_query_l2_error(w, x_true, x_hat, 1.0)
}

/// Absolute-error helper for tests.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// A plan outcome: the estimate plus the measurements' history span
/// (handy for composing plans and for debugging budget use).
pub struct PlanOutcome {
    /// Estimated data vector over the base domain of the plan's source.
    pub x_hat: Vec<f64>,
}

/// Result alias re-exported for plan signatures.
pub type PlanResult = Result<PlanOutcome>;

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_matrix::partition_from_labels;

    #[test]
    fn bounds_of_contiguous_partition() {
        let p = partition_from_labels(3, &[0, 0, 1, 1, 1, 2]);
        assert_eq!(interval_partition_bounds(&p), vec![0, 2, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "not a contiguous")]
    fn non_contiguous_partition_rejected() {
        let p = partition_from_labels(2, &[0, 1, 0, 1]);
        interval_partition_bounds(&p);
    }

    #[test]
    fn range_mapping_covers_buckets() {
        let bounds = vec![0, 2, 5, 6];
        let mapped = map_ranges_to_buckets(&[(0, 2), (1, 6), (5, 6)], &bounds);
        assert_eq!(mapped, vec![(0, 1), (0, 3), (2, 3)]);
    }

    #[test]
    fn budget_split_sums_to_eps() {
        let parts = split_budget(1.0, &[1.0, 3.0]);
        assert!((parts[0] - 0.25).abs() < 1e-12);
        assert!((parts.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
