#![deny(missing_docs)]
//! # ektelo-plans
//!
//! The EKTELO plan library: every plan signature of the paper's Fig. 2,
//! the CDF estimator of Algorithm 1, and the case studies of §9.
//!
//! A *plan* is ordinary client-space code that drives the protected kernel
//! through operator calls. Each plan here takes a kernel, a vector source
//! and a privacy budget, performs its transformations / selections /
//! measurements, and returns an estimate of the data vector — privacy is
//! enforced entirely by the kernel (paper Theorem 4.1), so none of this
//! code is trusted.
//!
//! Plans migrated to the operator-graph API
//! ([`ektelo_core::ops::graph`]) build a typed `PlanSpec`, whose Fig. 2
//! signature below is *rendered from the graph* (`PlanSpec::signature`,
//! pinned by tests) and whose worst-case ε is statically pre-accounted
//! before any kernel call; the rest still drive the kernel imperatively
//! (signatures from the paper shown for reference).
//!
//! | Fig. 2 ID | Plan | Function | Signature |
//! |-----------|------|----------|-----------|
//! | 1  | Identity | [`baseline::plan_identity`] | `SI LM LS` |
//! | 2  | Privelet | [`baseline::plan_privelet`] | `SP LM LS` |
//! | 3  | H2 | [`baseline::plan_h2`] | `SH2 LM LS` |
//! | 4  | HB | [`baseline::plan_hb`] | `SHB LM LS` |
//! | 5  | Greedy-H | [`baseline::plan_greedy_h`] | `SG LM LS` |
//! | 6  | Uniform | [`baseline::plan_uniform`] | `ST LM LS` |
//! | 7  | MWEM | [`mwem::plan_mwem`] | `I:( SW LM MW )` |
//! | 8  | AHP | [`data_aware::plan_ahp`] | `PA TR LM LS` (imperative) |
//! | 9  | DAWA | [`data_aware::plan_dawa`] | `PD TR SG LM LS` (imperative) |
//! | 10 | QuadTree | [`grids::plan_quad_tree`] | `SQ LM LS` (imperative) |
//! | 11 | UniformGrid | [`grids::plan_uniform_grid`] | `SU LM LS` (imperative) |
//! | 12 | AdaptiveGrid | [`grids::plan_adaptive_grid`] | `SU LM SA LM LS` (imperative) |
//! | 13 | HDMM | [`baseline::plan_hdmm`] | `SHD LM LS` |
//! | 14 | DAWA-Striped | [`striped::plan_dawa_striped`] | `PS TP[ PD TR SG LM ] LS` |
//! | 15 | HB-Striped | [`striped::plan_hb_striped`] | `PS TP[ SHB LM ] LS` |
//! | 16 | HB-Striped_kron | [`striped::plan_hb_striped_kron`] | `SS LM LS` |
//! | 17 | PrivBayesLS | [`privbayes::plan_privbayes_ls`] | `SPB LM LS` (imperative) |
//! | 18 | MWEM variant b | [`mwem::plan_mwem_variant_b`] | `I:( SW SH2 LM MW )` |
//! | 19 | MWEM variant c | [`mwem::plan_mwem_variant_c`] | `I:( SW LM NLS )` |
//! | 20 | MWEM variant d | [`mwem::plan_mwem_variant_d`] | `I:( SW SH2 LM NLS )` |
//!
//! Case studies: [`cdf::cdf_estimator`] (Algorithm 1),
//! [`privbayes::plan_privbayes`] (the baseline of Table 5),
//! [`naive_bayes`] (§9.3, Fig. 3), [`select_ls`] (Algorithm 8).

pub mod advisor;
pub mod baseline;
pub mod cdf;
pub mod data_aware;
pub mod grids;
pub mod mwem;
pub mod naive_bayes;
pub mod privbayes;
pub mod select_ls;
pub mod striped;
pub mod util;
