#![deny(missing_docs)]
//! # ektelo-plans
//!
//! The EKTELO plan library: every plan signature of the paper's Fig. 2,
//! the CDF estimator of Algorithm 1, and the case studies of §9.
//!
//! A *plan* is ordinary client-space code that drives the protected kernel
//! through operator calls. Each plan here takes a kernel, a vector source
//! and a privacy budget, performs its transformations / selections /
//! measurements, and returns an estimate of the data vector — privacy is
//! enforced entirely by the kernel (paper Theorem 4.1), so none of this
//! code is trusted.
//!
//! | Fig. 2 ID | Plan | Function |
//! |-----------|------|----------|
//! | 1  | Identity | [`baseline::plan_identity`] |
//! | 2  | Privelet | [`baseline::plan_privelet`] |
//! | 3  | H2 | [`baseline::plan_h2`] |
//! | 4  | HB | [`baseline::plan_hb`] |
//! | 5  | Greedy-H | [`baseline::plan_greedy_h`] |
//! | 6  | Uniform | [`baseline::plan_uniform`] |
//! | 7  | MWEM | [`mwem::plan_mwem`] |
//! | 8  | AHP | [`data_aware::plan_ahp`] |
//! | 9  | DAWA | [`data_aware::plan_dawa`] |
//! | 10 | QuadTree | [`grids::plan_quad_tree`] |
//! | 11 | UniformGrid | [`grids::plan_uniform_grid`] |
//! | 12 | AdaptiveGrid | [`grids::plan_adaptive_grid`] |
//! | 13 | HDMM | [`baseline::plan_hdmm`] |
//! | 14 | DAWA-Striped | [`striped::plan_dawa_striped`] |
//! | 15 | HB-Striped | [`striped::plan_hb_striped`] |
//! | 16 | HB-Striped_kron | [`striped::plan_hb_striped_kron`] |
//! | 17 | PrivBayesLS | [`privbayes::plan_privbayes_ls`] |
//! | 18 | MWEM variant b | [`mwem::plan_mwem_variant_b`] |
//! | 19 | MWEM variant c | [`mwem::plan_mwem_variant_c`] |
//! | 20 | MWEM variant d | [`mwem::plan_mwem_variant_d`] |
//!
//! Case studies: [`cdf::cdf_estimator`] (Algorithm 1),
//! [`privbayes::plan_privbayes`] (the baseline of Table 5),
//! [`naive_bayes`] (§9.3, Fig. 3), [`select_ls`] (Algorithm 8).

pub mod advisor;
pub mod baseline;
pub mod cdf;
pub mod data_aware;
pub mod grids;
pub mod mwem;
pub mod naive_bayes;
pub mod privbayes;
pub mod select_ls;
pub mod striped;
pub mod util;
