//! MWEM and the paper's three improved variants (Fig. 2, Plans #7 and
//! #18–#20; §9.1).
//!
//! MWEM (Hardt, Ligett & McSherry 2012) iterates: privately select the
//! workload query worst approximated by the current estimate (exponential
//! mechanism), measure it (Laplace), update the estimate (multiplicative
//! weights). The paper's recombinations:
//!
//! * **variant b** (#18): augment each round's selected query with the
//!   binary-hierarchy queries of that round's level that do not intersect
//!   it — disjoint supports mean the extra queries are free under parallel
//!   composition;
//! * **variant c** (#19): replace MW inference with NNLS plus a
//!   high-confidence total;
//! * **variant d** (#20): both.
//!
//! All four run through the operator-graph API: the whole family is one
//! [`MwemLoopOp`] adaptive-loop node (`I:( SW [SH2] LM MW|NLS )`) whose
//! per-round budgets are declared in the spec, so the executor
//! pre-accounts the loop at exactly `eps` before any kernel call.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::graph::{
    MwemLoopOp, MwemRoundInference as MwemInference, PlanBuilder, PlanExecutor, PlanSpec,
};
use ektelo_matrix::Matrix;

use crate::util::{PlanOutcome, PlanResult};

/// Options shared by the MWEM family.
#[derive(Clone, Debug)]
pub struct MwemOptions {
    /// Number of rounds `T`.
    pub rounds: usize,
    /// Assumed (public) total number of records — MWEM's standard
    /// assumption; the paper's variant c/d add it to inference explicitly.
    pub total: f64,
    /// Multiplicative-weights passes per round.
    pub mw_iterations: usize,
}

impl Default for MwemOptions {
    fn default() -> Self {
        MwemOptions {
            rounds: 10,
            total: 1.0,
            mw_iterations: 30,
        }
    }
}

/// Plan #7 — original MWEM: `I:( SW LM MW )`.
pub fn plan_mwem(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        false,
        MwemInference::MultWeights,
    )
}

/// Plan #18 — variant b: `I:( SW SH2 LM MW )` (augmented selection).
pub fn plan_mwem_variant_b(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        true,
        MwemInference::MultWeights,
    )
}

/// Plan #19 — variant c: `I:( SW LM NLS )` (NNLS + known total).
pub fn plan_mwem_variant_c(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        false,
        MwemInference::NnlsKnownTotal,
    )
}

/// Plan #20 — variant d: `I:( SW SH2 LM NLS )` (both improvements).
pub fn plan_mwem_variant_d(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        true,
        MwemInference::NnlsKnownTotal,
    )
}

/// Builds the MWEM adaptive-loop spec (`I:( SW [SH2] LM MW|NLS )`): one
/// graph node with declared per-round budgets `eps/(2T)` for selection
/// and measurement, so [`PlanSpec::pre_account`] bounds the loop at
/// exactly `eps`.
fn mwem_spec(
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
    augment: bool,
    infer: MwemInference,
) -> PlanSpec {
    let t = opts.rounds.max(1) as f64;
    let mut b = PlanBuilder::new();
    let x = b.input();
    let e = b.mwem_loop(MwemLoopOp {
        input: x,
        workload: workload.clone(),
        rounds: opts.rounds,
        eps_select: eps / (2.0 * t),
        eps_measure: eps / (2.0 * t),
        augment,
        inference: infer,
        total: opts.total,
        mw_iterations: opts.mw_iterations,
    });
    b.finish(e)
}

fn mwem_impl(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
    augment: bool,
    infer: MwemInference,
) -> PlanResult {
    let spec = mwem_spec(workload, eps, opts, augment, infer);
    let report = PlanExecutor::new(kernel).run(&spec, x)?;
    Ok(PlanOutcome {
        x_hat: report.x_hat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::{shape_1d, Shape1D};
    use ektelo_data::workloads::random_range;

    fn opts(total: f64) -> MwemOptions {
        MwemOptions {
            rounds: 6,
            total,
            mw_iterations: 30,
        }
    }

    #[test]
    fn mwem_specs_render_fig2_signatures() {
        let w = Matrix::prefix(8);
        let o = opts(100.0);
        assert_eq!(
            mwem_spec(&w, 1.0, &o, false, MwemInference::MultWeights).signature(),
            "I:( SW LM MW )"
        );
        assert_eq!(
            mwem_spec(&w, 1.0, &o, true, MwemInference::MultWeights).signature(),
            "I:( SW SH2 LM MW )"
        );
        assert_eq!(
            mwem_spec(&w, 1.0, &o, false, MwemInference::NnlsKnownTotal).signature(),
            "I:( SW LM NLS )"
        );
        assert_eq!(
            mwem_spec(&w, 1.0, &o, true, MwemInference::NnlsKnownTotal).signature(),
            "I:( SW SH2 LM NLS )"
        );
    }

    #[test]
    fn mwem_preaccounting_matches_charged_budget_exactly() {
        let x = shape_1d(Shape1D::Gaussian, 64, 1_000.0, 0);
        let w = random_range(64, 32, 0);
        let (k, root) = kernel_for_histogram(&x, 1.0, 0);
        let spec = mwem_spec(&w, 1.0, &opts(1000.0), false, MwemInference::MultWeights);
        let pre = spec.pre_account().unwrap().total;
        let report = PlanExecutor::new(&k).run(&spec, root).unwrap();
        assert_eq!(
            pre, report.eps_charged,
            "static pre-accounting must equal the charged ε bit-for-bit"
        );
    }

    #[test]
    fn mwem_budget_is_exact() {
        let x = shape_1d(Shape1D::Gaussian, 64, 1_000.0, 0);
        let w = random_range(64, 32, 0);
        let (k, root) = kernel_for_histogram(&x, 1.0, 0);
        plan_mwem(&k, root, &w, 1.0, &opts(1000.0)).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn augmented_variant_costs_the_same_budget() {
        let x = shape_1d(Shape1D::Gaussian, 64, 1_000.0, 0);
        let w = random_range(64, 32, 0);
        let (k, root) = kernel_for_histogram(&x, 1.0, 0);
        plan_mwem_variant_b(&k, root, &w, 1.0, &opts(1000.0)).unwrap();
        assert!(
            (k.budget_spent() - 1.0).abs() < 1e-9,
            "augmentation must be free"
        );
    }

    #[test]
    fn augmentation_has_sensitivity_one() {
        use ektelo_core::ops::graph::{mwem_augment_with_level, mwem_row_strategy};
        let n = 32;
        let mut row = vec![0.0; n];
        for r in row.iter_mut().take(12).skip(4) {
            *r = 1.0;
        }
        let selected = mwem_row_strategy(n, &row);
        for round in 0..5 {
            let m = mwem_augment_with_level(&selected, &row, n, round);
            assert!(
                (m.l1_sensitivity() - 1.0).abs() < 1e-12,
                "round {round} sensitivity {}",
                m.l1_sensitivity()
            );
        }
    }

    #[test]
    fn variants_improve_error_on_average() {
        // The Table 4 claim in miniature: variant d should beat plain MWEM
        // on a clustered dataset, averaged over seeds.
        let n = 128;
        let x = shape_1d(Shape1D::Clustered, n, 10_000.0, 3);
        let total: f64 = x.iter().sum();
        let w = random_range(n, 64, 5);
        let truth = w.matvec(&x);
        let trials = 4;
        let mut err_a = 0.0;
        let mut err_d = 0.0;
        for seed in 0..trials {
            let (k, root) = kernel_for_histogram(&x, 0.5, seed);
            let xa = plan_mwem(&k, root, &w, 0.5, &opts(total)).unwrap().x_hat;
            let (k, root) = kernel_for_histogram(&x, 0.5, seed + 50);
            let xd = plan_mwem_variant_d(&k, root, &w, 0.5, &opts(total))
                .unwrap()
                .x_hat;
            let e = |xh: &[f64]| {
                let est = w.matvec(xh);
                truth
                    .iter()
                    .zip(&est)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            };
            err_a += e(&xa);
            err_d += e(&xd);
        }
        assert!(
            err_d < err_a,
            "variant d ({err_d}) should beat plain MWEM ({err_a})"
        );
    }

    #[test]
    fn estimates_have_the_right_total() {
        let x = shape_1d(Shape1D::Uniform, 32, 800.0, 1);
        let w = random_range(32, 16, 2);
        let (k, root) = kernel_for_histogram(&x, 1.0, 3);
        let out = plan_mwem(&k, root, &w, 1.0, &opts(800.0)).unwrap();
        let total: f64 = out.x_hat.iter().sum();
        assert!(
            (total - 800.0).abs() < 1.0,
            "MW preserves the assumed total, got {total}"
        );
    }
}
