//! MWEM and the paper's three improved variants (Fig. 2, Plans #7 and
//! #18–#20; §9.1).
//!
//! MWEM (Hardt, Ligett & McSherry 2012) iterates: privately select the
//! workload query worst approximated by the current estimate (exponential
//! mechanism), measure it (Laplace), update the estimate (multiplicative
//! weights). The paper's recombinations:
//!
//! * **variant b** (#18): augment each round's selected query with the
//!   binary-hierarchy queries of that round's level that do not intersect
//!   it — disjoint supports mean the extra queries are free under parallel
//!   composition;
//! * **variant c** (#19): replace MW inference with NNLS plus a
//!   high-confidence total;
//! * **variant d** (#20): both.

use ektelo_core::kernel::{ProtectedKernel, Result, SourceVar};
use ektelo_core::ops::inference;
use ektelo_core::ops::selection::worst_approx;
use ektelo_core::MeasuredQuery;
use ektelo_matrix::Matrix;

use crate::util::{known_total_measurement, relative_total_scale, PlanOutcome, PlanResult};

/// Which inference engine closes each round (the c/d variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MwemInference {
    MultWeights,
    NnlsKnownTotal,
}

/// Options shared by the MWEM family.
#[derive(Clone, Debug)]
pub struct MwemOptions {
    /// Number of rounds `T`.
    pub rounds: usize,
    /// Assumed (public) total number of records — MWEM's standard
    /// assumption; the paper's variant c/d add it to inference explicitly.
    pub total: f64,
    /// Multiplicative-weights passes per round.
    pub mw_iterations: usize,
}

impl Default for MwemOptions {
    fn default() -> Self {
        MwemOptions {
            rounds: 10,
            total: 1.0,
            mw_iterations: 30,
        }
    }
}

/// Plan #7 — original MWEM: `I:( SW LM MW )`.
pub fn plan_mwem(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        false,
        MwemInference::MultWeights,
    )
}

/// Plan #18 — variant b: `I:( SW SH2 LM MW )` (augmented selection).
pub fn plan_mwem_variant_b(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        true,
        MwemInference::MultWeights,
    )
}

/// Plan #19 — variant c: `I:( SW LM NLS )` (NNLS + known total).
pub fn plan_mwem_variant_c(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        false,
        MwemInference::NnlsKnownTotal,
    )
}

/// Plan #20 — variant d: `I:( SW SH2 LM NLS )` (both improvements).
pub fn plan_mwem_variant_d(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
) -> PlanResult {
    mwem_impl(
        kernel,
        x,
        workload,
        eps,
        opts,
        true,
        MwemInference::NnlsKnownTotal,
    )
}

fn mwem_impl(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
    opts: &MwemOptions,
    augment: bool,
    infer: MwemInference,
) -> PlanResult {
    let n = kernel.vector_len(x)?;
    let t = opts.rounds.max(1) as f64;
    let eps_select = eps / (2.0 * t);
    let eps_measure = eps / (2.0 * t);
    let start = kernel.measurement_count();

    let mut x_hat = vec![opts.total / n as f64; n];
    for round in 0..opts.rounds {
        // SW: worst-approximated workload query (exponential mechanism).
        let idx = worst_approx(kernel, x, workload, &x_hat, 1.0, eps_select)?;
        let row = workload.row(idx);
        let selected = sparse_row(n, &row);
        let strategy = if augment {
            augment_with_level(&selected, &row, n, round)
        } else {
            selected
        };
        // LM: the strategy has sensitivity 1 by construction (disjoint
        // augmentation), so measuring it costs eps_measure.
        kernel.vector_laplace(x, &strategy, eps_measure)?;

        // Per-round inference over all measurements so far.
        let measurements = kernel.measurements_since(start);
        x_hat = run_inference(&measurements, opts, infer, x)?;
    }
    Ok(PlanOutcome { x_hat })
}

fn run_inference(
    measurements: &[MeasuredQuery],
    opts: &MwemOptions,
    infer: MwemInference,
    x: SourceVar,
) -> Result<Vec<f64>> {
    Ok(match infer {
        MwemInference::MultWeights => {
            inference::mult_weights_inference(measurements, opts.total, None, opts.mw_iterations)
        }
        MwemInference::NnlsKnownTotal => {
            let n = measurements[0].query.cols();
            let mut ms = measurements.to_vec();
            let scale = relative_total_scale(measurements);
            ms.push(known_total_measurement(n, opts.total, x, scale));
            inference::non_negative_least_squares_opts(
                &ms,
                &ektelo_solvers::NnlsOptions {
                    max_iters: 600,
                    tol: 1e-7,
                },
            )
        }
    })
}

fn sparse_row(n: usize, row: &[f64]) -> Matrix {
    let triplets: Vec<(usize, usize, f64)> = row
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(j, &v)| (0, j, v))
        .collect();
    Matrix::sparse(ektelo_matrix::CsrMatrix::from_triplets(1, n, &triplets))
}

/// Variant b's augmentation: in round `r`, add all dyadic intervals of
/// length `2^r` that do not intersect the selected query's support. The
/// union still has L1 sensitivity 1 (disjoint supports), so the
/// measurement is free relative to the un-augmented plan.
fn augment_with_level(selected: &Matrix, row: &[f64], n: usize, round: usize) -> Matrix {
    let len = 1usize << round.min(62);
    if len > n {
        return selected.clone();
    }
    let mut extra = Vec::new();
    let mut lo = 0;
    while lo + len <= n {
        let hi = lo + len;
        let intersects = row[lo..hi].iter().any(|&v| v != 0.0);
        if !intersects {
            extra.push((lo, hi));
        }
        lo += len;
    }
    if extra.is_empty() {
        selected.clone()
    } else {
        Matrix::vstack(vec![selected.clone(), Matrix::range_queries(n, extra)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::{shape_1d, Shape1D};
    use ektelo_data::workloads::random_range;

    fn opts(total: f64) -> MwemOptions {
        MwemOptions {
            rounds: 6,
            total,
            mw_iterations: 30,
        }
    }

    #[test]
    fn mwem_budget_is_exact() {
        let x = shape_1d(Shape1D::Gaussian, 64, 1_000.0, 0);
        let w = random_range(64, 32, 0);
        let (k, root) = kernel_for_histogram(&x, 1.0, 0);
        plan_mwem(&k, root, &w, 1.0, &opts(1000.0)).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn augmented_variant_costs_the_same_budget() {
        let x = shape_1d(Shape1D::Gaussian, 64, 1_000.0, 0);
        let w = random_range(64, 32, 0);
        let (k, root) = kernel_for_histogram(&x, 1.0, 0);
        plan_mwem_variant_b(&k, root, &w, 1.0, &opts(1000.0)).unwrap();
        assert!(
            (k.budget_spent() - 1.0).abs() < 1e-9,
            "augmentation must be free"
        );
    }

    #[test]
    fn augmentation_has_sensitivity_one() {
        let n = 32;
        let mut row = vec![0.0; n];
        for r in row.iter_mut().take(12).skip(4) {
            *r = 1.0;
        }
        let selected = sparse_row(n, &row);
        for round in 0..5 {
            let m = augment_with_level(&selected, &row, n, round);
            assert!(
                (m.l1_sensitivity() - 1.0).abs() < 1e-12,
                "round {round} sensitivity {}",
                m.l1_sensitivity()
            );
        }
    }

    #[test]
    fn variants_improve_error_on_average() {
        // The Table 4 claim in miniature: variant d should beat plain MWEM
        // on a clustered dataset, averaged over seeds.
        let n = 128;
        let x = shape_1d(Shape1D::Clustered, n, 10_000.0, 3);
        let total: f64 = x.iter().sum();
        let w = random_range(n, 64, 5);
        let truth = w.matvec(&x);
        let trials = 4;
        let mut err_a = 0.0;
        let mut err_d = 0.0;
        for seed in 0..trials {
            let (k, root) = kernel_for_histogram(&x, 0.5, seed);
            let xa = plan_mwem(&k, root, &w, 0.5, &opts(total)).unwrap().x_hat;
            let (k, root) = kernel_for_histogram(&x, 0.5, seed + 50);
            let xd = plan_mwem_variant_d(&k, root, &w, 0.5, &opts(total))
                .unwrap()
                .x_hat;
            let e = |xh: &[f64]| {
                let est = w.matvec(xh);
                truth
                    .iter()
                    .zip(&est)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            };
            err_a += e(&xa);
            err_d += e(&xd);
        }
        assert!(
            err_d < err_a,
            "variant d ({err_d}) should beat plain MWEM ({err_a})"
        );
    }

    #[test]
    fn estimates_have_the_right_total() {
        let x = shape_1d(Shape1D::Uniform, 32, 800.0, 1);
        let w = random_range(32, 16, 2);
        let (k, root) = kernel_for_histogram(&x, 1.0, 3);
        let out = plan_mwem(&k, root, &w, 1.0, &opts(800.0)).unwrap();
        let total: f64 = out.x_hat.iter().sum();
        assert!(
            (total - 800.0).abs() < 1.0,
            "MW preserves the assumed total, got {total}"
        );
    }
}
