//! Data-independent plans (Fig. 2, Plans #1–#6 and #13).
//!
//! All share the idiom the paper highlights: *Query selection → Query (LM)
//! → Inference (LS)*, differing only in the selection operator. Since the
//! operator-graph migration each plan is expressed as a [`PlanSpec`]
//! (signature `S· LM LS`) and executed through [`PlanExecutor`], which
//! pre-accounts the exact ε before the kernel is touched; the functions
//! here remain the stable entry points.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::graph::{PlanBuilder, PlanExecutor, PlanSpec, SourceRef, StrategyRef};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::selection;
use ektelo_matrix::Matrix;

use crate::util::{workload_ranges, PlanOutcome, PlanResult};

/// Builds the shared `select → measure → infer-LS` spec with the
/// selection node supplied by `select`.
fn select_measure_infer_spec(
    select: impl FnOnce(&mut PlanBuilder, SourceRef) -> StrategyRef,
    eps: f64,
) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let s = select(&mut b, x);
    b.measure_laplace(x, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

fn run(
    kernel: &ProtectedKernel,
    x: SourceVar,
    select: impl FnOnce(&mut PlanBuilder, SourceRef) -> StrategyRef,
    eps: f64,
) -> PlanResult {
    let spec = select_measure_infer_spec(select, eps);
    let report = PlanExecutor::new(kernel).run(&spec, x)?;
    Ok(PlanOutcome {
        x_hat: report.x_hat,
    })
}

/// Plan #1 — Identity (Dwork et al. 2006): `SI LM LS`.
///
/// ```
/// use ektelo_core::kernel::ProtectedKernel;
/// use ektelo_plans::baseline::plan_identity;
///
/// let k = ProtectedKernel::init_from_vector(vec![10.0; 8], 1.0, 7);
/// let out = plan_identity(&k, k.root(), 1.0).unwrap();
/// assert_eq!(out.x_hat.len(), 8);
/// assert!((k.budget_spent() - 1.0).abs() < 1e-12);
/// ```
pub fn plan_identity(kernel: &ProtectedKernel, x: SourceVar, eps: f64) -> PlanResult {
    run(kernel, x, |b, x| b.select_identity(x), eps)
}

/// Plan #6 — Uniform: `ST LM LS` (estimate the total, assume uniformity).
pub fn plan_uniform(kernel: &ProtectedKernel, x: SourceVar, eps: f64) -> PlanResult {
    run(kernel, x, |b, x| b.select_total(x), eps)
}

/// Plan #2 — Privelet (Xiao et al. 2010): `SP LM LS`.
pub fn plan_privelet(kernel: &ProtectedKernel, x: SourceVar, eps: f64) -> PlanResult {
    run(kernel, x, |b, x| b.select_privelet(x), eps)
}

/// Plan #3 — Hierarchical H2 (Hay et al. 2010): `SH2 LM LS`.
pub fn plan_h2(kernel: &ProtectedKernel, x: SourceVar, eps: f64) -> PlanResult {
    run(kernel, x, |b, x| b.select_h2(x), eps)
}

/// Plan #4 — Hierarchical-opt HB (Qardaji et al. 2013): `SHB LM LS`.
pub fn plan_hb(kernel: &ProtectedKernel, x: SourceVar, eps: f64) -> PlanResult {
    run(kernel, x, |b, x| b.select_hb(x), eps)
}

/// Plan #5 — Greedy-H (Li et al. 2014): `SG LM LS`. Adapts the hierarchy
/// weights to `workload` (which should be a range-query workload; other
/// workloads fall back to uniform weights).
pub fn plan_greedy_h(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
) -> PlanResult {
    let ranges = workload_ranges(workload).unwrap_or_default();
    run(kernel, x, |b, x| b.select_greedy_h(x, &ranges), eps)
}

/// Plan #13 — HDMM (McKenna et al. 2018): `SHD LM LS`. Optimizes the
/// strategy for `workload`.
pub fn plan_hdmm(
    kernel: &ProtectedKernel,
    x: SourceVar,
    workload: &Matrix,
    eps: f64,
) -> PlanResult {
    let strategy = selection::hdmm_1d(workload, &selection::HdmmOptions::default());
    run(kernel, x, |b, _| b.select_fixed(strategy, "SHD"), eps)
}

/// HDMM over a multi-dimensional domain with per-factor workloads
/// (`OPT_⊗`): optimizes each dimension and measures the Kronecker product.
pub fn plan_hdmm_kron(
    kernel: &ProtectedKernel,
    x: SourceVar,
    factors: &[Matrix],
    eps: f64,
) -> PlanResult {
    let strategy = selection::hdmm_kron(factors, &selection::HdmmOptions::default());
    run(kernel, x, |b, _| b.select_fixed(strategy, "SHD"), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::kernel_for_histogram;
    use ektelo_data::generators::{shape_1d, Shape1D};

    fn run(plan: impl Fn(&ProtectedKernel, SourceVar, f64) -> PlanResult) -> (Vec<f64>, Vec<f64>) {
        let x = shape_1d(Shape1D::Gaussian, 64, 10_000.0, 3);
        let (k, root) = kernel_for_histogram(&x, 1.0, 7);
        let out = plan(&k, root, 1.0).unwrap();
        (x, out.x_hat)
    }

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn identity_recovers_large_counts() {
        let (x, xh) = run(plan_identity);
        assert!(rmse(&x, &xh) < 5.0, "rmse {}", rmse(&x, &xh));
    }

    #[test]
    fn uniform_gets_total_but_not_shape() {
        let (x, xh) = run(plan_uniform);
        let tx: f64 = x.iter().sum();
        let th: f64 = xh.iter().sum();
        assert!((tx - th).abs() / tx < 0.05, "totals {tx} vs {th}");
        // Uniform spread: all entries equal.
        assert!(xh.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
    }

    #[test]
    fn hierarchical_plans_answer_range_queries_better_than_identity() {
        // Average error of all prefix queries: hierarchical strategies beat
        // identity on a domain of 256 at moderate eps.
        let x = shape_1d(Shape1D::Bimodal, 256, 50_000.0, 5);
        let w = Matrix::prefix(256);
        let truth = w.matvec(&x);
        let mut errs = std::collections::HashMap::new();
        for (name, plan) in [
            (
                "identity",
                plan_identity as fn(&ProtectedKernel, SourceVar, f64) -> PlanResult,
            ),
            ("h2", plan_h2),
            ("privelet", plan_privelet),
            ("hb", plan_hb),
        ] {
            let mut total = 0.0;
            for seed in 0..5 {
                let (k, root) = kernel_for_histogram(&x, 0.1, seed);
                let xh = plan(&k, root, 0.1).unwrap().x_hat;
                let est = w.matvec(&xh);
                total += rmse(&truth, &est);
            }
            errs.insert(name, total / 5.0);
        }
        assert!(
            errs["h2"] < errs["identity"],
            "H2 ({}) should beat identity ({}) on prefix workload",
            errs["h2"],
            errs["identity"]
        );
        assert!(errs["privelet"] < errs["identity"]);
    }

    #[test]
    fn greedy_h_runs_with_range_workload() {
        let x = shape_1d(Shape1D::Step, 64, 5_000.0, 2);
        let w = ektelo_data::workloads::random_range(64, 50, 3);
        let (k, root) = kernel_for_histogram(&x, 1.0, 1);
        let out = plan_greedy_h(&k, root, &w, 1.0).unwrap();
        assert_eq!(out.x_hat.len(), 64);
    }

    #[test]
    fn hdmm_runs_and_spends_exactly_eps() {
        let x = shape_1d(Shape1D::Zipf, 32, 5_000.0, 2);
        let w = Matrix::prefix(32);
        let (k, root) = kernel_for_histogram(&x, 1.0, 1);
        plan_hdmm(&k, root, &w, 0.7).unwrap();
        assert!((k.budget_spent() - 0.7).abs() < 1e-9);
    }

    #[test]
    fn plans_fail_cleanly_when_budget_runs_out() {
        let x = shape_1d(Shape1D::Uniform, 16, 100.0, 0);
        let (k, root) = kernel_for_histogram(&x, 0.5, 0);
        plan_identity(&k, root, 0.5).unwrap();
        assert!(plan_h2(&k, root, 0.1).is_err());
    }

    #[test]
    fn baseline_signatures_render_from_the_graph() {
        let sigs: Vec<String> = [
            select_measure_infer_spec(|b, x| b.select_identity(x), 1.0),
            select_measure_infer_spec(|b, x| b.select_total(x), 1.0),
            select_measure_infer_spec(|b, x| b.select_privelet(x), 1.0),
            select_measure_infer_spec(|b, x| b.select_h2(x), 1.0),
            select_measure_infer_spec(|b, x| b.select_hb(x), 1.0),
            select_measure_infer_spec(|b, x| b.select_greedy_h(x, &[]), 1.0),
        ]
        .iter()
        .map(|s| s.signature())
        .collect();
        assert_eq!(
            sigs,
            [
                "SI LM LS",
                "ST LM LS",
                "SP LM LS",
                "SH2 LM LS",
                "SHB LM LS",
                "SG LM LS"
            ]
        );
    }
}
