//! The striped high-dimensional plans of §9.2 (Fig. 2, Plans #14–#16).
//!
//! A *stripe* fixes every attribute except one, giving a 1-D histogram per
//! combination of the remaining attributes. `V-SplitByPartition` makes the
//! stripes disjoint sources, so per-stripe subplans compose in parallel:
//! measuring all 280 census stripes costs the same ε as measuring one.
//! When the subplan is data-independent (HB), the whole construction
//! collapses to a single Kronecker strategy (`HB-Striped_kron`,
//! Algorithm 6).

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::{dawa_partition, stripe_partition, DawaOptions};
use ektelo_core::ops::selection::{greedy_h, hb, stripe_select};

use crate::util::{
    infer_ls, interval_partition_bounds, map_ranges_to_buckets, split_budget, PlanOutcome,
    PlanResult,
};

/// Plan #15 — HB-Striped (Algorithm 5): `PS TP[ SHB LM ] LS`.
pub fn plan_hb_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let start = kernel.measurement_count();
    let p = stripe_partition(sizes, attr);
    let stripes = kernel.split_by_partition(x, &p)?;
    let strategy = hb(sizes[attr]);
    for stripe in stripes {
        kernel.vector_laplace(stripe, &strategy, eps)?;
    }
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #14 — DAWA-Striped: `PS TP[ PD TR SG LM ] LS`.
///
/// Unlike HB-Striped, each stripe gets its *own* data-adaptive partition
/// and measurement set (`rho` = DAWA's stage-1 share, 0.25 in the paper).
/// `stripe_ranges` are the 1-D range queries of interest along the striped
/// attribute (steering each stripe's Greedy-H); pass `&[]` for uniform
/// weights.
pub fn plan_dawa_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    stripe_ranges: &[(usize, usize)],
    eps: f64,
    rho: f64,
) -> PlanResult {
    let shares = split_budget(eps, &[rho, 1.0 - rho]);
    let start = kernel.measurement_count();
    let p = stripe_partition(sizes, attr);
    let stripes = kernel.split_by_partition(x, &p)?;
    for stripe in stripes {
        let bucket_p = dawa_partition(kernel, stripe, shares[0], &DawaOptions::new(shares[1]))?;
        let reduced = kernel.reduce_by_partition(stripe, &bucket_p)?;
        let groups = kernel.vector_len(reduced)?;
        let bounds = interval_partition_bounds(&bucket_p);
        let ranges = map_ranges_to_buckets(stripe_ranges, &bounds);
        kernel.vector_laplace(reduced, &greedy_h(groups, &ranges), shares[1])?;
    }
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #16 — HB-Striped_kron (Algorithm 6): `SS LM LS`. The
/// data-independent variant expressed as one Kronecker measurement —
/// no kernel splitting, identical answers in distribution.
pub fn plan_hb_striped_kron(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let start = kernel.measurement_count();
    let strategy = stripe_select(sizes, attr, hb);
    kernel.vector_laplace(x, &strategy, eps)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_core::kernel::ProtectedKernel;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A small 3-attribute table: [v: 32, a: 3, b: 2].
    fn small_census(rows: usize, seed: u64) -> (ProtectedKernel, SourceVar, Vec<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("v", 32), ("a", 3), ("b", 2)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let a = rng.random_range(0..3u32);
            // v correlates with a.
            let v = ((rng.random_range(0..16u32)) + a * 8).min(31);
            let b = rng.random_range(0..2u32);
            t.push_row(&[v, a, b]);
        }
        let truth = ektelo_data::vectorize(&t);
        let k = ProtectedKernel::init(t, 10.0, seed);
        let x = k.vectorize(k.root()).unwrap();
        (k, x, truth, vec![32, 3, 2])
    }

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn hb_striped_costs_eps_despite_many_stripes() {
        let (k, x, _, sizes) = small_census(2000, 1);
        plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
        // 6 stripes all measured with eps=1; parallel composition → 1.
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dawa_striped_costs_eps() {
        let (k, x, _, sizes) = small_census(2000, 2);
        plan_dawa_striped(&k, x, &sizes, 0, &[], 1.0, 0.25).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn striped_estimates_live_on_the_full_domain() {
        let (k, x, truth, sizes) = small_census(5000, 3);
        let out = plan_hb_striped(&k, x, &sizes, 0, 2.0).unwrap();
        assert_eq!(out.x_hat.len(), truth.len());
        assert!(rmse(&truth, &out.x_hat) < 20.0);
    }

    #[test]
    fn kron_variant_matches_split_variant_statistically() {
        // Same strategy, different plumbing: errors should be comparable.
        let trials = 3;
        let mut err_split = 0.0;
        let mut err_kron = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
            err_split += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped_kron(&k, x, &sizes, 0, 1.0).unwrap();
            err_kron += rmse(&truth, &o.x_hat);
        }
        let ratio = err_split / err_kron;
        assert!(
            (0.5..2.0).contains(&ratio),
            "split ({err_split}) and kron ({err_kron}) variants should be comparable"
        );
    }

    #[test]
    fn dawa_striped_beats_hb_striped_on_sparse_stripes() {
        // Strong structure within stripes favours the data-adaptive plan
        // at small eps.
        let trials = 3;
        let mut err_hb = 0.0;
        let mut err_dawa = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 0.05).unwrap();
            err_hb += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_dawa_striped(&k, x, &sizes, 0, &[], 0.05, 0.25).unwrap();
            err_dawa += rmse(&truth, &o.x_hat);
        }
        assert!(
            err_dawa < err_hb * 1.6,
            "DAWA-striped ({err_dawa}) should be competitive with HB-striped ({err_hb})"
        );
    }
}
