//! The striped high-dimensional plans of §9.2 (Fig. 2, Plans #14–#16).
//!
//! A *stripe* fixes every attribute except one, giving a 1-D histogram per
//! combination of the remaining attributes. `V-SplitByPartition` makes the
//! stripes disjoint sources, so per-stripe subplans compose in parallel:
//! measuring all 280 census stripes costs the same ε as measuring one.
//! When the subplan is data-independent (HB), the whole construction
//! collapses to a single Kronecker strategy (`HB-Striped_kron`,
//! Algorithm 6).
//!
//! The budget composes in parallel across stripes, and so does the
//! *compute*: per-stripe measurements go through the kernel's batched
//! `vector_laplace_batch`, which evaluates the exact per-stripe answers on
//! worker threads (with the `parallel` feature) while drawing noise
//! sequentially in stripe order — so the *measurements* are bit-identical
//! with the feature on or off, and plan outputs are deterministic
//! run-to-run given the kernel seed. (The final `x_hat` may differ from a
//! serial build in the last ulps: the solver's threaded Unionᵀ scatter
//! regroups f64 sums at merge points.) DAWA-Striped
//! additionally builds its per-stripe Greedy-H strategies (pure public
//! compute, the dominant per-stripe cost) on worker threads, and its
//! data-adaptive stage-1 partition selection threads too: the kernel
//! charges stripes in order and derives counter-based per-stripe RNG
//! substreams from its privacy stream, so each stripe's selection is a
//! pure function of (snapshot, substream) and the threaded batch is
//! bit-identical to a sequential loop over the same substreams.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::{dawa_partition_batch, stripe_partition, DawaOptions};
use ektelo_core::ops::selection::{greedy_h, hb, stripe_select};

use crate::util::{
    infer_ls, interval_partition_bounds, map_ranges_to_buckets, split_budget, PlanOutcome,
    PlanResult,
};

/// Plan #15 — HB-Striped (Algorithm 5): `PS TP[ SHB LM ] LS`.
///
/// All stripes share one data-independent HB strategy, so the whole
/// measurement phase is a single batched call: exact answers evaluate in
/// parallel (under the `parallel` feature), noise is drawn in stripe
/// order — bit-identical to the old sequential loop.
pub fn plan_hb_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let start = kernel.measurement_count();
    let p = stripe_partition(sizes, attr);
    let stripes = kernel.split_by_partition(x, &p)?;
    let strategy = hb(sizes[attr]);
    let reqs: Vec<(SourceVar, &ektelo_matrix::Matrix, f64)> =
        stripes.iter().map(|&s| (s, &strategy, eps)).collect();
    kernel.vector_laplace_batch(&reqs)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Plan #14 — DAWA-Striped: `PS TP[ PD TR SG LM ] LS`.
///
/// Unlike HB-Striped, each stripe gets its *own* data-adaptive partition
/// and measurement set (`rho` = DAWA's stage-1 share, 0.25 in the paper).
/// `stripe_ranges` are the 1-D range queries of interest along the striped
/// attribute (steering each stripe's Greedy-H); pass `&[]` for uniform
/// weights.
pub fn plan_dawa_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    stripe_ranges: &[(usize, usize)],
    eps: f64,
    rho: f64,
) -> PlanResult {
    let shares = split_budget(eps, &[rho, 1.0 - rho]);
    let start = kernel.measurement_count();
    let p = stripe_partition(sizes, attr);
    let stripes = kernel.split_by_partition(x, &p)?;

    // Phase 1 — per-stripe data-adaptive partitioning, batched: the
    // kernel charges every stripe in stripe order and hands out
    // counter-based per-stripe RNG substreams, so the noisy-histogram +
    // segmentation work threads under the `parallel` feature while
    // remaining bit-identical to a sequential loop over the same
    // substreams (ROADMAP's "thread DAWA stage 1" item).
    let bucket_ps =
        dawa_partition_batch(kernel, &stripes, shares[0], &DawaOptions::new(shares[1]))?;
    let mut reduced_vars = Vec::with_capacity(stripes.len());
    let mut strategy_inputs = Vec::with_capacity(stripes.len());
    for (stripe, bucket_p) in stripes.iter().zip(&bucket_ps) {
        let reduced = kernel.reduce_by_partition(*stripe, bucket_p)?;
        let groups = kernel.vector_len(reduced)?;
        let bounds = interval_partition_bounds(bucket_p);
        let ranges = map_ranges_to_buckets(stripe_ranges, &bounds);
        reduced_vars.push(reduced);
        strategy_inputs.push((groups, ranges));
    }

    // Phase 2 — per-stripe Greedy-H strategy construction: pure public
    // compute over the (public) partition outputs, threaded under the
    // `parallel` feature. Deterministic either way.
    let strategies = build_greedy_strategies(&strategy_inputs);

    // Phase 3 — one batched measurement over all stripes: exact answers in
    // parallel, noise sequential in stripe order.
    let reqs: Vec<(SourceVar, &ektelo_matrix::Matrix, f64)> = reduced_vars
        .iter()
        .zip(&strategies)
        .map(|(&sv, strat)| (sv, strat, shares[1]))
        .collect();
    kernel.vector_laplace_batch(&reqs)?;

    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

/// Builds one Greedy-H strategy per stripe from `(groups, ranges)` inputs.
#[cfg(not(feature = "parallel"))]
fn build_greedy_strategies(inputs: &[(usize, Vec<(usize, usize)>)]) -> Vec<ektelo_matrix::Matrix> {
    inputs
        .iter()
        .map(|(groups, ranges)| greedy_h(*groups, ranges))
        .collect()
}

/// Threaded variant: stripes are independent and `greedy_h` is pure, so
/// chunks of stripes build on worker threads; results are written into
/// per-stripe slots, so the output order (and every matrix in it) is
/// identical to the serial build.
#[cfg(feature = "parallel")]
fn build_greedy_strategies(inputs: &[(usize, Vec<(usize, usize)>)]) -> Vec<ektelo_matrix::Matrix> {
    let nthreads = std::thread::available_parallelism().map_or(1, |p| p.get());
    if inputs.len() < 2 || nthreads < 2 {
        return inputs
            .iter()
            .map(|(groups, ranges)| greedy_h(*groups, ranges))
            .collect();
    }
    let chunk = inputs.len().div_ceil(nthreads);
    let mut out: Vec<ektelo_matrix::Matrix> =
        vec![ektelo_matrix::Matrix::identity(1); inputs.len()];
    std::thread::scope(|s| {
        for (ochunk, ichunk) in out.chunks_mut(chunk).zip(inputs.chunks(chunk)) {
            s.spawn(move || {
                for (slot, (groups, ranges)) in ochunk.iter_mut().zip(ichunk) {
                    *slot = greedy_h(*groups, ranges);
                }
            });
        }
    });
    out
}

/// Plan #16 — HB-Striped_kron (Algorithm 6): `SS LM LS`. The
/// data-independent variant expressed as one Kronecker measurement —
/// no kernel splitting, identical answers in distribution.
pub fn plan_hb_striped_kron(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let start = kernel.measurement_count();
    let strategy = stripe_select(sizes, attr, hb);
    kernel.vector_laplace(x, &strategy, eps)?;
    Ok(PlanOutcome {
        x_hat: infer_ls(kernel, start, LsSolver::Iterative),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_core::kernel::ProtectedKernel;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A small 3-attribute table: [v: 32, a: 3, b: 2].
    fn small_census(rows: usize, seed: u64) -> (ProtectedKernel, SourceVar, Vec<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("v", 32), ("a", 3), ("b", 2)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let a = rng.random_range(0..3u32);
            // v correlates with a.
            let v = ((rng.random_range(0..16u32)) + a * 8).min(31);
            let b = rng.random_range(0..2u32);
            t.push_row(&[v, a, b]);
        }
        let truth = ektelo_data::vectorize(&t);
        let k = ProtectedKernel::init(t, 10.0, seed);
        let x = k.vectorize(k.root()).unwrap();
        (k, x, truth, vec![32, 3, 2])
    }

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn hb_striped_costs_eps_despite_many_stripes() {
        let (k, x, _, sizes) = small_census(2000, 1);
        plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
        // 6 stripes all measured with eps=1; parallel composition → 1.
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dawa_striped_costs_eps() {
        let (k, x, _, sizes) = small_census(2000, 2);
        plan_dawa_striped(&k, x, &sizes, 0, &[], 1.0, 0.25).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    /// The threaded measurement phase must not introduce nondeterminism:
    /// identical seeds give identical estimates, run to run, with or
    /// without the `parallel` feature (noise is drawn sequentially in
    /// stripe order either way).
    #[test]
    fn striped_plans_are_deterministic_given_seed() {
        let run_hb = || {
            let (k, x, _, sizes) = small_census(3000, 7);
            plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap().x_hat
        };
        assert_eq!(run_hb(), run_hb());
        let run_dawa = || {
            let (k, x, _, sizes) = small_census(3000, 8);
            plan_dawa_striped(&k, x, &sizes, 0, &[(0, 16)], 1.0, 0.25)
                .unwrap()
                .x_hat
        };
        assert_eq!(run_dawa(), run_dawa());
    }

    #[test]
    fn striped_estimates_live_on_the_full_domain() {
        let (k, x, truth, sizes) = small_census(5000, 3);
        let out = plan_hb_striped(&k, x, &sizes, 0, 2.0).unwrap();
        assert_eq!(out.x_hat.len(), truth.len());
        assert!(rmse(&truth, &out.x_hat) < 20.0);
    }

    #[test]
    fn kron_variant_matches_split_variant_statistically() {
        // Same strategy, different plumbing: errors should be comparable.
        let trials = 3;
        let mut err_split = 0.0;
        let mut err_kron = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
            err_split += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped_kron(&k, x, &sizes, 0, 1.0).unwrap();
            err_kron += rmse(&truth, &o.x_hat);
        }
        let ratio = err_split / err_kron;
        assert!(
            (0.5..2.0).contains(&ratio),
            "split ({err_split}) and kron ({err_kron}) variants should be comparable"
        );
    }

    #[test]
    fn dawa_striped_beats_hb_striped_on_sparse_stripes() {
        // Strong structure within stripes favours the data-adaptive plan
        // at small eps.
        let trials = 3;
        let mut err_hb = 0.0;
        let mut err_dawa = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 0.05).unwrap();
            err_hb += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_dawa_striped(&k, x, &sizes, 0, &[], 0.05, 0.25).unwrap();
            err_dawa += rmse(&truth, &o.x_hat);
        }
        assert!(
            err_dawa < err_hb * 1.6,
            "DAWA-striped ({err_dawa}) should be competitive with HB-striped ({err_hb})"
        );
    }
}
