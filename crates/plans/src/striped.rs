//! The striped high-dimensional plans of §9.2 (Fig. 2, Plans #14–#16).
//!
//! A *stripe* fixes every attribute except one, giving a 1-D histogram per
//! combination of the remaining attributes. `V-SplitByPartition` makes the
//! stripes disjoint sources, so per-stripe subplans compose in parallel:
//! measuring all 280 census stripes costs the same ε as measuring one.
//! When the subplan is data-independent (HB), the whole construction
//! collapses to a single Kronecker strategy (`HB-Striped_kron`,
//! Algorithm 6).
//!
//! Since the operator-graph migration the striped plans are [`PlanSpec`]s
//! (`PS TP[ … ] LS`): the stripe partition, split, per-stripe selection
//! and batched measurement are graph nodes, and the executor pre-accounts
//! the parallel composition exactly — N stripes at ε cost ε — before any
//! kernel call.
//!
//! The budget composes in parallel across stripes, and so does the
//! *compute*: per-stripe measurements go through the kernel's batched
//! `vector_laplace_batch`, which evaluates the exact per-stripe answers on
//! worker threads (with the `parallel` feature) while drawing noise
//! sequentially in stripe order — so the *measurements* are bit-identical
//! with the feature on or off, and plan outputs are deterministic
//! run-to-run given the kernel seed. (The final `x_hat` may differ from a
//! serial build in the last ulps: the solver's threaded Unionᵀ scatter
//! regroups f64 sums at merge points.) DAWA-Striped
//! additionally builds its per-stripe Greedy-H strategies (pure public
//! compute, the dominant per-stripe cost) on worker threads, and its
//! data-adaptive stage-1 partition selection threads too: the kernel
//! charges stripes in order and derives counter-based per-stripe RNG
//! substreams from its privacy stream, so each stripe's selection is a
//! pure function of (snapshot, substream) and the threaded batch is
//! bit-identical to a sequential loop over the same substreams.

use ektelo_core::kernel::{ProtectedKernel, SourceVar};
use ektelo_core::ops::graph::{PlanBuilder, PlanExecutor, PlanSpec};
use ektelo_core::ops::inference::LsSolver;
use ektelo_core::ops::partition::DawaOptions;
use ektelo_core::ops::selection::{hb, stripe_select};

use crate::util::{split_budget, PlanOutcome, PlanResult};

/// The HB-Striped spec: `PS TP[ SHB LM ] LS`.
fn hb_striped_spec(sizes: &[usize], attr: usize, eps: f64) -> PlanSpec {
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(sizes, attr);
    let stripes = b.transform_split(x, p);
    let s = b.select_hb_shared(stripes);
    b.measure_laplace_batch_shared(stripes, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

/// Plan #15 — HB-Striped (Algorithm 5): `PS TP[ SHB LM ] LS`.
///
/// All stripes share one data-independent HB strategy, so the whole
/// measurement phase is a single batched call: exact answers evaluate in
/// parallel (under the `parallel` feature), noise is drawn in stripe
/// order — bit-identical to the old sequential loop.
pub fn plan_hb_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let spec = hb_striped_spec(sizes, attr, eps);
    let report = PlanExecutor::new(kernel).run(&spec, x)?;
    Ok(PlanOutcome {
        x_hat: report.x_hat,
    })
}

/// The DAWA-Striped spec: `PS TP[ PD TR SG LM ] LS`.
fn dawa_striped_spec(
    sizes: &[usize],
    attr: usize,
    stripe_ranges: &[(usize, usize)],
    eps: f64,
    rho: f64,
) -> PlanSpec {
    let shares = split_budget(eps, &[rho, 1.0 - rho]);
    let mut b = PlanBuilder::new();
    let x = b.input();
    let p = b.partition_stripes(sizes, attr);
    let stripes = b.transform_split(x, p);
    let parts = b.partition_dawa_each(stripes, shares[0], DawaOptions::new(shares[1]));
    let reduced = b.transform_reduce_each(stripes, parts);
    let strats = b.select_greedy_h_each(reduced, parts, stripe_ranges);
    b.measure_laplace_batch_each(reduced, strats, shares[1]);
    let e = b.infer_least_squares(LsSolver::Iterative);
    b.finish(e)
}

/// Plan #14 — DAWA-Striped: `PS TP[ PD TR SG LM ] LS`.
///
/// Unlike HB-Striped, each stripe gets its *own* data-adaptive partition
/// and measurement set (`rho` = DAWA's stage-1 share, 0.25 in the paper).
/// `stripe_ranges` are the 1-D range queries of interest along the striped
/// attribute (steering each stripe's Greedy-H); pass `&[]` for uniform
/// weights.
pub fn plan_dawa_striped(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    stripe_ranges: &[(usize, usize)],
    eps: f64,
    rho: f64,
) -> PlanResult {
    let spec = dawa_striped_spec(sizes, attr, stripe_ranges, eps, rho);
    let report = PlanExecutor::new(kernel).run(&spec, x)?;
    Ok(PlanOutcome {
        x_hat: report.x_hat,
    })
}

/// Plan #16 — HB-Striped_kron (Algorithm 6): `SS LM LS`. The
/// data-independent variant expressed as one Kronecker measurement —
/// no kernel splitting, identical answers in distribution.
pub fn plan_hb_striped_kron(
    kernel: &ProtectedKernel,
    x: SourceVar,
    sizes: &[usize],
    attr: usize,
    eps: f64,
) -> PlanResult {
    let mut b = PlanBuilder::new();
    let x_ref = b.input();
    let s = b.select_fixed(stripe_select(sizes, attr, hb), "SS");
    b.measure_laplace(x_ref, s, eps);
    let e = b.infer_least_squares(LsSolver::Iterative);
    let spec = b.finish(e);
    let report = PlanExecutor::new(kernel).run(&spec, x)?;
    Ok(PlanOutcome {
        x_hat: report.x_hat,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ektelo_core::kernel::ProtectedKernel;
    use ektelo_data::{Schema, Table};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A small 3-attribute table: [v: 32, a: 3, b: 2].
    fn small_census(rows: usize, seed: u64) -> (ProtectedKernel, SourceVar, Vec<f64>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::from_sizes(&[("v", 32), ("a", 3), ("b", 2)]);
        let mut t = Table::empty(schema);
        for _ in 0..rows {
            let a = rng.random_range(0..3u32);
            // v correlates with a.
            let v = ((rng.random_range(0..16u32)) + a * 8).min(31);
            let b = rng.random_range(0..2u32);
            t.push_row(&[v, a, b]);
        }
        let truth = ektelo_data::vectorize(&t);
        let k = ProtectedKernel::init(t, 10.0, seed);
        let x = k.vectorize(k.root()).unwrap();
        (k, x, truth, vec![32, 3, 2])
    }

    fn rmse(a: &[f64], b: &[f64]) -> f64 {
        (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
    }

    #[test]
    fn striped_specs_render_fig2_signatures() {
        assert_eq!(
            hb_striped_spec(&[32, 3, 2], 0, 1.0).signature(),
            "PS TP[ SHB LM ] LS"
        );
        assert_eq!(
            dawa_striped_spec(&[32, 3, 2], 0, &[], 1.0, 0.25).signature(),
            "PS TP[ PD TR SG LM ] LS"
        );
    }

    #[test]
    fn striped_preaccounting_is_exact_despite_many_stripes() {
        // 6 stripes all measured with eps=1; parallel composition → the
        // pre-accounted worst case is 1, and the charged ε matches it
        // bit for bit.
        let spec = hb_striped_spec(&[32, 3, 2], 0, 1.0);
        assert_eq!(spec.pre_account().unwrap().total, 1.0);
        let (k, x, _, _) = small_census(2000, 1);
        let report = PlanExecutor::new(&k).run(&spec, x).unwrap();
        assert_eq!(report.eps_pre_accounted, report.eps_charged);
    }

    #[test]
    fn hb_striped_costs_eps_despite_many_stripes() {
        let (k, x, _, sizes) = small_census(2000, 1);
        plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
        // 6 stripes all measured with eps=1; parallel composition → 1.
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dawa_striped_costs_eps() {
        let (k, x, _, sizes) = small_census(2000, 2);
        plan_dawa_striped(&k, x, &sizes, 0, &[], 1.0, 0.25).unwrap();
        assert!((k.budget_spent() - 1.0).abs() < 1e-9);
    }

    /// The threaded measurement phase must not introduce nondeterminism:
    /// identical seeds give identical estimates, run to run, with or
    /// without the `parallel` feature (noise is drawn sequentially in
    /// stripe order either way).
    #[test]
    fn striped_plans_are_deterministic_given_seed() {
        let run_hb = || {
            let (k, x, _, sizes) = small_census(3000, 7);
            plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap().x_hat
        };
        assert_eq!(run_hb(), run_hb());
        let run_dawa = || {
            let (k, x, _, sizes) = small_census(3000, 8);
            plan_dawa_striped(&k, x, &sizes, 0, &[(0, 16)], 1.0, 0.25)
                .unwrap()
                .x_hat
        };
        assert_eq!(run_dawa(), run_dawa());
    }

    #[test]
    fn striped_estimates_live_on_the_full_domain() {
        let (k, x, truth, sizes) = small_census(5000, 3);
        let out = plan_hb_striped(&k, x, &sizes, 0, 2.0).unwrap();
        assert_eq!(out.x_hat.len(), truth.len());
        assert!(rmse(&truth, &out.x_hat) < 20.0);
    }

    #[test]
    fn kron_variant_matches_split_variant_statistically() {
        // Same strategy, different plumbing: errors should be comparable.
        let trials = 3;
        let mut err_split = 0.0;
        let mut err_kron = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 1.0).unwrap();
            err_split += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(5000, 100 + seed);
            let o = plan_hb_striped_kron(&k, x, &sizes, 0, 1.0).unwrap();
            err_kron += rmse(&truth, &o.x_hat);
        }
        let ratio = err_split / err_kron;
        assert!(
            (0.5..2.0).contains(&ratio),
            "split ({err_split}) and kron ({err_kron}) variants should be comparable"
        );
    }

    #[test]
    fn dawa_striped_beats_hb_striped_on_sparse_stripes() {
        // Strong structure within stripes favours the data-adaptive plan
        // at small eps.
        let trials = 3;
        let mut err_hb = 0.0;
        let mut err_dawa = 0.0;
        for seed in 0..trials {
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_hb_striped(&k, x, &sizes, 0, 0.05).unwrap();
            err_hb += rmse(&truth, &o.x_hat);
            let (k, x, truth, sizes) = small_census(20_000, 200 + seed);
            let o = plan_dawa_striped(&k, x, &sizes, 0, &[], 0.05, 0.25).unwrap();
            err_dawa += rmse(&truth, &o.x_hat);
        }
        assert!(
            err_dawa < err_hb * 1.6,
            "DAWA-striped ({err_dawa}) should be competitive with HB-striped ({err_hb})"
        );
    }
}
