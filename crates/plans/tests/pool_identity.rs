//! Bit-identity of full plans across pool-executor sizes (ISSUE 5
//! acceptance): the striped and MWEM plans, run end to end on equally
//! seeded kernels, must produce **bit-identical** estimates whether the
//! persistent pool executes their threaded regions with 1 worker, 2
//! workers, or every worker it has — including fully inline (0).
//!
//! Why this must hold: chunk geometry is fixed by the process-constant
//! configured parallelism (never by the live worker count), privacy
//! randomness is always drawn sequentially in request order under the
//! kernel lock, DAWA's stage-1 stripes use counter-based substreams, and
//! every threaded merge is fixed-order — so the pool only decides *where*
//! each fixed chunk executes, never what it computes. A regression in any
//! of those invariants shows up here as a diverging bit.
//!
//! CI runs this suite under `--features parallel` with the default
//! worker count and under `EKTELO_POOL_WORKERS=1` / `=4`, so the sweep
//! below exercises real multi-worker dispatch wherever the machine (or
//! the env override) provides it. The forced-steal sweep (ISSUE 10)
//! additionally pins the work-stealing thief path: with the hook on,
//! every dispatch queues and every execution is a steal, and the same
//! bit-identity bar applies.

use ektelo_matrix::pool;
use ektelo_plans::mwem::{plan_mwem, plan_mwem_variant_b, MwemOptions};
use ektelo_plans::striped::{plan_dawa_striped, plan_hb_striped};
use ektelo_plans::util::kernel_for_histogram;

/// Runs the full plan family on freshly seeded kernels and returns every
/// estimate, concatenated. Bit-equality of this vector across pool sizes
/// is the acceptance bar — no tolerance.
fn run_plan_family() -> Vec<f64> {
    let sizes = [64usize, 3, 2];
    let n: usize = sizes.iter().product();
    let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64 + 1.0).collect();
    let eps = 0.8;
    let mut all = Vec::new();

    let (k, root) = kernel_for_histogram(&x, eps, 41);
    all.extend(plan_hb_striped(&k, root, &sizes, 0, eps).unwrap().x_hat);

    let (k, root) = kernel_for_histogram(&x, eps, 42);
    all.extend(
        plan_dawa_striped(&k, root, &sizes, 0, &[(0, 32)], eps, 0.25)
            .unwrap()
            .x_hat,
    );

    let w = ektelo_matrix::Matrix::prefix(n);
    let opts = MwemOptions {
        rounds: 4,
        total: x.iter().sum(),
        mw_iterations: 15,
    };
    let (k, root) = kernel_for_histogram(&x, eps, 43);
    all.extend(plan_mwem(&k, root, &w, eps, &opts).unwrap().x_hat);

    let (k, root) = kernel_for_histogram(&x, eps, 44);
    all.extend(plan_mwem_variant_b(&k, root, &w, eps, &opts).unwrap().x_hat);

    all
}

#[test]
fn striped_and_mwem_plans_bit_identical_across_pool_sizes() {
    let full = pool::stats().spawned;
    let prev = pool::workers();
    let reference = run_plan_family();
    assert!(
        reference.iter().all(|v| v.is_finite()),
        "plans must produce finite estimates"
    );
    for size in [0usize, 1, 2, full] {
        pool::set_workers(size);
        let got = run_plan_family();
        assert!(
            got == reference,
            "pool size {size} changed a plan output bit"
        );
    }
    pool::set_workers(prev);
}

/// ISSUE 10: the forced-steal hook routes **every** dispatch through the
/// per-worker deques (no inline fast path, no slot handoff) and makes each
/// worker — worker 0 included — steal from siblings before taking its own
/// queue, so every packet executes via the thief path. Because the
/// scheduler only decides *where* fixed chunks run, the full plan family
/// must stay bit-identical to the normal-dispatch reference at pool sizes
/// 1, 2 and 4.
#[test]
fn plans_bit_identical_under_forced_stealing() {
    let full = pool::stats().spawned;
    let prev = pool::workers();
    let reference = run_plan_family();
    pool::set_force_steal(true);
    for size in [1usize, 2, 4] {
        let applied = pool::set_workers(size.min(full.max(1)));
        let got = run_plan_family();
        assert!(
            got == reference,
            "forced stealing at pool size {applied} changed a plan output bit"
        );
    }
    pool::set_force_steal(false);
    pool::set_workers(prev);
}

/// A deliberately non-seeded sanity companion: two identical runs at the
/// same pool size are bit-identical too (run-to-run determinism, the
/// guarantee the pool inherits from fixed chunk geometry and sequential
/// noise).
#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_plan_family();
    let b = run_plan_family();
    assert!(a == b, "seeded plans must be deterministic run-to-run");
}

/// ISSUE 6: the typed `spawn -> handle` reduction API obeys the same
/// invariant as full plans — chunk geometry from the process-constant
/// configured parallelism, partials merged in fixed spawn order — so both
/// a hand-built typed-scope reduction and the `par_dot` kernel built on
/// it must be bit-identical at pool sizes 0, 1, 2 and full.
#[test]
fn typed_reductions_bit_identical_across_pool_sizes() {
    use ektelo_matrix::kernels;
    use ektelo_matrix::pool::{typed_scope, TypedHandle};

    // Long enough that par_dot engages its pool path (threshold 1<<15).
    let n = (1usize << 15) + 33;
    let a: Vec<f64> = (0..n)
        .map(|i| ((i * 37) % 19) as f64 * 0.31 - 2.7)
        .collect();
    let b: Vec<f64> = (0..n)
        .map(|i| ((i * 53) % 23) as f64 * 0.17 - 1.9)
        .collect();

    let run = || {
        let k = pool::configured_parallelism().max(1);
        let chunk = n.div_ceil(k);
        let manual = typed_scope(|ts| {
            let handles: Vec<_> = (0..n.div_ceil(chunk))
                .map(|c| {
                    let lo = c * chunk;
                    let hi = ((c + 1) * chunk).min(n);
                    let (ac, bc) = (&a[lo..hi], &b[lo..hi]);
                    ts.spawn(move || kernels::dot(ac, bc))
                })
                .collect();
            ts.join();
            let mut s = 0.0;
            for h in handles {
                s += TypedHandle::take(h);
            }
            s
        });
        (manual, kernels::par_dot(&a, &b))
    };

    let full = pool::stats().spawned;
    let prev = pool::workers();
    let (manual_ref, par_ref) = run();
    assert!(manual_ref.is_finite() && par_ref.is_finite());
    for size in [0usize, 1, 2, full] {
        pool::set_workers(size);
        let (manual, par) = run();
        assert_eq!(
            manual.to_bits(),
            manual_ref.to_bits(),
            "pool size {size} changed the typed-scope reduction"
        );
        assert_eq!(
            par.to_bits(),
            par_ref.to_bits(),
            "pool size {size} changed par_dot"
        );
    }
    pool::set_workers(prev);
}
