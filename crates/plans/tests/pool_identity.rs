//! Bit-identity of full plans across pool-executor sizes (ISSUE 5
//! acceptance): the striped and MWEM plans, run end to end on equally
//! seeded kernels, must produce **bit-identical** estimates whether the
//! persistent pool executes their threaded regions with 1 worker, 2
//! workers, or every worker it has — including fully inline (0).
//!
//! Why this must hold: chunk geometry is fixed by the process-constant
//! configured parallelism (never by the live worker count), privacy
//! randomness is always drawn sequentially in request order under the
//! kernel lock, DAWA's stage-1 stripes use counter-based substreams, and
//! every threaded merge is fixed-order — so the pool only decides *where*
//! each fixed chunk executes, never what it computes. A regression in any
//! of those invariants shows up here as a diverging bit.
//!
//! CI runs this suite under `--features parallel` with the default
//! worker count and under `EKTELO_POOL_WORKERS=1` / `=4`, so the sweep
//! below exercises real multi-worker dispatch wherever the machine (or
//! the env override) provides it.

use ektelo_matrix::pool;
use ektelo_plans::mwem::{plan_mwem, plan_mwem_variant_b, MwemOptions};
use ektelo_plans::striped::{plan_dawa_striped, plan_hb_striped};
use ektelo_plans::util::kernel_for_histogram;

/// Runs the full plan family on freshly seeded kernels and returns every
/// estimate, concatenated. Bit-equality of this vector across pool sizes
/// is the acceptance bar — no tolerance.
fn run_plan_family() -> Vec<f64> {
    let sizes = [64usize, 3, 2];
    let n: usize = sizes.iter().product();
    let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 23) as f64 + 1.0).collect();
    let eps = 0.8;
    let mut all = Vec::new();

    let (k, root) = kernel_for_histogram(&x, eps, 41);
    all.extend(plan_hb_striped(&k, root, &sizes, 0, eps).unwrap().x_hat);

    let (k, root) = kernel_for_histogram(&x, eps, 42);
    all.extend(
        plan_dawa_striped(&k, root, &sizes, 0, &[(0, 32)], eps, 0.25)
            .unwrap()
            .x_hat,
    );

    let w = ektelo_matrix::Matrix::prefix(n);
    let opts = MwemOptions {
        rounds: 4,
        total: x.iter().sum(),
        mw_iterations: 15,
    };
    let (k, root) = kernel_for_histogram(&x, eps, 43);
    all.extend(plan_mwem(&k, root, &w, eps, &opts).unwrap().x_hat);

    let (k, root) = kernel_for_histogram(&x, eps, 44);
    all.extend(plan_mwem_variant_b(&k, root, &w, eps, &opts).unwrap().x_hat);

    all
}

#[test]
fn striped_and_mwem_plans_bit_identical_across_pool_sizes() {
    let full = pool::stats().spawned;
    let prev = pool::workers();
    let reference = run_plan_family();
    assert!(
        reference.iter().all(|v| v.is_finite()),
        "plans must produce finite estimates"
    );
    for size in [0usize, 1, 2, full] {
        pool::set_workers(size);
        let got = run_plan_family();
        assert!(
            got == reference,
            "pool size {size} changed a plan output bit"
        );
    }
    pool::set_workers(prev);
}

/// A deliberately non-seeded sanity companion: two identical runs at the
/// same pool size are bit-identical too (run-to-run determinism, the
/// guarantee the pool inherits from fixed chunk geometry and sequential
/// noise).
#[test]
fn repeated_runs_are_bit_identical() {
    let a = run_plan_family();
    let b = run_plan_family();
    assert!(a == b, "seeded plans must be deterministic run-to-run");
}
