//! Pool × failpoints: a deterministic injected panic in one pool job must
//! behave exactly like a real job crash — deferred until every sibling in
//! the region has completed, then re-raised to the scope's caller — and
//! must leave the pool fully functional for subsequent regions.
//!
//! The `pool::job` site fires by *total hit count across the region*
//! (worker-run and inline-run jobs pass the same site), so the number of
//! completed siblings is invariant across pool sizes even though *which*
//! job observes the nth hit is schedule-dependent.

#![cfg(feature = "failpoints")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use ektelo_matrix::{failpoints, pool};

/// The failpoint registry is process-global; tests in this binary must
/// not interleave their schedules.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs a 4-job region where each job bumps a shared counter, returning
/// (scope panicked, jobs that ran).
fn run_region() -> (bool, usize) {
    let done = AtomicUsize::new(0);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    done.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    (outcome.is_err(), done.load(Ordering::Relaxed))
}

#[test]
fn injected_job_panic_is_deferred_and_siblings_complete() {
    let _guard = serial();
    failpoints::clear();
    failpoints::arm("pool::job", 2);
    let (panicked, done) = run_region();
    assert!(
        panicked,
        "the armed job's panic must reach the scope caller"
    );
    assert_eq!(
        done, 3,
        "exactly the armed job is skipped; all siblings run to completion"
    );
    failpoints::clear();
}

#[test]
fn pool_is_fully_functional_after_an_injected_panic() {
    let _guard = serial();
    failpoints::clear();
    failpoints::arm("pool::job", 1);
    let (panicked, _) = run_region();
    assert!(panicked);
    // The site was one-shot: the next region runs clean on the same pool.
    let (panicked, done) = run_region();
    assert!(!panicked, "a fired site stays disarmed");
    assert_eq!(done, 4);
    failpoints::clear();
}

#[test]
fn unarmed_runs_only_count_hits() {
    let _guard = serial();
    failpoints::clear();
    let (panicked, done) = run_region();
    assert!(!panicked);
    assert_eq!(done, 4);
    assert_eq!(
        failpoints::hits("pool::job"),
        4,
        "every job passes the site exactly once, for any pool size"
    );
    failpoints::clear();
}
