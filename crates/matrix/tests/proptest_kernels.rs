//! Property tests for the compute-kernel layer (ISSUE 6).
//!
//! Both kernel legs are always compiled, so these properties compare
//! `kernels::simd::*` against `kernels::scalar::*` directly in every
//! build:
//!
//! * order-preserving kernels must match **bit-exactly** at odd lengths
//!   and misaligned sub-slice offsets (remainder-lane handling);
//! * reassociating reductions (`dot`, `sum`, `sumsq`) must agree within
//!   the documented `O(n·ε)` tolerance and be deterministic per leg;
//! * the panel gather/scatter pair must round-trip and match the
//!   column-at-a-time reference exactly (pure data movement);
//! * `par_dot` must equal the fixed-chunk serial reference bit-exactly
//!   (its geometry comes from `configured_parallelism`, not the live
//!   worker count).

use ektelo_matrix::kernels::{self, scalar, simd, KRON_PANEL};
use proptest::prelude::*;

/// Vectors with lengths straddling the 4-lane blocks (0..=67 covers
/// empty, sub-block, exact-block and every remainder size), plus an
/// offset in 0..4 so sub-slices start off the original allocation head.
fn vec_and_offset() -> BoxedStrategy<(Vec<f64>, usize)> {
    (prop::collection::vec(-4.0f64..4.0, 0..67), 0usize..4)
        .prop_map(|(v, off)| {
            let off = off.min(v.len());
            (v, off)
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn order_preserving_kernels_bit_exact((x, off) in vec_and_offset(), c in -3.0f64..3.0) {
        let x = &x[off..];
        let d: Vec<f64> = x.iter().map(|v| v * 0.7 - 0.3).collect();
        let base: Vec<f64> = x.iter().map(|v| v * 1.3 + 0.1).collect();

        let mut ys = base.clone();
        let mut yv = base.clone();
        scalar::axpy(&mut ys, c, x);
        simd::axpy(&mut yv, c, x);
        prop_assert_eq!(&ys, &yv);

        scalar::xpay(&mut ys, c, &d);
        simd::xpay(&mut yv, c, &d);
        prop_assert_eq!(&ys, &yv);

        scalar::scale(&mut ys, c);
        simd::scale(&mut yv, c);
        prop_assert_eq!(&ys, &yv);

        scalar::add_assign(&mut ys, x);
        simd::add_assign(&mut yv, x);
        prop_assert_eq!(&ys, &yv);

        scalar::mul_into(&mut ys, &d, x);
        simd::mul_into(&mut yv, &d, x);
        prop_assert_eq!(&ys, &yv);

        scalar::mul_add_assign(&mut ys, &d, x);
        simd::mul_add_assign(&mut yv, &d, x);
        prop_assert_eq!(&ys, &yv);

        scalar::rsub(&mut ys, &d);
        simd::rsub(&mut yv, &d);
        prop_assert_eq!(&ys, &yv);

        scalar::scale_into(&mut ys, c, x);
        simd::scale_into(&mut yv, c, x);
        prop_assert_eq!(&ys, &yv);
    }

    #[test]
    fn reassociating_reductions_within_tolerance((a, off) in vec_and_offset()) {
        let a = &a[off..];
        let b: Vec<f64> = a.iter().map(|v| v * 0.9 - 0.2).collect();
        let n = a.len() as f64;

        // Documented tolerance for the pinned-tree reductions: relative
        // O(n·ε) against the scalar left-to-right reference.
        let tol = |reference: f64| 1e-13 * (n + 1.0) * (1.0 + reference.abs());

        let (ds, dv) = (scalar::dot(a, &b), simd::dot(a, &b));
        prop_assert!((ds - dv).abs() <= tol(ds), "dot: {} vs {}", ds, dv);
        // Deterministic per leg: the reduction tree is a compile-time
        // constant, so repeat evaluations are bit-identical.
        prop_assert_eq!(dv.to_bits(), simd::dot(a, &b).to_bits());

        let (ss, sv) = (scalar::sum(a), simd::sum(a));
        prop_assert!((ss - sv).abs() <= tol(ss), "sum: {} vs {}", ss, sv);
        prop_assert_eq!(sv.to_bits(), simd::sum(a).to_bits());

        let (qs, qv) = (scalar::sumsq(a), simd::sumsq(a));
        prop_assert!((qs - qv).abs() <= tol(qs), "sumsq: {} vs {}", qs, qv);
        prop_assert_eq!(qv.to_bits(), simd::sumsq(a).to_bits());
    }

    #[test]
    fn prefix_suffix_sums_and_norm2_match_references((x, off) in vec_and_offset()) {
        let x = &x[off..];
        let n = x.len();

        // prefix_sum_into / suffix_sum_into are order-preserving (single
        // shared sequential implementation): exact against a running
        // accumulator walked in the same order.
        let mut p = vec![0.0; n];
        kernels::prefix_sum_into(&mut p, x);
        let mut acc = 0.0;
        for (pi, &xi) in p.iter().zip(x) {
            acc += xi;
            prop_assert_eq!(pi.to_bits(), acc.to_bits());
        }
        let mut s = vec![0.0; n];
        kernels::suffix_sum_into(&mut s, x);
        let mut acc = 0.0;
        for (si, &xi) in s.iter().zip(x).rev() {
            acc += xi;
            prop_assert_eq!(si.to_bits(), acc.to_bits());
        }

        // norm2 is sqrt of the selected sumsq, so it inherits the
        // reassociating-reduction policy: deterministic per leg, within
        // tolerance of the scalar reference.
        let got = kernels::norm2(x);
        prop_assert_eq!(got.to_bits(), kernels::norm2(x).to_bits());
        let reference = scalar::sumsq(x).sqrt();
        let tol = 1e-13 * (n as f64 + 1.0) * (1.0 + reference.abs());
        prop_assert!((got - reference).abs() <= tol, "norm2: {} vs {}", got, reference);
    }

    #[test]
    fn panel_gather_scatter_matches_columnwise_reference(
        rows in 1usize..40,
        extra_cols in 0usize..5,
        q4 in 0usize..9,
        seed in 0u64..1000,
    ) {
        let stride = KRON_PANEL + extra_cols + (q4 * KRON_PANEL).min(32);
        let q = (q4 * KRON_PANEL).min(stride - KRON_PANEL);
        let t: Vec<f64> = (0..rows * stride)
            .map(|i| ((i as u64).wrapping_mul(seed + 1) % 97) as f64 * 0.37 - 17.0)
            .collect();

        let mut panel = vec![0.0; KRON_PANEL * rows];
        kernels::gather_panel(&t, stride, q, rows, &mut panel);
        for j in 0..KRON_PANEL {
            for i in 0..rows {
                prop_assert_eq!(panel[j * rows + i].to_bits(), t[i * stride + q + j].to_bits());
            }
        }

        let mut out = vec![f64::NAN; rows * stride];
        kernels::scatter_panel(&panel, rows, &mut out, stride, q);
        for i in 0..rows {
            for j in 0..KRON_PANEL {
                prop_assert_eq!(out[i * stride + q + j].to_bits(), t[i * stride + q + j].to_bits());
            }
        }
    }

    #[test]
    fn par_dot_matches_fixed_chunk_reference(shift in 0usize..64) {
        // Long enough to engage the pool path (PAR_DOT_MIN = 1<<15) with
        // a varying remainder chunk.
        let n = (1usize << 15) + shift * 7;
        let a: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 * 0.31 - 2.7).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 53) % 23) as f64 * 0.17 - 1.9).collect();
        let k = ektelo_matrix::pool::configured_parallelism();
        let got = kernels::par_dot(&a, &b);
        let expect = if k < 2 {
            kernels::dot(&a, &b)
        } else {
            let chunk = n.div_ceil(k);
            let mut s = 0.0;
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                s += kernels::dot(&a[lo..hi], &b[lo..hi]);
                lo = hi;
            }
            s
        };
        prop_assert_eq!(got.to_bits(), expect.to_bits());
    }
}
