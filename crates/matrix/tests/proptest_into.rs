//! Property tests for the in-place evaluation engine: on randomly
//! generated combinator trees, `matvec_into` / `rmatvec_into` with a
//! shared [`Workspace`] must produce **bit-identical** results to the
//! allocating `matvec` / `rmatvec` wrappers (they are required to be thin
//! wrappers, so even the floating-point operation order must agree), and
//! `rmatvec_add` must accumulate exactly `rmatvec`'s output.

use ektelo_matrix::{Matrix, Workspace};
use proptest::prelude::*;

/// Random combinator trees over a fixed column count so compositions
/// typecheck: implicit leaves, ranges, diagonals, then unions / products /
/// scalings / transposes stacked `depth` levels deep.
fn arb_tree(cols: usize, depth: u32) -> BoxedStrategy<Matrix> {
    let leaf = prop_oneof![
        Just(Matrix::identity(cols)),
        Just(Matrix::prefix(cols)),
        Just(Matrix::suffix(cols)),
        Just(Matrix::wavelet(cols)),
        (1usize..=3).prop_map(move |m| Matrix::ones(m, cols)),
        prop::collection::vec((0usize..cols, 1usize..=cols), 1..6).prop_map(move |pairs| {
            let ranges: Vec<(usize, usize)> = pairs
                .into_iter()
                .map(|(lo, len)| (lo.min(cols - 1), (lo + len).clamp(lo + 1, cols).min(cols)))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            if ranges.is_empty() {
                Matrix::total(cols)
            } else {
                Matrix::range_queries(cols, ranges)
            }
        }),
        prop::collection::vec(-2.0f64..2.0, cols).prop_map(Matrix::diagonal),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = arb_tree(cols, depth - 1);
    prop_oneof![
        leaf,
        prop::collection::vec(arb_tree(cols, depth - 1), 1..4).prop_map(Matrix::vstack),
        (inner.clone(), -2.0f64..2.0).prop_map(|(m, c)| Matrix::scaled(c, m)),
        // Square sub-expressions can be composed and transposed without
        // breaking the column invariant.
        (inner.clone(), inner.clone()).prop_map(|(a, b)| {
            if a.cols() == a.rows() && b.rows() == b.cols() {
                Matrix::product(a, b)
            } else {
                a
            }
        }),
        inner.prop_map(|m| if m.rows() == m.cols() {
            m.transpose()
        } else {
            m
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// matvec_into bit-matches the allocating matvec on random trees.
    #[test]
    fn matvec_into_bit_matches(
        m in arb_tree(7, 3),
        x in prop::collection::vec(-4.0f64..4.0, 7),
    ) {
        let expect = m.matvec(&x);
        let mut ws = Workspace::for_matrix(&m);
        let mut got = vec![0.0; m.rows()];
        m.matvec_into(&x, &mut got, &mut ws);
        prop_assert_eq!(&got, &expect, "matvec_into diverged on {:?}", m);
        // A second evaluation through the same (now warm) workspace must
        // not be affected by scratch contents left behind by the first.
        m.matvec_into(&x, &mut got, &mut ws);
        prop_assert_eq!(&got, &expect, "warm-workspace re-evaluation diverged");
    }

    /// rmatvec_into bit-matches the allocating rmatvec on random trees.
    #[test]
    fn rmatvec_into_bit_matches(m in arb_tree(7, 3)) {
        let y: Vec<f64> = (0..m.rows()).map(|i| (i as f64) * 0.37 - 1.0).collect();
        let expect = m.rmatvec(&y);
        let mut ws = Workspace::for_matrix(&m);
        let mut got = vec![0.0; m.cols()];
        m.rmatvec_into(&y, &mut got, &mut ws);
        prop_assert_eq!(&got, &expect, "rmatvec_into diverged on {:?}", m);
        m.rmatvec_into(&y, &mut got, &mut ws);
        prop_assert_eq!(&got, &expect, "warm-workspace re-evaluation diverged");
    }

    /// rmatvec_add accumulates exactly rmatvec's output on top of the
    /// existing contents.
    #[test]
    fn rmatvec_add_accumulates_exactly(m in arb_tree(6, 2)) {
        let y: Vec<f64> = (0..m.rows()).map(|i| (i as f64) - 2.0).collect();
        let direct = m.rmatvec(&y);
        let mut ws = Workspace::new();
        let mut acc = vec![3.0; m.cols()];
        m.rmatvec_add(&y, &mut acc, &mut ws);
        for (a, d) in acc.iter().zip(&direct) {
            prop_assert!((a - (d + 3.0)).abs() < 1e-12, "rmatvec_add mismatch on {:?}", m);
        }
    }

    /// One shared workspace serves different matrices and both directions
    /// without cross-contamination.
    #[test]
    fn workspace_shared_across_matrices(
        a in arb_tree(6, 2),
        b in arb_tree(6, 2),
        x in prop::collection::vec(-3.0f64..3.0, 6),
    ) {
        let mut ws = Workspace::new();
        let mut out_a = vec![0.0; a.rows()];
        let mut out_b = vec![0.0; b.rows()];
        a.matvec_into(&x, &mut out_a, &mut ws);
        b.matvec_into(&x, &mut out_b, &mut ws);
        prop_assert_eq!(&out_a, &a.matvec(&x));
        prop_assert_eq!(&out_b, &b.matvec(&x));
        // Interleave directions.
        let ya: Vec<f64> = (0..a.rows()).map(|i| i as f64 * 0.5).collect();
        let mut back = vec![0.0; a.cols()];
        a.rmatvec_into(&ya, &mut back, &mut ws);
        prop_assert_eq!(&back, &a.rmatvec(&ya));
    }

    /// Kronecker products (which reshape through the workspace most
    /// aggressively) bit-match on random dense factors.
    #[test]
    fn kron_into_bit_matches(
        av in prop::collection::vec(-2.0f64..2.0, 6),
        bv in prop::collection::vec(-2.0f64..2.0, 6),
    ) {
        let a = Matrix::from_rows(av.chunks(3).map(<[f64]>::to_vec).collect());
        let b = Matrix::from_rows(bv.chunks(2).map(<[f64]>::to_vec).collect());
        let k = Matrix::kron(a, b);
        let x: Vec<f64> = (0..k.cols()).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let expect = k.matvec(&x);
        let mut ws = Workspace::for_matrix(&k);
        let mut got = vec![0.0; k.rows()];
        k.matvec_into(&x, &mut got, &mut ws);
        prop_assert_eq!(&got, &expect);

        let y: Vec<f64> = (0..k.rows()).map(|i| (i as f64) * 0.7).collect();
        let expect_t = k.rmatvec(&y);
        let mut got_t = vec![0.0; k.cols()];
        k.rmatvec_into(&y, &mut got_t, &mut ws);
        prop_assert_eq!(&got_t, &expect_t);
    }
}
