//! Property tests for the explicit (CSR/dense) kernels: the reference
//! implementations everything implicit is checked against must themselves
//! be correct, so they get their own adversarial fuzzing.

use ektelo_matrix::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn arb_triplets(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec(
        (0..rows, 0..cols, prop_oneof![Just(0.0), -5.0f64..5.0]),
        0..rows * cols * 2,
    )
}

fn dense_from_triplets(rows: usize, cols: usize, t: &[(usize, usize, f64)]) -> DenseMatrix {
    let mut d = DenseMatrix::zeros(rows, cols);
    for &(r, c, v) in t {
        let cur = d.get(r, c);
        d.set(r, c, cur + v);
    }
    d
}

fn assert_close(a: &DenseMatrix, b: &DenseMatrix) {
    assert!(
        a.max_abs_diff(b).expect("shapes match") < 1e-10,
        "dense mismatch"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Triplet construction (with duplicate summing) matches a dense
    /// accumulator.
    #[test]
    fn from_triplets_matches_dense(t in arb_triplets(4, 5)) {
        let csr = CsrMatrix::from_triplets(4, 5, &t);
        assert_close(&csr.to_dense(), &dense_from_triplets(4, 5, &t));
    }

    /// CSR never stores explicit zeros, and nnz is consistent.
    #[test]
    fn no_explicit_zeros(t in arb_triplets(4, 4)) {
        let csr = CsrMatrix::from_triplets(4, 4, &t);
        prop_assert!(csr.values().iter().all(|&v| v != 0.0));
        prop_assert_eq!(csr.values().len(), csr.nnz());
        prop_assert_eq!(*csr.indptr().last().unwrap(), csr.nnz());
    }

    /// matvec/rmatvec agree with the dense reference.
    #[test]
    fn products_match_dense(
        t in arb_triplets(3, 6),
        x in prop::collection::vec(-3.0f64..3.0, 6),
        y in prop::collection::vec(-3.0f64..3.0, 3),
    ) {
        let csr = CsrMatrix::from_triplets(3, 6, &t);
        let d = csr.to_dense();
        let mut got = vec![0.0; 3];
        csr.matvec_into(&x, &mut got);
        let mut expect = vec![0.0; 3];
        d.matvec_into(&x, &mut expect);
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() < 1e-10);
        }
        let mut got_t = vec![0.0; 6];
        csr.rmatvec_into(&y, &mut got_t);
        let mut expect_t = vec![0.0; 6];
        d.rmatvec_into(&y, &mut expect_t);
        for (g, e) in got_t.iter().zip(&expect_t) {
            prop_assert!((g - e).abs() < 1e-10);
        }
    }

    /// Sparse matmul agrees with dense matmul, including cancellation to
    /// exact zero (the touched-list reset path).
    #[test]
    fn matmul_matches_dense(
        a in arb_triplets(3, 4),
        b in arb_triplets(4, 3),
    ) {
        let ca = CsrMatrix::from_triplets(3, 4, &a);
        let cb = CsrMatrix::from_triplets(4, 3, &b);
        let got = ca.matmul(&cb).to_dense();
        let expect = ca.to_dense().matmul(&cb.to_dense());
        assert_close(&got, &expect);
    }

    /// (AB)C = A(BC) through the sparse kernels.
    #[test]
    fn matmul_associative(
        a in arb_triplets(2, 3),
        b in arb_triplets(3, 2),
        c in arb_triplets(2, 4),
    ) {
        let (ca, cb, cc) = (
            CsrMatrix::from_triplets(2, 3, &a),
            CsrMatrix::from_triplets(3, 2, &b),
            CsrMatrix::from_triplets(2, 4, &c),
        );
        let left = ca.matmul(&cb).matmul(&cc).to_dense();
        let right = ca.matmul(&cb.matmul(&cc)).to_dense();
        assert_close(&left, &right);
    }

    /// Transpose is an involution and flips products.
    #[test]
    fn transpose_properties(t in arb_triplets(4, 3)) {
        let m = CsrMatrix::from_triplets(4, 3, &t);
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        // (Aᵀ)·y == rmatvec(y)
        let y: Vec<f64> = (0..4).map(|i| i as f64 - 1.0).collect();
        let mut via_t = vec![0.0; 3];
        m.transpose().matvec_into(&y, &mut via_t);
        let mut via_r = vec![0.0; 3];
        m.rmatvec_into(&y, &mut via_r);
        for (a, b) in via_t.iter().zip(&via_r) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// kron dimensions and entries match the definition.
    #[test]
    fn kron_entries(
        a in arb_triplets(2, 2),
        b in arb_triplets(2, 3),
    ) {
        let ca = CsrMatrix::from_triplets(2, 2, &a);
        let cb = CsrMatrix::from_triplets(2, 3, &b);
        let k = ca.kron(&cb).to_dense();
        let (da, db) = (ca.to_dense(), cb.to_dense());
        for i in 0..4 {
            for j in 0..6 {
                let expect = da.get(i / 2, j / 3) * db.get(i % 2, j % 3);
                prop_assert!((k.get(i, j) - expect).abs() < 1e-12);
            }
        }
    }

    /// vstack preserves row order and values.
    #[test]
    fn vstack_rows(
        a in arb_triplets(2, 4),
        b in arb_triplets(3, 4),
    ) {
        let ca = CsrMatrix::from_triplets(2, 4, &a);
        let cb = CsrMatrix::from_triplets(3, 4, &b);
        let s = CsrMatrix::vstack(&[&ca, &cb]).to_dense();
        let (da, db) = (ca.to_dense(), cb.to_dense());
        for j in 0..4 {
            prop_assert_eq!(s.get(0, j), da.get(0, j));
            prop_assert_eq!(s.get(2, j), db.get(0, j));
            prop_assert_eq!(s.get(4, j), db.get(2, j));
        }
    }

    /// Dense Cholesky-free reference: gram of random matrix is symmetric
    /// PSD (diagonal dominates off-diagonal in trace terms).
    #[test]
    fn gram_symmetric_psd_diagonal(t in arb_triplets(4, 4)) {
        let m = CsrMatrix::from_triplets(4, 4, &t).to_dense();
        let g = m.gram();
        for i in 0..4 {
            prop_assert!(g.get(i, i) >= -1e-12, "negative diagonal");
            for j in 0..4 {
                prop_assert!((g.get(i, j) - g.get(j, i)).abs() < 1e-10, "asymmetric");
            }
        }
    }
}
