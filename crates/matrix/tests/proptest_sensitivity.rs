//! Property tests for the sensitivity fast paths (paper §5.2 / Table 1).
//!
//! `abs_col_sums` / `abs_row_sums` take a closed-form shortcut when both
//! product factors are structurally non-negative (`colsums(|AB|) = Bᵀ|A|ᵀ1`)
//! and fall back to materializing `|AB|` otherwise. The fallback calibrates
//! Laplace noise for every lineage containing a signed transform (wavelets,
//! differences, reweightings), so it is checked here against the
//! explicitly materialized product on factors with negative entries —
//! sensitivity drift would silently weaken or over-noise every downstream
//! measurement.

use ektelo_matrix::{DenseMatrix, Matrix};
use proptest::prelude::*;

/// A small dense factor with entries in [-3, 3] (signed on purpose).
fn arb_dense(rows: usize, cols: usize) -> BoxedStrategy<Matrix> {
    prop::collection::vec(-3.0f64..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_rows(v.chunks(cols).map(<[f64]>::to_vec).collect()))
        .boxed()
}

/// Signed implicit factors: the shapes real lineages produce.
fn arb_signed_square(n: usize) -> BoxedStrategy<Matrix> {
    prop_oneof![
        Just(Matrix::wavelet(n)),
        (-2.0f64..-0.1).prop_map(move |c| Matrix::scaled(c, Matrix::prefix(n))),
        prop::collection::vec(-2.0f64..2.0, n).prop_map(Matrix::diagonal),
        Just(Matrix::suffix(n)),
    ]
    .boxed()
}

/// Reference column sums of |M| via full materialization.
fn dense_abs_col_sums(d: &DenseMatrix) -> Vec<f64> {
    d.map(f64::abs).abs_pow_col_sums(1)
}

/// Reference row sums of |M| via full materialization.
fn dense_abs_row_sums(d: &DenseMatrix) -> Vec<f64> {
    (0..d.rows())
        .map(|i| d.row_slice(i).iter().map(|v| v.abs()).sum())
        .collect()
}

fn check_product(p: &Matrix) -> Result<(), String> {
    let d = p.to_dense();
    let expect_cols = dense_abs_col_sums(&d);
    let got_cols = p.abs_col_sums();
    for (g, e) in got_cols.iter().zip(&expect_cols) {
        prop_assert!(
            (g - e).abs() < 1e-9,
            "abs_col_sums drifted: {got_cols:?} vs {expect_cols:?}"
        );
    }
    let expect_rows = dense_abs_row_sums(&d);
    let got_rows = p.abs_row_sums();
    for (g, e) in got_rows.iter().zip(&expect_rows) {
        prop_assert!(
            (g - e).abs() < 1e-9,
            "abs_row_sums drifted: {got_rows:?} vs {expect_rows:?}"
        );
    }
    // And therefore the L1 sensitivity itself.
    let expect_l1 = expect_cols.iter().copied().fold(0.0, f64::max);
    prop_assert!(
        (p.l1_sensitivity() - expect_l1).abs() < 1e-9,
        "l1_sensitivity drifted"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Products of signed dense factors hit the materializing fallback;
    /// their column/row sums must match the explicit |AB|.
    #[test]
    fn signed_dense_product_matches_materialized(
        a in arb_dense(4, 5),
        b in arb_dense(5, 6),
    ) {
        check_product(&Matrix::product(a, b))?;
    }

    /// Signed implicit factors (wavelet, negative scalings, signed
    /// diagonals) — the lineage shapes — also take the fallback.
    #[test]
    fn signed_implicit_product_matches_materialized(
        a in arb_signed_square(6),
        b in arb_signed_square(6),
    ) {
        check_product(&Matrix::product(a, b))?;
    }

    /// Mixed case: one non-negative factor does not justify the shortcut;
    /// the structural check must still route to the fallback and agree.
    #[test]
    fn mixed_sign_product_matches_materialized(
        b in arb_signed_square(5),
    ) {
        check_product(&Matrix::product(Matrix::prefix(5), b.clone()))?;
        check_product(&Matrix::product(b, Matrix::suffix(5)))?;
    }

    /// Three-factor chains nest a product inside a product; the outer
    /// fallback must materialize the whole chain correctly.
    #[test]
    fn signed_chain_matches_materialized(
        a in arb_signed_square(5),
        b in arb_signed_square(5),
    ) {
        let chain = Matrix::product(a, Matrix::product(b, Matrix::wavelet(5)));
        check_product(&chain)?;
    }

    /// Sanity: when both factors *are* non-negative the shortcut runs and
    /// still matches the materialized reference.
    #[test]
    fn nonneg_shortcut_still_matches(
        diag in prop::collection::vec(0.0f64..2.0, 6),
    ) {
        let p = Matrix::product(Matrix::prefix(6), Matrix::diagonal(diag));
        check_product(&p)?;
    }
}
