//! Regression test for the up-front arena reservation (ISSUE 2 satellite):
//! a single [`Workspace`] reused across *differently-shaped* matrices and
//! all three product directions must stop allocating — and stop walking
//! the tree for planning — once each (matrix, direction) pair has been
//! seen once. The old engine grew the arena lazily inside `Workspace::
//! slice`, so alternating between a small and a large matrix reallocated
//! mid-solve and silently broke the allocation-free guarantee.
//!
//! Verified with a counting global allocator plus the engine's
//! planning-pass counter: over the steady-state loop both deltas must be
//! exactly zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ektelo_matrix::{plan_builds, Matrix, Workspace};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed atomic counter —
// every layout/pointer contract required of a `GlobalAlloc` is upheld by
// forwarding the arguments unchanged, and the counter has no effect on
// allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` (alloc/realloc above
        // forward to it) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` with `layout`; `new_size` is
        // the caller's requested size, unmodified.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The counters are process-global but the harness runs tests on
/// concurrent threads; hold this gate so counting windows never overlap.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimum allocation count of `f` over a few repetitions: harness
/// bookkeeping on other threads can add counts mid-window (the gate only
/// serializes test bodies), but that noise is strictly additive, so the
/// minimum is the true count — and a genuine steady-state allocation
/// shows up in every repetition.
fn count<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        best = best.min(ALLOCATIONS.load(Ordering::Relaxed) - before);
    }
    best
}

/// Sizes stay far below the parallel work threshold on purpose: the serial
/// paths carry the allocation-free guarantee, and this test must hold with
/// and without `--features parallel`.
fn big() -> Matrix {
    let n = 96;
    Matrix::vstack(vec![
        Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
        Matrix::scaled(0.5, Matrix::suffix(n)),
        Matrix::kron(Matrix::total(8), Matrix::prefix(n / 8)),
    ])
}

fn small() -> Matrix {
    let n = 48;
    Matrix::product(
        Matrix::suffix(n),
        Matrix::product(Matrix::wavelet(n), Matrix::prefix(n)),
    )
}

#[test]
fn workspace_reuse_across_two_matrices_is_allocation_and_planning_free() {
    let _serial = serialized();
    let a = big();
    let b = small();
    let mut ws = Workspace::new();

    let xa: Vec<f64> = (0..a.cols()).map(|i| (i % 7) as f64 - 3.0).collect();
    let xb: Vec<f64> = (0..b.cols()).map(|i| (i % 5) as f64 - 2.0).collect();
    let mut out_a = vec![0.0; a.rows()];
    let mut out_b = vec![0.0; b.rows()];
    let mut back_a = vec![0.0; a.cols()];
    let mut back_b = vec![0.0; b.cols()];

    // Warm every (matrix, direction) pair once: plans are built, the arena
    // reaches the maximum requirement across both matrices.
    a.matvec_into(&xa, &mut out_a, &mut ws);
    a.rmatvec_into(&out_a, &mut back_a, &mut ws);
    a.rmatvec_add(&out_a, &mut back_a, &mut ws);
    b.matvec_into(&xb, &mut out_b, &mut ws);
    b.rmatvec_into(&out_b, &mut back_b, &mut ws);
    b.rmatvec_add(&out_b, &mut back_b, &mut ws);
    let builds_after_warm = plan_builds();
    let cap_after_warm = ws.capacity();

    // Steady state: interleave matrices and directions.
    let allocs = count(|| {
        for _ in 0..50 {
            a.matvec_into(&xa, &mut out_a, &mut ws);
            b.matvec_into(&xb, &mut out_b, &mut ws);
            a.rmatvec_into(&out_a, &mut back_a, &mut ws);
            b.rmatvec_into(&out_b, &mut back_b, &mut ws);
            a.rmatvec_add(&out_a, &mut back_a, &mut ws);
            b.rmatvec_add(&out_b, &mut back_b, &mut ws);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state reuse across two matrices must not allocate"
    );
    assert_eq!(
        plan_builds(),
        builds_after_warm,
        "steady-state reuse must not re-run the planning pass"
    );
    assert_eq!(
        ws.capacity(),
        cap_after_warm,
        "arena must be fully reserved up front, not grown mid-solve"
    );
    assert!(ws.plan_cache_builds() <= 2, "one plan per matrix");

    // The results stay correct (not just fast): cross-check via wrappers.
    assert_eq!(out_a, a.matvec(&xa));
    assert_eq!(out_b, b.matvec(&xb));
}

#[test]
fn warm_workspace_survives_matrix_clone_without_replanning() {
    let _serial = serialized();
    let a = big();
    let mut ws = Workspace::for_matrix(&a);
    let x: Vec<f64> = (0..a.cols()).map(|i| i as f64 * 0.1).collect();
    let mut out = vec![0.0; a.rows()];
    a.matvec_into(&x, &mut out, &mut ws);
    let builds = plan_builds();
    // A clone is structurally identical, so it shares the cached plan
    // through the shape fingerprint instead of rebuilding.
    let a2 = a.clone();
    let mut out2 = vec![0.0; a2.rows()];
    a2.matvec_into(&x, &mut out2, &mut ws);
    assert_eq!(plan_builds(), builds, "clone must not trigger a replan");
    assert_eq!(out, out2);
}
