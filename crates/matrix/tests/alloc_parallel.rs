//! Counting-allocator proof that the **threaded** evaluation paths are
//! allocation-free in steady state — now literally so (ISSUE 5 tentpole:
//! the persistent pool executor).
//!
//! Before the per-worker arena pool (ISSUE 3), every parallel region
//! allocated `O(n)` buffers per call: per-worker scratch vectors,
//! full-width scatter accumulators, Kronecker stage-2 output panels. The
//! arena pool moved all of those into the `Workspace`, but the
//! `std::thread::scope` spawn harness still allocated its per-thread
//! bookkeeping (closure box, join packet) on every region — which is why
//! this suite used to count only page-sized (≥ 4096 B) allocations.
//!
//! The pool executor (`ektelo_matrix::pool`) removes that remainder:
//! parked workers, preallocated job slots, closures copied by value into
//! the slot, merges on the caller. So the bar is now **zero allocations
//! of any size** in a warm threaded region: the counter below tracks
//! every `alloc`/`realloc` from every thread, and the warm windows must
//! not move it at all.
//!
//! The suite passes with and without `--features parallel` (without the
//! feature the serial engine is trivially allocation-free too); CI runs
//! it under the feature — and under `EKTELO_POOL_WORKERS=1` and `=4` —
//! where the sizes below engage every threaded region.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ektelo_matrix::{plan_builds, Matrix, Workspace};

struct CountingAllocator;

/// Every allocation and growing reallocation, from any thread.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed atomic counter —
// every layout/pointer contract required of a `GlobalAlloc` is upheld by
// forwarding the arguments unchanged, and the counter has no effect on
// allocation behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed in.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` (alloc/realloc above
        // forward to it) with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from `System` with `layout`; `new_size` is
        // the caller's requested size, unmodified.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The counter is process-global but the harness runs tests on concurrent
/// threads; hold this gate so counting windows never overlap.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Minimum count of `f` over a few repetitions (sibling-thread noise is
/// additive; a genuine steady-state allocation shows up in every rep).
fn count_allocations<F: FnMut()>(mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        f();
        best = best.min(ALLOCATIONS.load(Ordering::Relaxed) - before);
    }
    best
}

/// Striped union sized past the parallel thresholds in both directions:
/// forward needs `2·rows + cols ≥ 2^14`, scatter needs `rows ≥ 2^14` and
/// `rows ≥ cols`.
fn striped_union() -> Matrix {
    let n = 1usize << 12;
    Matrix::vstack(vec![
        Matrix::wavelet(n),
        Matrix::prefix(n),
        Matrix::scaled(0.5, Matrix::suffix(n)),
        Matrix::product(Matrix::prefix(n), Matrix::wavelet(n)),
    ])
}

#[test]
fn threaded_union_both_directions_zero_allocations_when_warm() {
    let _serial = serialized();
    let u = striped_union();
    let mut ws = Workspace::for_matrix(&u);
    let x: Vec<f64> = (0..u.cols()).map(|i| (i % 13) as f64 - 6.0).collect();
    let y: Vec<f64> = (0..u.rows()).map(|i| (i % 7) as f64 - 3.0).collect();
    let mut out = vec![0.0; u.rows()];
    let mut back = vec![0.0; u.cols()];
    // Warm both directions: plans resolved, arena and arena pool at full
    // size, pool executor threads spawned and parked.
    u.matvec_into(&x, &mut out, &mut ws);
    u.rmatvec_into(&y, &mut back, &mut ws);
    let builds = plan_builds();
    let allocations = count_allocations(|| {
        for _ in 0..10 {
            u.matvec_into(&x, &mut out, &mut ws);
            u.rmatvec_into(&y, &mut back, &mut ws);
        }
    });
    assert_eq!(
        allocations, 0,
        "warm threaded union evaluation must perform zero allocations \
         (worker buffers and spawn-harness bookkeeping alike)"
    );
    assert_eq!(plan_builds(), builds, "steady state must not re-plan");
    // Correctness untouched by the pooled buffers and pooled dispatch.
    assert_eq!(out, u.matvec(&x));
    assert_eq!(back, u.rmatvec(&y));
}

/// Code-review regression: a Kronecker whose factor is itself a
/// parallel-eligible union (the `hdmm_kron`/`stripe_select` shape). The
/// outer region's chunk workers must evaluate the inner union *serially*
/// (nested parallelism is suppressed at the worker boundary) — without
/// that, every row application inside every worker would allocate fresh
/// worker arenas and re-enter the executor per row.
#[test]
fn kron_of_parallel_union_stays_allocation_free() {
    let _serial = serialized();
    let w = 1usize << 12;
    let inner = Matrix::vstack((0..4).map(|_| Matrix::wavelet(w)).collect());
    let k = Matrix::kron(Matrix::prefix(4), inner.clone());
    let mut ws = Workspace::for_matrix(&k);
    let x: Vec<f64> = (0..k.cols()).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
    let mut out = vec![0.0; k.rows()];
    k.matvec_into(&x, &mut out, &mut ws);
    let allocations = count_allocations(|| {
        for _ in 0..5 {
            k.matvec_into(&x, &mut out, &mut ws);
        }
    });
    assert_eq!(
        allocations, 0,
        "nested parallel regions must not allocate per call"
    );
    // Independent reference: t_i = inner · x_i per reshaped input row,
    // then prefix over the rows (A = prefix(4)).
    let (mb, nb) = inner.shape();
    let mut t = vec![vec![0.0; mb]; 4];
    for (i, ti) in t.iter_mut().enumerate() {
        *ti = inner.matvec(&x[i * nb..(i + 1) * nb]);
    }
    for p in 0..4 {
        for q in 0..mb {
            let expect: f64 = (0..=p).map(|i| t[i][q]).sum();
            assert!(
                (out[p * mb + q] - expect).abs() < 1e-9,
                "nested-suppressed kron diverged at ({p},{q})"
            );
        }
    }
}

#[test]
fn threaded_kron_zero_allocations_when_warm() {
    let _serial = serialized();
    // 128×128 factors clear the row-chunk and column-chunk thresholds.
    let k = Matrix::kron(Matrix::prefix(128), Matrix::wavelet(128));
    let mut ws = Workspace::for_matrix(&k);
    let x: Vec<f64> = (0..k.cols()).map(|i| ((i * 31) % 17) as f64).collect();
    let y: Vec<f64> = (0..k.rows()).map(|i| ((i * 7) % 23) as f64).collect();
    let mut out = vec![0.0; k.rows()];
    let mut back = vec![0.0; k.cols()];
    k.matvec_into(&x, &mut out, &mut ws);
    k.rmatvec_into(&y, &mut back, &mut ws);
    let allocations = count_allocations(|| {
        for _ in 0..5 {
            k.matvec_into(&x, &mut out, &mut ws);
            k.rmatvec_into(&y, &mut back, &mut ws);
        }
    });
    assert_eq!(
        allocations, 0,
        "warm threaded Kronecker evaluation must perform zero allocations"
    );
    assert_eq!(out, k.matvec(&x));
    assert_eq!(back, k.rmatvec(&y));
}

/// Pool-size sweep at the matrix level: the same warm threaded system
/// evaluated with 1, 2 and all pool workers must produce bit-identical
/// vectors in both directions (chunk geometry is plan-time; the pool only
/// places the fixed chunks), and stay allocation-free at every size.
#[test]
fn pooled_evaluation_bit_identical_across_pool_sizes() {
    let _serial = serialized();
    let u = striped_union();
    let mut ws = Workspace::for_matrix(&u);
    let x: Vec<f64> = (0..u.cols())
        .map(|i| ((i * 11) % 19) as f64 - 9.0)
        .collect();
    let y: Vec<f64> = (0..u.rows()).map(|i| ((i * 5) % 13) as f64 - 6.0).collect();
    let mut out = vec![0.0; u.rows()];
    let mut back = vec![0.0; u.cols()];
    u.matvec_into(&x, &mut out, &mut ws);
    u.rmatvec_into(&y, &mut back, &mut ws);
    let (ref_out, ref_back) = (out.clone(), back.clone());
    let full = ektelo_matrix::pool::stats().spawned;
    let prev = ektelo_matrix::pool::workers();
    for size in [1usize, 2, full] {
        ektelo_matrix::pool::set_workers(size);
        let allocations = count_allocations(|| {
            u.matvec_into(&x, &mut out, &mut ws);
            u.rmatvec_into(&y, &mut back, &mut ws);
        });
        assert_eq!(out, ref_out, "pool size {size} changed the matvec");
        assert_eq!(back, ref_back, "pool size {size} changed the scatter");
        assert_eq!(allocations, 0, "pool size {size} allocated when warm");
    }
    ektelo_matrix::pool::set_workers(prev);
}
