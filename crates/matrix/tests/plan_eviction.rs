//! Gate for the byte-weighted second-chance plan-cache eviction (ISSUE 5
//! satellite; replaces the wholesale shard clear at 4096 entries).
//!
//! The pathology being bounded: an MWEM-style loop stacks a *new* `Union`
//! spine every round (a brand-new shape, so a brand-new cache entry of
//! `O(blocks)` bytes) while re-using the same block shapes. Old spines
//! are dead the moment the next round starts, but the old cap-and-clear
//! policy let them pile up to 4096 entries per shard — `O(rounds²)`-ish
//! bytes — and then threw away the *hot* block plans along with the dead
//! spines, causing a transient rebuild storm.
//!
//! With the byte-weighted clock, resident bytes stay near the configured
//! bound for the whole run, and the hot block plans survive every sweep
//! (their referenced bits are refreshed each round by spine reassembly),
//! so the loop never re-runs a planning pass: `plan_builds()` stays
//! **exactly flat** after warmup — the "no rebuild storm" guarantee.
//!
//! This file runs as its own process, so the global cache and the bound
//! configured here are not shared with other suites.

use ektelo_matrix::{plan_builds, plan_cache_set_max_bytes, plan_cache_stats, Matrix, Workspace};

#[test]
fn long_spine_stacking_run_stays_byte_bounded_without_rebuilds() {
    // A tight bound: roughly 4 KiB per shard. The spines stacked below
    // would pile up well past 1 MiB without eviction.
    let bound = 16 * 4096;
    plan_cache_set_max_bytes(bound);

    let n = 512usize;
    // Eight distinct block shapes over the same domain (distinct query
    // counts fingerprint distinctly), rotated like MWEM's per-round
    // measurement rows.
    let blocks: Vec<Matrix> = (0..8)
        .map(|k| Matrix::range_queries(n, (0..=4 * k).map(|i| (i, i + 2)).collect()))
        .collect();

    let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
    let mut ws = Workspace::new();
    let mut spine: Vec<Matrix> = Vec::new();

    // Warmup: one pass over every block shape builds all block plans.
    for b in &blocks {
        spine.push(b.clone());
        let system = Matrix::vstack(spine.clone());
        let mut out = vec![0.0; system.rows()];
        system.matvec_into(&x, &mut out, &mut ws);
    }
    let builds_after_warmup = plan_builds();
    let misses_after_warmup = plan_cache_stats().misses;

    // The long run: 400 more rounds, each stacking one more (cached)
    // block under a brand-new spine shape. Unbounded, the dead spines
    // alone would retain well over 1 MiB of plan records.
    let rounds = 400usize;
    for r in 0..rounds {
        spine.push(blocks[r % blocks.len()].clone());
        let system = Matrix::vstack(spine.clone());
        let mut out = vec![0.0; system.rows()];
        system.matvec_into(&x, &mut out, &mut ws);

        // Bound check every round: per shard the clock allows the byte
        // share plus the fattest in-flight spine, so 4× the global bound
        // is a safe ceiling that unbounded growth blows through early.
        let stats = plan_cache_stats();
        assert!(
            stats.resident_bytes <= 4 * bound,
            "round {r}: resident plan bytes {} escaped the configured bound {bound}",
            stats.resident_bytes
        );
    }

    let stats = plan_cache_stats();
    assert!(
        stats.evictions > 0,
        "a 400-round spine-stacking run must have triggered sweeps"
    );
    // No rebuild storm: every round's spine *reassembles* from cached
    // block plans (a miss on the new spine shape, but zero planning-pass
    // walks) — evicting dead spines must never cost a block re-plan.
    assert_eq!(
        plan_builds(),
        builds_after_warmup,
        "hot block plans must survive every sweep (no planning-pass walks)"
    );
    // And each round costs exactly one miss: the brand-new spine shape.
    assert_eq!(
        stats.misses - misses_after_warmup,
        rounds as u64,
        "per round: one spine miss, zero block misses"
    );
}
