//! Process-wide plan-cache regression suite (ISSUE 3 tentpole + the
//! plan-LRU-pathology satellite).
//!
//! This file runs as its own process, so — unlike the in-crate unit tests,
//! which execute concurrently with every other unit test — the global
//! counters (`plan_builds`, `plan_cache_stats`) can be asserted *exactly*
//! here. A mutex still serializes the `#[test]` fns in this file against
//! each other.

use ektelo_matrix::{plan_builds, plan_cache_stats, CsrMatrix, Matrix, Workspace};

static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn serialized() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// A 1×n measurement row like the ones MWEM's `sparse_row` records: the
/// payload differs per round, the *shape* (and therefore the plan) does
/// not.
fn measurement_row(n: usize, support: std::ops::Range<usize>) -> Matrix {
    let triplets: Vec<(usize, usize, f64)> = support.map(|j| (0, j, 1.0)).collect();
    Matrix::sparse(CsrMatrix::from_triplets(1, n, &triplets))
}

/// The acceptance criterion of ISSUE 3: an MWEM-style round loop stacks a
/// growing `Union` of measurement rows — a *new spine shape every round* —
/// yet after round 1 the planning-pass counter stays exactly flat, because
/// every block plan is shared from the previous rounds and spine
/// reassembly is not a tree walk.
#[test]
fn mwem_round_loop_plan_builds_stay_flat_after_round_one() {
    let _serial = serialized();
    let n = 256;
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
    let mut ws = Workspace::new();
    let mut blocks: Vec<Matrix> = Vec::new();
    let mut builds_after_round_1 = 0;
    for round in 0..10 {
        // Each round selects a different query (different payload/support,
        // same 1×n shape) and re-stacks the whole system, exactly like
        // per-round MWEM inference.
        blocks.push(measurement_row(n, (round * 16)..(round * 16 + 8)));
        let system = Matrix::vstack(blocks.clone());
        let mut out = vec![0.0; system.rows()];
        let mut back = vec![0.0; system.cols()];
        // A couple of solver-ish iterations per round.
        for _ in 0..3 {
            system.matvec_into(&x, &mut out, &mut ws);
            system.rmatvec_into(&out, &mut back, &mut ws);
        }
        if round == 0 {
            builds_after_round_1 = plan_builds();
        }
    }
    assert_eq!(
        plan_builds(),
        builds_after_round_1,
        "rounds 2..10 must reuse every block plan: spine reassembly only"
    );
}

/// The PR-2 eviction pathology (ROADMAP open item): more shapes than the
/// old per-workspace cap-8 LRU, round-robined through one workspace,
/// rebuilt plans on every call. With the process-wide cache this must be
/// all hits: `plan_builds()` stays flat after the first rotation.
#[test]
fn nine_plus_shapes_round_robin_is_all_hits_after_first_rotation() {
    let _serial = serialized();
    let n = 512;
    // 9 structurally distinct strategies (what a plan sweep rotates).
    let shapes: Vec<Matrix> = (1..=9)
        .map(|k| {
            Matrix::vstack(vec![
                Matrix::prefix(n),
                Matrix::range_queries(n, (0..k * 8).map(|i| (i, i + 2)).collect::<Vec<_>>()),
            ])
        })
        .collect();
    let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    let mut ws = Workspace::new();
    let mut outs: Vec<Vec<f64>> = shapes.iter().map(|m| vec![0.0; m.rows()]).collect();
    for (m, out) in shapes.iter().zip(&mut outs) {
        m.matvec_into(&x, out, &mut ws);
    }
    let after_first_rotation = plan_builds();
    for _ in 0..5 {
        for (m, out) in shapes.iter().zip(&mut outs) {
            m.matvec_into(&x, out, &mut ws);
        }
    }
    assert_eq!(
        plan_builds(),
        after_first_rotation,
        "round-robined shapes must stay resident in the process-wide cache"
    );
}

/// Cross-workspace and cross-thread sharing observed through the public
/// stats: one miss process-wide, everything else hits (the `Arc::ptr_eq`
/// variant lives in the crate's unit tests, where `EvalPlan` is visible).
#[test]
fn cross_workspace_and_cross_thread_lookups_build_once() {
    let _serial = serialized();
    let m = Matrix::vstack(vec![
        Matrix::product(Matrix::prefix(640), Matrix::wavelet(640)),
        Matrix::identity(640),
    ]);
    let before = plan_cache_stats();
    let x: Vec<f64> = (0..m.cols()).map(|i| i as f64 * 0.5).collect();
    let expect = m.matvec(&x); // first sighting: builds the plans
    let built = plan_cache_stats().misses - before.misses;
    // Root spine + two distinct blocks (product chain caches its factors
    // too) — what matters is that the *next* evaluations add zero.
    assert!(built >= 3);
    let after_first = plan_cache_stats();
    ektelo_matrix::pool::scope(|s| {
        for _ in 0..4 {
            let m = m.clone();
            let x = &x;
            let expect = &expect;
            s.spawn(move || {
                let mut ws = Workspace::new();
                let mut out = vec![0.0; m.rows()];
                m.matvec_into(x, &mut out, &mut ws);
                assert_eq!(&out, expect);
                assert_eq!(ws.plan_cache_builds(), 0, "worker must share the plan");
            });
        }
    });
    let mut ws2 = Workspace::new();
    let mut out = vec![0.0; m.rows()];
    m.matvec_into(&x, &mut out, &mut ws2);
    assert_eq!(ws2.plan_cache_builds(), 0);
    assert_eq!(
        plan_cache_stats().misses,
        after_first.misses,
        "four threads and a fresh workspace must add zero plan builds"
    );
}
