//! Implicit range-query workloads.
//!
//! Paper Example 7.4 represents a workload of m interval queries as the
//! product of an m×n sparse matrix (two entries per row) with the implicit
//! `Prefix` matrix, evaluating products in `O(n + m)`. We implement the
//! same idea directly: each query is a pair `[lo, hi)`, products use a
//! prefix-sum, transpose-products use a difference array, and exact column
//! sums (for sensitivity) also come from a difference array — all without
//! materializing anything.

use crate::kernels;

/// An implicit workload of `m` interval range queries over `n` cells.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeQueries {
    n: usize,
    /// Half-open intervals `[lo, hi)`, `lo < hi ≤ n`.
    ranges: Vec<(u32, u32)>,
}

impl RangeQueries {
    /// Builds a range workload; panics on empty or out-of-bounds intervals.
    pub fn new(n: usize, ranges: Vec<(usize, usize)>) -> Self {
        assert!(n <= u32::MAX as usize, "domain too large for u32 indices");
        let ranges = ranges
            .into_iter()
            .map(|(lo, hi)| {
                assert!(
                    lo < hi && hi <= n,
                    "invalid range [{lo}, {hi}) for domain {n}"
                );
                (lo as u32, hi as u32)
            })
            .collect();
        RangeQueries { n, ranges }
    }

    /// Domain size (number of columns).
    pub fn domain(&self) -> usize {
        self.n
    }

    /// Number of queries (rows).
    pub fn num_queries(&self) -> usize {
        self.ranges.len()
    }

    /// The underlying half-open intervals.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges
            .iter()
            .map(|&(lo, hi)| (lo as usize, hi as usize))
    }

    /// Scratch scalars needed by the product kernels: one prefix-sum or
    /// difference array of `n + 1` entries.
    pub(crate) fn scratch_len(&self) -> usize {
        self.n + 1
    }

    /// `out[k] = Σ_{i ∈ [lo_k, hi_k)} x[i]` via one prefix-sum pass.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        // xlint: allow(warm-path-alloc, reason = "ad-hoc entry point that owns its scratch; the planned evaluator reaches this type via the allocation-free matvec_rec variant")
        let mut scratch = vec![0.0; self.scratch_len()];
        self.matvec_rec(x, out, &mut scratch);
    }

    /// [`Self::matvec_into`] with caller-provided scratch (≥
    /// [`Self::scratch_len`] scalars); performs no allocation.
    pub(crate) fn matvec_rec(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(x.len(), self.n, "matvec dimension mismatch");
        assert_eq!(out.len(), self.ranges.len(), "matvec output mismatch");
        let prefix = &mut scratch[..self.n + 1];
        prefix[0] = 0.0;
        kernels::prefix_sum_into(&mut prefix[1..], x);
        for (o, &(lo, hi)) in out.iter_mut().zip(&self.ranges) {
            *o = prefix[hi as usize] - prefix[lo as usize];
        }
    }

    /// `out = Wᵀ y` via a difference array.
    pub fn rmatvec_into(&self, y: &[f64], out: &mut [f64]) {
        // xlint: allow(warm-path-alloc, reason = "ad-hoc entry point that owns its scratch; the planned evaluator reaches this type via the allocation-free rmatvec_rec variant")
        let mut scratch = vec![0.0; self.scratch_len()];
        self.rmatvec_rec(y, out, &mut scratch);
    }

    /// [`Self::rmatvec_into`] with caller-provided scratch (≥
    /// [`Self::scratch_len`] scalars); performs no allocation.
    pub(crate) fn rmatvec_rec(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(y.len(), self.ranges.len(), "rmatvec dimension mismatch");
        assert_eq!(out.len(), self.n, "rmatvec output mismatch");
        let diff = &mut scratch[..self.n + 1];
        diff.fill(0.0);
        for (&(lo, hi), &yk) in self.ranges.iter().zip(y) {
            diff[lo as usize] += yk;
            diff[hi as usize] -= yk;
        }
        kernels::prefix_sum_into(out, &diff[..self.n]);
    }

    /// Exact column sums (all entries are 0/1, so |W| = W = W²) in
    /// `O(n + m)`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut diff = vec![0.0; self.n + 1];
        for &(lo, hi) in &self.ranges {
            diff[lo as usize] += 1.0;
            diff[hi as usize] -= 1.0;
        }
        let mut out = vec![0.0; self.n];
        let mut acc = 0.0;
        for (o, d) in out.iter_mut().zip(&diff[..self.n]) {
            acc += d;
            *o = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RangeQueries {
        RangeQueries::new(5, vec![(1, 4), (3, 5), (0, 4), (1, 2)])
    }

    #[test]
    fn matvec_matches_manual_sums() {
        let w = sample();
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mut y = vec![0.0; 4];
        w.matvec_into(&x, &mut y);
        assert_eq!(y, vec![9.0, 9.0, 10.0, 2.0]);
    }

    #[test]
    fn rmatvec_matches_dense_transpose() {
        let w = sample();
        let y = [1.0, -1.0, 0.5, 2.0];
        let mut x = vec![0.0; 5];
        w.rmatvec_into(&y, &mut x);
        // Dense W: rows over [1,4),[3,5),[0,4),[1,2)
        // col sums of diag(y)·W: col0: 0.5; col1: 1+0.5+2; col2: 1+0.5; col3: 1-1+0.5; col4: -1
        assert_eq!(x, vec![0.5, 3.5, 1.5, 0.5, -1.0]);
    }

    #[test]
    fn col_sums_count_coverage() {
        let w = sample();
        assert_eq!(w.col_sums(), vec![1.0, 3.0, 2.0, 3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_bad_range() {
        RangeQueries::new(4, vec![(2, 2)]);
    }
}
